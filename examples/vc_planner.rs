//! VC planner: a pure-model example using only `flexvc-core`. Given a VC
//! arrangement it classifies which routings are safe / opportunistic /
//! unsupported (the machinery behind the paper's Tables I–IV) and prints
//! the per-hop allowed-VC ranges for a minimal path — the data a router
//! designer needs to size buffers.
//!
//! Run with: `cargo run --example vc_planner -- 4 2`
//! (local and global VC counts; defaults to 4/2)

use flexvc::core::classify::{classify, NetworkFamily};
use flexvc::core::policy::flexvc_options;
use flexvc::core::{Arrangement, LinkClass, MessageClass, RoutingMode};

fn main() {
    let mut args = std::env::args().skip(1);
    let local: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let global: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(2);
    let arr = Arrangement::dragonfly(local, global);

    println!("Arrangement {arr}\n");
    println!("Routing support (Dragonfly):");
    for mode in [RoutingMode::Min, RoutingMode::Valiant, RoutingMode::Par] {
        let support = classify(NetworkFamily::Dragonfly, mode, &arr, MessageClass::Request);
        println!("  {mode:8} {support}");
    }

    println!("\nPer-hop allowed VCs for a full minimal path (l-g-l):");
    let min = [LinkClass::Local, LinkClass::Global, LinkClass::Local];
    let mut pos = None;
    for i in 0..3 {
        let escape: &[LinkClass] = &min[i + 1..];
        let opts = flexvc_options(&arr, MessageClass::Request, pos, &min[i..], escape)
            .expect("minimal routing must be safe");
        println!(
            "  hop {} ({:?}): VCs {}..={} ({:?})",
            i, min[i], opts.lo, opts.hi, opts.kind
        );
        // Follow the highest landing, as the JSQ selection would at low load.
        pos = arr.position(min[i], opts.hi).map(Some).unwrap_or(None);
    }
    println!("\nBaseline distance-based routing would pin each hop to one VC;");
    println!("FlexVC exposes the whole range, which is what absorbs bursts.");
}
