//! Quickstart: simulate a Dragonfly under uniform traffic and compare the
//! baseline distance-based VC policy against FlexVC, using the validating
//! `SimConfigBuilder` and the non-panicking runner.
//!
//! Run with: `cargo run --release --example quickstart`

use flexvc::core::{Arrangement, RoutingMode};
use flexvc::sim::prelude::*;
use flexvc::traffic::{Pattern, Workload};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    // A balanced h=2 Dragonfly: 9 groups, 36 routers, 72 nodes. Everything
    // else follows Table V of the paper (10/100-cycle links, 8-phit packets,
    // 2x crossbar speedup, JSQ selection). `build()` validates and returns a
    // typed ConfigError on inconsistent input instead of panicking later.
    let baseline = SimConfig::builder()
        .dragonfly(2)
        .routing(RoutingMode::Min)
        .workload(Workload::oblivious(Pattern::Uniform))
        .windows(5_000, 10_000)
        .build()?;

    // FlexVC on the same minimal 2/1 arrangement, and on the 4/2 arrangement
    // that a VAL-capable router would already provision.
    let flexvc_21 = baseline.clone().with_flexvc(Arrangement::dragonfly_min());
    let flexvc_42 = baseline.clone().with_flexvc(Arrangement::dragonfly(4, 2));

    println!("UN traffic, MIN routing, offered load 0.9 phits/node/cycle\n");
    println!(
        "{:<22} {:>9} {:>10} {:>8}",
        "policy", "accepted", "latency", "hops"
    );
    for (name, cfg) in [
        ("baseline 2/1", &baseline),
        ("FlexVC 2/1", &flexvc_21),
        ("FlexVC 4/2", &flexvc_42),
    ] {
        let r = run_averaged(cfg, 0.9, &[1, 2, 3])?;
        println!(
            "{:<22} {:>9.3} {:>10.1} {:>8.2}",
            name, r.accepted, r.latency, r.avg_hops
        );
    }
    println!("\nFlexVC lets every packet choose among all deadlock-safe VCs");
    println!("per hop, so the same buffers carry more load before saturating.");
    Ok(())
}
