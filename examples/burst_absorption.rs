//! Burst absorption: the data-centre-style BURSTY-UN workload from the
//! paper's motivation. Nodes emit line-rate bursts of ~5 packets toward a
//! single destination; statically partitioned single-VC-per-hop buffers
//! suffer head-of-line blocking while FlexVC spreads each burst over every
//! deadlock-safe VC (paper Figs. 5b/6b).
//!
//! Run with: `cargo run --release --example burst_absorption`

use flexvc::core::{Arrangement, RoutingMode};
use flexvc::sim::prelude::*;
use flexvc::traffic::{Pattern, Workload};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let base = SimConfig::builder()
        .dragonfly(2)
        .routing(RoutingMode::Min)
        .workload(Workload::oblivious(Pattern::bursty()))
        .windows(5_000, 10_000)
        .build()?;

    let series = [
        ("baseline 2/1".to_string(), base.clone()),
        ("DAMQ 75% 2/1".to_string(), base.clone().with_damq75()),
        (
            "FlexVC 2/1".to_string(),
            base.clone().with_flexvc(Arrangement::dragonfly_min()),
        ),
        (
            "FlexVC 4/2".to_string(),
            base.clone().with_flexvc(Arrangement::dragonfly(4, 2)),
        ),
        (
            "FlexVC 8/4".to_string(),
            base.clone().with_flexvc(Arrangement::dragonfly(8, 4)),
        ),
    ];

    println!("BURSTY-UN (mean burst 5 packets), MIN routing\n");
    println!(
        "{:<16} {:>16} {:>18}",
        "policy", "latency @0.4", "max throughput"
    );
    for (name, cfg) in &series {
        let mid = run_averaged(cfg, 0.4, &[1, 2])?;
        let sat = saturation_throughput(cfg, &[1, 2])?;
        println!("{:<16} {:>16.1} {:>18.3}", name, mid.latency, sat.accepted);
    }
    println!("\nThe paper reports the same ordering: bursts congest isolated");
    println!("VCs, so flexibility in VC use pays off well below saturation.");
    Ok(())
}
