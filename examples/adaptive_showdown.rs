//! Adaptive-routing showdown under adversarial traffic (paper Fig. 8c):
//! Piggyback source-adaptive routing must *sense* that the minimal global
//! channel is jammed. FlexVC merges minimal and Valiant flows in the same
//! buffers and blinds the sensor; FlexVC-minCred restores the signal by
//! accounting minimally-routed credits separately — with 25% fewer VCs than
//! the baseline.
//!
//! Run with: `cargo run --release --example adaptive_showdown`

use flexvc::core::{Arrangement, RoutingMode};
use flexvc::sim::prelude::*;
use flexvc::traffic::{Pattern, Workload};
use std::error::Error;

fn main() -> Result<(), Box<dyn Error>> {
    let wl = Workload::reactive(Pattern::adv1());
    let pb = SimConfig::builder()
        .dragonfly(2)
        .routing(RoutingMode::Piggyback)
        .workload(wl)
        .windows(5_000, 10_000)
        .build()?;

    let flex = pb
        .clone()
        .with_flexvc(Arrangement::dragonfly_rr((4, 2), (2, 1)));

    let variant = |cfg: &SimConfig, mode: SensingMode, min_cred: bool| -> SimConfig {
        let mut c = cfg.clone();
        c.sensing = SensingConfig {
            mode,
            min_cred,
            threshold: c.sensing.threshold,
        };
        c
    };

    let series = [
        (
            "PB baseline per-VC (8/4 VCs)",
            variant(&pb, SensingMode::PerVc, false),
        ),
        (
            "PB baseline per-port",
            variant(&pb, SensingMode::PerPort, false),
        ),
        (
            "PB FlexVC per-VC (6/3 VCs)",
            variant(&flex, SensingMode::PerVc, false),
        ),
        (
            "PB FlexVC per-port",
            variant(&flex, SensingMode::PerPort, false),
        ),
        (
            "PB FlexVC-minCred per-VC",
            variant(&flex, SensingMode::PerVc, true),
        ),
        (
            "PB FlexVC-minCred per-port",
            variant(&flex, SensingMode::PerPort, true),
        ),
    ];

    println!("ADV+1 request-reply traffic at offered load 0.5\n");
    println!(
        "{:<30} {:>9} {:>9} {:>10}",
        "variant", "accepted", "latency", "misroute%"
    );
    for (name, cfg) in &series {
        let r = run_averaged(cfg, 0.5, &[1, 2])?;
        println!(
            "{:<30} {:>9.3} {:>9.0} {:>9.0}%",
            name,
            r.accepted,
            r.latency,
            r.misroute_fraction * 100.0
        );
    }
    println!("\nminCred identifies the adversarial pattern (high misroute%)");
    println!("and restores throughput with a 25% smaller VC set.");
    Ok(())
}
