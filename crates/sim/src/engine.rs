//! The cycle-accurate network engine.
//!
//! One [`Network`] owns every router, link, and node generator of a
//! simulation. Each cycle proceeds in phases:
//!
//! 1. **Deliver** — packets whose head phit reaches a router enter its input
//!    VC buffers; returning credits update the upstream mirrors.
//! 2. **Release** — scheduled input/output buffer releases take effect.
//! 3. **Generate** — node generators produce new packets into injection
//!    queues (dropped when full); consumed requests spawn staged replies.
//! 4. **Plan** — unplanned injection-queue heads receive their route
//!    (adaptive decisions use fresh congestion state).
//! 5. **Allocate** ×speedup — iterative input-first separable allocation:
//!    per input port a round-robin arbiter picks one requesting VC, per
//!    output port another arbiter picks one winning input; grants move
//!    packets toward output buffers through a fixed-latency pipeline.
//!    Ejection requests are granted against per-(node, class) consumption
//!    channels.
//! 6. **Serialize** — output-buffer heads start on free links at one phit
//!    per cycle.
//! 7. **Sense** — Piggyback saturation flags are recomputed and published.
//! 8. **Watchdog** — genuine deadlock (no movement with packets stuck) is
//!    detected and flagged rather than hanging the process.
//!
//! Virtual cut-through is modelled with packet-granularity occupancy and
//! phit-accurate timing: a packet may be forwarded as soon as its head has
//! arrived, a hop is only granted when the downstream VC can hold the whole
//! packet, and transfers respect both crossbar bandwidth
//! (`speedup` phits/cycle) and the arrival of the packet's own tail.

#![allow(clippy::needless_range_loop)] // parallel arrays indexed by port/vc
#![allow(clippy::type_complexity)]

use crate::arbiter::RrArbiter;
use crate::bank::{BufferBank, Occupancy};
use crate::config::{BufferOrg, SensingMode, SimConfig};
use crate::link::LinkState;
use crate::metrics::{Metrics, SimResult};
use crate::packet::{Packet, PlannedPath};
use crate::plan::{min_plan, par_divert_plan, par_min_plan, valiant_plan};
use crate::sensing::{choose_nonminimal, saturated_flags, GroupBoard};
use flexvc_core::classify::NetworkFamily;
use flexvc_core::policy::{baseline_vc, flexvc_options_lookahead};
use flexvc_core::{
    Arrangement, CreditClass, HopKind, LinkClass, MessageClass, RoutingMode, VcPolicy,
};
use flexvc_topology::Topology;
use flexvc_traffic::generator::NodeSpace;
use flexvc_traffic::NodeGenerator;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::sync::Arc;

/// A packet queued at an output buffer awaiting link serialization.
#[derive(Debug)]
struct OutPkt {
    pkt: Packet,
    /// Head reaches the output buffer after the router pipeline.
    ready_at: u64,
    /// Landing VC at the downstream input port.
    vc: u8,
}

/// Scheduled buffer releases.
#[derive(Debug, Clone, Copy)]
enum Pending {
    /// Input VC occupancy release at transfer completion.
    Input {
        at: u64,
        in_idx: u32,
        vc: u8,
        phits: u32,
        class: CreditClass,
    },
    /// Output buffer release when the tail leaves on the link.
    OutBuf { at: u64, port: u16, phits: u32 },
}

/// Per-router state.
struct Router {
    /// Network input banks (one per network port).
    inputs: Vec<BufferBank>,
    /// Injection banks (one per attached node).
    inj: Vec<BufferBank>,
    /// Input feed busy-until over the unified input space
    /// (`0..P` network, `P..P+p` injection).
    in_busy: Vec<u64>,
    /// Per-input-port VC arbiters.
    in_arb: Vec<RrArbiter>,
    /// Per-output-port arbiters over the unified input space.
    out_arb: Vec<RrArbiter>,
    /// Credit mirrors of the downstream input banks per network output port.
    out_credit: Vec<Occupancy>,
    /// Output buffer occupancy per network output port.
    out_occ: Vec<u32>,
    /// Output queues awaiting serialization.
    out_queue: Vec<VecDeque<OutPkt>>,
    /// Crossbar feed busy-until per output port.
    out_xbar: Vec<u64>,
    /// Consumption channel busy-until per (local node × class).
    eject_busy: Vec<u64>,
    /// Scheduled releases.
    pending: Vec<Pending>,
    /// Router-local RNG (Valiant picks, random VC selection).
    rng: SmallRng,
}

/// A forwarding decision for an input VC head.
#[derive(Debug, Clone, Copy)]
enum Decision {
    Forward { port: u16, vc: u8, pos: u16 },
    Eject { channel: u16 },
}

/// The simulation network.
pub struct Network {
    cfg: SimConfig,
    topo: Arc<dyn Topology>,
    family: NetworkFamily,
    arr: Arrangement,
    /// Network ports per router.
    pp: usize,
    /// Nodes per router.
    pn: usize,
    /// Flat adjacency: `r*pp + port -> (router, port)`.
    adj: Vec<Option<(u32, u16)>>,
    /// Class per port index (uniform across routers for our topologies).
    port_class: Vec<LinkClass>,
    /// Port indices of global ports.
    global_ports: Vec<usize>,
    routers: Vec<Router>,
    links: Vec<LinkState>,
    gens: Vec<NodeGenerator>,
    /// Per-node staged replies: `(destination, ready_at)`.
    staging: Vec<VecDeque<(u32, u64)>>,
    /// Per-node injection VC round-robin (non-reactive traffic).
    inj_rr: Vec<u8>,
    /// Per-group Piggyback boards (empty unless PB routing).
    boards: Vec<GroupBoard>,
    metrics: Metrics,
    cycle: u64,
    next_id: u64,
    offered: f64,
    in_flight: i64,
    last_progress: u64,
}

impl Network {
    /// Build a network for `cfg` at offered load `load` (phits/node/cycle)
    /// with deterministic `seed`. Fails with a typed [`ConfigError`] when
    /// the configuration does not pass [`SimConfig::validate`].
    pub fn new(cfg: SimConfig, load: f64, seed: u64) -> Result<Self, crate::error::ConfigError> {
        cfg.validate()?;
        let topo = cfg.topology.build();
        let family = cfg.topology.family();
        let pp = topo.num_ports();
        let pn = topo.nodes_per_router();
        let nr = topo.num_routers();
        let arr = cfg.arrangement.clone();

        let mut adj = vec![None; nr * pp];
        let mut port_class = vec![LinkClass::Local; pp];
        for port in 0..pp {
            port_class[port] = topo.port_class(0, port);
        }
        for r in 0..nr {
            for port in 0..pp {
                debug_assert_eq!(topo.port_class(r, port), port_class[port]);
                adj[r * pp + port] = topo
                    .neighbor(r, port)
                    .map(|(nr_, np)| (nr_ as u32, np as u16));
            }
        }
        let global_ports: Vec<usize> = (0..pp)
            .filter(|&p| port_class[p] == LinkClass::Global)
            .collect();

        let make_bank = |class: LinkClass, cfg: &SimConfig| -> Occupancy {
            let vcs = cfg.vcs_for_class(class).max(1);
            match cfg.buffers.organization {
                BufferOrg::Static => Occupancy::new_static(vcs, cfg.vc_capacity(class)),
                BufferOrg::Damq { private_fraction } => {
                    let total = cfg.port_capacity(class);
                    let private = ((total as f64 * private_fraction) / vcs as f64).floor() as u32;
                    Occupancy::new_damq(vcs, total, private)
                }
            }
        };

        let routers: Vec<Router> = (0..nr)
            .map(|r| {
                let inputs: Vec<BufferBank> = (0..pp)
                    .map(|p| BufferBank::new(make_bank(port_class[p], &cfg)))
                    .collect();
                let inj: Vec<BufferBank> = (0..pn)
                    .map(|_| {
                        BufferBank::new(Occupancy::new_static(
                            cfg.injection_vcs,
                            cfg.buffers.injection,
                        ))
                    })
                    .collect();
                let out_credit: Vec<Occupancy> =
                    (0..pp).map(|p| make_bank(port_class[p], &cfg)).collect();
                let n_in = pp + pn;
                Router {
                    inputs,
                    inj,
                    in_busy: vec![0; n_in],
                    in_arb: (0..n_in)
                        .map(|i| {
                            let vcs = if i < pp {
                                cfg.vcs_for_class(port_class[i]).max(1)
                            } else {
                                cfg.injection_vcs
                            };
                            RrArbiter::new(vcs)
                        })
                        .collect(),
                    out_arb: (0..pp).map(|_| RrArbiter::new(n_in)).collect(),
                    out_credit,
                    out_occ: vec![0; pp],
                    out_queue: (0..pp).map(|_| VecDeque::new()).collect(),
                    out_xbar: vec![0; pp],
                    eject_busy: vec![0; pn * 2],
                    pending: Vec::new(),
                    rng: SmallRng::seed_from_u64(
                        seed ^ 0xD1B5_4A32_D192_ED03u64.wrapping_mul(r as u64 + 1),
                    ),
                }
            })
            .collect();

        let links = (0..nr * pp).map(|_| LinkState::default()).collect();

        // Reactive workloads split the offered load between requests and the
        // replies they trigger.
        let gen_load = if cfg.workload.reactive {
            load / 2.0
        } else {
            load
        };
        let space = NodeSpace {
            num_nodes: topo.num_nodes(),
            nodes_per_group: topo.num_nodes() / topo.num_groups(),
            num_groups: topo.num_groups(),
        };
        let gens: Vec<NodeGenerator> = (0..topo.num_nodes())
            .map(|n| {
                NodeGenerator::new(
                    cfg.workload.pattern,
                    n,
                    space,
                    gen_load,
                    cfg.packet_size,
                    seed,
                )
            })
            .collect();

        let boards = if cfg.routing == RoutingMode::Piggyback {
            let rpg = topo.routers_per_group();
            (0..topo.num_groups())
                .map(|_| GroupBoard::new(rpg, global_ports.len(), cfg.local_latency as u64))
                .collect()
        } else {
            Vec::new()
        };

        let n_nodes = topo.num_nodes();
        Ok(Network {
            cfg,
            topo,
            family,
            arr,
            pp,
            pn,
            adj,
            port_class,
            global_ports,
            routers,
            links,
            gens,
            staging: vec![VecDeque::new(); n_nodes],
            inj_rr: vec![0; n_nodes],
            boards,
            metrics: Metrics::default(),
            cycle: 0,
            next_id: 0,
            offered: load,
            in_flight: 0,
            last_progress: 0,
        })
    }

    /// Offered load this network was built with.
    pub fn offered(&self) -> f64 {
        self.offered
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Packets currently in queues, buffers or links.
    pub fn packets_in_flight(&self) -> i64 {
        self.in_flight
    }

    /// Whether the watchdog flagged a deadlock.
    pub fn deadlocked(&self) -> bool {
        self.metrics.deadlocked
    }

    fn in_window(&self, cycle: u64) -> bool {
        cycle >= self.cfg.warmup && cycle < self.cfg.warmup + self.cfg.measure
    }

    fn latency_of(&self, class: LinkClass) -> u32 {
        match class {
            LinkClass::Local => self.cfg.local_latency,
            LinkClass::Global => self.cfg.global_latency,
        }
    }

    /// Run to completion and aggregate the result.
    pub fn run(&mut self) -> SimResult {
        let end = self.cfg.warmup + self.cfg.measure;
        while self.cycle < end && !self.metrics.deadlocked {
            self.step();
        }
        self.metrics.cycles = self
            .cycle
            .saturating_sub(self.cfg.warmup)
            .min(self.cfg.measure);
        SimResult::from_metrics(&self.metrics, self.offered, self.topo.num_nodes())
    }

    /// Advance one cycle.
    pub fn step(&mut self) {
        let now = self.cycle;
        self.deliver(now);
        self.process_pending(now);
        self.generate(now);
        self.plan_heads(now);
        for _ in 0..self.cfg.speedup {
            self.allocate(now);
        }
        self.serialize_outputs(now);
        if self.cfg.routing == RoutingMode::Piggyback {
            self.update_sensing(now);
        }
        if now.is_multiple_of(128) && self.in_window(now) {
            self.sample_occupancy();
        }
        self.watchdog(now);
        self.cycle += 1;
    }

    /// Periodic per-VC occupancy sampling (the §III-D sensing signal).
    fn sample_occupancy(&mut self) {
        let prof = &mut self.metrics.vc_profile;
        if prof.samples == 0 {
            for class in [LinkClass::Local, LinkClass::Global] {
                let i = class.index();
                prof.sums[i] = vec![0; self.cfg.vcs_for_class(class)];
                prof.ports[i] = (self.port_class.iter().filter(|&&c| c == class).count()
                    * self.routers.len()) as u64;
            }
        }
        prof.samples += 1;
        for router in &self.routers {
            for (port, bank) in router.inputs.iter().enumerate() {
                let sums = &mut prof.sums[self.port_class[port].index()];
                for vc in 0..bank.vcs() {
                    sums[vc] += bank.occ.occupancy(vc) as u64;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Phase 1: arrivals
    // ------------------------------------------------------------------

    fn deliver(&mut self, now: u64) {
        let pp = self.pp;
        for r in 0..self.routers.len() {
            // Packet arrivals on each input port (link owned by upstream).
            for ip in 0..pp {
                let Some((ur, up)) = self.adj[r * pp + ip] else {
                    continue;
                };
                let lid = ur as usize * pp + up as usize;
                while let Some(f) = self.links[lid].pop_arrived(now) {
                    let mut pkt = f.packet;
                    pkt.head_arrival = f.head_arrival;
                    pkt.tail_arrival = f.tail_arrival;
                    self.routers[r].inputs[ip].push(f.vc as usize, pkt);
                    self.last_progress = now;
                }
            }
            // Credit arrivals for each output port (stored on our own link).
            for op in 0..pp {
                if self.adj[r * pp + op].is_none() {
                    continue;
                }
                let lid = r * pp + op;
                while let Some(c) = self.links[lid].pop_credit(now) {
                    self.routers[r].out_credit[op].remove(c.vc as usize, c.phits, c.class);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Phase 2: scheduled releases
    // ------------------------------------------------------------------

    fn process_pending(&mut self, now: u64) {
        let pp = self.pp;
        for router in &mut self.routers {
            let mut i = 0;
            while i < router.pending.len() {
                let due = match router.pending[i] {
                    Pending::Input { at, .. } => at <= now,
                    Pending::OutBuf { at, .. } => at <= now,
                };
                if !due {
                    i += 1;
                    continue;
                }
                match router.pending.swap_remove(i) {
                    Pending::Input {
                        in_idx,
                        vc,
                        phits,
                        class,
                        ..
                    } => {
                        let in_idx = in_idx as usize;
                        if in_idx < pp {
                            router.inputs[in_idx].release(vc as usize, phits, class);
                        } else {
                            router.inj[in_idx - pp].release(vc as usize, phits, class);
                        }
                    }
                    Pending::OutBuf { port, phits, .. } => {
                        router.out_occ[port as usize] -= phits;
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Phase 3: traffic generation
    // ------------------------------------------------------------------

    fn generate(&mut self, now: u64) {
        let size = self.cfg.packet_size;
        let reactive = self.cfg.workload.reactive;
        let in_window = self.in_window(now);
        for n in 0..self.gens.len() {
            // New requests from the pattern generator.
            if let Some(dst) = self.gens[n].next_packet(now) {
                if in_window {
                    self.metrics.generated_packets += 1;
                    self.metrics.generated_phits += size as u64;
                }
                let vc = if reactive {
                    0
                } else {
                    let v = self.inj_rr[n];
                    self.inj_rr[n] = (v + 1) % self.cfg.injection_vcs as u8;
                    v
                } as usize;
                let r = self.topo.router_of_node(n);
                let local = n - r * self.pn;
                if self.routers[r].inj[local].occ.can_accept(vc, size) {
                    let pkt = self.new_packet(n as u32, dst as u32, MessageClass::Request, now);
                    self.routers[r].inj[local].push(vc, pkt);
                    self.in_flight += 1;
                    self.last_progress = now;
                } else if in_window {
                    self.metrics.dropped_packets += 1;
                }
            }
            // Staged replies enter the reply injection VC when it has room.
            while let Some(&(dst, ready)) = self.staging[n].front() {
                if ready > now {
                    break;
                }
                let r = self.topo.router_of_node(n);
                let local = n - r * self.pn;
                if !self.routers[r].inj[local].occ.can_accept(1, size) {
                    break;
                }
                self.staging[n].pop_front();
                if in_window {
                    self.metrics.generated_packets += 1;
                    self.metrics.generated_phits += size as u64;
                }
                let pkt = self.new_packet(n as u32, dst, MessageClass::Reply, now);
                self.routers[r].inj[local].push(1, pkt);
                self.in_flight += 1;
                self.last_progress = now;
            }
        }
    }

    fn new_packet(&mut self, src: u32, dst: u32, class: MessageClass, now: u64) -> Packet {
        let id = self.next_id;
        self.next_id += 1;
        Packet {
            id,
            src,
            dst,
            dst_router: self.topo.router_of_node(dst as usize) as u32,
            class,
            size: self.cfg.packet_size,
            gen_cycle: now,
            head_arrival: now,
            tail_arrival: now,
            position: None,
            plan: PlannedPath::empty(),
            min_routed: true,
            derouted: false,
            buffered_class: CreditClass::MinRouted,
            planned: false,
            par_evaluated: false,
            opp_blocked: 0,
            hops: 0,
            reverts: 0,
        }
    }

    // ------------------------------------------------------------------
    // Phase 4: route planning at injection heads
    // ------------------------------------------------------------------

    fn plan_heads(&mut self, _now: u64) {
        let pp = self.pp;
        for r in 0..self.routers.len() {
            for local in 0..self.pn {
                for vc in 0..self.cfg.injection_vcs {
                    // Split borrows: the head lives in `inj`, congestion
                    // state in `out_credit`/`rng`/boards.
                    let router = &mut self.routers[r];
                    let Some(head) = router.inj[local].queues[vc].front() else {
                        continue;
                    };
                    if head.planned {
                        continue;
                    }
                    let (plan, min_routed) = plan_route(
                        &self.cfg,
                        &*self.topo,
                        self.family,
                        &self.adj,
                        &self.port_class,
                        &self.global_ports,
                        &self.boards,
                        &router.out_credit,
                        &mut router.rng,
                        r,
                        head.dst_router as usize,
                        head.class,
                    );
                    let head = router.inj[local].queues[vc].front_mut().expect("head");
                    head.plan = plan;
                    head.min_routed = min_routed;
                    head.derouted = !min_routed;
                    head.planned = true;
                }
            }
        }
        let _ = pp;
    }

    // ------------------------------------------------------------------
    // Phase 5: allocation
    // ------------------------------------------------------------------

    fn allocate(&mut self, now: u64) {
        let pp = self.pp;
        let pn = self.pn;
        let n_in = pp + pn;
        let mut cand: Vec<Option<(u8, Decision)>> = vec![None; n_in];

        for r in 0..self.routers.len() {
            cand.iter_mut().for_each(|c| *c = None);
            // Stage 1: each input port nominates one VC.
            for in_idx in 0..n_in {
                if self.routers[r].in_busy[in_idx] > now {
                    continue;
                }
                let vcs = if in_idx < pp {
                    self.routers[r].inputs[in_idx].vcs()
                } else {
                    self.cfg.injection_vcs
                };
                let mut reqs: [Option<Decision>; 16] = [None; 16];
                for vc in 0..vcs.min(16) {
                    reqs[vc] = self.evaluate_head(r, in_idx, vc, now);
                }
                let router = &mut self.routers[r];
                if let Some(vc) = router.in_arb[in_idx].grant(|v| reqs[v].is_some()) {
                    cand[in_idx] = Some((vc as u8, reqs[vc].expect("granted request")));
                }
            }
            // Stage 1.5: ejection grants (consumption channels).
            for in_idx in 0..n_in {
                if let Some((vc, Decision::Eject { channel })) = cand[in_idx] {
                    cand[in_idx] = None;
                    if self.routers[r].eject_busy[channel as usize] <= now {
                        self.grant_eject(r, in_idx, vc as usize, channel as usize, now);
                    }
                }
            }
            // Stage 2: output-port arbitration among forwarding candidates.
            for port in 0..pp {
                let winner = self.routers[r].out_arb[port].grant(|in_idx| {
                    matches!(cand[in_idx], Some((_, Decision::Forward { port: p, .. })) if p as usize == port)
                });
                if let Some(in_idx) = winner {
                    let (vc, d) = cand[in_idx].take().expect("winner has candidate");
                    if let Decision::Forward {
                        port,
                        vc: out_vc,
                        pos,
                    } = d
                    {
                        self.grant_forward(r, in_idx, vc as usize, port, out_vc, pos, now);
                    }
                }
            }
        }
    }

    /// Evaluate the head of one input VC; may mutate the packet (planning
    /// reversion, PAR divert).
    fn evaluate_head(&mut self, r: usize, in_idx: usize, vc: usize, now: u64) -> Option<Decision> {
        let pp = self.pp;
        let size = self.cfg.packet_size;
        let is_injection = in_idx >= pp;

        // Pre-read immutable facts about the head.
        {
            let router = &self.routers[r];
            let head = if is_injection {
                router.inj[in_idx - pp].head(vc)?
            } else {
                router.inputs[in_idx].head(vc)?
            };
            if head.head_arrival > now || !head.planned {
                return None;
            }
        }

        // PAR in-transit divert evaluation (may replace the plan).
        if self.cfg.routing == RoutingMode::Par && !is_injection {
            self.maybe_par_divert(r, in_idx, vc, now);
        }

        // Forwarding evaluation with at most one reversion.
        let mut reverted = false;
        loop {
            let router = &self.routers[r];
            let head = if is_injection {
                router.inj[in_idx - pp].head(vc)?
            } else {
                router.inputs[in_idx].head(vc)?
            };
            // A done plan means ejection (possibly after a reversion of a
            // detour that passed through the destination router).
            if head.plan.is_done() {
                debug_assert_eq!(head.dst_router as usize, r, "done plan away from dst");
                // Protocol coupling: a node whose reply-generation queue is
                // full cannot consume further requests until replies drain.
                if self.cfg.workload.reactive
                    && head.class == MessageClass::Request
                    && self.staging[head.dst as usize].len() >= self.cfg.reply_queue_packets
                {
                    return None;
                }
                let local = head.dst as usize - r * self.pn;
                let channel = (local * 2 + head.class.index()) as u16;
                return if router.eject_busy[channel as usize] <= now {
                    Some(Decision::Eject { channel })
                } else {
                    None
                };
            }
            let hop = *head.plan.next_hop().expect("plan not done");
            let dst_r = head.dst_router as usize;
            let port = hop.port as usize;
            let pclass = self.port_class[port];
            // Output-side structural checks.
            if router.out_xbar[port] > now || router.out_occ[port] + size > self.cfg.buffers.output
            {
                return None;
            }
            let credit = &router.out_credit[port];
            match self.cfg.policy {
                VcPolicy::Baseline => {
                    let reference: &[LinkClass] = match self.family {
                        NetworkFamily::Dragonfly => self.cfg.routing.dragonfly_reference(),
                        NetworkFamily::Diameter2 => {
                            // Generic references are all-Local; slots map 1:1.
                            &REF_GENERIC[..self.cfg.routing.generic_reference(2).len()]
                        }
                    };
                    let (bclass, bvc) =
                        baseline_vc(&self.arr, head.class, reference, hop.slot as usize);
                    debug_assert_eq!(bclass, pclass, "reference class mismatch");
                    if credit.can_accept(bvc, size) {
                        let pos = self.arr.position(pclass, bvc).expect("baseline vc") as u16;
                        return Some(Decision::Forward {
                            port: port as u16,
                            vc: bvc as u8,
                            pos,
                        });
                    }
                    return None;
                }
                VcPolicy::FlexVc => {
                    let mut planned: [LinkClass; 8] = [LinkClass::Local; 8];
                    let rem = head.plan.remaining();
                    let nrem = rem.len();
                    for (i, h) in rem.iter().enumerate() {
                        planned[i] = h.class;
                    }
                    // Exact per-hop escapes: the minimal continuation from
                    // every router along the remaining plan (needed by the
                    // opportunistic landing lookahead).
                    let mut esc_store: [flexvc_topology::ClassPath; 8] =
                        [flexvc_topology::ClassPath::new(); 8];
                    let mut cur_router = r;
                    for (i, h) in rem.iter().enumerate() {
                        let next = self.adj[cur_router * pp + h.port as usize]
                            .expect("routed port wired")
                            .0 as usize;
                        esc_store[i] = self.topo.min_classes(next, head.dst_router as usize);
                        cur_router = next;
                    }
                    let escapes: [&[LinkClass]; 8] = std::array::from_fn(|i| &esc_store[i][..]);
                    let opts = flexvc_options_lookahead(
                        &self.arr,
                        head.class,
                        head.pos(),
                        &planned[..nrem],
                        &escapes[..nrem],
                    );
                    if let Some(opts) = opts {
                        let mut cands: [(usize, usize); 16] = [(0, 0); 16];
                        let mut nc = 0;
                        for v in opts.lo..=opts.hi {
                            if credit.can_accept(v, size) {
                                cands[nc] = (v, credit.free_for(v) as usize);
                                nc += 1;
                            }
                        }
                        if nc > 0 {
                            let router = &mut self.routers[r];
                            let pick = self
                                .cfg
                                .selection
                                .pick(&cands[..nc], &mut router.rng)
                                .expect("non-empty");
                            let pos = self.arr.position(pclass, pick).expect("picked vc") as u16;
                            return Some(Decision::Forward {
                                port: port as u16,
                                vc: pick as u8,
                                pos,
                            });
                        }
                        if opts.kind == HopKind::Safe {
                            return None; // blocked safe hop: wait.
                        }
                        // Opportunistic hop without downstream space: wait
                        // out the configured patience, then revert.
                        let patience = self.cfg.revert_patience;
                        let router = &mut self.routers[r];
                        let head = if is_injection {
                            router.inj[in_idx - pp].head_mut(vc)?
                        } else {
                            router.inputs[in_idx].head_mut(vc)?
                        };
                        if head.opp_blocked < patience {
                            head.opp_blocked += 1;
                            return None;
                        }
                        head.opp_blocked = 0;
                    }
                    // Revert to the escape path (minimal from here).
                    if reverted {
                        debug_assert!(false, "escape path not safe after reversion");
                        return None;
                    }
                    reverted = true;
                    let plan = min_plan(&*self.topo, r, dst_r);
                    let router = &mut self.routers[r];
                    let head = if is_injection {
                        router.inj[in_idx - pp].head_mut(vc)?
                    } else {
                        router.inputs[in_idx].head_mut(vc)?
                    };
                    head.plan = plan;
                    head.min_routed = true;
                    head.reverts += 1;
                    continue;
                }
            }
        }
    }

    /// PAR: after the first minimal hop, decide whether to divert to a
    /// Valiant path based on local congestion toward the next minimal hop.
    fn maybe_par_divert(&mut self, r: usize, in_idx: usize, vc: usize, _now: u64) {
        let topo = Arc::clone(&self.topo);
        let router = &mut self.routers[r];
        let Some(head) = router.inputs[in_idx].head_mut(vc) else {
            return;
        };
        // PAR diverts exactly at the classic decision point: after one
        // minimal *local* hop in the source group, before committing to the
        // global hop (the divert slots l1.. lie between l0 and g2 in the
        // reference; diverting after a global hop would descend positions).
        if head.par_evaluated
            || !head.min_routed
            || head.hops != 1
            || head.plan.is_done()
            || self.port_class[in_idx] != LinkClass::Local
            || head.plan.next_hop().map(|h| h.class) != Some(LinkClass::Global)
        {
            return;
        }
        head.par_evaluated = true;
        let dst_r = head.dst_router as usize;
        let next = *head.plan.next_hop().expect("plan not done");
        let q_min = router.out_credit[next.port as usize].total();
        let via = router.rng.gen_range(0..topo.num_routers());
        let divert = par_divert_plan(&*topo, self.family, r, via, dst_r);
        let Some(first) = divert.next_hop() else {
            return;
        };
        let q_val = router.out_credit[first.port as usize].total();
        let t_phits = self.cfg.sensing.threshold * self.cfg.packet_size;
        if choose_nonminimal(false, q_min, q_val, t_phits) {
            head.plan = divert;
            head.min_routed = false;
            head.derouted = true;
        }
    }

    #[allow(clippy::too_many_arguments)] // a grant is naturally 7-tuple-shaped
    fn grant_forward(
        &mut self,
        r: usize,
        in_idx: usize,
        vc_in: usize,
        port: u16,
        out_vc: u8,
        pos: u16,
        now: u64,
    ) {
        let pp = self.pp;
        let size = self.cfg.packet_size;
        let dur = size.div_ceil(self.cfg.speedup);
        let router = &mut self.routers[r];
        let mut pkt = if in_idx < pp {
            router.inputs[in_idx].pop(vc_in)
        } else {
            router.inj[in_idx - pp].pop(vc_in)
        };
        let released_class = pkt.buffered_class;
        // Injection transfers serialize at link rate (the node-to-router
        // channel); network transfers run at crossbar speed, bounded by the
        // packet's own tail arrival (cut-through chaining).
        let t_c = if in_idx < pp {
            (now + dur as u64).max(pkt.tail_arrival + 1)
        } else {
            now + size as u64
        };
        router.in_busy[in_idx] = t_c;
        router.out_xbar[port as usize] = t_c;
        router.out_credit[port as usize].add(out_vc as usize, size, pkt.credit_class());
        router.out_occ[port as usize] += size;
        router.pending.push(Pending::Input {
            at: t_c,
            in_idx: in_idx as u32,
            vc: vc_in as u8,
            phits: size,
            class: released_class,
        });
        pkt.position = Some(pos);
        pkt.plan.advance();
        pkt.hops += 1;
        router.out_queue[port as usize].push_back(OutPkt {
            pkt,
            ready_at: now + self.cfg.pipeline_latency as u64,
            vc: out_vc,
        });
        // Return the credit for the buffer we just vacated.
        if in_idx < pp {
            if let Some((ur, up)) = self.adj[r * pp + in_idx] {
                let lat = self.latency_of(self.port_class[in_idx]);
                self.links[ur as usize * pp + up as usize].send_credit(
                    t_c,
                    lat,
                    vc_in as u8,
                    size,
                    released_class,
                );
            }
        }
        self.last_progress = now;
    }

    fn grant_eject(&mut self, r: usize, in_idx: usize, vc_in: usize, channel: usize, now: u64) {
        let pp = self.pp;
        let size = self.cfg.packet_size;
        let router = &mut self.routers[r];
        let pkt = if in_idx < pp {
            router.inputs[in_idx].pop(vc_in)
        } else {
            router.inj[in_idx - pp].pop(vc_in)
        };
        let released_class = pkt.buffered_class;
        let done = now + size as u64; // 1 phit/cycle consumption
        let t_c = done.max(pkt.tail_arrival + 1);
        router.in_busy[in_idx] = t_c;
        router.eject_busy[channel] = t_c;
        router.pending.push(Pending::Input {
            at: t_c,
            in_idx: in_idx as u32,
            vc: vc_in as u8,
            phits: size,
            class: released_class,
        });
        if in_idx < pp {
            if let Some((ur, up)) = self.adj[r * pp + in_idx] {
                let lat = self.latency_of(self.port_class[in_idx]);
                self.links[ur as usize * pp + up as usize].send_credit(
                    t_c,
                    lat,
                    vc_in as u8,
                    size,
                    released_class,
                );
            }
        }
        self.in_flight -= 1;
        self.last_progress = now;
        if self.in_window(now) {
            self.metrics.consume(
                pkt.class,
                size,
                done - pkt.gen_cycle,
                pkt.hops,
                !pkt.derouted,
                pkt.reverts,
            );
        }
        // Reactive: the destination answers with a reply once the request
        // has fully arrived.
        if self.cfg.workload.reactive && pkt.class == MessageClass::Request {
            self.staging[pkt.dst as usize].push_back((pkt.src, done));
        }
    }

    // ------------------------------------------------------------------
    // Phase 6: output serialization
    // ------------------------------------------------------------------

    fn serialize_outputs(&mut self, now: u64) {
        let pp = self.pp;
        for r in 0..self.routers.len() {
            for port in 0..pp {
                let lid = r * pp + port;
                if !self.links[lid].is_free(now) {
                    continue;
                }
                let lat = self.latency_of(self.port_class[port]);
                let router = &mut self.routers[r];
                let Some(front) = router.out_queue[port].front() else {
                    continue;
                };
                if front.ready_at > now {
                    continue;
                }
                let out = router.out_queue[port].pop_front().expect("front exists");
                let size = out.pkt.size;
                self.links[lid].transmit(now, lat, out.vc, out.pkt);
                router.pending.push(Pending::OutBuf {
                    at: now + size as u64,
                    port: port as u16,
                    phits: size,
                });
            }
        }
    }

    // ------------------------------------------------------------------
    // Phase 7: Piggyback sensing
    // ------------------------------------------------------------------

    fn update_sensing(&mut self, now: u64) {
        let rpg = self.topo.routers_per_group();
        let t_phits = self.cfg.sensing.threshold * self.cfg.packet_size;
        let min_cred = self.cfg.sensing.min_cred;
        let classes: &[MessageClass] = if self.cfg.workload.reactive {
            &[MessageClass::Request, MessageClass::Reply]
        } else {
            &[MessageClass::Request]
        };
        for r in 0..self.routers.len() {
            let group = self.topo.group_of_router(r);
            let local = r - group * rpg;
            for &class in classes {
                let occs: Vec<u32> = self
                    .global_ports
                    .iter()
                    .map(|&gp| {
                        let credit = &self.routers[r].out_credit[gp];
                        match self.cfg.sensing.mode {
                            SensingMode::PerPort => {
                                if min_cred {
                                    credit.split_total().min_occupancy()
                                } else {
                                    credit.total()
                                }
                            }
                            SensingMode::PerVc => {
                                let vc = match class {
                                    MessageClass::Request => 0,
                                    MessageClass::Reply => {
                                        self.arr.vc_count_request(LinkClass::Global)
                                    }
                                };
                                if min_cred {
                                    credit.split(vc).min_occupancy()
                                } else {
                                    credit.occupancy(vc)
                                }
                            }
                        }
                    })
                    .collect();
                let flags = saturated_flags(&occs, t_phits);
                for (i, &sat) in flags.iter().enumerate() {
                    self.boards[group].publish(local, i, class, sat);
                }
            }
        }
        for b in &mut self.boards {
            b.tick(now);
        }
    }

    // ------------------------------------------------------------------
    // Phase 8: watchdog
    // ------------------------------------------------------------------

    fn watchdog(&mut self, now: u64) {
        if self.in_flight > 0 && now.saturating_sub(self.last_progress) > self.cfg.watchdog {
            self.metrics.deadlocked = true;
        }
    }
}

/// All-Local slot reference for generic networks (max PAR length 5).
static REF_GENERIC: [LinkClass; 5] = [LinkClass::Local; 5];

/// Route planning at injection (free function for borrow hygiene).
#[allow(clippy::too_many_arguments)]
fn plan_route(
    cfg: &SimConfig,
    topo: &dyn Topology,
    family: NetworkFamily,
    adj: &[Option<(u32, u16)>],
    port_class: &[LinkClass],
    global_ports: &[usize],
    boards: &[GroupBoard],
    out_credit: &[Occupancy],
    rng: &mut SmallRng,
    r: usize,
    dst_r: usize,
    class: MessageClass,
) -> (PlannedPath, bool) {
    if dst_r == r {
        return (PlannedPath::empty(), true);
    }
    match cfg.routing {
        RoutingMode::Min => (min_plan(topo, r, dst_r), true),
        RoutingMode::Valiant => {
            let via = rng.gen_range(0..topo.num_routers());
            (valiant_plan(topo, family, r, via, dst_r), false)
        }
        RoutingMode::Par => (par_min_plan(topo, family, r, dst_r), true),
        RoutingMode::Piggyback => {
            let min_route = topo.min_route(r, dst_r);
            // Same-group destinations route minimally.
            if topo.group_of_router(r) == topo.group_of_router(dst_r) {
                return (PlannedPath::from_route(&min_route), true);
            }
            let pp = topo.num_ports();
            let min_cred = cfg.sensing.min_cred;
            let metric = |occ: &Occupancy| -> u32 {
                if min_cred {
                    occ.split_total().min_occupancy()
                } else {
                    occ.total()
                }
            };
            // Walk the minimal route to the first global channel and read
            // its (piggybacked) saturation flag.
            let mut sat = false;
            let mut cur = r;
            for hop in &min_route {
                if port_class[hop.port as usize] == LinkClass::Global {
                    let rpg = topo.routers_per_group();
                    let group = topo.group_of_router(cur);
                    let local = cur - group * rpg;
                    let gp_off = global_ports
                        .iter()
                        .position(|&g| g == hop.port as usize)
                        .expect("global port");
                    sat = boards[group].read(local, gp_off, class);
                    break;
                }
                cur = adj[cur * pp + hop.port as usize].expect("wired").0 as usize;
            }
            let q_min = metric(&out_credit[min_route[0].port as usize]);
            let via = rng.gen_range(0..topo.num_routers());
            let val = valiant_plan(topo, family, r, via, dst_r);
            let q_val = val
                .next_hop()
                .map(|h| metric(&out_credit[h.port as usize]))
                .unwrap_or(u32::MAX);
            let t_phits = cfg.sensing.threshold * cfg.packet_size;
            if choose_nonminimal(sat, q_min, q_val, t_phits) && val.next_hop().is_some() {
                (val, false)
            } else {
                (PlannedPath::from_route(&min_route), true)
            }
        }
    }
}
