//! The cycle-accurate network engine.
//!
//! One [`Network`] owns every router, link, and node generator of a
//! simulation. Each cycle proceeds in phases:
//!
//! 1. **Deliver** — packets whose head phit reaches a router enter its input
//!    VC buffers; returning credits update the upstream mirrors.
//! 2. **Release** — scheduled input/output buffer releases take effect.
//! 3. **Generate** — node generators produce new packets into injection
//!    queues (dropped when full); consumed requests spawn staged replies.
//! 4. **Plan** — unplanned injection-queue heads receive their route
//!    (adaptive decisions use fresh congestion state).
//! 5. **Allocate** ×speedup — iterative input-first separable allocation:
//!    per input port a round-robin arbiter picks one requesting VC, per
//!    output port another arbiter picks one winning input; grants move
//!    packets toward output buffers through a fixed-latency pipeline.
//!    Ejection requests are granted against per-(node, class) consumption
//!    channels.
//! 6. **Serialize** — output-buffer heads start on free links at one phit
//!    per cycle.
//! 7. **Sense** — Piggyback saturation flags are recomputed and published.
//! 8. **Watchdog** — genuine deadlock (no movement with packets stuck) is
//!    detected and flagged rather than hanging the process.
//!
//! Virtual cut-through is modelled with packet-granularity occupancy and
//! phit-accurate timing: a packet may be forwarded as soon as its head has
//! arrived, a hop is only granted when the downstream VC can hold the whole
//! packet, and transfers respect both crossbar bandwidth
//! (`speedup` phits/cycle) and the arrival of the packet's own tail.
//!
//! # Active-set scheduling
//!
//! The phases above define *what* happens each cycle; since the active-set
//! rewrite they no longer sweep every router × port × VC to find it.
//! Instead the engine maintains behavior-neutral worklists:
//!
//! * **timing wheels** for link events — packet heads and credits are
//!   scheduled at their arrival cycle when they enter a link, so `deliver`
//!   touches exactly the links with something due *now*;
//! * **router worklists** for allocation (`queued > 0`), route planning
//!   (injection pushes/pops may expose an unplanned head), and scheduled
//!   releases (`pending` non-empty);
//! * **port worklists** for output serialization (non-empty output queue)
//!   and Piggyback sensing (global-port credit state changed since the
//!   last publish).
//!
//! Every worklist is conservative (a listed router may turn out to have no
//! eligible work — identical to the old sweep visiting it) and complete
//! (state only becomes eligible through events that mark the list), and
//! iteration order across routers is independent by construction: routers
//! only touch their own state, their own links, and credits of upstream
//! links no other router writes in the same phase. The engine is therefore
//! *bit-identical* to the full-sweep original — proven by
//! `tests/engine_equivalence.rs` against recorded pre-refactor snapshots —
//! while skipping idle state entirely, which is what makes paper-scale
//! (h = 8, 2,064 routers) Dragonfly runs tractable.

#![allow(clippy::needless_range_loop)] // parallel arrays indexed by port/vc
#![allow(clippy::type_complexity)]

use crate::arbiter::RrArbiter;
use crate::bank::{BufferBank, Occupancy};
use crate::config::{BufferOrg, SensingMode, SimConfig};
use crate::link::LinkState;
use crate::metrics::{Metrics, SimResult};
use crate::packet::{Packet, PlannedPath, MAX_PLAN};
use crate::plan::{min_plan, RoutePolicy, SenseView};
use crate::sensing::{saturated_flags_into, GroupBoard};
use crate::shard::{BoundaryEvent, BoundaryPayload};
use flexvc_core::classify::NetworkFamily;
use flexvc_core::policy::{baseline_vc, flexvc_options_lookahead};
use flexvc_core::{
    Arrangement, CreditClass, HopKind, LinkClass, MessageClass, TrafficClass, VcPolicy,
};
use flexvc_topology::Topology;
use flexvc_traffic::flow::{random_permutation, FlowPattern};
use flexvc_traffic::generator::NodeSpace;
use flexvc_traffic::NodeTraffic;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::sync::Arc;

/// A power-of-two timing wheel mapping future cycles to link ids with an
/// event due. Slots are reused (taken, drained, put back) so the steady
/// state allocates nothing. Events may be scheduled at most `len` cycles
/// ahead — the wheel is sized from the worst-case link event horizon
/// (`max latency + packet size + slack`) at construction.
#[derive(Debug)]
struct Wheel<T> {
    slots: Vec<Vec<T>>,
    mask: u64,
}

impl<T> Wheel<T> {
    fn new(horizon: u64) -> Self {
        let n = horizon.max(4).next_power_of_two();
        Wheel {
            slots: (0..n).map(|_| Vec::new()).collect(),
            mask: n - 1,
        }
    }

    /// Schedule an event for cycle `at` (clamped to `now + 1`: an event
    /// created during cycle `now` is observable at the next matching phase
    /// at the earliest, exactly like the original per-cycle sweep).
    #[inline]
    fn schedule(&mut self, now: u64, at: u64, ev: T) {
        let at = at.max(now + 1);
        debug_assert!(at - now <= self.mask + 1, "event beyond wheel horizon");
        self.slots[(at & self.mask) as usize].push(ev);
    }

    /// Take the slot due at `now` (return it with [`Wheel::put_back`]).
    #[inline]
    fn take(&mut self, now: u64) -> Vec<T> {
        std::mem::take(&mut self.slots[(now & self.mask) as usize])
    }

    /// Return a drained slot buffer, keeping its capacity.
    #[inline]
    fn put_back(&mut self, now: u64, mut slot: Vec<T>) {
        slot.clear();
        self.slots[(now & self.mask) as usize] = slot;
    }
}

/// Append `id` to a worklist unless already a member.
#[inline]
fn mark(list: &mut Vec<u32>, in_set: &mut [bool], id: usize) {
    if !in_set[id] {
        in_set[id] = true;
        list.push(id as u32);
    }
}

/// A packet queued at an output buffer awaiting link serialization.
#[derive(Debug)]
struct OutPkt {
    pkt: Packet,
    /// Head reaches the output buffer after the router pipeline.
    ready_at: u64,
    /// Landing VC at the downstream input port.
    vc: u8,
}

/// Scheduled buffer releases.
#[derive(Debug, Clone, Copy)]
enum Pending {
    /// Input VC occupancy release at transfer completion.
    Input {
        at: u64,
        in_idx: u32,
        vc: u8,
        phits: u32,
        class: CreditClass,
    },
    /// Output buffer release when the tail leaves on the link.
    OutBuf { at: u64, port: u16, phits: u32 },
}

/// Per-router state.
struct Router {
    /// Network input banks (one per network port).
    inputs: Vec<BufferBank>,
    /// Injection banks (one per attached node).
    inj: Vec<BufferBank>,
    /// Per-input-port VC arbiters.
    in_arb: Vec<RrArbiter>,
    /// Per-output-port arbiters over the unified input space.
    out_arb: Vec<RrArbiter>,
    /// Credit mirrors of the downstream input banks per network output port.
    out_credit: Vec<Occupancy>,
    /// Output queues awaiting serialization.
    out_queue: Vec<VecDeque<OutPkt>>,
    /// Router-local RNG (Valiant picks, random VC selection).
    rng: SmallRng,
}

/// A forwarding decision for an input VC head.
#[derive(Debug, Clone, Copy)]
enum Decision {
    Forward { port: u16, vc: u8, pos: u16 },
    Eject { channel: u16 },
}

/// Classification of a head-evaluation rejection by its *first failing
/// gate* — the only gate whose state change can alter the outcome, since
/// every gate behind it was never consulted and every gate moves
/// monotonically against acceptance between events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvalBlock {
    /// Not classifiable (unexpected empty VC, or a gate with no tracked
    /// improvement event): never memoized.
    Never,
    /// Time-pure gate (crossbar or ejector busy-until, head phit not yet
    /// arrived, unplanned head awaiting next cycle's planning pass, reply
    /// queue full until next cycle's generation pass): `None` is
    /// guaranteed strictly before the deadline.
    Until(u64),
    /// Event gate on an output port (credits exhausted or output buffer
    /// full): `None` is guaranteed while the port's epoch is unchanged.
    Event(u16),
}

/// The simulation network.
pub struct Network {
    cfg: SimConfig,
    topo: Arc<dyn Topology>,
    /// Classification family (read by the debug-build baseline-table
    /// cross-check; release builds use the precomputed table alone).
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    family: NetworkFamily,
    arr: Arrangement,
    /// The per-hop routing-decision pipeline: injection planning and
    /// in-transit decisions (PAR / DAL / adaptive copies) all route
    /// through this one object — the engine has no mode special cases.
    policy: RoutePolicy,
    /// Cached [`RoutePolicy::decides_in_transit`] for the allocator's hot
    /// path (also disables the evaluation-skip memo, whose soundness
    /// argument assumes evaluations do not mutate state).
    transit_decisions: bool,
    /// Cached [`RoutePolicy::is_static_min`]: injection planning bypasses
    /// the policy object (no `SenseView` setup, no dispatch) and calls
    /// [`min_plan`] directly — the monomorphized MIN fast path.
    fast_min: bool,
    /// Network ports per router.
    pp: usize,
    /// Nodes per router.
    pn: usize,
    /// Flat adjacency: `r*pp + port -> (router, port)`.
    adj: Vec<Option<(u32, u16)>>,
    /// First node id of each router ([`Topology::node_base`], flattened):
    /// `r * pn` on uniformly-populated topologies; Dragonfly+ spines carry
    /// no nodes and leaves are numbered group-major.
    node_base: Vec<u32>,
    /// Class per port index (uniform across routers for our topologies).
    port_class: Vec<LinkClass>,
    /// Ports whose occupancy Piggyback sensing publishes: the global ports
    /// of a Dragonfly, or *every* network port on single-class topologies
    /// (flattened butterfly, HyperX — there is no global/local split to
    /// narrow the signal to).
    sense_ports: Vec<usize>,
    /// `true` when every port is a sense port (single-class topology).
    sense_all: bool,
    routers: Vec<Router>,
    links: Vec<LinkState>,
    gens: Vec<NodeTraffic>,
    /// Per-node staged replies: `(destination, ready_at)`.
    staging: Vec<VecDeque<(u32, u64)>>,
    /// Per-node injection VC round-robin (non-reactive traffic).
    inj_rr: Vec<u8>,
    /// Per-group Piggyback boards (empty unless PB routing).
    boards: Vec<GroupBoard>,
    metrics: Metrics,
    cycle: u64,
    next_id: u64,
    offered: f64,
    in_flight: i64,
    last_progress: u64,
    /// `true` while [`Network::drain`] runs: pattern generators stop
    /// producing new requests (staged replies still flush, so reactive
    /// traffic conservation closes too).
    draining: bool,
    /// Routers this engine instance steps (the full range unless it is one
    /// shard of a [`crate::shard::ShardedNetwork`]). Non-owned routers keep
    /// their slots in every flat pool so link ids and adjacency stay global,
    /// but their buffers are never touched and carry no preallocation.
    owned_r: std::ops::Range<u32>,
    /// Nodes attached to owned routers (contiguous because node numbering
    /// is router-major; see `node_base`).
    owned_n: std::ops::Range<u32>,
    /// `true` when this instance is a shard: effects that cross the
    /// ownership boundary (packet transmits, credit returns, PB board
    /// publishes) are emitted into `outbox` instead of applied locally.
    sharded: bool,
    /// Boundary events emitted this cycle, in emission order (drained and
    /// routed to their owning shard by the shard driver each cycle).
    outbox: Vec<BoundaryEvent>,
    // --- active-set scheduling state (behavior-neutral bookkeeping) ---
    /// Per-router queued-packet count (network input + injection queues).
    queued: Vec<u32>,
    /// Routers with queued packets: the allocation worklist.
    alloc_list: Vec<u32>,
    alloc_in: Vec<bool>,
    /// Routers whose injection banks may hold an unplanned head.
    plan_list: Vec<u32>,
    plan_in: Vec<bool>,
    /// Output ports (flat link ids) with queued output packets.
    out_list: Vec<u32>,
    out_in: Vec<bool>,
    /// Routers whose global-port credit state changed since the last
    /// Piggyback publish (empty unless PB routing).
    sense_list: Vec<u32>,
    sense_in: Vec<bool>,
    /// Timing wheel of links with a packet head arriving at a cycle.
    pkt_wheel: Wheel<u32>,
    /// Timing wheel of links with a credit arriving at a cycle.
    cred_wheel: Wheel<u32>,
    /// Last credit-arrival cycle scheduled per link (flat link id): credit
    /// returns are batched per link per cycle, so a link already scheduled
    /// for cycle `at` skips the duplicate wheel push — `deliver` drains
    /// every credit due at `at` from one wheel entry. Sound because credit
    /// departures (and hence arrivals) are monotonic per link, and a
    /// duplicate entry would drain nothing anyway.
    cred_sched: Vec<u64>,
    /// Debug-build shadow of `cred_wheel` *without* the per-link batching:
    /// one entry per credit event. `deliver` cross-checks that the batched
    /// drain processes exactly the credits the per-event schedule would
    /// have, cycle by cycle.
    #[cfg(debug_assertions)]
    shadow_cred: Wheel<u32>,
    /// Timing wheel of scheduled buffer releases `(router, release)` —
    /// releases are commutative occupancy arithmetic, so wheel order is
    /// interchangeable with the old per-router scan order.
    rel_wheel: Wheel<(u32, Pending)>,
    /// Allocation candidate scratch (one entry per unified input).
    cand: Vec<Option<(u8, Decision)>>,
    /// Input indices holding a candidate this round (selective clearing).
    cand_set: Vec<u16>,
    /// Output ports with a forwarding candidate this round.
    ports_scratch: Vec<u16>,
    /// Per-router bitmask of unified inputs with queued packets (valid when
    /// `n_in <= 64`; stage 1 then visits only occupied ports).
    in_mask: Vec<u64>,
    /// Per-(router, input) bitmask of VCs (< 16) with queued packets —
    /// the allocator's VC-level skip, flat-indexed `r * n_in + in_idx`.
    vc_mask: Vec<u16>,
    /// Input feed busy-until, flat-indexed `r * n_in + in_idx`
    /// (`0..P` network ports, `P..P+p` injection).
    in_busy: Vec<u64>,
    /// Crossbar feed busy-until per output port, flat-indexed by link id.
    out_xbar: Vec<u64>,
    /// Output buffer occupancy per output port, flat-indexed by link id.
    out_occ: Vec<u32>,
    /// Consumption channel busy-until, flat-indexed `r * pn * 2 + channel`.
    eject_busy: Vec<u64>,
    /// VC count per unified input index (uniform across routers).
    vcs_by_in: Vec<u8>,
    /// Cycle at which a router was proven allocation-settled: under the
    /// baseline policy (no per-evaluation packet mutation, no PAR divert),
    /// a round with zero nominations leaves every input unchanged, so the
    /// remaining `speedup` rounds of the same cycle are provable no-ops.
    settled: Vec<u64>,
    /// Whether the settle shortcut is sound for this configuration.
    can_settle: bool,
    /// Set by `evaluate_head` when an evaluation semantically mutated a
    /// packet this round (opportunistic patience counting, reversion) —
    /// such a round is not provably repeatable and must not settle.
    eval_mutated: bool,
    /// Like `eval_mutated` but reset before every `evaluate_head` call:
    /// tells the caller whether *this* evaluation mutated its head
    /// (`eval_mutated` is sticky across a router visit, so it cannot
    /// distinguish which call mutated). A mutating rejection must keep
    /// being re-evaluated — patience advances per visit.
    eval_mutated_here: bool,
    /// Why the last `evaluate_head` call rejected (see [`EvalBlock`]):
    /// classifies the first failing gate so the rejection can be
    /// memoized until that gate can actually change.
    eval_block: EvalBlock,
    /// Per-(router, output-port) event counter, bumped whenever a gate on
    /// that port can flip from blocking to passing: a credit return
    /// (`deliver`) or an output-buffer release (`process_pending`). An
    /// `EvalBlock::Event` rejection is provably `None` while its port's
    /// counter is unchanged — credits and output occupancy improve through
    /// these two events and nothing else.
    port_epoch: Vec<u64>,
    /// Parallel to `vc_skip_until`: the port whose epoch the memoized
    /// rejection is keyed on, and the epoch observed when it was recorded
    /// (`u64::MAX` = no event key, deadline only).
    vc_skip_port: Vec<u16>,
    vc_skip_epoch: Vec<u64>,
    /// Per-(router, input, VC < 16) evaluation skip deadline: when an
    /// evaluation fails the crossbar-busy gate, the same `None` outcome is
    /// guaranteed until the (monotonically advancing) `out_xbar` expiry —
    /// the gate precedes every policy/mutation path and a blocked head
    /// cannot be dequeued meanwhile. Disabled for PAR (whose evaluations
    /// mutate divert state before the gate's outcome matters).
    vc_skip_until: Vec<u64>,
    /// Baseline policy lookup: `(class, slot) -> (vc, position)`, pure per
    /// configuration (empty unless the baseline policy is active).
    baseline_table: Vec<[(u8, u16); MAX_PLAN]>,
    /// Whether the workload emits flows (`flow_tags` stays untouched —
    /// and flow tagging costs nothing — otherwise).
    has_flows: bool,
    /// Flow tags of in-flight packets, keyed by `(src node, packet id)`.
    /// Kept *outside* [`Packet`] so synthetic workloads don't pay for the
    /// field on every buffer move; tags cross shard boundaries alongside
    /// their packet's boundary event. Packet ids alone are only unique per
    /// engine instance — sharded runs allocate them per shard — but a
    /// packet is generated by exactly one node and each node belongs to
    /// one shard, so pairing the id with the source node keys migrated
    /// tags without collisions.
    flow_tags: std::collections::HashMap<(u32, u64), flexvc_traffic::FlowTag>,
    /// Sensing occupancy scratch.
    occ_scratch: Vec<u32>,
    /// Sensing flag scratch.
    flag_scratch: Vec<bool>,
    // --- QoS (multi-class) state; inert when `qos_active` is false ---
    /// Cached `cfg.qos.is_some()`: every QoS branch on the hot path gates
    /// on this flag, so single-class configurations take bit-identical
    /// paths through the allocator.
    qos_active: bool,
    /// Strict-priority bypass bound B (0 when QoS is off): an arbiter that
    /// sees both classes requesting grants control, but after B such
    /// priority grants in a row it lets one bulk candidate through and
    /// resets — bounded bypass, the anti-starvation guarantee.
    bypass_bound: u32,
    /// Stage-1 bypass counters per (router, unified input),
    /// flat-indexed `r * n_in + in_idx`.
    bypass_in: Vec<u32>,
    /// Stage-2 bypass counters per (router, output port),
    /// flat-indexed `r * pp + port`.
    bypass_out: Vec<u32>,
    /// Allowed output-VC masks per (link class, traffic class) —
    /// [`SimConfig::qos_vc_mask`] precomputed, indexed
    /// `[link.index()][tclass.index()]`.
    qos_masks: [[u32; 2]; 2],
    /// Dynamic per-class buffer repartitioning enabled.
    repart: bool,
    /// Per-(router, output port, class) occupancy of the downstream credit
    /// mirror, flat-indexed `(r * pp + port) * 2 + tclass` (empty unless
    /// `repart`). Incremented on a forward grant, decremented when the
    /// matching credit returns (credits carry the packet's class).
    cls_occ: Vec<u32>,
    /// Per-(router, output port, class) phit quotas, same indexing. The two
    /// quotas of a port sum to its capacity and each stays at least one
    /// packet; [`Network::repartition`] shifts them under occupancy
    /// pressure.
    cls_quota: Vec<u32>,
    /// Total phit capacity per output port index (uniform across routers;
    /// the repartitioner's conservation invariant).
    port_total: Vec<u32>,
}

impl Network {
    /// Build a network for `cfg` at offered load `load` (phits/node/cycle)
    /// with deterministic `seed`. Fails with a typed
    /// [`ConfigError`](crate::error::ConfigError) when
    /// the configuration does not pass [`SimConfig::validate`].
    pub fn new(cfg: SimConfig, load: f64, seed: u64) -> Result<Self, crate::error::ConfigError> {
        cfg.validate()?;
        let topo = cfg.topology.build();
        Ok(Self::build(cfg, load, seed, topo, None))
    }

    /// Like [`Network::new`] but reusing a pre-built topology instance,
    /// which must match `cfg.topology` — the sweep runner and the bench
    /// harness build each distinct topology once and share the `Arc` across
    /// all points that use it instead of rebuilding per point.
    pub fn with_topology(
        cfg: SimConfig,
        load: f64,
        seed: u64,
        topo: Arc<dyn Topology>,
    ) -> Result<Self, crate::error::ConfigError> {
        cfg.validate()?;
        debug_assert_eq!(
            topo.num_routers(),
            cfg.topology.num_routers(),
            "shared topology does not match cfg.topology"
        );
        Ok(Self::build(cfg, load, seed, topo, None))
    }

    /// Build one shard owning the contiguous router range `owned` (crate
    /// API for [`crate::shard::ShardedNetwork`]; `cfg` is pre-validated).
    pub(crate) fn new_shard(
        cfg: SimConfig,
        load: f64,
        seed: u64,
        topo: Arc<dyn Topology>,
        owned: std::ops::Range<u32>,
    ) -> Self {
        Self::build(cfg, load, seed, topo, Some(owned))
    }

    fn build(
        cfg: SimConfig,
        load: f64,
        seed: u64,
        topo: Arc<dyn Topology>,
        owned: Option<std::ops::Range<u32>>,
    ) -> Self {
        let family = cfg.topology.family();
        let pp = topo.num_ports();
        let pn = topo.nodes_per_router();
        let nr = topo.num_routers();
        let arr = cfg.arrangement.clone();
        let sharded = owned.is_some();
        let owned_r = owned.unwrap_or(0..nr as u32);
        debug_assert!(owned_r.start < owned_r.end && owned_r.end <= nr as u32);
        let owns = |r: usize| owned_r.contains(&(r as u32));

        let mut adj = vec![None; nr * pp];
        let node_base: Vec<u32> = (0..nr).map(|r| topo.node_base(r) as u32).collect();
        let mut port_class = vec![LinkClass::Local; pp];
        for port in 0..pp {
            port_class[port] = topo.port_class(0, port);
        }
        for r in 0..nr {
            for port in 0..pp {
                debug_assert_eq!(topo.port_class(r, port), port_class[port]);
                adj[r * pp + port] = topo
                    .neighbor(r, port)
                    .map(|(nr_, np)| (nr_ as u32, np as u16));
            }
        }
        let global_ports: Vec<usize> = (0..pp)
            .filter(|&p| port_class[p] == LinkClass::Global)
            .collect();
        // Dragonflies sense their global ports; single-class topologies
        // sense every network port (PB's UGAL comparison and saturation
        // flags then cover the first minimal hop of any path).
        let sense_all = global_ports.is_empty();
        let sense_ports: Vec<usize> = if sense_all {
            (0..pp).collect()
        } else {
            global_ports
        };

        let make_bank = |class: LinkClass, cfg: &SimConfig| -> Occupancy {
            let vcs = cfg.vcs_for_class(class).max(1);
            match cfg.buffers.organization {
                BufferOrg::Static => Occupancy::new_static(vcs, cfg.vc_capacity(class)),
                BufferOrg::Damq { private_fraction } => {
                    let total = cfg.port_capacity(class);
                    let private = ((total as f64 * private_fraction) / vcs as f64).floor() as u32;
                    Occupancy::new_damq(vcs, total, private)
                }
            }
        };

        // Preallocate every pool for its worst-case population so the
        // steady state never allocates: banks for their capacity in
        // packets, links for their latency-bounded in-flight window,
        // output queues for their buffer depth.
        let size = cfg.packet_size.max(1);
        let bank_packets =
            |class: LinkClass, cfg: &SimConfig| (cfg.port_capacity(class) / size) as usize + 1;
        let inj_packets = (cfg.buffers.injection * cfg.injection_vcs as u32 / size) as usize + 1;
        let out_packets = (cfg.buffers.output / size) as usize + 2;
        let max_lat = cfg.local_latency.max(cfg.global_latency) as u64;
        let link_window = (max_lat / size as u64) as usize + 4;

        let mut routers: Vec<Router> = (0..nr)
            .map(|r| {
                // Foreign routers (sharded mode) keep their slots so flat
                // indexing stays global, but are never stepped: skip their
                // queue preallocation entirely.
                let mine = owns(r);
                let inputs: Vec<BufferBank> = (0..pp)
                    .map(|p| {
                        BufferBank::with_packet_capacity(
                            make_bank(port_class[p], &cfg),
                            if mine {
                                bank_packets(port_class[p], &cfg)
                            } else {
                                0
                            },
                        )
                    })
                    .collect();
                let inj: Vec<BufferBank> = (0..pn)
                    .map(|_| {
                        BufferBank::with_packet_capacity(
                            Occupancy::new_static(cfg.injection_vcs, cfg.buffers.injection),
                            if mine { inj_packets } else { 0 },
                        )
                    })
                    .collect();
                let out_credit: Vec<Occupancy> =
                    (0..pp).map(|p| make_bank(port_class[p], &cfg)).collect();
                let n_in = pp + pn;
                Router {
                    inputs,
                    inj,
                    in_arb: (0..n_in)
                        .map(|i| {
                            let vcs = if i < pp {
                                cfg.vcs_for_class(port_class[i]).max(1)
                            } else {
                                cfg.injection_vcs
                            };
                            RrArbiter::new(vcs)
                        })
                        .collect(),
                    out_arb: (0..pp).map(|_| RrArbiter::new(n_in)).collect(),
                    out_credit,
                    out_queue: (0..pp)
                        .map(|_| VecDeque::with_capacity(if mine { out_packets } else { 0 }))
                        .collect(),
                    rng: SmallRng::seed_from_u64(
                        seed ^ 0xD1B5_4A32_D192_ED03u64.wrapping_mul(r as u64 + 1),
                    ),
                }
            })
            .collect();

        // Uniform packet size: let the credit mirrors maintain a ready-VC
        // bitmask incrementally, so the allocator's VC-candidate scan is a
        // word scan instead of a per-VC `can_accept` loop (static buffers
        // only; DAMQ admission depends on shared headroom and falls back).
        for router in &mut routers {
            for credit in &mut router.out_credit {
                credit.register_probe(size);
            }
        }

        // A link replica matters to a shard when it transmits on it (owns
        // the sending router) or receives from it (owns the downstream
        // router); foreign-foreign links are never touched.
        let links = (0..nr * pp)
            .map(|lid| {
                let tx_owned = owns(lid / pp);
                let rx_owned = adj[lid].is_some_and(|(dr, _)| owns(dr as usize));
                LinkState::with_capacity(if tx_owned || rx_owned { link_window } else { 0 })
            })
            .collect();

        // The timing wheels address links by flat id and resolve packet
        // destinations through `adj[lid]`, which requires the wiring to be
        // involutive (it is for all our topologies).
        #[cfg(debug_assertions)]
        for r in 0..nr {
            for port in 0..pp {
                if let Some((nr2, np)) = adj[r * pp + port] {
                    debug_assert_eq!(
                        adj[nr2 as usize * pp + np as usize],
                        Some((r as u32, port as u16)),
                        "adjacency must be involutive"
                    );
                }
            }
        }
        // Worst-case link event horizon: a credit departs at most
        // `packet_size` cycles after its grant and arrives one link latency
        // later; packet heads arrive one latency after transmit.
        let horizon = max_lat + size as u64 + 2;

        // Precompute the baseline policy's pure (class, slot) -> (vc, pos)
        // mapping so the allocator's hottest path is a table lookup.
        let baseline_table: Vec<[(u8, u16); MAX_PLAN]> = if cfg.policy == VcPolicy::Baseline {
            let reference: &[LinkClass] = match family.generic_diameter() {
                None => cfg.routing.dragonfly_reference(),
                Some(d) => cfg.routing.generic_reference(d),
            };
            [MessageClass::Request, MessageClass::Reply]
                .iter()
                .map(|&class| {
                    let mut row = [(0u8, 0u16); MAX_PLAN];
                    // Reply rows exist only for reactive workloads (the
                    // arrangement has no reply part otherwise, and no
                    // reply packet can ever query the table).
                    if class == MessageClass::Reply && !cfg.workload.is_reactive() {
                        return row;
                    }
                    for (slot, entry) in row.iter_mut().enumerate().take(reference.len()) {
                        let (bclass, bvc) = baseline_vc(&arr, class, reference, slot);
                        let pos = arr.position(bclass, bvc).expect("baseline vc") as u16;
                        *entry = (bvc as u8, pos);
                    }
                    row
                })
                .collect()
        } else {
            Vec::new()
        };

        // Reactive workloads split the offered load between requests and the
        // replies they trigger.
        let gen_load = if cfg.workload.is_reactive() {
            load / 2.0
        } else {
            load
        };
        let space = NodeSpace {
            num_nodes: topo.num_nodes(),
            nodes_per_group: topo.num_nodes() / topo.num_groups(),
            num_groups: topo.num_groups(),
        };
        // A permutation flow workload fixes each node's destination from a
        // seed-only random derangement; every shard derives the identical
        // table, keeping sharded runs bit-identical.
        let perm: Option<Vec<u32>> = match cfg.workload.flow_spec() {
            Some(spec) if matches!(spec.pattern, FlowPattern::Permutation) => {
                Some(random_permutation(topo.num_nodes(), seed))
            }
            _ => None,
        };
        let gens: Vec<NodeTraffic> = (0..topo.num_nodes())
            .map(|n| {
                NodeTraffic::new(
                    cfg.workload,
                    n,
                    space,
                    gen_load,
                    cfg.packet_size,
                    seed,
                    perm.as_ref().map(|p| p[n]),
                )
            })
            .collect();

        let boards = if cfg.routing.uses_boards() {
            let rpg = topo.routers_per_group();
            (0..topo.num_groups())
                .map(|_| GroupBoard::new(rpg, sense_ports.len(), cfg.local_latency as u64))
                .collect()
        } else {
            Vec::new()
        };

        let n_nodes = topo.num_nodes();
        // Node numbering is router-major (`node_base` is monotone), so the
        // nodes of a contiguous router range are themselves contiguous.
        let owned_n = {
            let start = node_base[owned_r.start as usize];
            let end = if owned_r.end as usize == nr {
                n_nodes as u32
            } else {
                node_base[owned_r.end as usize]
            };
            start..end
        };
        let policy = RoutePolicy::new(&cfg);
        let cfg_has_flows = cfg.workload.flow_spec().is_some();
        // In-transit decisions (PAR's divert mark, DAL's per-dimension
        // evaluation, adaptive copy re-selection) mutate packets during
        // evaluation, so such configurations never settle; FlexVC
        // mutations (patience, reversion) are tracked per round via
        // `eval_mutated`.
        let transit_decisions = policy.decides_in_transit();
        let fast_min = policy.is_static_min();
        let can_settle = !transit_decisions;
        let cfg_vcs_by_port: Vec<u8> = (0..pp)
            .map(|p| cfg.vcs_for_class(port_class[p]).clamp(1, 255) as u8)
            .collect();
        let injection_vcs_u8 = cfg.injection_vcs.min(255) as u8;
        // QoS precomputation: validation already proved the configuration
        // safe (see `SimConfig::check_qos`), so the engine only caches the
        // derived masks, bounds and initial quotas here.
        let qos = cfg.qos;
        let qos_active = qos.is_some();
        let bypass_bound = qos.map_or(0, |q| q.bypass_bound);
        let repart = qos.is_some_and(|q| q.repartition);
        let qos_masks = [
            [
                cfg.qos_vc_mask(LinkClass::Local, TrafficClass::Control),
                cfg.qos_vc_mask(LinkClass::Local, TrafficClass::Bulk),
            ],
            [
                cfg.qos_vc_mask(LinkClass::Global, TrafficClass::Control),
                cfg.qos_vc_mask(LinkClass::Global, TrafficClass::Bulk),
            ],
        ];
        let port_total: Vec<u32> = (0..pp).map(|p| cfg.port_capacity(port_class[p])).collect();
        let mut cls_quota = vec![0u32; if repart { nr * pp * 2 } else { 0 }];
        if repart {
            let frac = qos.expect("repart implies qos").control_quota_fraction;
            for p in 0..pp {
                let total = port_total[p];
                // Initial split: control gets `frac` of the port, rounded
                // down to whole packets and clamped so both classes hold at
                // least one packet. Ports too small to split stay
                // unpartitioned (both quotas = capacity, the gate is inert
                // and the repartitioner skips them).
                let (cq, bq) = if total >= 2 * size {
                    let c = ((total as f64 * frac) as u32 / size * size).clamp(size, total - size);
                    (c, total - c)
                } else {
                    (total, total)
                };
                for r in 0..nr {
                    cls_quota[(r * pp + p) * 2] = cq;
                    cls_quota[(r * pp + p) * 2 + 1] = bq;
                }
            }
        }
        Network {
            cfg,
            topo,
            family,
            arr,
            policy,
            transit_decisions,
            fast_min,
            pp,
            pn,
            adj,
            node_base,
            port_class,
            sense_ports,
            sense_all,
            routers,
            links,
            gens,
            staging: vec![VecDeque::new(); n_nodes],
            inj_rr: vec![0; n_nodes],
            boards,
            metrics: Metrics::default(),
            cycle: 0,
            next_id: 0,
            offered: load,
            in_flight: 0,
            last_progress: 0,
            draining: false,
            owned_r,
            owned_n,
            sharded,
            outbox: Vec::new(),
            queued: vec![0; nr],
            alloc_list: Vec::new(),
            alloc_in: vec![false; nr],
            plan_list: Vec::new(),
            plan_in: vec![false; nr],
            out_list: Vec::new(),
            out_in: vec![false; nr * pp],
            sense_list: Vec::new(),
            sense_in: vec![false; nr],
            pkt_wheel: Wheel::new(horizon),
            cred_wheel: Wheel::new(horizon),
            cred_sched: vec![0; nr * pp],
            #[cfg(debug_assertions)]
            shadow_cred: Wheel::new(horizon),
            rel_wheel: Wheel::new(horizon),
            cand: vec![None; pp + pn],
            cand_set: Vec::with_capacity(pp + pn),
            ports_scratch: Vec::with_capacity(pp),
            in_mask: vec![0; nr],
            vc_mask: vec![0; nr * (pp + pn)],
            in_busy: vec![0; nr * (pp + pn)],
            out_xbar: vec![0; nr * pp],
            out_occ: vec![0; nr * pp],
            eject_busy: vec![0; nr * pn * 2],
            vcs_by_in: (0..pp + pn)
                .map(|i| {
                    if i < pp {
                        cfg_vcs_by_port[i]
                    } else {
                        injection_vcs_u8
                    }
                })
                .collect(),
            settled: vec![u64::MAX; nr],
            can_settle,
            eval_mutated: false,
            eval_mutated_here: false,
            eval_block: EvalBlock::Never,
            port_epoch: vec![0; nr * pp],
            vc_skip_port: vec![0; nr * (pp + pn) * 16],
            vc_skip_epoch: vec![u64::MAX; nr * (pp + pn) * 16],
            vc_skip_until: vec![0; nr * (pp + pn) * 16],
            baseline_table,
            has_flows: cfg_has_flows,
            flow_tags: std::collections::HashMap::new(),
            occ_scratch: Vec::new(),
            flag_scratch: Vec::new(),
            qos_active,
            bypass_bound,
            bypass_in: vec![0; if qos_active { nr * (pp + pn) } else { 0 }],
            bypass_out: vec![0; if qos_active { nr * pp } else { 0 }],
            qos_masks,
            repart,
            cls_occ: vec![0; if repart { nr * pp * 2 } else { 0 }],
            cls_quota,
            port_total,
        }
    }

    /// Whether this instance owns (steps) router `r`.
    #[inline]
    fn owns(&self, r: u32) -> bool {
        self.owned_r.contains(&r)
    }

    /// Offered load this network was built with.
    pub fn offered(&self) -> f64 {
        self.offered
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Packets currently in queues, buffers or links.
    pub fn packets_in_flight(&self) -> i64 {
        self.in_flight
    }

    /// Whether the watchdog flagged a deadlock.
    pub fn deadlocked(&self) -> bool {
        self.metrics.deadlocked
    }

    /// Last cycle the watchdog observed forward progress (packet motion,
    /// link serialization, or a credit return). Diagnostics only.
    pub fn last_progress(&self) -> u64 {
        self.last_progress
    }

    fn in_window(&self, cycle: u64) -> bool {
        cycle >= self.cfg.warmup && cycle < self.cfg.warmup + self.cfg.measure
    }

    fn latency_of(&self, class: LinkClass) -> u32 {
        match class {
            LinkClass::Local => self.cfg.local_latency,
            LinkClass::Global => self.cfg.global_latency,
        }
    }

    /// A flow's ideal (zero-load) completion time: the train's full
    /// serialization at the 1 phit/cycle injection rate plus the unloaded
    /// latency of the minimal path (per-hop link latency plus router
    /// pipeline) — the standard FCT-slowdown denominator. Derived from the
    /// topology's minimal hop classes between the flow's endpoints.
    fn flow_ideal(
        &self,
        tag: &flexvc_traffic::FlowTag,
        src: u32,
        dst_router: u32,
        size: u32,
    ) -> u64 {
        let src_r = self.topo.router_of_node(src as usize);
        let path = self.topo.min_classes(src_r, dst_router as usize);
        let unloaded: u64 = path[..]
            .iter()
            .map(|&c| (self.cfg.pipeline_latency + self.latency_of(c)) as u64)
            .sum();
        tag.len as u64 * size as u64 + unloaded
    }

    /// Mute the traffic generators and step until every in-flight packet
    /// has been consumed — including replies still staged at their NIC,
    /// which are not in `in_flight` until injected — or `max_cycles`
    /// elapse, or the watchdog fires. Returns the packets still pending
    /// (in flight + staged): 0 proves the conservation property
    /// "injected = consumed at drain": nothing the network accepted is
    /// stranded in a buffer, queue, link or reply-staging slot.
    pub fn drain(&mut self, max_cycles: u64) -> i64 {
        self.draining = true;
        let end = self.cycle.saturating_add(max_cycles);
        loop {
            // Staging queues only matter once the network itself is empty,
            // so the O(nodes) scan runs rarely.
            let staged = if self.in_flight > 0 {
                0
            } else {
                self.staging.iter().map(|q| q.len()).sum::<usize>() as i64
            };
            let pending = self.in_flight + staged;
            if pending == 0 || self.cycle >= end || self.metrics.deadlocked {
                return pending;
            }
            self.step();
        }
    }

    /// Run to completion and aggregate the result.
    pub fn run(&mut self) -> SimResult {
        let end = self.cfg.warmup + self.cfg.measure;
        while self.cycle < end && !self.metrics.deadlocked {
            self.step();
        }
        self.metrics.cycles = self
            .cycle
            .saturating_sub(self.cfg.warmup)
            .min(self.cfg.measure);
        SimResult::from_metrics(&self.metrics, self.offered, self.topo.num_nodes())
    }

    /// Advance one cycle.
    pub fn step(&mut self) {
        let now = self.cycle;
        self.step_phases(now);
        for b in &mut self.boards {
            b.tick(now);
        }
        self.watchdog(now);
        self.cycle += 1;
    }

    /// Phases 1–7 of one cycle (everything router-local). The board tick,
    /// the watchdog and the cycle advance live in [`Network::step`] /
    /// [`Network::finish_cycle_shard`] because a shard must first absorb
    /// the cycle's foreign boundary events (which carry board publishes and
    /// feed the watchdog's global reductions).
    fn step_phases(&mut self, now: u64) {
        debug_assert_eq!(now, self.cycle);
        self.deliver(now);
        self.process_pending(now);
        if self.repart {
            self.repartition();
        }
        self.generate(now);
        self.plan_heads(now);
        for _ in 0..self.cfg.speedup {
            self.allocate(now);
        }
        self.serialize_outputs(now);
        if self.cfg.routing.uses_boards() {
            self.update_sensing(now);
        }
        if now.is_multiple_of(128) && self.in_window(now) {
            self.sample_occupancy();
        }
    }

    // ------------------------------------------------------------------
    // Shard-execution hooks (driven by `crate::shard::ShardedNetwork`)
    // ------------------------------------------------------------------

    /// Free-run `len` cycles starting at `t0` without an intervening
    /// boundary exchange, leaving the last cycle open for the exchange and
    /// [`Network::finish_cycle_shard`]. Sound only when the driver caps
    /// `len` at the epoch bound (minimum cut-link latency; see
    /// `crate::shard`): then no foreign effect can land inside `t0 ..
    /// t0 + len`, so intermediate cycles need no absorb. Intermediate
    /// cycles tick the boards (their publishes are all local when the
    /// shard owns every router — the only multi-cycle epoch regime with
    /// boards in play, since foreign publishes are not time-keyed and
    /// would miss their swap if applied late) but skip the watchdog check
    /// (the driver's epoch bound proves those cycles cannot fire; the
    /// epoch's last cycle runs the exact global check as usual).
    pub(crate) fn step_epoch_shard(&mut self, t0: u64, len: u64) {
        debug_assert!(self.sharded);
        debug_assert!(len >= 1);
        debug_assert!(
            len == 1 || self.boards.is_empty() || self.owned_r.len() == self.topo.num_routers(),
            "multi-cycle epochs with boards require a cut-free shard"
        );
        for c in t0..t0 + len - 1 {
            self.step_phases(c);
            for b in &mut self.boards {
                b.tick(c);
            }
            self.cycle += 1;
        }
        self.step_phases(t0 + len - 1);
    }

    /// Drain this cycle's boundary events (in emission order).
    pub(crate) fn take_outbox(&mut self) -> Vec<BoundaryEvent> {
        std::mem::take(&mut self.outbox)
    }

    /// Return the (drained) outbox buffer so its capacity is reused.
    pub(crate) fn put_outbox(&mut self, buf: Vec<BoundaryEvent>) {
        debug_assert!(buf.is_empty() && self.outbox.is_empty());
        self.outbox = buf;
    }

    /// Absorb one foreign boundary event during the end-of-cycle exchange
    /// of cycle `now`. Every event's effect cycle is strictly in the future
    /// (packet heads arrive one link latency after transmit, credits one
    /// latency after their departure, board publishes land in the boards'
    /// write buffer until the tick), so applying them here — after this
    /// shard's own phases — is indistinguishable from the single-engine
    /// schedule, where the same effects were queued during the phases.
    pub(crate) fn apply_boundary(&mut self, now: u64, ev: BoundaryEvent) {
        match ev.payload {
            BoundaryPayload::Packet { flight, flow } => {
                // Epoch soundness: every cut-crossing arrival lands strictly
                // after the exchange cycle (delay ≥ the cut-link latency the
                // epoch length is capped at), so applying late never
                // back-dates an event.
                debug_assert!(ev.at > now);
                debug_assert!(self.owns(self.adj[ev.lid as usize].expect("wired").0));
                if let Some(tag) = flow {
                    self.flow_tags
                        .insert((flight.packet.src, flight.packet.id), tag);
                }
                self.pkt_wheel.schedule(now, ev.at, ev.lid);
                self.links[ev.lid as usize].receive_flight(flight);
            }
            BoundaryPayload::Credit {
                vc,
                phits,
                class,
                tclass,
            } => {
                debug_assert!(ev.at > now);
                debug_assert!(self.owns(ev.lid / self.pp as u32));
                self.links[ev.lid as usize].receive_credit(ev.at, vc, phits, class, tclass);
                self.schedule_credit(now, ev.at, ev.lid as usize);
            }
            BoundaryPayload::Board {
                group,
                local,
                port,
                class,
                sat,
            } => {
                self.boards[group as usize].publish(local as usize, port as usize, class, sat);
            }
        }
    }

    /// Complete cycle `now` after the boundary exchange: tick the (now
    /// fully published) boards, run the watchdog against the *global*
    /// reductions — total packets in flight and the latest progress cycle
    /// across all shards — and advance the cycle counter. Every shard
    /// receives identical globals, so the deadlock flag flips on all shards
    /// in the same cycle and the drivers' stop predicates stay in lockstep.
    pub(crate) fn finish_cycle_shard(&mut self, now: u64, in_flight: i64, progress: u64) {
        debug_assert!(progress >= self.last_progress);
        self.last_progress = progress;
        for b in &mut self.boards {
            b.tick(now);
        }
        if in_flight > 0 && now.saturating_sub(self.last_progress) > self.cfg.watchdog {
            self.metrics.deadlocked = true;
        }
        self.cycle += 1;
    }

    /// This shard's measurement counters (merged exactly by the driver).
    pub(crate) fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The configuration (driver access for windows and shard resolution).
    pub(crate) fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Replies staged at owned nodes but not yet injected (the drain
    /// conservation check counts them as pending).
    pub(crate) fn staged_pending(&self) -> i64 {
        self.staging[self.owned_n.start as usize..self.owned_n.end as usize]
            .iter()
            .map(|q| q.len())
            .sum::<usize>() as i64
    }

    /// Mute the owned traffic generators (sharded drain).
    pub(crate) fn begin_drain(&mut self) {
        self.draining = true;
    }

    /// Periodic per-VC occupancy sampling (the §III-D sensing signal).
    fn sample_occupancy(&mut self) {
        let prof = &mut self.metrics.vc_profile;
        if prof.samples == 0 {
            for class in [LinkClass::Local, LinkClass::Global] {
                let i = class.index();
                prof.sums[i] = vec![0; self.cfg.vcs_for_class(class)];
                prof.ports[i] = (self.port_class.iter().filter(|&&c| c == class).count()
                    * self.routers.len()) as u64;
            }
        }
        prof.samples += 1;
        // Owned routers only (the full network when not sharded); `ports`
        // above still counts the whole network, so per-shard profiles sum
        // exactly to the single-engine profile.
        for router in &self.routers[self.owned_r.start as usize..self.owned_r.end as usize] {
            for (port, bank) in router.inputs.iter().enumerate() {
                let sums = &mut prof.sums[self.port_class[port].index()];
                for vc in 0..bank.vcs() {
                    sums[vc] += bank.occ.occupancy(vc) as u64;
                }
            }
        }
    }

    /// Dynamic per-class buffer repartitioning: once per cycle, each owned
    /// router shifts one packet's worth of quota between the two classes
    /// of an output port when one class is under pressure (above 3/4 of
    /// its own quota) while the other leaves slack (below 1/2 of its own).
    /// Shifts preserve the per-port invariants — the quotas sum to the
    /// port capacity and each class keeps at least one packet — and never
    /// take a quota below the donor's current occupancy, so credits
    /// already granted stay honored. The decision reads only router-local
    /// state and runs in the same phase slot on every shard, so sharded
    /// runs stay bit-identical.
    fn repartition(&mut self) {
        let pp = self.pp;
        let size = self.cfg.packet_size;
        for r in self.owned_r.start as usize..self.owned_r.end as usize {
            for p in 0..pp {
                let base = (r * pp + p) * 2;
                let (cq, bq) = (self.cls_quota[base], self.cls_quota[base + 1]);
                if cq + bq != self.port_total[p] {
                    continue; // port too small to split (inert quotas)
                }
                let (co, bo) = (self.cls_occ[base], self.cls_occ[base + 1]);
                let ctrl_pressed = co * 4 > cq * 3 && bo * 2 < bq;
                let bulk_pressed = bo * 4 > bq * 3 && co * 2 < cq;
                let (donor, taker) = if ctrl_pressed && !bulk_pressed {
                    (base + 1, base)
                } else if bulk_pressed && !ctrl_pressed {
                    (base, base + 1)
                } else {
                    continue;
                };
                let floor = self.cls_occ[donor].max(size);
                if self.cls_quota[donor] >= floor + size {
                    self.cls_quota[donor] -= size;
                    self.cls_quota[taker] += size;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Phase 1: arrivals
    // ------------------------------------------------------------------

    fn deliver(&mut self, now: u64) {
        let pp = self.pp;
        // Packet arrivals: exactly the links with a head phit due now
        // (scheduled at transmit time). `adj[lid]` resolves the receiving
        // router/port thanks to involutive wiring.
        let due = self.pkt_wheel.take(now);
        for &lid32 in &due {
            let lid = lid32 as usize;
            let (dr, dp) = self.adj[lid].expect("transmitting link is wired");
            let (r, ip) = (dr as usize, dp as usize);
            while let Some(f) = self.links[lid].pop_arrived(now) {
                let mut pkt = f.packet;
                pkt.head_arrival = f.head_arrival;
                pkt.tail_arrival = f.tail_arrival;
                let vc = f.vc as usize;
                self.routers[r].inputs[ip].push(vc, pkt);
                self.queued[r] += 1;
                if ip < 64 {
                    self.in_mask[r] |= 1 << ip;
                }
                if vc < 16 {
                    self.vc_mask[r * (self.pp + self.pn) + ip] |= 1 << vc;
                }
                mark(&mut self.alloc_list, &mut self.alloc_in, r);
                self.last_progress = now;
            }
        }
        self.pkt_wheel.put_back(now, due);
        // Credit arrivals: links with a credit due now (the credit queue
        // lives on the *upstream* link, owned by the router it returns to).
        // One wheel entry per (link, cycle) — `schedule_credit` batches —
        // and the drain loop applies every credit due on that link at once.
        #[cfg(debug_assertions)]
        let mut drained_dbg: Vec<(u32, u32)> = Vec::new();
        let due = self.cred_wheel.take(now);
        for &lid32 in &due {
            let lid = lid32 as usize;
            let (r, op) = (lid / pp, lid % pp);
            let mut any = false;
            while let Some(c) = self.links[lid].pop_credit(now) {
                self.routers[r].out_credit[op].remove(c.vc as usize, c.phits, c.class);
                if self.repart {
                    // The downstream buffer drained a packet of this class:
                    // release its share of the class quota.
                    self.cls_occ[(r * pp + op) * 2 + c.tclass.index()] -= c.phits;
                }
                // A returning credit is forward progress: downstream
                // drained a buffer we were blocked on. Without this, an
                // extremely congested-but-live network whose grants are
                // spaced by long credit round trips can be misflagged
                // as deadlocked.
                self.last_progress = now;
                any = true;
                #[cfg(debug_assertions)]
                match drained_dbg.last_mut() {
                    Some((l, n)) if *l == lid32 => *n += 1,
                    _ => drained_dbg.push((lid32, 1)),
                }
            }
            if any {
                // Credits restore acceptance on this output port: wake its
                // memoized rejections (see `port_epoch`).
                self.port_epoch[lid] += 1;
                if !self.boards.is_empty()
                    && (self.sense_all || self.port_class[op] == LinkClass::Global)
                {
                    mark(&mut self.sense_list, &mut self.sense_in, r);
                }
            }
        }
        self.cred_wheel.put_back(now, due);
        // Cross-check: the batched drain must process exactly the credits
        // the un-batched per-event schedule (`shadow_cred`) has due this
        // cycle — same links, same per-link counts.
        #[cfg(debug_assertions)]
        {
            let shadow = self.shadow_cred.take(now);
            let mut expected: Vec<(u32, u32)> = Vec::new();
            for &l in &shadow {
                match expected.iter_mut().find(|(el, _)| *el == l) {
                    Some((_, n)) => *n += 1,
                    None => expected.push((l, 1)),
                }
            }
            drained_dbg.sort_unstable();
            expected.sort_unstable();
            debug_assert_eq!(
                drained_dbg, expected,
                "batched credit drain diverged from the per-event schedule at cycle {now}"
            );
            self.shadow_cred.put_back(now, shadow);
        }
    }

    // ------------------------------------------------------------------
    // Phase 2: scheduled releases
    // ------------------------------------------------------------------

    fn process_pending(&mut self, now: u64) {
        let pp = self.pp;
        let due = self.rel_wheel.take(now);
        for &(rid, rel) in &due {
            let rid = rid as usize;
            match rel {
                Pending::Input {
                    in_idx,
                    vc,
                    phits,
                    class,
                    at,
                } => {
                    debug_assert_eq!(at, now);
                    let in_idx = in_idx as usize;
                    let router = &mut self.routers[rid];
                    if in_idx < pp {
                        router.inputs[in_idx].release(vc as usize, phits, class);
                    } else {
                        router.inj[in_idx - pp].release(vc as usize, phits, class);
                    }
                }
                Pending::OutBuf { port, phits, at } => {
                    debug_assert_eq!(at, now);
                    self.out_occ[rid * pp + port as usize] -= phits;
                    // Output space restored: wake the port's memoized
                    // rejections (see `port_epoch`).
                    self.port_epoch[rid * pp + port as usize] += 1;
                }
            }
        }
        self.rel_wheel.put_back(now, due);
    }

    // ------------------------------------------------------------------
    // Phase 3: traffic generation
    // ------------------------------------------------------------------

    fn generate(&mut self, now: u64) {
        let size = self.cfg.packet_size;
        let reactive = self.cfg.workload.is_reactive();
        let in_window = self.in_window(now);
        for n in self.owned_n.start as usize..self.owned_n.end as usize {
            // New requests from the pattern generator (muted while
            // draining; staged replies below still flush).
            if let Some(em) = (!self.draining).then(|| self.gens[n].next(now)).flatten() {
                if in_window {
                    self.metrics.generated_packets += 1;
                    self.metrics.generated_phits += size as u64;
                }
                let tclass = em.tclass;
                let vc = if reactive {
                    0
                } else if self.qos_active && self.cfg.injection_vcs > 1 {
                    // Injection-lane dedication: control owns injection
                    // VC 0 and bulk round-robins over the remaining lanes,
                    // so a saturated bulk queue cannot head-block control
                    // at the NIC.
                    match tclass {
                        TrafficClass::Control => 0,
                        TrafficClass::Bulk => {
                            let lanes = self.cfg.injection_vcs as u8 - 1;
                            let v = self.inj_rr[n] % lanes;
                            self.inj_rr[n] = (v + 1) % lanes;
                            v + 1
                        }
                    }
                } else {
                    let v = self.inj_rr[n];
                    self.inj_rr[n] = (v + 1) % self.cfg.injection_vcs as u8;
                    v
                } as usize;
                let r = self.topo.router_of_node(n);
                let local = n - self.node_base[r] as usize;
                if self.routers[r].inj[local].occ.can_accept(vc, size) {
                    let pkt = self.new_packet(
                        n as u32,
                        em.dest as u32,
                        MessageClass::Request,
                        tclass,
                        now,
                    );
                    if let Some(tag) = em.flow {
                        self.flow_tags.insert((pkt.src, pkt.id), tag);
                    }
                    self.routers[r].inj[local].push(vc, pkt);
                    self.queued[r] += 1;
                    let in_idx = self.pp + local;
                    if in_idx < 64 {
                        self.in_mask[r] |= 1 << in_idx;
                    }
                    if vc < 16 {
                        self.vc_mask[r * (self.pp + self.pn) + in_idx] |= 1 << vc;
                    }
                    mark(&mut self.alloc_list, &mut self.alloc_in, r);
                    mark(&mut self.plan_list, &mut self.plan_in, r);
                    self.in_flight += 1;
                    self.last_progress = now;
                } else if in_window {
                    self.metrics.dropped_packets += 1;
                }
            }
            // Staged replies enter the reply injection VC when it has room.
            while let Some(&(dst, ready)) = self.staging[n].front() {
                if ready > now {
                    break;
                }
                let r = self.topo.router_of_node(n);
                let local = n - self.node_base[r] as usize;
                if !self.routers[r].inj[local].occ.can_accept(1, size) {
                    break;
                }
                self.staging[n].pop_front();
                if in_window {
                    self.metrics.generated_packets += 1;
                    self.metrics.generated_phits += size as u64;
                }
                // Replies exist only on reactive workloads, which QoS
                // validation rejects: they are always bulk.
                let pkt =
                    self.new_packet(n as u32, dst, MessageClass::Reply, TrafficClass::Bulk, now);
                self.routers[r].inj[local].push(1, pkt);
                self.queued[r] += 1;
                let in_idx = self.pp + local;
                if in_idx < 64 {
                    self.in_mask[r] |= 1 << in_idx;
                }
                self.vc_mask[r * (self.pp + self.pn) + in_idx] |= 1 << 1;
                mark(&mut self.alloc_list, &mut self.alloc_in, r);
                mark(&mut self.plan_list, &mut self.plan_in, r);
                self.in_flight += 1;
                self.last_progress = now;
            }
        }
    }

    fn new_packet(
        &mut self,
        src: u32,
        dst: u32,
        class: MessageClass,
        tclass: TrafficClass,
        now: u64,
    ) -> Packet {
        let id = self.next_id;
        self.next_id += 1;
        Packet {
            id,
            src,
            dst,
            dst_router: self.topo.router_of_node(dst as usize) as u32,
            class,
            tclass,
            size: self.cfg.packet_size,
            gen_cycle: now,
            head_arrival: now,
            tail_arrival: now,
            position: None,
            plan: PlannedPath::empty(),
            min_routed: true,
            derouted: false,
            buffered_class: CreditClass::MinRouted,
            planned: false,
            par_evaluated: false,
            hop_decided: false,
            flex_opts: None,
            opp_blocked: 0,
            hops: 0,
            reverts: 0,
        }
    }

    // ------------------------------------------------------------------
    // Phase 4: route planning at injection heads
    // ------------------------------------------------------------------

    fn plan_heads(&mut self, _now: u64) {
        // Only routers with injection-bank activity since the last pass
        // can hold an unplanned head: packets are planned exactly when
        // they first become an injection head, which happens on a push
        // (head of an empty VC) or a pop (successor becomes head). Both
        // sites mark the worklist, so draining it each cycle plans exactly
        // the heads the full sweep would have planned.
        let mut list = std::mem::take(&mut self.plan_list);
        for &r32 in &list {
            let r = r32 as usize;
            self.plan_in[r] = false;
            for local in 0..self.pn {
                for vc in 0..self.cfg.injection_vcs {
                    // Split borrows: the head lives in `inj`, congestion
                    // state in `out_credit`/`rng`/boards.
                    let router = &mut self.routers[r];
                    let Some(head) = router.inj[local].head(vc) else {
                        continue;
                    };
                    if head.planned {
                        continue;
                    }
                    let (dst_r, class) = (head.dst_router as usize, head.class);
                    let (plan, min_routed) = if self.fast_min {
                        // Monomorphized MIN fast path: `plan_injection` in
                        // Min mode without adaptive copies reads no sensed
                        // state and no RNG, so skip the `SenseView` setup
                        // and the policy dispatch entirely.
                        if dst_r == r {
                            (PlannedPath::empty(), true)
                        } else {
                            (min_plan(&*self.topo, r, dst_r), true)
                        }
                    } else {
                        let sense = SenseView {
                            out_credit: &router.out_credit,
                            boards: &self.boards,
                            sense_ports: &self.sense_ports,
                            sense_all: self.sense_all,
                            min_cred: self.cfg.sensing.min_cred,
                            adj: &self.adj,
                            port_class: &self.port_class,
                        };
                        self.policy.plan_injection(
                            &*self.topo,
                            &sense,
                            &mut router.rng,
                            r,
                            dst_r,
                            class,
                        )
                    };
                    let head = router.inj[local].head_mut(vc).expect("head");
                    head.plan = plan;
                    head.min_routed = min_routed;
                    head.derouted = !min_routed;
                    head.planned = true;
                    head.flex_opts = None;
                }
            }
        }
        list.clear();
        self.plan_list = list;
    }

    // ------------------------------------------------------------------
    // Phase 5: allocation
    // ------------------------------------------------------------------

    fn allocate(&mut self, now: u64) {
        let pp = self.pp;
        let pn = self.pn;
        let n_in = pp + pn;
        let mut cand = std::mem::take(&mut self.cand);
        let mut cand_set = std::mem::take(&mut self.cand_set);
        let mut ports_scratch = std::mem::take(&mut self.ports_scratch);
        debug_assert_eq!(cand.len(), n_in);

        // Only routers with queued packets can produce decisions: arbiters
        // do not advance and RNGs are not drawn on request-free visits, so
        // skipping idle routers is exactly the full sweep minus no-ops.
        // Routers are dropped from the worklist lazily once they drain.
        let mut list = std::mem::take(&mut self.alloc_list);
        let mut li = 0;
        // Request slots are mask-tracked (`req_mask` is rebuilt per port
        // visit and stale entries are never read), so one initialization
        // serves the whole sweep — the per-visit 16-slot re-init showed up
        // at scale.
        let mut reqs: [Option<Decision>; 16] = [None; 16];
        while li < list.len() {
            let r = list[li] as usize;
            if self.queued[r] == 0 {
                self.alloc_in[r] = false;
                list.swap_remove(li);
                continue;
            }
            li += 1;
            // Settled this cycle: an earlier round proved zero nominations
            // under a mutation-free policy, so this round is a no-op too.
            if self.settled[r] == now {
                continue;
            }
            // Candidate scratch is cleared *selectively* (only slots set
            // this round, tracked in `cand_set`) — per-router memsets of
            // the whole array dominated the allocator at scale.
            debug_assert!(cand.iter().all(|c| c.is_none()));
            cand_set.clear();
            self.eval_mutated = false;
            // Stage 1: each input port nominates one VC. Ports without a
            // queued packet cannot request anything; when the unified input
            // space fits a 64-bit mask (always, for our topologies) only
            // occupied ports are visited at all.
            let use_mask = n_in <= 64;
            let mut occupied = if use_mask { self.in_mask[r] } else { 0 };
            // Fallback cursor for (hypothetical) routers wider than 64
            // unified inputs: visit everything; the per-port queued check
            // below still skips empty banks.
            let mut lin_idx = 0usize;
            loop {
                let in_idx = if use_mask {
                    if occupied == 0 {
                        break;
                    }
                    let i = occupied.trailing_zeros() as usize;
                    occupied &= occupied - 1;
                    debug_assert!(i < n_in, "stale occupied-port bit");
                    i
                } else {
                    if lin_idx >= n_in {
                        break;
                    }
                    lin_idx += 1;
                    lin_idx - 1
                };
                if self.in_busy[r * n_in + in_idx] > now {
                    continue;
                }
                let mut req_mask: u32 = 0;
                // Requesting VCs whose head is control-class (QoS stage-1
                // priority; stays 0 when QoS is off).
                let mut ctrl_mask: u32 = 0;
                // VC-level skip: only VCs with queued packets (tracked in
                // `vc_mask`, bank untouched) are evaluated; VCs >= 16 were
                // never evaluated by the original sweep either.
                let mut vc_bits = self.vc_mask[r * n_in + in_idx];
                while vc_bits != 0 {
                    let vc = vc_bits.trailing_zeros() as usize;
                    vc_bits &= vc_bits - 1;
                    debug_assert!(vc < self.vcs_by_in[in_idx] as usize);
                    let sl = (r * n_in + in_idx) * 16 + vc;
                    if self.vc_skip_until[sl] > now
                        || self.vc_skip_epoch[sl]
                            == self.port_epoch[r * pp + self.vc_skip_port[sl] as usize]
                    {
                        // Memoized rejection: provably still `None` — the
                        // recorded deadline has not passed, or no event
                        // fired on the blocking port since it was
                        // recorded. A stale record can never match: the
                        // head below it cannot leave without a grant, a
                        // grant requires an acceptance, and an acceptance
                        // requires the deadline to expire or the epoch to
                        // move past the recorded value first.
                        debug_assert!(self.evaluate_head(r, in_idx, vc, now).is_none());
                        continue;
                    }
                    self.eval_mutated_here = false;
                    if let Some(d) = self.evaluate_head(r, in_idx, vc, now) {
                        reqs[vc] = Some(d);
                        req_mask |= 1 << vc;
                        if self.qos_active
                            && self.head_tclass(r, in_idx, vc) == TrafficClass::Control
                        {
                            ctrl_mask |= 1 << vc;
                        }
                    } else if !self.transit_decisions
                        && vc < 16
                        && !self.eval_mutated_here
                        && !self.qos_active
                    {
                        // Memoize the rejection by its first failing gate
                        // (see `EvalBlock`). Heads that mutated (patience
                        // ticks, reversions) must keep being visited, as
                        // must in-transit deciders whose visit schedule is
                        // part of the policy — neither records anything.
                        match self.eval_block {
                            EvalBlock::Never => {}
                            EvalBlock::Until(t) => {
                                // Deadline only; epoch key disabled.
                                self.vc_skip_until[sl] = t.max(now + 1);
                                self.vc_skip_epoch[sl] = u64::MAX;
                            }
                            EvalBlock::Event(port) => {
                                // Holds for the rest of this cycle (no
                                // events fire during allocation) and
                                // beyond, until the port sees an event.
                                self.vc_skip_until[sl] = now + 1;
                                self.vc_skip_port[sl] = port;
                                self.vc_skip_epoch[sl] = self.port_epoch[r * pp + port as usize];
                            }
                        }
                    }
                }
                if req_mask == 0 {
                    continue; // a request-free grant would not move the arbiter
                }
                // QoS stage-1 strict priority with bounded bypass: when
                // both classes request, control wins — but after
                // `bypass_bound` consecutive mixed rounds won by control,
                // one bulk nomination goes through and the counter resets,
                // so bulk always makes progress.
                let grant_mask = if self.qos_active && ctrl_mask != 0 && ctrl_mask != req_mask {
                    let slot = r * n_in + in_idx;
                    if self.bypass_in[slot] >= self.bypass_bound {
                        self.bypass_in[slot] = 0;
                        req_mask & !ctrl_mask
                    } else {
                        self.bypass_in[slot] += 1;
                        ctrl_mask
                    }
                } else {
                    req_mask
                };
                let router = &mut self.routers[r];
                if let Some(vc) = router.in_arb[in_idx].grant(|v| grant_mask & (1 << v) != 0) {
                    let d = reqs[vc].expect("granted request");
                    cand[in_idx] = Some((vc as u8, d));
                    cand_set.push(in_idx as u16);
                }
            }
            if cand_set.is_empty() {
                // Zero nominations: no arbiter moved, no RNG was drawn,
                // and — when no evaluation mutated a packet (tracked via
                // `eval_mutated`; baseline never does, FlexVC only on
                // patience/reversion) — no packet changed either.
                // Intra-cycle state is router-local, so every remaining
                // allocation round of this cycle must reproduce the same
                // empty outcome: settle the router until the next cycle.
                if self.can_settle && !self.eval_mutated {
                    self.settled[r] = now;
                }
                continue; // stages 1.5/2 would be no-ops
            }
            // Stage 1.5: ejection grants (consumption channels). `cand_set`
            // is in ascending `in_idx` order (stage 1 iterates ascending).
            for ci in 0..cand_set.len() {
                let in_idx = cand_set[ci] as usize;
                if let Some((vc, Decision::Eject { channel })) = cand[in_idx] {
                    cand[in_idx] = None;
                    if self.eject_busy[r * self.pn * 2 + channel as usize] <= now {
                        self.grant_eject(r, in_idx, vc as usize, channel as usize, now);
                    }
                }
            }
            // Stage 2: output-port arbitration, only over ports with at
            // least one forwarding candidate (an empty grant would not
            // move the arbiter), in ascending port order.
            ports_scratch.clear();
            for &in_idx16 in cand_set.iter() {
                if let Some((_, Decision::Forward { port, .. })) = cand[in_idx16 as usize] {
                    ports_scratch.push(port);
                }
            }
            ports_scratch.sort_unstable();
            ports_scratch.dedup();
            // QoS stage-2: bitmask over unified inputs whose surviving
            // forwarding candidate carries a control-class head (inputs are
            // <= 64 on all our topologies; wider inputs read as bulk).
            let mut ctrl_in: u64 = 0;
            if self.qos_active {
                for &in_idx16 in cand_set.iter() {
                    let ii = in_idx16 as usize;
                    if ii < 64 {
                        if let Some((vc, Decision::Forward { .. })) = cand[ii] {
                            if self.head_tclass(r, ii, vc as usize) == TrafficClass::Control {
                                ctrl_in |= 1 << ii;
                            }
                        }
                    }
                }
            }
            for pi in 0..ports_scratch.len() {
                let port = ports_scratch[pi] as usize;
                // Same strict-priority-with-bounded-bypass rule as stage 1,
                // now among the inputs competing for this output port.
                let mut want_ctrl: Option<bool> = None;
                if self.qos_active {
                    let (mut has_ctrl, mut has_bulk) = (false, false);
                    for &in_idx16 in cand_set.iter() {
                        let ii = in_idx16 as usize;
                        if matches!(cand[ii], Some((_, Decision::Forward { port: p, .. })) if p as usize == port)
                        {
                            if ii < 64 && (ctrl_in >> ii) & 1 == 1 {
                                has_ctrl = true;
                            } else {
                                has_bulk = true;
                            }
                        }
                    }
                    if has_ctrl && has_bulk {
                        let slot = r * pp + port;
                        if self.bypass_out[slot] >= self.bypass_bound {
                            self.bypass_out[slot] = 0;
                            want_ctrl = Some(false);
                        } else {
                            self.bypass_out[slot] += 1;
                            want_ctrl = Some(true);
                        }
                    }
                }
                let winner = self.routers[r].out_arb[port].grant(|in_idx| {
                    matches!(cand[in_idx], Some((_, Decision::Forward { port: p, .. })) if p as usize == port)
                        && want_ctrl
                            .is_none_or(|w| (in_idx < 64 && (ctrl_in >> in_idx) & 1 == 1) == w)
                });
                if let Some(in_idx) = winner {
                    let (vc, d) = cand[in_idx].take().expect("winner has candidate");
                    if let Decision::Forward {
                        port,
                        vc: out_vc,
                        pos,
                    } = d
                    {
                        self.grant_forward(r, in_idx, vc as usize, port, out_vc, pos, now);
                    }
                }
            }
            // Selective clear for the next router.
            for &in_idx16 in cand_set.iter() {
                cand[in_idx16 as usize] = None;
            }
        }
        self.alloc_list = list;
        self.cand = cand;
        self.cand_set = cand_set;
        self.ports_scratch = ports_scratch;
    }

    /// Traffic class of the head of `(r, in_idx, vc)` (QoS arbitration;
    /// empty VCs read as bulk, but are never consulted).
    #[inline]
    fn head_tclass(&self, r: usize, in_idx: usize, vc: usize) -> TrafficClass {
        let router = &self.routers[r];
        let head = if in_idx < self.pp {
            router.inputs[in_idx].head(vc)
        } else {
            router.inj[in_idx - self.pp].head(vc)
        };
        head.map_or(TrafficClass::Bulk, |h| h.tclass)
    }

    /// Evaluate the head of one input VC; may mutate the packet (planning
    /// reversion, PAR divert).
    fn evaluate_head(&mut self, r: usize, in_idx: usize, vc: usize, now: u64) -> Option<Decision> {
        let pp = self.pp;
        let size = self.cfg.packet_size;
        let is_injection = in_idx >= pp;
        self.eval_block = EvalBlock::Never;

        // In-transit routing decisions (PAR divert, DAL per-dimension
        // misroute, adaptive copy re-selection) may replace the plan; they
        // only run for arrived, planned heads, so pre-read those facts.
        // Without transit decisions the same checks run on the fused head
        // read inside the loop below instead (one bank lookup, not two).
        if self.transit_decisions {
            {
                let router = &self.routers[r];
                let head = if is_injection {
                    router.inj[in_idx - pp].head(vc)?
                } else {
                    router.inputs[in_idx].head(vc)?
                };
                if head.head_arrival > now {
                    self.eval_block = EvalBlock::Until(head.head_arrival);
                    return None;
                }
                if !head.planned {
                    self.eval_block = EvalBlock::Until(now + 1);
                    return None;
                }
            }
            self.transit_decide(r, in_idx, vc, now);
        }

        // Forwarding evaluation with at most one reversion.
        let mut reverted = false;
        loop {
            let router = &self.routers[r];
            let head = if is_injection {
                router.inj[in_idx - pp].head(vc)?
            } else {
                router.inputs[in_idx].head(vc)?
            };
            if !self.transit_decisions && !reverted {
                if head.head_arrival > now {
                    // Cut-through eligibility is time-pure.
                    self.eval_block = EvalBlock::Until(head.head_arrival);
                    return None;
                }
                if !head.planned {
                    // Planned by next cycle's planning pass (phase 4
                    // precedes allocation, and the router is already on
                    // `plan_list`).
                    self.eval_block = EvalBlock::Until(now + 1);
                    return None;
                }
            }
            // A done plan means ejection (possibly after a reversion of a
            // detour that passed through the destination router).
            if head.plan.is_done() {
                debug_assert_eq!(head.dst_router as usize, r, "done plan away from dst");
                // Protocol coupling: a node whose reply-generation queue is
                // full cannot consume further requests until replies drain.
                if self.cfg.workload.is_reactive()
                    && head.class == MessageClass::Request
                    && self.staging[head.dst as usize].len() >= self.cfg.reply_queue_packets
                {
                    // Staging drains only in next cycle's generation pass.
                    self.eval_block = EvalBlock::Until(now + 1);
                    return None;
                }
                let local = head.dst as usize - self.node_base[r] as usize;
                let channel = (local * 2 + head.class.index()) as u16;
                let busy = self.eject_busy[r * self.pn * 2 + channel as usize];
                return if busy <= now {
                    Some(Decision::Eject { channel })
                } else {
                    self.eval_block = EvalBlock::Until(busy);
                    None
                };
            }
            let hop = *head.plan.next_hop().expect("plan not done");
            let dst_r = head.dst_router as usize;
            let port = hop.port as usize;
            let pclass = self.port_class[port];
            // Output-side structural checks.
            let xbar_until = self.out_xbar[r * pp + port];
            if xbar_until > now {
                // Time-pure: the crossbar frees at a known cycle (the
                // caller memoizes the deadline; reverted heads never
                // memoize — `eval_mutated_here` is already set).
                self.eval_block = EvalBlock::Until(xbar_until);
                return None;
            }
            if self.out_occ[r * pp + port] + size > self.cfg.buffers.output {
                // Improves only on an output-buffer release event.
                self.eval_block = EvalBlock::Event(port as u16);
                return None;
            }
            if self.repart {
                // Dynamic-repartition admission gate: the head's class must
                // fit inside its phit quota of the downstream buffer.
                // Improves on a same-port credit return or a repartition in
                // this class's favor (memoization is disabled under QoS).
                let qslot = (r * pp + port) * 2 + head.tclass.index();
                if self.cls_occ[qslot] + size > self.cls_quota[qslot] {
                    self.eval_block = EvalBlock::Event(port as u16);
                    return None;
                }
            }
            let credit = &router.out_credit[port];
            match self.cfg.policy {
                VcPolicy::Baseline => {
                    // Precomputed pure (class, slot) -> (vc, pos) mapping
                    // (see `baseline_table` in `Network::new`).
                    let (bvc, pos) = self.baseline_table[head.class.index()][hop.slot as usize];
                    #[cfg(debug_assertions)]
                    {
                        let reference: &[LinkClass] = match self.family.generic_diameter() {
                            None => self.cfg.routing.dragonfly_reference(),
                            // Generic references are all-Local; slots map 1:1.
                            Some(d) => self.cfg.routing.generic_reference(d),
                        };
                        let (bclass, fresh_vc) =
                            baseline_vc(&self.arr, head.class, reference, hop.slot as usize);
                        debug_assert_eq!(bclass, pclass, "reference class mismatch");
                        debug_assert_eq!(fresh_vc as u8, bvc, "stale baseline table");
                        debug_assert_eq!(
                            self.arr.position(pclass, fresh_vc).expect("baseline vc") as u16,
                            pos
                        );
                    }
                    if credit.can_accept(bvc as usize, size) {
                        return Some(Decision::Forward {
                            port: port as u16,
                            vc: bvc,
                            pos,
                        });
                    }
                    // Improves only on a credit return for this port.
                    self.eval_block = EvalBlock::Event(port as u16);
                    return None;
                }
                VcPolicy::FlexVc => {
                    // The lookahead options are a pure function of the
                    // arrangement, message class, buffer position, and the
                    // plan with its cached escapes — all frozen while the
                    // packet sits in this buffer — so a head blocked over
                    // many allocation rounds computes them once. The cache
                    // is cleared on every buffer entry and plan change; in
                    // debug builds a freshly computed value cross-checks it.
                    // Exact per-hop escapes: the minimal continuation from
                    // every router along the remaining plan (needed by the
                    // opportunistic landing lookahead). Thanks to the
                    // `flex_opts` cache this runs once per (buffer, plan),
                    // not once per allocation round.
                    let fresh_opts = |head: &Packet| {
                        let mut planned: [LinkClass; 8] = [LinkClass::Local; 8];
                        let rem = head.plan.remaining();
                        let nrem = rem.len();
                        for (i, h) in rem.iter().enumerate() {
                            planned[i] = h.class;
                        }
                        let mut esc_store: [flexvc_topology::ClassPath; 8] =
                            [flexvc_topology::ClassPath::new(); 8];
                        let mut cur_router = r;
                        for (i, h) in rem.iter().enumerate() {
                            let next = self.adj[cur_router * pp + h.port as usize]
                                .expect("routed port wired")
                                .0 as usize;
                            esc_store[i] = self.topo.min_classes(next, head.dst_router as usize);
                            cur_router = next;
                        }
                        let escapes: [&[LinkClass]; 8] = std::array::from_fn(|i| &esc_store[i][..]);
                        flexvc_options_lookahead(
                            &self.arr,
                            head.class,
                            head.pos(),
                            &planned[..nrem],
                            &escapes[..nrem],
                        )
                    };
                    let opts = match head.flex_opts {
                        Some(cached) => {
                            debug_assert_eq!(cached, fresh_opts(head), "stale lookahead cache");
                            cached
                        }
                        None => {
                            let computed = fresh_opts(head);
                            let router = &mut self.routers[r];
                            let head = if is_injection {
                                router.inj[in_idx - pp].head_mut(vc)?
                            } else {
                                router.inputs[in_idx].head_mut(vc)?
                            };
                            head.flex_opts = Some(computed);
                            computed
                        }
                    };
                    // Allowed-VC mask for the head's traffic class on this
                    // link class: full when QoS is off or shared, a strict
                    // subset under class-partitioned VC budgets (whose
                    // per-class deadlock safety `check_qos` proved).
                    let qmask = if self.qos_active {
                        let t = self.head_tclass(r, in_idx, vc);
                        self.qos_masks[pclass.index()][t.index()]
                    } else {
                        u32::MAX
                    };
                    // Re-establish the read borrows dropped for the cache
                    // write above.
                    let router = &self.routers[r];
                    let credit = &router.out_credit[port];
                    if let Some(opts) = opts {
                        let mut cands: [(usize, usize); 16] = [(0, 0); 16];
                        let mut nc = 0;
                        match credit.ready_mask() {
                            // Word scan over the incrementally-maintained
                            // ready-VC bitmask: same ascending VC order and
                            // same acceptance set as the per-VC
                            // `can_accept` loop below.
                            Some(ready) => {
                                let window =
                                    (u32::MAX >> (31 - opts.hi as u32)) & !((1u32 << opts.lo) - 1);
                                let mut m = ready & window & qmask;
                                #[cfg(debug_assertions)]
                                for v in opts.lo..=opts.hi {
                                    debug_assert_eq!(
                                        credit.can_accept(v, size) && qmask & (1 << v) != 0,
                                        m & (1 << v) != 0,
                                        "ready mask out of sync at vc {v}"
                                    );
                                }
                                while m != 0 {
                                    let v = m.trailing_zeros() as usize;
                                    m &= m - 1;
                                    cands[nc] = (v, credit.free_for(v) as usize);
                                    nc += 1;
                                }
                            }
                            // DAMQ banks (admission depends on shared
                            // headroom) keep the linear scan.
                            None => {
                                for v in opts.lo..=opts.hi {
                                    if qmask & (1 << v) != 0 && credit.can_accept(v, size) {
                                        cands[nc] = (v, credit.free_for(v) as usize);
                                        nc += 1;
                                    }
                                }
                            }
                        }
                        if nc > 0 {
                            let router = &mut self.routers[r];
                            let pick = self
                                .cfg
                                .selection
                                .pick(&cands[..nc], &mut router.rng)
                                .expect("non-empty");
                            let pos = self.arr.position(pclass, pick).expect("picked vc") as u16;
                            return Some(Decision::Forward {
                                port: port as u16,
                                vc: pick as u8,
                                pos,
                            });
                        }
                        if opts.kind == HopKind::Safe {
                            // Blocked safe hop: every candidate VC is out
                            // of credit, which only a credit return for
                            // this port can change.
                            self.eval_block = EvalBlock::Event(port as u16);
                            return None;
                        }
                        // Opportunistic hop without downstream space: wait
                        // out the configured patience, then revert.
                        let patience = self.cfg.revert_patience;
                        self.eval_mutated = true;
                        self.eval_mutated_here = true;
                        let router = &mut self.routers[r];
                        let head = if is_injection {
                            router.inj[in_idx - pp].head_mut(vc)?
                        } else {
                            router.inputs[in_idx].head_mut(vc)?
                        };
                        if head.opp_blocked < patience {
                            head.opp_blocked += 1;
                            return None;
                        }
                        head.opp_blocked = 0;
                    }
                    // Revert to the escape path (minimal from here).
                    if reverted {
                        debug_assert!(false, "escape path not safe after reversion");
                        return None;
                    }
                    reverted = true;
                    self.eval_mutated = true;
                    self.eval_mutated_here = true;
                    let plan = min_plan(&*self.topo, r, dst_r);
                    let router = &mut self.routers[r];
                    let head = if is_injection {
                        router.inj[in_idx - pp].head_mut(vc)?
                    } else {
                        router.inputs[in_idx].head_mut(vc)?
                    };
                    head.plan = plan;
                    head.min_routed = true;
                    head.reverts += 1;
                    head.flex_opts = None;
                    continue;
                }
            }
        }
    }

    /// In-transit decision point: hand the head to the routing policy
    /// (PAR divert, DAL per-dimension misroute, adaptive copy
    /// re-selection) with the router-local sensed state.
    fn transit_decide(&mut self, r: usize, in_idx: usize, vc: usize, _now: u64) {
        let pp = self.pp;
        let is_injection = in_idx >= pp;
        let in_class = if is_injection {
            LinkClass::Local
        } else {
            self.port_class[in_idx]
        };
        let topo = Arc::clone(&self.topo);
        let router = &mut self.routers[r];
        let head = if is_injection {
            router.inj[in_idx - pp].head_mut(vc)
        } else {
            router.inputs[in_idx].head_mut(vc)
        };
        let Some(head) = head else {
            return;
        };
        let sense = SenseView {
            out_credit: &router.out_credit,
            boards: &self.boards,
            sense_ports: &self.sense_ports,
            sense_all: self.sense_all,
            min_cred: self.cfg.sensing.min_cred,
            adj: &self.adj,
            port_class: &self.port_class,
        };
        self.policy.transit_update(
            &*topo,
            &sense,
            &mut router.rng,
            r,
            head,
            is_injection,
            in_class,
        );
    }

    /// Return the credit for an input buffer a grant just vacated: queue it
    /// on the upstream link (owned by the router it returns to). When that
    /// router lives on another shard, the credit becomes a boundary event —
    /// the arrival cycle `t_c + lat` is strictly beyond the current cycle,
    /// so applying it at the exchange is exact.
    #[allow(clippy::too_many_arguments)]
    fn return_credit(
        &mut self,
        r: usize,
        in_idx: usize,
        vc_in: usize,
        phits: u32,
        class: CreditClass,
        tclass: TrafficClass,
        t_c: u64,
        now: u64,
    ) {
        let pp = self.pp;
        if in_idx >= pp {
            return; // injection queues are node-local: no upstream link
        }
        let Some((ur, up)) = self.adj[r * pp + in_idx] else {
            return;
        };
        let lat = self.latency_of(self.port_class[in_idx]);
        let up_lid = ur as usize * pp + up as usize;
        if self.sharded && !self.owns(ur) {
            self.outbox.push(BoundaryEvent {
                at: t_c + lat as u64,
                lid: up_lid as u32,
                dst: ur,
                payload: BoundaryPayload::Credit {
                    vc: vc_in as u8,
                    phits,
                    class,
                    tclass,
                },
            });
        } else {
            self.links[up_lid].send_credit(t_c, lat, vc_in as u8, phits, class, tclass);
            self.schedule_credit(now, t_c + lat as u64, up_lid);
        }
    }

    /// Schedule the credit-drain wheel for a credit arriving on link `lid`
    /// at cycle `at`, batching per link per cycle: `deliver` pops *every*
    /// credit due at `at` from one wheel entry, so a second entry for the
    /// same (link, cycle) would drain nothing — skip pushing it. Credit
    /// arrivals are monotonic per link (asserted in `LinkState`), so a
    /// recorded cycle can only be superseded by a later one.
    #[inline]
    fn schedule_credit(&mut self, now: u64, at: u64, lid: usize) {
        #[cfg(debug_assertions)]
        self.shadow_cred.schedule(now, at, lid as u32);
        if self.cred_sched[lid] != at {
            self.cred_sched[lid] = at;
            self.cred_wheel.schedule(now, at, lid as u32);
        }
    }

    #[allow(clippy::too_many_arguments)] // a grant is naturally 7-tuple-shaped
    fn grant_forward(
        &mut self,
        r: usize,
        in_idx: usize,
        vc_in: usize,
        port: u16,
        out_vc: u8,
        pos: u16,
        now: u64,
    ) {
        let pp = self.pp;
        let size = self.cfg.packet_size;
        let dur = size.div_ceil(self.cfg.speedup);
        let router = &mut self.routers[r];
        let mut pkt = if in_idx < pp {
            router.inputs[in_idx].pop(vc_in)
        } else {
            router.inj[in_idx - pp].pop(vc_in)
        };
        let released_class = pkt.buffered_class;
        let released_tclass = pkt.tclass;
        // Injection transfers serialize at link rate (the node-to-router
        // channel); network transfers run at crossbar speed, bounded by the
        // packet's own tail arrival (cut-through chaining).
        let t_c = if in_idx < pp {
            (now + dur as u64).max(pkt.tail_arrival + 1)
        } else {
            now + size as u64
        };
        self.in_busy[r * (pp + self.pn) + in_idx] = t_c;
        self.out_xbar[r * pp + port as usize] = t_c;
        router.out_credit[port as usize].add(out_vc as usize, size, pkt.credit_class());
        self.out_occ[r * pp + port as usize] += size;
        if self.repart {
            // The head's class now occupies part of the downstream buffer;
            // released when its credit returns (the credit carries the
            // class).
            self.cls_occ[(r * pp + port as usize) * 2 + released_tclass.index()] += size;
        }
        self.rel_wheel.schedule(
            now,
            t_c,
            (
                r as u32,
                Pending::Input {
                    at: t_c,
                    in_idx: in_idx as u32,
                    vc: vc_in as u8,
                    phits: size,
                    class: released_class,
                },
            ),
        );
        pkt.position = Some(pos);
        pkt.plan.advance();
        pkt.hops += 1;
        router.out_queue[port as usize].push_back(OutPkt {
            pkt,
            ready_at: now + self.cfg.pipeline_latency as u64,
            vc: out_vc,
        });
        // Return the credit for the buffer we just vacated.
        self.return_credit(
            r,
            in_idx,
            vc_in,
            size,
            released_class,
            released_tclass,
            t_c,
            now,
        );
        self.queued[r] -= 1;
        {
            let router = &self.routers[r];
            let bank = if in_idx < pp {
                &router.inputs[in_idx]
            } else {
                &router.inj[in_idx - pp]
            };
            if vc_in < 16 && bank.vc_len(vc_in) == 0 {
                self.vc_mask[r * (pp + self.pn) + in_idx] &= !(1 << vc_in);
            }
            if bank.queued_packets() == 0 && in_idx < 64 {
                self.in_mask[r] &= !(1 << in_idx);
            }
        }
        if in_idx >= pp {
            // The next injection-queue packet (if any) becomes an
            // unplanned head.
            mark(&mut self.plan_list, &mut self.plan_in, r);
        }
        mark(&mut self.out_list, &mut self.out_in, r * pp + port as usize);
        if !self.boards.is_empty()
            && (self.sense_all || self.port_class[port as usize] == LinkClass::Global)
        {
            mark(&mut self.sense_list, &mut self.sense_in, r);
        }
        self.last_progress = now;
    }

    fn grant_eject(&mut self, r: usize, in_idx: usize, vc_in: usize, channel: usize, now: u64) {
        let pp = self.pp;
        let size = self.cfg.packet_size;
        let router = &mut self.routers[r];
        let pkt = if in_idx < pp {
            router.inputs[in_idx].pop(vc_in)
        } else {
            router.inj[in_idx - pp].pop(vc_in)
        };
        let released_class = pkt.buffered_class;
        let done = now + size as u64; // 1 phit/cycle consumption
        let t_c = done.max(pkt.tail_arrival + 1);
        self.in_busy[r * (pp + self.pn) + in_idx] = t_c;
        self.eject_busy[r * self.pn * 2 + channel] = t_c;
        self.rel_wheel.schedule(
            now,
            t_c,
            (
                r as u32,
                Pending::Input {
                    at: t_c,
                    in_idx: in_idx as u32,
                    vc: vc_in as u8,
                    phits: size,
                    class: released_class,
                },
            ),
        );
        self.return_credit(r, in_idx, vc_in, size, released_class, pkt.tclass, t_c, now);
        self.queued[r] -= 1;
        {
            let router = &self.routers[r];
            let bank = if in_idx < pp {
                &router.inputs[in_idx]
            } else {
                &router.inj[in_idx - pp]
            };
            if vc_in < 16 && bank.vc_len(vc_in) == 0 {
                self.vc_mask[r * (pp + self.pn) + in_idx] &= !(1 << vc_in);
            }
            if bank.queued_packets() == 0 && in_idx < 64 {
                self.in_mask[r] &= !(1 << in_idx);
            }
        }
        if in_idx >= pp {
            mark(&mut self.plan_list, &mut self.plan_in, r);
        }
        self.in_flight -= 1;
        self.last_progress = now;
        if self.in_window(now) {
            self.metrics.consume(
                pkt.class,
                pkt.tclass,
                size,
                done - pkt.gen_cycle,
                pkt.hops,
                !pkt.derouted,
                pkt.reverts,
            );
        }
        // Flow accounting is windowed on the flow's *start* cycle so a
        // flow either has every packet tracked or none: completion order
        // may differ from emission order under adaptive routing, but the
        // first-packet emission cycle is shared by the whole train.
        if self.has_flows {
            if let Some(tag) = self.flow_tags.remove(&(pkt.src, pkt.id)) {
                if self.in_window(tag.start) && self.metrics.flow_packet_done(&tag) {
                    let ideal = self.flow_ideal(&tag, pkt.src, pkt.dst_router, size);
                    self.metrics.complete_flow(&tag, done, ideal, pkt.tclass);
                }
            }
        }
        // Reactive: the destination answers with a reply once the request
        // has fully arrived.
        if self.cfg.workload.is_reactive() && pkt.class == MessageClass::Request {
            self.staging[pkt.dst as usize].push_back((pkt.src, done));
        }
    }

    // ------------------------------------------------------------------
    // Phase 6: output serialization
    // ------------------------------------------------------------------

    fn serialize_outputs(&mut self, now: u64) {
        let pp = self.pp;
        // Only output ports with queued packets can start a serialization;
        // drained ports are dropped from the worklist lazily.
        let mut list = std::mem::take(&mut self.out_list);
        let mut li = 0;
        while li < list.len() {
            let lid = list[li] as usize;
            let (r, port) = (lid / pp, lid % pp);
            if self.routers[r].out_queue[port].is_empty() {
                self.out_in[lid] = false;
                list.swap_remove(li);
                continue;
            }
            li += 1;
            if !self.links[lid].is_free(now) {
                continue;
            }
            let lat = self.latency_of(self.port_class[port]);
            let router = &mut self.routers[r];
            let front = router.out_queue[port].front().expect("non-empty checked");
            if front.ready_at > now {
                continue;
            }
            let out = router.out_queue[port].pop_front().expect("front exists");
            let size = out.pkt.size;
            let foreign_rx =
                self.sharded && !self.owns(self.adj[lid].expect("transmitting link is wired").0);
            if foreign_rx {
                // The receiving router lives on another shard: keep the
                // serialization state (`busy_until`) here, ship the
                // in-flight record to the receiver's link replica — with
                // the packet's flow tag, whose table entry moves to the
                // receiving shard (the flow ejects there). Its head
                // arrives at `now + lat`, beyond this cycle, so delivery
                // timing is identical to the local path.
                let flow = if self.has_flows {
                    self.flow_tags.remove(&(out.pkt.src, out.pkt.id))
                } else {
                    None
                };
                let flight = self.links[lid].transmit_boundary(now, lat, out.vc, out.pkt);
                self.outbox.push(BoundaryEvent {
                    at: flight.head_arrival,
                    lid: lid as u32,
                    dst: self.adj[lid].expect("wired").0,
                    payload: BoundaryPayload::Packet { flight, flow },
                });
            } else {
                self.links[lid].transmit(now, lat, out.vc, out.pkt);
                self.pkt_wheel.schedule(now, now + lat as u64, lid as u32);
            }
            self.rel_wheel.schedule(
                now,
                now + size as u64,
                (
                    r as u32,
                    Pending::OutBuf {
                        at: now + size as u64,
                        port: port as u16,
                        phits: size,
                    },
                ),
            );
            // Phits starting to move on a link count as progress.
            self.last_progress = now;
        }
        self.out_list = list;
    }

    // ------------------------------------------------------------------
    // Phase 7: Piggyback sensing
    // ------------------------------------------------------------------

    fn update_sensing(&mut self, now: u64) {
        let rpg = self.topo.routers_per_group();
        let t_phits = self.cfg.sensing.threshold * self.cfg.packet_size;
        let min_cred = self.cfg.sensing.min_cred;
        let classes: &[MessageClass] = if self.cfg.workload.is_reactive() {
            &[MessageClass::Request, MessageClass::Reply]
        } else {
            &[MessageClass::Request]
        };
        // Saturation flags are a pure function of sense-port credit state
        // (global ports in a Dragonfly, every port on single-class
        // topologies): only routers whose state changed since their last
        // publish can produce different flags, and republishing unchanged
        // flags is a no-op on the double-buffered board. The worklist is
        // marked on every sense-port credit add/remove.
        let mut list = std::mem::take(&mut self.sense_list);
        let mut occs = std::mem::take(&mut self.occ_scratch);
        let mut flags = std::mem::take(&mut self.flag_scratch);
        for &r32 in &list {
            let r = r32 as usize;
            self.sense_in[r] = false;
            let group = self.topo.group_of_router(r);
            let local = r - group * rpg;
            for &class in classes {
                occs.clear();
                occs.extend(self.sense_ports.iter().map(|&gp| {
                    let credit = &self.routers[r].out_credit[gp];
                    match self.cfg.sensing.mode {
                        SensingMode::PerPort => {
                            if min_cred {
                                credit.split_total().min_occupancy()
                            } else {
                                credit.total()
                            }
                        }
                        SensingMode::PerVc => {
                            // First VC of each subpath: 0 for requests, the
                            // first reply VC of the sensed port's class for
                            // replies.
                            let vc = match class {
                                MessageClass::Request => 0,
                                MessageClass::Reply => {
                                    self.arr.vc_count_request(self.port_class[gp])
                                }
                            };
                            if min_cred {
                                credit.split(vc).min_occupancy()
                            } else {
                                credit.occupancy(vc)
                            }
                        }
                    }
                }));
                saturated_flags_into(&occs, t_phits, &mut flags);
                for (i, &sat) in flags.iter().enumerate() {
                    self.boards[group].publish(local, i, class, sat);
                    // Groups may straddle a shard cut, and remote groups'
                    // boards are consulted by UGAL-G: replicate every
                    // publish to the other shards' board copies. Publishes
                    // land in the write buffer and become visible at the
                    // tick, which all shards run after the exchange — so
                    // the replicas stay bit-identical to the single-engine
                    // board.
                    if self.sharded {
                        self.outbox.push(BoundaryEvent {
                            at: now,
                            lid: 0,
                            dst: u32::MAX,
                            payload: BoundaryPayload::Board {
                                group: group as u32,
                                local: local as u32,
                                port: i as u32,
                                class,
                                sat,
                            },
                        });
                    }
                }
            }
        }
        list.clear();
        self.sense_list = list;
        self.occ_scratch = occs;
        self.flag_scratch = flags;
    }

    // ------------------------------------------------------------------
    // Phase 8: watchdog
    // ------------------------------------------------------------------

    fn watchdog(&mut self, now: u64) {
        if self.in_flight > 0 && now.saturating_sub(self.last_progress) > self.cfg.watchdog {
            self.metrics.deadlocked = true;
        }
    }
}
