//! Deterministic sharded execution: engine-level parallelism.
//!
//! A [`ShardedNetwork`] partitions the routers of one simulation across N
//! worker shards — distinct from the [`crate::runner`]'s *per-point*
//! threading, which parallelizes independent simulations. Each shard is a
//! full [`Network`] instance that owns a contiguous router range: its
//! routers' timing wheels, worklists, buffer banks and credit mirrors live
//! only there, while the flat pools keep global indexing (foreign slots
//! exist but are empty and never touched).
//!
//! # The boundary exchange
//!
//! Within a cycle every phase is router-local (see the engine's module
//! docs: iteration order across routers is independent by construction).
//! The only effects that cross a shard cut are:
//!
//! * **packet transmits** whose receiving router is foreign — the
//!   [`InFlight`] record ships to the receiver's link replica, arriving at
//!   `now + latency`;
//! * **credit returns** whose upstream router is foreign — the credit
//!   arrives at `t_c + latency`, strictly beyond the current cycle;
//! * **Piggyback board publishes** — replicated to every shard's board
//!   copy, becoming visible only at the next board tick.
//!
//! All three take effect strictly *after* the cycle that emits them, so
//! shards can run a whole cycle without communicating, then exchange:
//!
//! ```text
//!   shard 0:  [cycles t .. t+E)──outbox──┐          ┌─sort──apply──finish┐
//!   shard 1:  [cycles t .. t+E)──outbox──┼─barrier──┼─sort──apply──finish┼─barrier─▶ next epoch
//!   shard 2:  [cycles t .. t+E)──outbox──┘          └─sort──apply──finish┘
//! ```
//!
//! 1. every shard free-runs an **epoch** of `E` cycles on its own routers,
//!    accumulating boundary events into per-destination inboxes;
//! 2. barrier — then every shard sorts its inbox by the canonical
//!    **(cycle, link-id, source-shard, sequence)** key and applies it;
//! 3. every shard computes the same global reductions (total packets in
//!    flight, latest progress cycle), completes the epoch's last cycle
//!    (board tick, watchdog, `t += 1`), and a second barrier releases the
//!    next epoch.
//!
//! # Epoch batching: why E > 1 is exact
//!
//! Packet and credit arrivals crossing the cut are delayed by at least the
//! latency of the cut link they traverse. Let **λ** be the minimum latency
//! over all links cut by the partition ([`Topology::cut_link_classes`]).
//! An event emitted at cycle `c ∈ [t, t+E)` lands at `≥ c + λ ≥ t + E`
//! whenever `E ≤ λ` — i.e. **no event can arrive inside the epoch that
//! emits it**, and applying the whole batch at the epoch-end exchange is
//! indistinguishable from applying each event at its emission cycle. The
//! canonical sort key already orders events across the epoch's cycles.
//! Two caps shorten an epoch below λ:
//!
//! * **boards** — Piggyback publishes are written into the boards' `next`
//!   buffer *without a timestamp* and become visible at the next swap, so
//!   a foreign publish applied late could miss its swap. Whenever the
//!   routing mode uses boards across more than one shard, epochs are
//!   forced to one cycle (the exact per-cycle exchange; a single cut-free
//!   shard has only local publishes and keeps long epochs, ticking its
//!   boards every cycle).
//! * **watchdog headroom** — the watchdog fires at cycle `c` iff the
//!   global in-flight count is positive and `c - progress(c)` exceeds the
//!   threshold `W`. Intermediate epoch cycles skip the check, which is
//!   sound as long as they provably cannot fire: with `P` the global
//!   progress cycle at epoch start, no cycle `c ≤ P + W` can fire (when
//!   packets were in flight at epoch start), and no cycle `c ≤ t + W` can
//!   fire when nothing was in flight (any later in-flight packet implies
//!   an injection after `t`, which itself records progress). The epoch
//!   length is capped accordingly and the epoch's **last** cycle always
//!   runs the exact global check, so the deadlock flag flips on the same
//!   cycle as in the single-engine schedule.
//!
//! Drain mode keeps `E = 1`: its stop predicate (global pending = 0) is
//! evaluated every cycle, exactly like [`Network::drain`].
//!
//! # Topology-aware partitioning
//!
//! [`partition_topology`] aligns shard boundaries with the topology's
//! natural unit ([`Topology::partition_unit`]): Dragonfly/Dragonfly+
//! groups, HyperX last-dimension hyperplanes, FlatButterfly rows. Aligned
//! cuts sever only inter-group (global) links, which both shrinks the cut
//! and raises λ to the global-link latency — an order of magnitude more
//! free-running per barrier under the default `local=10 / global=100`
//! latencies. Units are weighted by [`Topology::router_weight`] (ports +
//! attached terminals, so host-free Dragonfly+ spines don't skew the
//! balance) and packed into contiguous runs minimizing the maximum shard
//! weight (exact min-max via binary search over the bottleneck capacity).
//! When there are fewer units than shards the partitioner falls back to
//! the count-balanced router split ([`partition`]).
//!
//! # Why results are bit-identical to `shards = 1`
//!
//! The sort key makes the exchange deterministic, and the *application
//! order* of boundary events is behavior-neutral on top of that:
//!
//! * each directed link has exactly one transmitting router and one
//!   receiving router, so all `Packet` events for a link come from one
//!   shard and are applied in emission order — the order the receiving
//!   link queue would have seen locally;
//! * all `Credit` events for a link originate from the single downstream
//!   input port feeding it, whose serialization makes departure cycles
//!   strictly monotonic — same argument;
//! * `Board` publishes within a cycle target distinct cells (one router
//!   publishes each cell) and overwrite, so they commute.
//!
//! Since every cross-shard effect lands at a future cycle (beyond its
//! epoch) and intra-cycle state never crosses the cut, the sharded
//! schedule is a reordering of *commuting* operations of the
//! single-engine schedule: counters, RNG draw sequences and arbiter
//! states evolve identically for any shard count and any epoch length,
//! including 1. `tests/engine_equivalence.rs` asserts this exactly
//! (`SimResult` JSON equality) over every recorded golden at shard counts
//! {1, 2, 3, 4}.

use crate::config::SimConfig;
use crate::engine::Network;
use crate::error::ConfigError;
use crate::link::InFlight;
use crate::metrics::{Metrics, SimResult};
use flexvc_core::{CreditClass, MessageClass, TrafficClass};
use flexvc_topology::Topology;
use std::ops::Range;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};

/// An effect crossing a shard boundary, exchanged at end of epoch.
#[derive(Debug)]
pub(crate) struct BoundaryEvent {
    /// Effect cycle (head/credit arrival; publish cycle for boards).
    pub at: u64,
    /// Flat link id the effect applies to (0 for board publishes).
    pub lid: u32,
    /// Receiving router (owner = destination shard); `u32::MAX` broadcasts
    /// to every other shard (board publishes).
    pub dst: u32,
    /// The effect itself.
    pub payload: BoundaryPayload,
}

/// Payload of a [`BoundaryEvent`].
#[derive(Debug)]
pub(crate) enum BoundaryPayload {
    /// A packet in flight toward a foreign router's input port, with its
    /// flow tag (if any): flow identity lives in an engine-side table, so
    /// the tag migrates to the shard that will eject the packet.
    Packet {
        /// The in-flight link record.
        flight: InFlight,
        /// The packet's flow tag under flow workloads.
        flow: Option<flexvc_traffic::FlowTag>,
    },
    /// A credit returning to a foreign router's credit mirror.
    Credit {
        /// VC whose space is released.
        vc: u8,
        /// Phits released.
        phits: u32,
        /// Routing type of the released packet.
        class: CreditClass,
        /// QoS class of the released packet (per-class occupancy
        /// accounting for the dynamic buffer repartitioner).
        tclass: TrafficClass,
    },
    /// A Piggyback saturation-flag publish, replicated to all shards.
    Board {
        /// Group whose board is written.
        group: u32,
        /// Publishing router's index within the group.
        local: u32,
        /// Sense-port index of the flag.
        port: u32,
        /// Message class of the flag.
        class: MessageClass,
        /// The saturation flag.
        sat: bool,
    },
}

/// Resolve a configured shard count: `0` auto-detects from the host's
/// available parallelism; any request is clamped to the router count
/// (a shard must own at least one router).
pub fn resolve_shards(requested: usize, routers: usize) -> usize {
    let n = if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    };
    n.clamp(1, routers.max(1))
}

/// Partition `routers` into `shards` contiguous, near-equal ranges (the
/// first `routers % shards` ranges get one extra router). Deterministic in
/// its inputs — the partition is part of the reproducibility contract.
/// The unaligned fallback of [`partition_topology`].
pub fn partition(routers: usize, shards: usize) -> Vec<Range<u32>> {
    debug_assert!(shards >= 1 && shards <= routers);
    let base = routers / shards;
    let rem = routers % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0u32;
    for s in 0..shards {
        let len = (base + usize::from(s < rem)) as u32;
        ranges.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start as usize, routers);
    ranges
}

/// Topology-aware shard partition: contiguous router ranges whose
/// boundaries land on [`Topology::partition_unit`] multiples (group /
/// plane boundaries, so no intra-group local link crosses a shard cut),
/// balanced by [`Topology::router_weight`] (ports + terminals) rather
/// than router count. Falls back to the count-balanced [`partition`] when
/// the topology offers no alignment or has fewer units than shards.
/// Deterministic in its inputs, like [`partition`].
pub fn partition_topology(topo: &dyn Topology, shards: usize) -> Vec<Range<u32>> {
    let nr = topo.num_routers();
    debug_assert!(shards >= 1 && shards <= nr);
    let unit = topo.partition_unit();
    if unit <= 1 || !nr.is_multiple_of(unit) || nr / unit < shards {
        return partition(nr, shards);
    }
    let units = nr / unit;
    #[cfg(debug_assertions)]
    for r in 0..nr {
        debug_assert_eq!(
            topo.group_of_router(r),
            r / unit,
            "partition_unit contract: groups must be contiguous id ranges"
        );
    }
    let weights: Vec<u64> = (0..units)
        .map(|u| {
            (u * unit..(u + 1) * unit)
                .map(|r| topo.router_weight(r))
                .sum()
        })
        .collect();
    balanced_units(&weights, shards)
        .into_iter()
        .map(|ur| (ur.start * unit) as u32..(ur.end * unit) as u32)
        .collect()
}

/// Split `weights` into exactly `k` contiguous non-empty segments
/// minimizing the maximum segment weight. Binary-searches the bottleneck
/// capacity `C` (feasibility by greedy first-fit), then packs greedily
/// against the optimal `C`, closing early where needed so every remaining
/// segment keeps at least one unit. Forced closes only ever occur when the
/// tail holds exactly one unit per remaining segment (each ≤ `C` since
/// `C ≥ max(weights)`), so no segment exceeds `C`.
fn balanced_units(weights: &[u64], k: usize) -> Vec<Range<usize>> {
    let n = weights.len();
    debug_assert!(k >= 1 && k <= n);
    let total: u64 = weights.iter().sum();
    let feasible = |cap: u64| {
        let mut segs = 1usize;
        let mut sum = 0u64;
        for &w in weights {
            if sum + w > cap {
                segs += 1;
                sum = w;
            } else {
                sum += w;
            }
        }
        segs <= k
    };
    let mut lo = weights
        .iter()
        .copied()
        .max()
        .unwrap_or(0)
        .max(total.div_ceil(k as u64));
    let mut hi = total;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if feasible(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let cap = lo;
    let mut ranges = Vec::with_capacity(k);
    let mut start = 0usize;
    let mut sum = 0u64;
    for (i, &w) in weights.iter().enumerate() {
        let remaining = k - ranges.len();
        if i > start && remaining > 1 && (sum + w > cap || n - i < remaining) {
            ranges.push(start..i);
            start = i;
            sum = 0;
        }
        sum += w;
    }
    ranges.push(start..n);
    debug_assert_eq!(ranges.len(), k);
    ranges
}

/// Epoch length cap λ for a partition: the minimum latency over cut
/// links, the hard floor below which no cross-shard packet or credit can
/// arrive. Board-using routing modes force per-cycle exchange (publishes
/// are not time-keyed — see the module docs); a cut-free partition
/// (`shards = 1`) leaves the epoch bounded only by the run window and
/// watchdog headroom.
fn epoch_lambda(cfg: &SimConfig, topo: &dyn Topology, owner: &[u32], shards: usize) -> u64 {
    if shards <= 1 {
        return u64::MAX;
    }
    if cfg.routing.uses_boards() {
        return 1;
    }
    let (cut_local, cut_global) = topo.cut_link_classes(owner);
    let mut lambda = u64::MAX;
    if cut_local {
        lambda = lambda.min(cfg.local_latency as u64);
    }
    if cut_global {
        lambda = lambda.min(cfg.global_latency as u64);
    }
    lambda.max(1)
}

/// Length of the epoch starting at `now`: the λ cap, the watchdog
/// headroom (see the module docs — intermediate cycles must provably not
/// fire), and the run window. `g_if`/`g_prog` are the exact global
/// reductions from the previous epoch's exchange, identical on every
/// shard, so all workers compute the same length.
fn epoch_len(now: u64, end: u64, lambda: u64, g_if: i64, g_prog: u64, watchdog: u64) -> u64 {
    let headroom = if g_if > 0 {
        g_prog
            .saturating_add(watchdog)
            .saturating_add(2)
            .saturating_sub(now)
    } else {
        watchdog.saturating_add(2)
    };
    lambda.min(headroom).min(end - now).max(1)
}

/// Per-epoch exchange state shared by the shard workers. All slot accesses
/// are ordered by the barrier (a store before a `wait` happens-before every
/// load after it), so `Relaxed` atomics suffice.
struct Exchange {
    /// Per-destination inboxes: `(source shard, sequence, event)`.
    inboxes: Vec<Mutex<Vec<(u32, u32, BoundaryEvent)>>>,
    /// Per-shard packets-in-flight contribution (signed: a shard ejecting
    /// packets injected elsewhere counts negative).
    in_flight: Vec<AtomicI64>,
    /// Per-shard latest-progress cycle.
    progress: Vec<AtomicU64>,
    /// Per-shard staged-reply count (drain mode only).
    staged: Vec<AtomicI64>,
    /// Per-shard wall-clock nanoseconds spent working (stepping, dispatch,
    /// absorb) as opposed to waiting at barriers — the imbalance signal.
    work_nanos: Vec<AtomicU64>,
    /// Two waits per epoch: after dispatch, after completion.
    barrier: Barrier,
    /// Drain verdict (written by shard 0; all shards compute the same).
    pending: AtomicI64,
}

impl Exchange {
    fn new(shards: usize) -> Self {
        Exchange {
            inboxes: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            in_flight: (0..shards).map(|_| AtomicI64::new(0)).collect(),
            progress: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            staged: (0..shards).map(|_| AtomicI64::new(0)).collect(),
            work_nanos: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            barrier: Barrier::new(shards),
            pending: AtomicI64::new(0),
        }
    }

    fn global_in_flight(&self) -> i64 {
        self.in_flight
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .sum()
    }

    fn global_progress(&self) -> u64 {
        self.progress
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0)
    }
}

/// Per-shard execution statistics (machine timing — deliberately kept out
/// of [`SimResult`], whose contents are shard-invariant).
#[derive(Debug, Clone)]
pub struct ShardStats {
    /// Contiguous router range this shard owns.
    pub routers: Range<u32>,
    /// Partition weight of the range (ports + terminals; see
    /// [`Topology::router_weight`]).
    pub weight: u64,
    /// Wall-clock seconds this shard's worker spent doing work (stepping,
    /// dispatching, absorbing) across all `run`/`drain` calls — barrier
    /// wait time excluded. `max / mean` across shards is the load
    /// imbalance.
    pub work_seconds: f64,
}

/// A simulation partitioned across shard workers, bit-identical to the
/// single-engine [`Network`] for any shard count (see the module docs).
pub struct ShardedNetwork {
    shards: Vec<Network>,
    /// Router -> owning shard.
    owner: Vec<u32>,
    /// Epoch cap λ (minimum cut-link latency; see [`epoch_lambda`]).
    lambda: u64,
    /// Per-shard partition info and accumulated work time.
    stats: Vec<ShardStats>,
    offered: f64,
    nodes: usize,
}

impl ShardedNetwork {
    /// Build a sharded simulation for `cfg` (shard count from
    /// [`SimConfig::shards`](crate::SimConfig), `0` = auto-detect) at
    /// offered load `load` with deterministic `seed`. Results do not depend
    /// on the shard count; wall-clock time does.
    pub fn new(cfg: SimConfig, load: f64, seed: u64) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let topo = cfg.topology.build();
        Ok(Self::build(cfg, load, seed, topo))
    }

    /// Like [`ShardedNetwork::new`] with a pre-built topology (shared, not
    /// rebuilt per shard or per sweep point).
    pub fn with_topology(
        cfg: SimConfig,
        load: f64,
        seed: u64,
        topo: Arc<dyn Topology>,
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        Ok(Self::build(cfg, load, seed, topo))
    }

    fn build(cfg: SimConfig, load: f64, seed: u64, topo: Arc<dyn Topology>) -> Self {
        let nr = topo.num_routers();
        let n = resolve_shards(cfg.shards, nr);
        let ranges = partition_topology(topo.as_ref(), n);
        let mut owner = vec![0u32; nr];
        for (s, range) in ranges.iter().enumerate() {
            for r in range.clone() {
                owner[r as usize] = s as u32;
            }
        }
        let lambda = epoch_lambda(&cfg, topo.as_ref(), &owner, n);
        let stats = ranges
            .iter()
            .map(|range| ShardStats {
                routers: range.clone(),
                weight: range.clone().map(|r| topo.router_weight(r as usize)).sum(),
                work_seconds: 0.0,
            })
            .collect();
        let nodes = topo.num_nodes();
        let shards = ranges
            .into_iter()
            .map(|range| Network::new_shard(cfg.clone(), load, seed, Arc::clone(&topo), range))
            .collect();
        ShardedNetwork {
            shards,
            owner,
            lambda,
            stats,
            offered: load,
            nodes,
        }
    }

    /// Number of worker shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Current cycle (all shards advance in lockstep).
    pub fn cycle(&self) -> u64 {
        self.shards[0].cycle()
    }

    /// Whether the watchdog flagged a deadlock (identically on all shards).
    pub fn deadlocked(&self) -> bool {
        self.shards[0].deadlocked()
    }

    /// Packets currently in queues, buffers or links, network-wide.
    pub fn packets_in_flight(&self) -> i64 {
        self.shards.iter().map(|s| s.packets_in_flight()).sum()
    }

    /// The epoch cap λ: the most cycles any shard may free-run between
    /// boundary exchanges (`u64::MAX` when no link crosses the partition).
    pub fn epoch_cycles(&self) -> u64 {
        self.lambda
    }

    /// Per-shard partition info and accumulated work time (see
    /// [`ShardStats`]).
    pub fn shard_stats(&self) -> &[ShardStats] {
        &self.stats
    }

    /// Run to completion and aggregate the result (exact counter merge —
    /// bit-identical to the single-engine run).
    pub fn run(&mut self) -> SimResult {
        let cfg = self.shards[0].config();
        let (warmup, measure) = (cfg.warmup, cfg.measure);
        self.advance(warmup + measure, false);
        let cycles = self.cycle().saturating_sub(warmup).min(measure);
        let mut merged = self.merged_metrics();
        merged.cycles = cycles;
        SimResult::from_metrics(&merged, self.offered, self.nodes)
    }

    /// Mute the traffic generators and step until every in-flight packet
    /// (including staged replies) is consumed, `max_cycles` elapse, or the
    /// watchdog fires. Returns the packets still pending — the sharded
    /// counterpart of [`Network::drain`]'s conservation check.
    pub fn drain(&mut self, max_cycles: u64) -> i64 {
        for shard in &mut self.shards {
            shard.begin_drain();
        }
        let end = self.cycle().saturating_add(max_cycles);
        self.advance(end, true)
    }

    fn merged_metrics(&self) -> Metrics {
        let mut merged = self.shards[0].metrics().clone();
        for shard in &self.shards[1..] {
            merged.absorb(shard.metrics());
        }
        merged
    }

    /// Drive all shards to cycle `end` (or drain completion / deadlock),
    /// one worker thread per shard, two barriers per epoch. Returns the
    /// drain verdict (pending packets) in drain mode, 0 otherwise.
    fn advance(&mut self, end: u64, draining: bool) -> i64 {
        let shards = self.shards.len();
        let ex = Exchange::new(shards);
        let owner = &self.owner;
        let lambda = self.lambda;
        std::thread::scope(|scope| {
            for (s, net) in self.shards.iter_mut().enumerate() {
                let ex = &ex;
                scope.spawn(move || {
                    if draining {
                        let pending = drain_worker(net, s, owner, ex, end);
                        if s == 0 {
                            ex.pending.store(pending, Ordering::Relaxed);
                        }
                    } else {
                        run_worker(net, s, owner, ex, end, lambda);
                    }
                });
            }
        });
        for (s, stat) in self.stats.iter_mut().enumerate() {
            stat.work_seconds += ex.work_nanos[s].load(Ordering::Relaxed) as f64 * 1e-9;
        }
        ex.pending.load(Ordering::Relaxed)
    }
}

/// Route an epoch's outbox into the per-destination inboxes. Events are
/// tagged `(source shard, emission sequence)` so receivers can sort into
/// the canonical order; board publishes broadcast to every other shard.
fn dispatch(
    net: &mut Network,
    s: usize,
    owner: &[u32],
    ex: &Exchange,
    batches: &mut [Vec<(u32, u32, BoundaryEvent)>],
) {
    let mut out = net.take_outbox();
    for (seq, ev) in out.drain(..).enumerate() {
        let seq = seq as u32;
        if ev.dst == u32::MAX {
            let BoundaryPayload::Board {
                group,
                local,
                port,
                class,
                sat,
            } = ev.payload
            else {
                unreachable!("only board publishes broadcast");
            };
            for (d, batch) in batches.iter_mut().enumerate() {
                if d != s {
                    batch.push((
                        s as u32,
                        seq,
                        BoundaryEvent {
                            at: ev.at,
                            lid: ev.lid,
                            dst: u32::MAX,
                            payload: BoundaryPayload::Board {
                                group,
                                local,
                                port,
                                class,
                                sat,
                            },
                        },
                    ));
                }
            }
        } else {
            let d = owner[ev.dst as usize] as usize;
            debug_assert_ne!(d, s, "boundary event addressed to its own shard");
            batches[d].push((s as u32, seq, ev));
        }
    }
    net.put_outbox(out);
    for (d, batch) in batches.iter_mut().enumerate() {
        if !batch.is_empty() {
            ex.inboxes[d].lock().expect("inbox poisoned").append(batch);
        }
    }
}

/// Sort this shard's inbox into the canonical (cycle, link, source, seq)
/// order and apply it, then complete cycle `now` (the epoch's last) with
/// the global reductions. Returns the globals so the next epoch's length
/// can be computed identically on every shard.
fn absorb_and_finish(net: &mut Network, s: usize, ex: &Exchange, now: u64) -> (i64, u64) {
    let mut inbox = std::mem::take(&mut *ex.inboxes[s].lock().expect("inbox poisoned"));
    inbox.sort_by_key(|&(src, seq, ref ev)| (ev.at, ev.lid, src, seq));
    for (_, _, ev) in inbox.drain(..) {
        net.apply_boundary(now, ev);
    }
    // Give the buffer back for reuse; only this shard touches its inbox
    // between the two barriers.
    *ex.inboxes[s].lock().expect("inbox poisoned") = inbox;
    let g_if = ex.global_in_flight();
    let g_prog = ex.global_progress();
    net.finish_cycle_shard(now, g_if, g_prog);
    (g_if, g_prog)
}

fn run_worker(net: &mut Network, s: usize, owner: &[u32], ex: &Exchange, end: u64, lambda: u64) {
    let mut batches: Vec<Vec<(u32, u32, BoundaryEvent)>> =
        (0..ex.inboxes.len()).map(|_| Vec::new()).collect();
    let watchdog = net.config().watchdog;
    let mut work = Duration::ZERO;
    // Globals from the previous epoch's reduction — exact on entry (a
    // fresh network has nothing in flight and no progress recorded), and
    // identical on every shard, so all workers agree on every epoch
    // length and barrier participation stays consistent.
    let mut g_if: i64 = 0;
    let mut g_prog: u64 = 0;
    loop {
        let now = net.cycle();
        if now >= end || net.deadlocked() {
            break;
        }
        let e = epoch_len(now, end, lambda, g_if, g_prog, watchdog);
        let last = now + e - 1;
        let t = Instant::now();
        net.step_epoch_shard(now, e);
        dispatch(net, s, owner, ex, &mut batches);
        ex.in_flight[s].store(net.packets_in_flight(), Ordering::Relaxed);
        ex.progress[s].store(net.last_progress(), Ordering::Relaxed);
        work += t.elapsed();
        ex.barrier.wait();
        let t = Instant::now();
        (g_if, g_prog) = absorb_and_finish(net, s, ex, last);
        work += t.elapsed();
        ex.barrier.wait();
    }
    ex.work_nanos[s].fetch_add(work.as_nanos() as u64, Ordering::Relaxed);
}

/// Drain loop: per-cycle epochs (the stop predicate is evaluated every
/// cycle, mirroring [`Network::drain`]) plus the conservation check.
/// Staged replies are only counted once the network itself is empty,
/// using the *global* in-flight total from the previous cycle's reduction
/// so every shard evaluates the same predicate.
fn drain_worker(net: &mut Network, s: usize, owner: &[u32], ex: &Exchange, end: u64) -> i64 {
    let mut batches: Vec<Vec<(u32, u32, BoundaryEvent)>> =
        (0..ex.inboxes.len()).map(|_| Vec::new()).collect();
    let mut work = Duration::ZERO;
    ex.in_flight[s].store(net.packets_in_flight(), Ordering::Relaxed);
    ex.barrier.wait();
    let mut g_if = ex.global_in_flight();
    let pending = loop {
        let now = net.cycle();
        let staged = if g_if > 0 { 0 } else { net.staged_pending() };
        ex.staged[s].store(staged, Ordering::Relaxed);
        ex.barrier.wait();
        let staged_total: i64 = ex.staged.iter().map(|a| a.load(Ordering::Relaxed)).sum();
        let pending = g_if + staged_total;
        if pending == 0 || now >= end || net.deadlocked() {
            break pending;
        }
        let t = Instant::now();
        net.step_epoch_shard(now, 1);
        dispatch(net, s, owner, ex, &mut batches);
        ex.in_flight[s].store(net.packets_in_flight(), Ordering::Relaxed);
        ex.progress[s].store(net.last_progress(), Ordering::Relaxed);
        work += t.elapsed();
        ex.barrier.wait();
        let t = Instant::now();
        (g_if, _) = absorb_and_finish(net, s, ex, now);
        work += t.elapsed();
        ex.barrier.wait();
    };
    ex.work_nanos[s].fetch_add(work.as_nanos() as u64, Ordering::Relaxed);
    pending
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_contiguous_and_balanced() {
        let ranges = partition(10, 3);
        assert_eq!(ranges, vec![0..4, 4..7, 7..10]);
        let ranges = partition(4, 4);
        assert_eq!(ranges, vec![0..1, 1..2, 2..3, 3..4]);
        let ranges = partition(7, 1);
        assert_eq!(ranges, vec![0..7]);
    }

    #[test]
    fn resolve_clamps_to_router_count() {
        assert_eq!(resolve_shards(8, 3), 3);
        assert_eq!(resolve_shards(2, 100), 2);
        assert_eq!(resolve_shards(1, 1), 1);
        assert!(resolve_shards(0, 1_000_000) >= 1);
    }

    #[test]
    fn resolve_auto_detects_and_clamps() {
        // Auto mode (0) must yield something in [1, routers] regardless of
        // the host's core count.
        for routers in [1, 2, 3, 1_000_000] {
            let n = resolve_shards(0, routers);
            assert!(n >= 1 && n <= routers, "auto gave {n} for {routers}");
        }
        // Clamp floor: zero routers still resolves to one shard.
        assert_eq!(resolve_shards(0, 0), 1);
        assert_eq!(resolve_shards(5, 0), 1);
    }

    #[test]
    fn balanced_units_is_minmax_and_exact() {
        // Exactly k non-empty contiguous segments covering all units.
        let w = [5, 5, 1, 1];
        let r = balanced_units(&w, 3);
        assert_eq!(r, vec![0..1, 1..2, 2..4]);
        // Forced closes keep every remaining segment non-empty.
        let r = balanced_units(&[1, 1, 10], 3);
        assert_eq!(r, vec![0..1, 1..2, 2..3]);
        // Uniform weights reduce to near-equal counts.
        let r = balanced_units(&[2; 10], 4);
        let max = r.iter().map(|s| s.len()).max().unwrap();
        assert!(max <= 3);
        assert_eq!(r.iter().map(|s| s.len()).sum::<usize>(), 10);
        // Single segment swallows everything.
        assert_eq!(balanced_units(&[3, 4, 5], 1), vec![0..3]);
    }

    #[test]
    fn epoch_len_respects_caps() {
        // λ dominates when the window and watchdog allow.
        assert_eq!(epoch_len(0, 1_000, 100, 0, 0, 10_000), 100);
        // The run window truncates the last epoch.
        assert_eq!(epoch_len(950, 1_000, 100, 0, 0, 10_000), 50);
        // Stale progress with packets in flight shrinks the epoch...
        assert_eq!(epoch_len(10_000, 20_000, 100, 5, 500, 10_000), 100);
        assert_eq!(epoch_len(10_450, 20_000, 100, 5, 500, 10_000), 52);
        // ...down to per-cycle exchange near the firing threshold.
        assert_eq!(epoch_len(10_502, 20_000, 100, 5, 500, 10_000), 1);
        assert_eq!(epoch_len(15_000, 20_000, 100, 5, 500, 10_000), 1);
        // Idle networks only need the injection-progress bound.
        assert_eq!(epoch_len(15_000, 20_000, u64::MAX, 0, 500, 100), 102);
    }
}
