//! Deterministic sharded execution: engine-level parallelism.
//!
//! A [`ShardedNetwork`] partitions the routers of one simulation across N
//! worker shards — distinct from the [`crate::runner`]'s *per-point*
//! threading, which parallelizes independent simulations. Each shard is a
//! full [`Network`] instance that owns a contiguous router range: its
//! routers' timing wheels, worklists, buffer banks and credit mirrors live
//! only there, while the flat pools keep global indexing (foreign slots
//! exist but are empty and never touched).
//!
//! # The per-cycle boundary exchange
//!
//! Within a cycle every phase is router-local (see the engine's module
//! docs: iteration order across routers is independent by construction).
//! The only effects that cross a shard cut are:
//!
//! * **packet transmits** whose receiving router is foreign — the
//!   [`InFlight`] record ships to the receiver's link replica, arriving at
//!   `now + latency`;
//! * **credit returns** whose upstream router is foreign — the credit
//!   arrives at `t_c + latency`, strictly beyond the current cycle;
//! * **Piggyback board publishes** — replicated to every shard's board
//!   copy, becoming visible only at the next board tick.
//!
//! All three take effect strictly *after* the cycle that emits them, so
//! shards can run a whole cycle without communicating, then exchange. Each
//! cycle runs in three steps:
//!
//! ```text
//!   shard 0:  [phases 1..7]──outbox──┐          ┌─sort──apply──finish┐
//!   shard 1:  [phases 1..7]──outbox──┼─barrier──┼─sort──apply──finish┼─barrier─▶ next cycle
//!   shard 2:  [phases 1..7]──outbox──┘          └─sort──apply──finish┘
//! ```
//!
//! 1. every shard steps phases 1–7 of cycle `t` on its own routers and
//!    routes its boundary events to per-destination inboxes;
//! 2. barrier — then every shard sorts its inbox by the canonical
//!    **(cycle, link-id, source-shard, sequence)** key and applies it;
//! 3. every shard computes the same global reductions (total packets in
//!    flight, latest progress cycle), completes the cycle (board tick,
//!    watchdog, `t += 1`), and a second barrier releases cycle `t + 1`.
//!
//! # Why results are bit-identical to `shards = 1`
//!
//! The sort key makes the exchange deterministic, and the *application
//! order* of boundary events is behavior-neutral on top of that:
//!
//! * each directed link has exactly one transmitting router and one
//!   receiving router, so all `Packet` events for a link come from one
//!   shard and are applied in emission order — the order the receiving
//!   link queue would have seen locally;
//! * all `Credit` events for a link originate from the single downstream
//!   input port feeding it, whose serialization makes departure cycles
//!   strictly monotonic — same argument;
//! * `Board` publishes within a cycle target distinct cells (one router
//!   publishes each cell) and overwrite, so they commute.
//!
//! Since every cross-shard effect lands at a future cycle and intra-cycle
//! state never crosses the cut, the sharded schedule is a reordering of
//! *commuting* operations of the single-engine schedule: counters, RNG
//! draw sequences and arbiter states evolve identically for any shard
//! count, including 1. `tests/engine_equivalence.rs` asserts this exactly
//! (`SimResult` JSON equality) over every recorded golden.

use crate::config::SimConfig;
use crate::engine::Network;
use crate::error::ConfigError;
use crate::link::InFlight;
use crate::metrics::{Metrics, SimResult};
use flexvc_core::{CreditClass, MessageClass};
use flexvc_topology::Topology;
use std::ops::Range;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::sync::{Barrier, Mutex};

/// An effect crossing a shard boundary, exchanged at end of cycle.
#[derive(Debug)]
pub(crate) struct BoundaryEvent {
    /// Effect cycle (head/credit arrival; publish cycle for boards).
    pub at: u64,
    /// Flat link id the effect applies to (0 for board publishes).
    pub lid: u32,
    /// Receiving router (owner = destination shard); `u32::MAX` broadcasts
    /// to every other shard (board publishes).
    pub dst: u32,
    /// The effect itself.
    pub payload: BoundaryPayload,
}

/// Payload of a [`BoundaryEvent`].
#[derive(Debug)]
pub(crate) enum BoundaryPayload {
    /// A packet in flight toward a foreign router's input port, with its
    /// flow tag (if any): flow identity lives in an engine-side table, so
    /// the tag migrates to the shard that will eject the packet.
    Packet {
        /// The in-flight link record.
        flight: InFlight,
        /// The packet's flow tag under flow workloads.
        flow: Option<flexvc_traffic::FlowTag>,
    },
    /// A credit returning to a foreign router's credit mirror.
    Credit {
        /// VC whose space is released.
        vc: u8,
        /// Phits released.
        phits: u32,
        /// Routing type of the released packet.
        class: CreditClass,
    },
    /// A Piggyback saturation-flag publish, replicated to all shards.
    Board {
        /// Group whose board is written.
        group: u32,
        /// Publishing router's index within the group.
        local: u32,
        /// Sense-port index of the flag.
        port: u32,
        /// Message class of the flag.
        class: MessageClass,
        /// The saturation flag.
        sat: bool,
    },
}

/// Resolve a configured shard count: `0` auto-detects from the host's
/// available parallelism; any request is clamped to the router count
/// (a shard must own at least one router).
pub fn resolve_shards(requested: usize, routers: usize) -> usize {
    let n = if requested == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        requested
    };
    n.clamp(1, routers.max(1))
}

/// Partition `routers` into `shards` contiguous, near-equal ranges (the
/// first `routers % shards` ranges get one extra router). Deterministic in
/// its inputs — the partition is part of the reproducibility contract.
pub fn partition(routers: usize, shards: usize) -> Vec<Range<u32>> {
    debug_assert!(shards >= 1 && shards <= routers);
    let base = routers / shards;
    let rem = routers % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0u32;
    for s in 0..shards {
        let len = (base + usize::from(s < rem)) as u32;
        ranges.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start as usize, routers);
    ranges
}

/// Per-cycle exchange state shared by the shard workers. All slot accesses
/// are ordered by the barrier (a store before a `wait` happens-before every
/// load after it), so `Relaxed` atomics suffice.
struct Exchange {
    /// Per-destination inboxes: `(source shard, sequence, event)`.
    inboxes: Vec<Mutex<Vec<(u32, u32, BoundaryEvent)>>>,
    /// Per-shard packets-in-flight contribution (signed: a shard ejecting
    /// packets injected elsewhere counts negative).
    in_flight: Vec<AtomicI64>,
    /// Per-shard latest-progress cycle.
    progress: Vec<AtomicU64>,
    /// Per-shard staged-reply count (drain mode only).
    staged: Vec<AtomicI64>,
    /// Two waits per cycle: after dispatch, after completion.
    barrier: Barrier,
    /// Drain verdict (written by shard 0; all shards compute the same).
    pending: AtomicI64,
}

impl Exchange {
    fn new(shards: usize) -> Self {
        Exchange {
            inboxes: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            in_flight: (0..shards).map(|_| AtomicI64::new(0)).collect(),
            progress: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            staged: (0..shards).map(|_| AtomicI64::new(0)).collect(),
            barrier: Barrier::new(shards),
            pending: AtomicI64::new(0),
        }
    }

    fn global_in_flight(&self) -> i64 {
        self.in_flight
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .sum()
    }

    fn global_progress(&self) -> u64 {
        self.progress
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .max()
            .unwrap_or(0)
    }
}

/// A simulation partitioned across shard workers, bit-identical to the
/// single-engine [`Network`] for any shard count (see the module docs).
pub struct ShardedNetwork {
    shards: Vec<Network>,
    /// Router -> owning shard.
    owner: Vec<u32>,
    offered: f64,
    nodes: usize,
}

impl ShardedNetwork {
    /// Build a sharded simulation for `cfg` (shard count from
    /// [`SimConfig::shards`](crate::SimConfig), `0` = auto-detect) at
    /// offered load `load` with deterministic `seed`. Results do not depend
    /// on the shard count; wall-clock time does.
    pub fn new(cfg: SimConfig, load: f64, seed: u64) -> Result<Self, ConfigError> {
        cfg.validate()?;
        let topo = cfg.topology.build();
        Ok(Self::build(cfg, load, seed, topo))
    }

    /// Like [`ShardedNetwork::new`] with a pre-built topology (shared, not
    /// rebuilt per shard or per sweep point).
    pub fn with_topology(
        cfg: SimConfig,
        load: f64,
        seed: u64,
        topo: Arc<dyn Topology>,
    ) -> Result<Self, ConfigError> {
        cfg.validate()?;
        Ok(Self::build(cfg, load, seed, topo))
    }

    fn build(cfg: SimConfig, load: f64, seed: u64, topo: Arc<dyn Topology>) -> Self {
        let nr = topo.num_routers();
        let n = resolve_shards(cfg.shards, nr);
        let ranges = partition(nr, n);
        let mut owner = vec![0u32; nr];
        for (s, range) in ranges.iter().enumerate() {
            for r in range.clone() {
                owner[r as usize] = s as u32;
            }
        }
        let nodes = topo.num_nodes();
        let shards = ranges
            .into_iter()
            .map(|range| Network::new_shard(cfg.clone(), load, seed, Arc::clone(&topo), range))
            .collect();
        ShardedNetwork {
            shards,
            owner,
            offered: load,
            nodes,
        }
    }

    /// Number of worker shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Current cycle (all shards advance in lockstep).
    pub fn cycle(&self) -> u64 {
        self.shards[0].cycle()
    }

    /// Whether the watchdog flagged a deadlock (identically on all shards).
    pub fn deadlocked(&self) -> bool {
        self.shards[0].deadlocked()
    }

    /// Packets currently in queues, buffers or links, network-wide.
    pub fn packets_in_flight(&self) -> i64 {
        self.shards.iter().map(|s| s.packets_in_flight()).sum()
    }

    /// Run to completion and aggregate the result (exact counter merge —
    /// bit-identical to the single-engine run).
    pub fn run(&mut self) -> SimResult {
        let cfg = self.shards[0].config();
        let (warmup, measure) = (cfg.warmup, cfg.measure);
        self.advance(warmup + measure, false);
        let cycles = self.cycle().saturating_sub(warmup).min(measure);
        let mut merged = self.merged_metrics();
        merged.cycles = cycles;
        SimResult::from_metrics(&merged, self.offered, self.nodes)
    }

    /// Mute the traffic generators and step until every in-flight packet
    /// (including staged replies) is consumed, `max_cycles` elapse, or the
    /// watchdog fires. Returns the packets still pending — the sharded
    /// counterpart of [`Network::drain`]'s conservation check.
    pub fn drain(&mut self, max_cycles: u64) -> i64 {
        for shard in &mut self.shards {
            shard.begin_drain();
        }
        let end = self.cycle().saturating_add(max_cycles);
        self.advance(end, true)
    }

    fn merged_metrics(&self) -> Metrics {
        let mut merged = self.shards[0].metrics().clone();
        for shard in &self.shards[1..] {
            merged.absorb(shard.metrics());
        }
        merged
    }

    /// Drive all shards to cycle `end` (or drain completion / deadlock),
    /// one worker thread per shard, two barriers per cycle. Returns the
    /// drain verdict (pending packets) in drain mode, 0 otherwise.
    fn advance(&mut self, end: u64, draining: bool) -> i64 {
        let shards = self.shards.len();
        let ex = Exchange::new(shards);
        let owner = &self.owner;
        std::thread::scope(|scope| {
            for (s, net) in self.shards.iter_mut().enumerate() {
                let ex = &ex;
                scope.spawn(move || {
                    if draining {
                        let pending = drain_worker(net, s, owner, ex, end);
                        if s == 0 {
                            ex.pending.store(pending, Ordering::Relaxed);
                        }
                    } else {
                        run_worker(net, s, owner, ex, end);
                    }
                });
            }
        });
        ex.pending.load(Ordering::Relaxed)
    }
}

/// Route one cycle's outbox into the per-destination inboxes. Events are
/// tagged `(source shard, emission sequence)` so receivers can sort into
/// the canonical order; board publishes broadcast to every other shard.
fn dispatch(
    net: &mut Network,
    s: usize,
    owner: &[u32],
    ex: &Exchange,
    batches: &mut [Vec<(u32, u32, BoundaryEvent)>],
) {
    let mut out = net.take_outbox();
    for (seq, ev) in out.drain(..).enumerate() {
        let seq = seq as u32;
        if ev.dst == u32::MAX {
            let BoundaryPayload::Board {
                group,
                local,
                port,
                class,
                sat,
            } = ev.payload
            else {
                unreachable!("only board publishes broadcast");
            };
            for (d, batch) in batches.iter_mut().enumerate() {
                if d != s {
                    batch.push((
                        s as u32,
                        seq,
                        BoundaryEvent {
                            at: ev.at,
                            lid: ev.lid,
                            dst: u32::MAX,
                            payload: BoundaryPayload::Board {
                                group,
                                local,
                                port,
                                class,
                                sat,
                            },
                        },
                    ));
                }
            }
        } else {
            let d = owner[ev.dst as usize] as usize;
            debug_assert_ne!(d, s, "boundary event addressed to its own shard");
            batches[d].push((s as u32, seq, ev));
        }
    }
    net.put_outbox(out);
    for (d, batch) in batches.iter_mut().enumerate() {
        if !batch.is_empty() {
            ex.inboxes[d].lock().expect("inbox poisoned").append(batch);
        }
    }
}

/// Sort this shard's inbox into the canonical (cycle, link, source, seq)
/// order and apply it, then complete the cycle with the global reductions.
fn absorb_and_finish(net: &mut Network, s: usize, ex: &Exchange, now: u64) -> i64 {
    let mut inbox = std::mem::take(&mut *ex.inboxes[s].lock().expect("inbox poisoned"));
    inbox.sort_by_key(|&(src, seq, ref ev)| (ev.at, ev.lid, src, seq));
    for (_, _, ev) in inbox.drain(..) {
        net.apply_boundary(now, ev);
    }
    // Give the buffer back for reuse; only this shard touches its inbox
    // between the two barriers.
    *ex.inboxes[s].lock().expect("inbox poisoned") = inbox;
    let g_if = ex.global_in_flight();
    let g_prog = ex.global_progress();
    net.finish_cycle_shard(now, g_if, g_prog);
    g_if
}

fn run_worker(net: &mut Network, s: usize, owner: &[u32], ex: &Exchange, end: u64) {
    let mut batches: Vec<Vec<(u32, u32, BoundaryEvent)>> =
        (0..ex.inboxes.len()).map(|_| Vec::new()).collect();
    loop {
        let now = net.cycle();
        // All shards see identical `cycle` and `deadlocked`, so every
        // worker takes the same branch and barrier participation stays
        // consistent.
        if now >= end || net.deadlocked() {
            return;
        }
        net.step_shard(now);
        dispatch(net, s, owner, ex, &mut batches);
        ex.in_flight[s].store(net.packets_in_flight(), Ordering::Relaxed);
        ex.progress[s].store(net.last_progress(), Ordering::Relaxed);
        ex.barrier.wait();
        absorb_and_finish(net, s, ex, now);
        ex.barrier.wait();
    }
}

/// Drain loop: identical cycle structure plus the conservation check.
/// Mirrors [`Network::drain`]: staged replies are only counted once the
/// network itself is empty, using the *global* in-flight total from the
/// previous cycle's reduction so every shard evaluates the same predicate.
fn drain_worker(net: &mut Network, s: usize, owner: &[u32], ex: &Exchange, end: u64) -> i64 {
    let mut batches: Vec<Vec<(u32, u32, BoundaryEvent)>> =
        (0..ex.inboxes.len()).map(|_| Vec::new()).collect();
    ex.in_flight[s].store(net.packets_in_flight(), Ordering::Relaxed);
    ex.barrier.wait();
    let mut g_if = ex.global_in_flight();
    loop {
        let now = net.cycle();
        let staged = if g_if > 0 { 0 } else { net.staged_pending() };
        ex.staged[s].store(staged, Ordering::Relaxed);
        ex.barrier.wait();
        let staged_total: i64 = ex.staged.iter().map(|a| a.load(Ordering::Relaxed)).sum();
        let pending = g_if + staged_total;
        if pending == 0 || now >= end || net.deadlocked() {
            return pending;
        }
        net.step_shard(now);
        dispatch(net, s, owner, ex, &mut batches);
        ex.in_flight[s].store(net.packets_in_flight(), Ordering::Relaxed);
        ex.progress[s].store(net.last_progress(), Ordering::Relaxed);
        ex.barrier.wait();
        g_if = absorb_and_finish(net, s, ex, now);
        ex.barrier.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_contiguous_and_balanced() {
        let ranges = partition(10, 3);
        assert_eq!(ranges, vec![0..4, 4..7, 7..10]);
        let ranges = partition(4, 4);
        assert_eq!(ranges, vec![0..1, 1..2, 2..3, 3..4]);
        let ranges = partition(7, 1);
        assert_eq!(ranges, vec![0..7]);
    }

    #[test]
    fn resolve_clamps_to_router_count() {
        assert_eq!(resolve_shards(8, 3), 3);
        assert_eq!(resolve_shards(2, 100), 2);
        assert_eq!(resolve_shards(1, 1), 1);
        assert!(resolve_shards(0, 1_000_000) >= 1);
    }
}
