//! `flexvc_serde` conversions for simulator configuration and results.
//!
//! These impls let a whole experiment — [`SimConfig`] in, [`SimResult`]
//! out — round-trip through TOML and JSON. Field names mirror the struct
//! fields; tagged maps use a `kind` discriminator. Deserialization fills
//! Table V defaults for omitted scalar fields, so hand-written scenario
//! files only need to spell out what differs from the baseline.

use crate::config::{
    BufferConfig, BufferOrg, BufferSizing, ClassVcMap, QosConfig, SensingConfig, SensingMode,
    SimConfig, TopologySpec,
};
use crate::metrics::{ClassResult, LatencyHistogram, SimResult};
use flexvc_serde::{Deserialize, Error, Map, Serialize, Value};
use flexvc_topology::GlobalArrangement;

impl Serialize for TopologySpec {
    fn to_value(&self) -> Value {
        match *self {
            TopologySpec::DragonflyBalanced { h, arrangement } => Value::Map(
                Map::new()
                    .with("kind", Value::from("dragonfly_balanced"))
                    .with("h", h.to_value())
                    .with("global_arrangement", arrangement.to_value()),
            ),
            TopologySpec::Dragonfly {
                p,
                a,
                h,
                g,
                arrangement,
            } => Value::Map(
                Map::new()
                    .with("kind", Value::from("dragonfly"))
                    .with("p", p.to_value())
                    .with("a", a.to_value())
                    .with("h", h.to_value())
                    .with("g", g.to_value())
                    .with("global_arrangement", arrangement.to_value()),
            ),
            TopologySpec::FlatButterfly { k, p } => Value::Map(
                Map::new()
                    .with("kind", Value::from("flat_butterfly"))
                    .with("k", k.to_value())
                    .with("p", p.to_value()),
            ),
            TopologySpec::HyperX { ref dims, p } => {
                let s: Vec<usize> = dims.iter().map(|&(s, _)| s).collect();
                let k: Vec<usize> = dims.iter().map(|&(_, k)| k).collect();
                let mut m = Map::new()
                    .with("kind", Value::from("hyperx"))
                    .with("s", s.to_value());
                // `k` is noise when every dimension has unit multiplicity.
                if k.iter().any(|&k| k != 1) {
                    m.insert("k", k.to_value());
                }
                Value::Map(m.with("p", p.to_value()))
            }
            TopologySpec::DragonflyPlus {
                leaves,
                spines,
                hosts_per_leaf,
                global_mult,
                groups,
            } => {
                let mut m = Map::new()
                    .with("kind", Value::from("dragonfly_plus"))
                    .with("leaves", leaves.to_value())
                    .with("spines", spines.to_value())
                    .with("hosts_per_leaf", hosts_per_leaf.to_value());
                // `global_mult` is noise at the default single link per
                // group pair.
                if global_mult != 1 {
                    m.insert("global_mult", global_mult.to_value());
                }
                Value::Map(m.with("groups", groups.to_value()))
            }
        }
    }
}

impl Deserialize for TopologySpec {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = v.as_map()?;
        match m.field::<String>("kind")?.to_ascii_lowercase().as_str() {
            "dragonfly_balanced" => Ok(TopologySpec::DragonflyBalanced {
                h: m.field("h")?,
                arrangement: m.field_or("global_arrangement", GlobalArrangement::default())?,
            }),
            "dragonfly" => Ok(TopologySpec::Dragonfly {
                p: m.field("p")?,
                a: m.field("a")?,
                h: m.field("h")?,
                g: m.field("g")?,
                arrangement: m.field_or("global_arrangement", GlobalArrangement::default())?,
            }),
            "flat_butterfly" => Ok(TopologySpec::FlatButterfly {
                k: m.field("k")?,
                p: m.field("p")?,
            }),
            "hyperx" => {
                let s: Vec<usize> = m.field("s")?;
                let k: Vec<usize> = m.field_or("k", vec![1; s.len()])?;
                if k.len() != s.len() {
                    return Err(Error::new(format!(
                        "hyperx `k` has {} entries but `s` has {}",
                        k.len(),
                        s.len()
                    )));
                }
                Ok(TopologySpec::HyperX {
                    dims: s.into_iter().zip(k).collect(),
                    p: m.field("p")?,
                })
            }
            "dragonfly_plus" | "dragonflyplus" | "megafly" => Ok(TopologySpec::DragonflyPlus {
                leaves: m.field("leaves")?,
                spines: m.field("spines")?,
                hosts_per_leaf: m.field("hosts_per_leaf")?,
                global_mult: m.field_or("global_mult", 1)?,
                groups: m.field("groups")?,
            }),
            other => Err(Error::new(format!(
                "unknown topology kind `{other}` \
                 (expected dragonfly_balanced, dragonfly, flat_butterfly, hyperx \
                 or dragonfly_plus)"
            ))),
        }
    }
}

impl Serialize for BufferSizing {
    fn to_value(&self) -> Value {
        let (kind, local, global) = match *self {
            BufferSizing::PerVc { local, global } => ("per_vc", local, global),
            BufferSizing::PerPort { local, global } => ("per_port", local, global),
        };
        Value::Map(
            Map::new()
                .with("kind", Value::from(kind))
                .with("local", local.to_value())
                .with("global", global.to_value()),
        )
    }
}

impl Deserialize for BufferSizing {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = v.as_map()?;
        let local = m.field("local")?;
        let global = m.field("global")?;
        match m.field::<String>("kind")?.to_ascii_lowercase().as_str() {
            "per_vc" => Ok(BufferSizing::PerVc { local, global }),
            "per_port" => Ok(BufferSizing::PerPort { local, global }),
            other => Err(Error::new(format!(
                "unknown buffer sizing `{other}` (expected per_vc or per_port)"
            ))),
        }
    }
}

impl Serialize for BufferOrg {
    fn to_value(&self) -> Value {
        match *self {
            BufferOrg::Static => Value::Str("static".to_string()),
            BufferOrg::Damq { private_fraction } => Value::Map(
                Map::new()
                    .with("kind", Value::from("damq"))
                    .with("private_fraction", private_fraction.to_value()),
            ),
        }
    }
}

impl Deserialize for BufferOrg {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => match s.to_ascii_lowercase().as_str() {
                "static" => Ok(BufferOrg::Static),
                "damq" => Ok(BufferOrg::Damq {
                    private_fraction: 0.75,
                }),
                other => Err(Error::new(format!(
                    "unknown buffer organization `{other}` (expected static or damq)"
                ))),
            },
            Value::Map(m) => match m.field::<String>("kind")?.to_ascii_lowercase().as_str() {
                "static" => Ok(BufferOrg::Static),
                "damq" => Ok(BufferOrg::Damq {
                    private_fraction: m.field_or("private_fraction", 0.75)?,
                }),
                other => Err(Error::new(format!(
                    "unknown buffer organization `{other}` (expected static or damq)"
                ))),
            },
            other => Err(Error::new(format!(
                "expected string or map for buffer organization, got {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for BufferConfig {
    fn to_value(&self) -> Value {
        Value::Map(
            Map::new()
                .with("sizing", self.sizing.to_value())
                .with("organization", self.organization.to_value())
                .with("injection", self.injection.to_value())
                .with("output", self.output.to_value()),
        )
    }
}

impl Deserialize for BufferConfig {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = v.as_map()?;
        let defaults = BufferConfig::default();
        Ok(BufferConfig {
            sizing: m.field_or("sizing", defaults.sizing)?,
            organization: m.field_or("organization", defaults.organization)?,
            injection: m.field_or("injection", defaults.injection)?,
            output: m.field_or("output", defaults.output)?,
        })
    }
}

impl Serialize for SensingMode {
    fn to_value(&self) -> Value {
        Value::Str(
            match self {
                SensingMode::PerPort => "per_port",
                SensingMode::PerVc => "per_vc",
            }
            .to_string(),
        )
    }
}

impl Deserialize for SensingMode {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v.as_str()?.to_ascii_lowercase().as_str() {
            "per_port" => Ok(SensingMode::PerPort),
            "per_vc" => Ok(SensingMode::PerVc),
            other => Err(Error::new(format!(
                "unknown sensing mode `{other}` (expected per_port or per_vc)"
            ))),
        }
    }
}

impl Serialize for SensingConfig {
    fn to_value(&self) -> Value {
        Value::Map(
            Map::new()
                .with("mode", self.mode.to_value())
                .with("min_cred", self.min_cred.to_value())
                .with("threshold", self.threshold.to_value()),
        )
    }
}

impl Deserialize for SensingConfig {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = v.as_map()?;
        let defaults = SensingConfig::default();
        Ok(SensingConfig {
            mode: m.field_or("mode", defaults.mode)?,
            min_cred: m.field_or("min_cred", defaults.min_cred)?,
            threshold: m.field_or("threshold", defaults.threshold)?,
        })
    }
}

impl Serialize for ClassVcMap {
    fn to_value(&self) -> Value {
        match *self {
            ClassVcMap::Shared => Value::Str("shared".to_string()),
            ClassVcMap::Partitioned {
                control_local,
                control_global,
            } => Value::Map(
                Map::new()
                    .with("kind", Value::from("partitioned"))
                    .with("control_local", control_local.to_value())
                    .with("control_global", control_global.to_value()),
            ),
        }
    }
}

impl Deserialize for ClassVcMap {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => match s.to_ascii_lowercase().as_str() {
                "shared" => Ok(ClassVcMap::Shared),
                other => Err(Error::new(format!(
                    "unknown class VC map `{other}` (expected shared or a partitioned map)"
                ))),
            },
            Value::Map(m) => match m.field::<String>("kind")?.to_ascii_lowercase().as_str() {
                "shared" => Ok(ClassVcMap::Shared),
                "partitioned" => Ok(ClassVcMap::Partitioned {
                    control_local: m.field("control_local")?,
                    control_global: m.field("control_global")?,
                }),
                other => Err(Error::new(format!(
                    "unknown class VC map kind `{other}` (expected shared or partitioned)"
                ))),
            },
            other => Err(Error::new(format!(
                "expected string or map for class VC map, got {}",
                other.type_name()
            ))),
        }
    }
}

impl Serialize for QosConfig {
    fn to_value(&self) -> Value {
        Value::Map(
            Map::new()
                .with("vc_map", self.vc_map.to_value())
                .with("bypass_bound", self.bypass_bound.to_value())
                .with("repartition", self.repartition.to_value())
                .with(
                    "control_quota_fraction",
                    self.control_quota_fraction.to_value(),
                ),
        )
    }
}

impl Deserialize for QosConfig {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = v.as_map()?;
        let defaults = QosConfig::default();
        Ok(QosConfig {
            vc_map: m.field_or("vc_map", defaults.vc_map)?,
            bypass_bound: m.field_or("bypass_bound", defaults.bypass_bound)?,
            repartition: m.field_or("repartition", defaults.repartition)?,
            control_quota_fraction: m
                .field_or("control_quota_fraction", defaults.control_quota_fraction)?,
        })
    }
}

impl Serialize for SimConfig {
    fn to_value(&self) -> Value {
        Value::Map(
            Map::new()
                .with("topology", self.topology.to_value())
                .with("routing", self.routing.to_value())
                .with("policy", self.policy.to_value())
                .with("arrangement", self.arrangement.to_value())
                .with("selection", self.selection.to_value())
                .with("workload", self.workload.to_value())
                .with("packet_size", self.packet_size.to_value())
                .with("local_latency", self.local_latency.to_value())
                .with("global_latency", self.global_latency.to_value())
                .with("pipeline_latency", self.pipeline_latency.to_value())
                .with("speedup", self.speedup.to_value())
                .with("buffers", self.buffers.to_value())
                .with("injection_vcs", self.injection_vcs.to_value())
                .with("sensing", self.sensing.to_value())
                .with("warmup", self.warmup.to_value())
                .with("measure", self.measure.to_value())
                .with("watchdog", self.watchdog.to_value())
                .with("revert_patience", self.revert_patience.to_value())
                .with("reply_queue_packets", self.reply_queue_packets.to_value())
                .with("adaptive_copies", self.adaptive_copies.to_value())
                .with("shards", self.shards.to_value())
                // `with` drops Nulls, so single-class configs keep the
                // legacy wire form with no `qos` key at all.
                .with(
                    "qos",
                    match &self.qos {
                        Some(q) => q.to_value(),
                        None => Value::Null,
                    },
                ),
        )
    }
}

impl Deserialize for SimConfig {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = v.as_map()?;
        // Table V defaults at the reduced scale, so scenario files only
        // spell out what differs from the baseline. The arrangement
        // defaults to the minimum safe one for the routing/workload.
        let topology = m.field_or(
            "topology",
            TopologySpec::DragonflyBalanced {
                h: 2,
                arrangement: GlobalArrangement::default(),
            },
        )?;
        let routing = m.field_or("routing", flexvc_core::RoutingMode::Min)?;
        let workload: flexvc_traffic::Workload = m.field_or(
            "workload",
            flexvc_traffic::Workload::oblivious(flexvc_traffic::Pattern::Uniform),
        )?;
        let arrangement = match m.opt("arrangement")? {
            Some(arr) => arr,
            None => crate::builder::default_arrangement(
                topology.family(),
                routing,
                workload.is_reactive(),
            ),
        };
        Ok(SimConfig {
            topology,
            routing,
            policy: m.field_or("policy", flexvc_core::VcPolicy::Baseline)?,
            arrangement,
            selection: m.field_or("selection", flexvc_core::VcSelection::Jsq)?,
            workload,
            packet_size: m.field_or("packet_size", 8)?,
            local_latency: m.field_or("local_latency", 10)?,
            global_latency: m.field_or("global_latency", 100)?,
            pipeline_latency: m.field_or("pipeline_latency", 5)?,
            speedup: m.field_or("speedup", 2)?,
            buffers: m.field_or("buffers", BufferConfig::default())?,
            injection_vcs: m.field_or("injection_vcs", 3)?,
            sensing: m.field_or("sensing", SensingConfig::default())?,
            warmup: m.field_or("warmup", 10_000)?,
            measure: m.field_or("measure", 20_000)?,
            watchdog: m.field_or("watchdog", 20_000)?,
            revert_patience: m.field_or("revert_patience", 16)?,
            reply_queue_packets: m.field_or("reply_queue_packets", 4)?,
            adaptive_copies: m.field_or("adaptive_copies", false)?,
            shards: m.field_or("shards", 1)?,
            qos: m.opt("qos")?,
        })
    }
}

impl Serialize for ClassResult {
    fn to_value(&self) -> Value {
        Value::Map(
            Map::new()
                .with("accepted", self.accepted.to_value())
                .with("latency", self.latency.to_value())
                .with("latency_p99", self.latency_p99.to_value())
                .with("fct_p99", self.fct_p99.to_value())
                .with(
                    "latency_buckets",
                    self.latency_hist.buckets().to_vec().to_value(),
                )
                .with("latency_max", self.latency_hist.max().to_value())
                .with("fct_buckets", self.fct_hist.buckets().to_vec().to_value())
                .with(
                    "fct_bucket_sums",
                    self.fct_hist.bucket_sums().to_vec().to_value(),
                )
                .with("fct_max", self.fct_hist.max().to_value()),
        )
    }
}

impl Deserialize for ClassResult {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = v.as_map()?;
        let hist = |buckets_key: &str,
                    max_key: &str,
                    sums_key: Option<&str>|
         -> Result<LatencyHistogram, Error> {
            let buckets: Vec<u64> = m.field_or(buckets_key, Vec::new())?;
            let mut fixed = [0u64; 21];
            for (slot, b) in fixed.iter_mut().zip(&buckets) {
                *slot = *b;
            }
            let mut hist = LatencyHistogram::from_buckets(fixed);
            hist.observe_max(m.field_or(max_key, 0u64)?);
            if let Some(sk) = sums_key {
                let sums: Vec<u64> = m.field_or(sk, Vec::new())?;
                let mut fixed_sums = [0u64; 21];
                for (slot, s) in fixed_sums.iter_mut().zip(&sums) {
                    *slot = *s;
                }
                hist.restore_bucket_sums(fixed_sums);
            }
            Ok(hist)
        };
        Ok(ClassResult {
            accepted: m.field_or("accepted", 0.0)?,
            latency: m.field_or("latency", 0.0)?,
            latency_p99: m.field_or("latency_p99", 0.0)?,
            fct_p99: m.field_or("fct_p99", 0.0)?,
            latency_hist: hist("latency_buckets", "latency_max", None)?,
            fct_hist: hist("fct_buckets", "fct_max", Some("fct_bucket_sums"))?,
        })
    }
}

impl Serialize for SimResult {
    fn to_value(&self) -> Value {
        Value::Map(
            Map::new()
                .with("offered", self.offered.to_value())
                .with("accepted", self.accepted.to_value())
                .with("latency", self.latency.to_value())
                .with("latency_req", self.latency_req.to_value())
                .with("latency_rep", self.latency_rep.to_value())
                .with("misroute_fraction", self.misroute_fraction.to_value())
                .with("avg_hops", self.avg_hops.to_value())
                .with("reverts_per_packet", self.reverts_per_packet.to_value())
                .with("drop_fraction", self.drop_fraction.to_value())
                .with("deadlocked", self.deadlocked.to_value())
                .with("latency_p99", self.latency_p99.to_value())
                .with("local_vc_occupancy", self.local_vc_occupancy.to_value())
                .with("global_vc_occupancy", self.global_vc_occupancy.to_value())
                .with(
                    "latency_buckets",
                    self.latency_hist.buckets().to_vec().to_value(),
                )
                .with("latency_max", self.latency_hist.max().to_value())
                .with("flows_completed", self.flows_completed.to_value())
                .with("fct_mean", self.fct_mean.to_value())
                .with("fct_p50", self.fct_p50.to_value())
                .with("fct_p99", self.fct_p99.to_value())
                .with("slowdown_mean", self.slowdown_mean.to_value())
                .with("fct_buckets", self.fct_hist.buckets().to_vec().to_value())
                .with(
                    "fct_bucket_sums",
                    self.fct_hist.bucket_sums().to_vec().to_value(),
                )
                .with("fct_max", self.fct_hist.max().to_value())
                // Per-class slices appear only once a run actually tagged
                // control traffic: single-class runs (which put every
                // packet in the default bulk class) keep the legacy wire
                // form byte-for-byte.
                .with(
                    "classes",
                    if self.classes[0].latency_hist.count() > 0 || self.classes[0].accepted > 0.0 {
                        self.classes.to_vec().to_value()
                    } else {
                        Value::Null
                    },
                ),
        )
    }
}

impl Deserialize for SimResult {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let m = v.as_map()?;
        Ok(SimResult {
            offered: m.field_or("offered", 0.0)?,
            accepted: m.field_or("accepted", 0.0)?,
            latency: m.field_or("latency", 0.0)?,
            latency_req: m.field_or("latency_req", 0.0)?,
            latency_rep: m.field_or("latency_rep", 0.0)?,
            misroute_fraction: m.field_or("misroute_fraction", 0.0)?,
            avg_hops: m.field_or("avg_hops", 0.0)?,
            reverts_per_packet: m.field_or("reverts_per_packet", 0.0)?,
            drop_fraction: m.field_or("drop_fraction", 0.0)?,
            deadlocked: m.field_or("deadlocked", false)?,
            latency_p99: m.field_or("latency_p99", 0.0)?,
            local_vc_occupancy: m.field_or("local_vc_occupancy", Vec::new())?,
            global_vc_occupancy: m.field_or("global_vc_occupancy", Vec::new())?,
            latency_hist: {
                let buckets: Vec<u64> = m.field_or("latency_buckets", Vec::new())?;
                let mut fixed = [0u64; 21];
                for (slot, b) in fixed.iter_mut().zip(&buckets) {
                    *slot = *b;
                }
                let mut hist = LatencyHistogram::from_buckets(fixed);
                // Files written before the overflow-bucket fix carry no
                // recorded max; the bucket estimate stands in.
                hist.observe_max(m.field_or("latency_max", 0u64)?);
                hist
            },
            // Flow metrics are absent in files written before the flow
            // layer; they default to "no flows observed".
            flows_completed: m.field_or("flows_completed", 0.0)?,
            fct_mean: m.field_or("fct_mean", 0.0)?,
            fct_p50: m.field_or("fct_p50", 0.0)?,
            fct_p99: m.field_or("fct_p99", 0.0)?,
            slowdown_mean: m.field_or("slowdown_mean", 0.0)?,
            fct_hist: {
                let buckets: Vec<u64> = m.field_or("fct_buckets", Vec::new())?;
                let mut fixed = [0u64; 21];
                for (slot, b) in fixed.iter_mut().zip(&buckets) {
                    *slot = *b;
                }
                let mut hist = LatencyHistogram::from_buckets(fixed);
                hist.observe_max(m.field_or("fct_max", 0u64)?);
                // Files written before the FCT-interpolation fix carry no
                // per-bucket sums; quantiles fall back to bucket bounds.
                let sums: Vec<u64> = m.field_or("fct_bucket_sums", Vec::new())?;
                let mut fixed_sums = [0u64; 21];
                for (slot, s) in fixed_sums.iter_mut().zip(&sums) {
                    *slot = *s;
                }
                hist.restore_bucket_sums(fixed_sums);
                hist
            },
            classes: {
                let cls: Vec<ClassResult> = m.field_or("classes", Vec::new())?;
                let mut arr: [ClassResult; 2] = Default::default();
                for (slot, c) in arr.iter_mut().zip(cls) {
                    *slot = c;
                }
                arr
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use flexvc_core::{Arrangement, RoutingMode};
    use flexvc_serde::{from_json, from_toml, to_json, to_json_pretty, to_toml};
    use flexvc_traffic::{Pattern, Workload};

    fn sample_cfg() -> SimConfig {
        let mut cfg = SimConfig::dragonfly_baseline(
            2,
            RoutingMode::Valiant,
            Workload::reactive(Pattern::adv1()),
        )
        .with_flexvc(Arrangement::dragonfly_rr((4, 2), (2, 1)))
        .with_damq75();
        cfg.buffers.sizing = BufferSizing::PerPort {
            local: 128,
            global: 512,
        };
        cfg.sensing.min_cred = true;
        cfg
    }

    #[test]
    fn config_round_trips_json_and_toml() {
        let cfg = sample_cfg();
        let json = to_json_pretty(&cfg);
        let back: SimConfig = from_json(&json).unwrap();
        assert_eq!(to_json(&back), to_json(&cfg), "JSON:\n{json}");

        let toml = to_toml(&cfg).unwrap();
        let back: SimConfig = from_toml(&toml).unwrap();
        assert_eq!(to_json(&back), to_json(&cfg), "TOML:\n{toml}");
        back.validate().unwrap();
    }

    #[test]
    fn hyperx_topology_round_trips() {
        // Unit multiplicity omits `k`; mixed multiplicity carries it.
        for dims in [vec![(3, 1), (3, 1), (3, 1)], vec![(4, 2), (2, 1)]] {
            let mut cfg = SimConfig::hyperx_baseline(
                dims.len(),
                2,
                1,
                RoutingMode::Min,
                Workload::oblivious(Pattern::Uniform),
            );
            cfg.topology = TopologySpec::HyperX {
                dims: dims.clone(),
                p: 2,
            };
            let json = to_json(&cfg);
            let back: SimConfig = from_json(&json).unwrap();
            assert_eq!(to_json(&back), json);
            match back.topology {
                TopologySpec::HyperX { dims: d, p } => {
                    assert_eq!(d, dims);
                    assert_eq!(p, 2);
                }
                other => panic!("expected hyperx, got {other:?}"),
            }
            let toml = to_toml(&cfg).unwrap();
            let back: SimConfig = from_toml(&toml).unwrap();
            assert_eq!(to_json(&back), json, "TOML:\n{toml}");
        }
        // Mismatched s/k lengths are contextual errors.
        assert!(from_toml::<SimConfig>(
            "[topology]\nkind = \"hyperx\"\ns = [3, 3]\nk = [1]\np = 1\n"
        )
        .is_err());
    }

    #[test]
    fn dfplus_topology_round_trips() {
        let mut cfg = SimConfig::dfplus_baseline(
            4,
            4,
            2,
            9,
            RoutingMode::Valiant,
            Workload::oblivious(Pattern::adv1()),
        );
        let json = to_json(&cfg);
        // Unit multiplicity omits `global_mult`.
        assert!(!json.contains("global_mult"), "{json}");
        let back: SimConfig = from_json(&json).unwrap();
        assert_eq!(to_json(&back), json);
        let toml = to_toml(&cfg).unwrap();
        let back: SimConfig = from_toml(&toml).unwrap();
        assert_eq!(to_json(&back), json, "TOML:\n{toml}");
        back.validate().unwrap();

        // Non-unit multiplicity carries the field and round-trips too.
        cfg.topology = TopologySpec::DragonflyPlus {
            leaves: 3,
            spines: 2,
            hosts_per_leaf: 1,
            global_mult: 2,
            groups: 5,
        };
        let json = to_json(&cfg);
        assert!(json.contains("global_mult"), "{json}");
        let back: SimConfig = from_json(&json).unwrap();
        assert_eq!(to_json(&back), json);
    }

    #[test]
    fn sparse_dfplus_toml_derives_dragonfly_shaped_arrangement() {
        let cfg: SimConfig = from_toml(
            r#"
routing = "valiant"

[topology]
kind = "dragonfly_plus"
leaves = 2
spines = 2
hosts_per_leaf = 2
groups = 5
"#,
        )
        .unwrap();
        // Omitted arrangement derives the Dragonfly-shaped VAL minimum.
        assert_eq!(cfg.arrangement, Arrangement::dragonfly(4, 2));
        cfg.validate().unwrap();
        // The Megafly alias parses to the same spec.
        let alias: SimConfig = from_toml(
            "[topology]\nkind = \"megafly\"\nleaves = 2\nspines = 2\n\
             hosts_per_leaf = 2\ngroups = 5\n",
        )
        .unwrap();
        assert!(matches!(
            alias.topology,
            TopologySpec::DragonflyPlus { leaves: 2, .. }
        ));
    }

    #[test]
    fn sparse_hyperx_toml_derives_diameter3_arrangement() {
        let cfg: SimConfig = from_toml(
            r#"
routing = "valiant"

[topology]
kind = "hyperx"
s = [3, 3, 3]
p = 2
"#,
        )
        .unwrap();
        // Omitted arrangement derives from the generic diameter-3 VAL
        // reference: 6 single-class VCs.
        assert_eq!(cfg.arrangement, Arrangement::generic(6));
        cfg.validate().unwrap();
    }

    #[test]
    fn sparse_toml_fills_defaults() {
        let cfg: SimConfig = from_toml(
            r#"
routing = "valiant"
policy = "flexvc"
arrangement = "L G L G L"

[workload]
pattern = "adv+1"
"#,
        )
        .unwrap();
        assert_eq!(cfg.routing, RoutingMode::Valiant);
        assert_eq!(cfg.packet_size, 8);
        assert_eq!(cfg.speedup, 2);
        assert_eq!(cfg.arrangement, Arrangement::zigzag(2));
        cfg.validate().unwrap();
    }

    #[test]
    fn omitted_arrangement_derives_from_routing_and_workload() {
        let cfg: SimConfig = from_toml("routing = \"par\"\n").unwrap();
        assert_eq!(cfg.arrangement, Arrangement::dragonfly_par());
        cfg.validate().unwrap();

        let rr: SimConfig =
            from_toml("[workload]\npattern = \"uniform\"\nreactive = true\n").unwrap();
        assert!(rr.arrangement.has_reply_part());
        rr.validate().unwrap();
    }

    #[test]
    fn result_round_trips() {
        let mut hist = LatencyHistogram::default();
        hist.record(100);
        hist.record(3000);
        let r = SimResult {
            offered: 0.5,
            accepted: 0.42,
            latency: 321.5,
            latency_p99: 2048.0,
            local_vc_occupancy: vec![1.5, 0.25],
            deadlocked: true,
            latency_hist: hist,
            ..Default::default()
        };
        let back: SimResult = from_json(&to_json(&r)).unwrap();
        assert_eq!(to_json(&back), to_json(&r));
        assert_eq!(back.latency_hist.count(), 2);
        assert_eq!(back.latency_hist.buckets(), r.latency_hist.buckets());
    }

    #[test]
    fn bad_documents_are_path_contextual_errors() {
        let err = from_toml::<SimConfig>("routing = \"warp\"\n").unwrap_err();
        assert!(err.to_string().contains("routing"), "{err}");
        let err = from_toml::<SimConfig>("[topology]\nkind = \"torus\"\n").unwrap_err();
        assert!(err.to_string().contains("torus"), "{err}");
    }
}
