//! Round-robin arbiters for the iterative input-first separable allocator
//! (Table V: "iterative input-first separable allocator").

/// A round-robin arbiter over `n` requesters. The grant pointer advances
/// past the last winner, giving each requester fair service under
/// saturation.
#[derive(Debug, Clone)]
pub struct RrArbiter {
    n: usize,
    ptr: usize,
}

impl RrArbiter {
    /// Arbiter over `n` requesters.
    pub fn new(n: usize) -> Self {
        RrArbiter { n, ptr: 0 }
    }

    /// Grant among requesters for which `requesting(i)` is true; returns the
    /// winner and advances the pointer.
    pub fn grant(&mut self, mut requesting: impl FnMut(usize) -> bool) -> Option<usize> {
        if self.n == 0 {
            return None;
        }
        for off in 0..self.n {
            let i = (self.ptr + off) % self.n;
            if requesting(i) {
                self.ptr = (i + 1) % self.n;
                return Some(i);
            }
        }
        None
    }

    /// Number of requesters.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the arbiter has no requesters.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_are_round_robin_fair() {
        let mut arb = RrArbiter::new(3);
        let all = |_i: usize| true;
        let mut wins = [0usize; 3];
        for _ in 0..9 {
            wins[arb.grant(all).unwrap()] += 1;
        }
        assert_eq!(wins, [3, 3, 3]);
    }

    #[test]
    fn skips_non_requesting() {
        let mut arb = RrArbiter::new(4);
        assert_eq!(arb.grant(|i| i == 2), Some(2));
        assert_eq!(arb.grant(|i| i == 2), Some(2));
        assert_eq!(arb.grant(|_| false), None);
    }

    #[test]
    fn pointer_starts_after_last_winner() {
        let mut arb = RrArbiter::new(3);
        assert_eq!(arb.grant(|_| true), Some(0));
        assert_eq!(arb.grant(|_| true), Some(1));
        assert_eq!(arb.grant(|i| i == 0 || i == 1), Some(0));
    }

    #[test]
    fn empty_arbiter() {
        let mut arb = RrArbiter::new(0);
        assert!(arb.is_empty());
        assert_eq!(arb.grant(|_| true), None);
    }
}
