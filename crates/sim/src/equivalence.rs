//! Fixed engine-equivalence smoke points.
//!
//! A small, mechanism-covering set of `(config, load, seed)` points used to
//! prove that engine refactors are behavior-preserving: the integration
//! test `tests/engine_equivalence.rs` runs them and asserts bit-identical
//! [`SimResult`](crate::SimResult)s against metric snapshots recorded from
//! the pre-refactor (full-sweep) engine. The points deliberately cross
//! every engine path: baseline and FlexVC policies (safe and opportunistic
//! hops with reversion), oblivious and reactive workloads, DAMQ buffers
//! including the Fig. 10 deadlock, Piggyback sensing with minCred, and PAR
//! in-transit diverts.
//!
//! Keep this list stable: changing a point invalidates its recorded
//! snapshot.

use crate::config::{BufferOrg, QosConfig, SensingMode, SimConfig};
use flexvc_core::{Arrangement, RoutingMode};
use flexvc_traffic::{FlowSpec, Pattern, SizeDist, Workload};

/// Shapes on which a 2-D unit-multiplicity [`HyperX`] must be
/// *bit-identical* to the [`FlatButterfly2D`] it generalizes: the
/// differential test runs each `(routing, arrangement, load, seed)` point
/// on both `TopologySpec`s and asserts equal [`SimResult`](crate::SimResult)s
/// field for field.
///
/// [`HyperX`]: flexvc_topology::HyperX
/// [`FlatButterfly2D`]: flexvc_topology::FlatButterfly2D
pub fn hyperx_flatbf_differential_points() -> Vec<EquivalencePoint> {
    use crate::config::TopologySpec;
    let base = |routing, pattern| {
        let mut cfg = smoke(SimConfig::hyperx_baseline(
            2,
            4,
            2,
            routing,
            Workload::oblivious(pattern),
        ));
        cfg.topology = TopologySpec::FlatButterfly { k: 4, p: 2 };
        cfg
    };
    vec![
        (
            "diff_un_min_baseline".to_string(),
            base(RoutingMode::Min, Pattern::Uniform),
            0.5,
            21,
        ),
        (
            "diff_un_min_flexvc4".to_string(),
            base(RoutingMode::Min, Pattern::Uniform).with_flexvc(Arrangement::generic(4)),
            0.8,
            22,
        ),
        (
            "diff_adv_val_flexvc3_opportunistic".to_string(),
            base(RoutingMode::Valiant, Pattern::adv1()).with_flexvc(Arrangement::generic(3)),
            0.7,
            23,
        ),
        (
            "diff_un_par_baseline".to_string(),
            base(RoutingMode::Par, Pattern::Uniform),
            0.4,
            24,
        ),
    ]
}

/// One equivalence point: `(name, config, load, seed)`.
pub type EquivalencePoint = (String, SimConfig, f64, u64);

fn smoke(mut cfg: SimConfig) -> SimConfig {
    cfg.warmup = 1_500;
    cfg.measure = 3_000;
    cfg.watchdog = 8_000;
    cfg
}

/// The fixed point set (h = 2 scale, short windows; deterministic seeds).
pub fn points() -> Vec<EquivalencePoint> {
    let oblivious = |routing, pattern| {
        smoke(SimConfig::dragonfly_baseline(
            2,
            routing,
            Workload::oblivious(pattern),
        ))
    };
    let reactive = |routing, pattern| {
        smoke(SimConfig::dragonfly_baseline(
            2,
            routing,
            Workload::reactive(pattern),
        ))
    };

    let mut points: Vec<EquivalencePoint> = Vec::new();
    let mut add = |name: &str, cfg: SimConfig, load: f64, seed: u64| {
        points.push((name.to_string(), cfg, load, seed));
    };

    // Fig. 5 family: oblivious routing, baseline vs FlexVC.
    add(
        "fig5_un_min_baseline",
        oblivious(RoutingMode::Min, Pattern::Uniform),
        0.45,
        11,
    );
    add(
        "fig5_un_min_flexvc42",
        oblivious(RoutingMode::Min, Pattern::Uniform).with_flexvc(Arrangement::dragonfly(4, 2)),
        0.65,
        12,
    );
    add(
        "fig5_adv_val_baseline",
        oblivious(RoutingMode::Valiant, Pattern::adv1()),
        0.5,
        13,
    );
    // Opportunistic VAL at saturation: exercises patience + reversion.
    add(
        "fig5_un_val_flexvc32_sat",
        oblivious(RoutingMode::Valiant, Pattern::Uniform).with_flexvc(Arrangement::dragonfly(3, 2)),
        0.9,
        3,
    );
    add(
        "fig5_bursty_min_flexvc42",
        oblivious(RoutingMode::Min, Pattern::bursty()).with_flexvc(Arrangement::dragonfly(4, 2)),
        0.5,
        6,
    );

    // Fig. 7 family: request-reply coupling, split arrangements.
    add(
        "fig7_rr_min_baseline",
        reactive(RoutingMode::Min, Pattern::Uniform),
        0.35,
        7,
    );
    add(
        "fig7_rr_min_flexvc_5_3",
        reactive(RoutingMode::Min, Pattern::Uniform)
            .with_flexvc(Arrangement::dragonfly_rr((3, 2), (2, 1))),
        0.5,
        5,
    );

    // Fig. 10 family: DAMQ organizations, including the genuine deadlock.
    let mut damq0 = oblivious(RoutingMode::Min, Pattern::Uniform);
    damq0.buffers.organization = BufferOrg::Damq {
        private_fraction: 0.0,
    };
    damq0.warmup = 2_000;
    damq0.measure = 20_000;
    damq0.watchdog = 4_000;
    add("fig10_damq0_deadlock", damq0, 1.0, 1);
    add(
        "fig10_damq75",
        oblivious(RoutingMode::Min, Pattern::Uniform).with_damq75(),
        0.85,
        2,
    );

    // Fig. 8 family: Piggyback sensing (per-VC, minCred) on FlexVC.
    let mut pb = reactive(RoutingMode::Piggyback, Pattern::Uniform)
        .with_flexvc(Arrangement::dragonfly_rr((4, 2), (2, 1)));
    pb.sensing.mode = SensingMode::PerVc;
    pb.sensing.min_cred = true;
    add("fig8_pb_flexvc_mincred", pb, 0.5, 9);

    // PAR: in-transit divert evaluation.
    add(
        "par_adv_baseline",
        oblivious(RoutingMode::Par, Pattern::adv1()),
        0.4,
        4,
    );

    // HyperX: 3-D generic-diameter network under FlexVC opportunistic VAL
    // (diameter-3 references, DOR plans, per-dimension escapes). Recorded
    // when the topology landed; guards the generic-d path against drift.
    add(
        "hyperx3d_adv_val_flexvc4",
        smoke(
            SimConfig::hyperx_baseline(
                3,
                3,
                2,
                RoutingMode::Valiant,
                Workload::oblivious(Pattern::adv1()),
            )
            .with_flexvc(Arrangement::generic(4)),
        ),
        0.6,
        14,
    );

    // UGAL-L on the 3-D HyperX ADV point: the RoutePolicy injection
    // pipeline's hop-weighted credit comparison (recorded when the
    // decision layer landed; guards the UGAL path against drift).
    add(
        "hyperx3d_adv_ugal_l_flexvc6",
        smoke(
            SimConfig::hyperx_baseline(
                3,
                3,
                2,
                RoutingMode::UgalL,
                Workload::oblivious(Pattern::adv1()),
            )
            .with_flexvc(Arrangement::generic(6)),
        ),
        0.7,
        15,
    );

    // DAL on the 2-D HyperX ADV point: per-dimension in-transit misroutes
    // with correction-pair slots (recorded when the decision layer landed).
    add(
        "hyperx2d_adv_dal_flexvc4",
        smoke(
            SimConfig::hyperx_baseline(
                2,
                4,
                2,
                RoutingMode::Dal,
                Workload::oblivious(Pattern::adv1()),
            )
            .with_flexvc(Arrangement::generic(4)),
        ),
        0.7,
        16,
    );

    // Flow workloads: FCT accounting plus per-node flow state must shard
    // bit-identically (recorded when the flow layer landed). One point per
    // pattern family, crossing size distributions and both topologies.
    add(
        "flows_un_bimodal_min_flexvc42",
        smoke(SimConfig::dragonfly_baseline(
            2,
            RoutingMode::Min,
            Workload::flows(FlowSpec::uniform(SizeDist::mice_elephants())),
        ))
        .with_flexvc(Arrangement::dragonfly(4, 2)),
        0.5,
        17,
    );
    // Permutation exercises the seed-only derangement table every shard
    // must derive identically.
    add(
        "flows_perm_pareto_hyperx2d_min_flexvc4",
        smoke(
            SimConfig::hyperx_baseline(
                2,
                4,
                2,
                RoutingMode::Min,
                Workload::flows(FlowSpec::permutation(SizeDist::heavy_tail())),
            )
            .with_flexvc(Arrangement::generic(4)),
        ),
        0.4,
        18,
    );
    // Incast phases rotate the receiver mid-window; baseline policy.
    add(
        "flows_incast4_min_baseline",
        smoke(SimConfig::dragonfly_baseline(
            2,
            RoutingMode::Min,
            Workload::flows(FlowSpec::incast(4, SizeDist::Fixed { packets: 4 })),
        )),
        0.3,
        19,
    );

    // Hot-path pins (recorded when the fast paths landed): static-MIN
    // routing with the baseline VC policy drives the monomorphized
    // injection-plan path (no SenseView, no policy dispatch) and — at
    // high load, where credit stalls dominate — the batched per-link
    // credit drain. One synthetic point on the HyperX and one flow point
    // on the Dragonfly so both topologies' fast paths stay pinned.
    add(
        "hotpath_un_min_baseline_hyperx2d",
        smoke(SimConfig::hyperx_baseline(
            2,
            4,
            2,
            RoutingMode::Min,
            Workload::oblivious(Pattern::Uniform),
        )),
        0.75,
        26,
    );
    add(
        "hotpath_flows_perm_min_baseline",
        smoke(SimConfig::dragonfly_baseline(
            2,
            RoutingMode::Min,
            Workload::flows(FlowSpec::permutation(SizeDist::mice_elephants())),
        )),
        0.45,
        27,
    );

    // QoS family (recorded when multi-class traffic landed): control +
    // bulk mixes through strict-priority arbitration with bounded bypass.
    // One Dragonfly point with class-partitioned FlexVC budgets, one
    // HyperX point with the dynamic per-class buffer repartitioner, and
    // one Dragonfly+ VAL point with shared budgets (priority only) — all
    // must shard bit-identically like every other point.
    add(
        "qos_ctrlbulk_df_min_flexvc42_part",
        smoke(SimConfig::dragonfly_baseline(
            2,
            RoutingMode::Min,
            Workload::oblivious(Pattern::Uniform).with_mix(0.1),
        ))
        .with_flexvc(Arrangement::dragonfly(4, 2))
        .with_qos(QosConfig::partitioned(2, 1)),
        0.6,
        28,
    );
    add(
        "qos_repart_hyperx2d_min_flexvc4",
        smoke(
            SimConfig::hyperx_baseline(
                2,
                4,
                2,
                RoutingMode::Min,
                Workload::oblivious(Pattern::Uniform).with_mix(0.15),
            )
            .with_flexvc(Arrangement::generic(4)),
        )
        .with_qos(QosConfig::shared().with_repartition()),
        0.7,
        29,
    );
    add(
        "qos_prio_dfplus_val_flexvc42",
        smoke(
            SimConfig::dfplus_baseline(
                2,
                2,
                2,
                5,
                RoutingMode::Valiant,
                Workload::oblivious(Pattern::adv1()).with_mix(0.1),
            )
            .with_flexvc(Arrangement::dragonfly(4, 2)),
        )
        .with_qos(QosConfig::shared()),
        0.5,
        30,
    );

    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_points_validate() {
        let pts = points();
        assert!(pts.len() >= 10);
        for (name, cfg, load, _) in &pts {
            cfg.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!((0.0..=1.0).contains(load), "{name}");
        }
    }

    #[test]
    fn point_names_are_unique() {
        let pts = points();
        for (i, (a, ..)) in pts.iter().enumerate() {
            for (b, ..) in &pts[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
