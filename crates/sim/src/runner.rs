//! Experiment runner: parallel execution of independent simulation points.
//!
//! Every `(configuration, load, seed)` triple is an independent simulation;
//! batches fan the triples out over `std::thread::scope` workers (one per
//! available core by default) and results come back in input order, so
//! experiment harnesses stay deterministic regardless of scheduling.
//!
//! All entry points are non-panicking: configurations are validated up
//! front and failures surface as [`RunError::InvalidPoint`] with the index
//! of the offending point. [`run_points_with_progress`] additionally
//! streams per-point completions to a callback, which the `flexvc` CLI
//! uses for live progress output.

use crate::config::SimConfig;
use crate::engine::Network;
use crate::error::{ConfigError, RunError};
use crate::metrics::SimResult;
use crate::shard::{resolve_shards, ShardedNetwork};
use flexvc_topology::Topology;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// One simulation point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Full configuration.
    pub cfg: SimConfig,
    /// Offered load in phits/node/cycle.
    pub load: f64,
    /// RNG seed.
    pub seed: u64,
}

/// A completed point, reported through the progress callback of
/// [`run_points_with_progress`].
#[derive(Debug, Clone, Copy)]
pub struct PointProgress<'a> {
    /// Index of the point in the submitted batch.
    pub index: usize,
    /// Points completed so far (including this one).
    pub completed: usize,
    /// Total points in the batch.
    pub total: usize,
    /// The point's result.
    pub result: &'a SimResult,
}

/// Run one simulation to completion. Dispatches to the sharded engine when
/// the configuration's resolved shard count exceeds 1 (see `sim::shard`;
/// results are bit-identical either way).
pub fn run_one(cfg: &SimConfig, load: f64, seed: u64) -> Result<SimResult, ConfigError> {
    cfg.validate()?;
    run_prebuilt(cfg, load, seed, cfg.topology.build())
}

/// [`run_one`] against a pre-built (shared) topology instance. The config
/// must already be validated.
fn run_prebuilt(
    cfg: &SimConfig,
    load: f64,
    seed: u64,
    topo: Arc<dyn Topology>,
) -> Result<SimResult, ConfigError> {
    if resolve_shards(cfg.shards, topo.num_routers()) > 1 {
        Ok(ShardedNetwork::with_topology(cfg.clone(), load, seed, topo)?.run())
    } else {
        Ok(Network::with_topology(cfg.clone(), load, seed, topo)?.run())
    }
}

/// Run a batch of points in parallel; results are in input order. Invalid
/// configurations are reported as [`RunError::InvalidPoint`] before any
/// simulation starts.
pub fn run_points(points: &[Point]) -> Result<Vec<SimResult>, RunError> {
    run_points_with_threads(points, default_threads())
}

/// [`run_points`] with an explicit worker count (1 = sequential).
pub fn run_points_with_threads(
    points: &[Point],
    threads: usize,
) -> Result<Vec<SimResult>, RunError> {
    run_points_with_progress(points, threads, |_| {})
}

/// [`run_points_with_threads`] invoking `progress` as each point completes.
/// Completions arrive in scheduling order (not input order); the returned
/// vector is always in input order.
pub fn run_points_with_progress<F>(
    points: &[Point],
    threads: usize,
    progress: F,
) -> Result<Vec<SimResult>, RunError>
where
    F: Fn(PointProgress<'_>) + Sync,
{
    for (index, p) in points.iter().enumerate() {
        p.cfg
            .validate()
            .map_err(|source| RunError::InvalidPoint { index, source })?;
    }
    // Build each distinct topology once and share it across every point
    // with an equal spec: sweep batches are typically hundreds of
    // (load, seed) points over a handful of topologies, and the adjacency
    // construction is pure — rebuilding it per point was measurable
    // rebuild overhead at paper scale. Pre-resolved before the workers
    // spawn so the cache needs no locking.
    let mut built: Vec<(&crate::config::TopologySpec, Arc<dyn Topology>)> = Vec::new();
    let topos: Vec<Arc<dyn Topology>> = points
        .iter()
        .map(
            |p| match built.iter().find(|(spec, _)| **spec == p.cfg.topology) {
                Some((_, topo)) => Arc::clone(topo),
                None => {
                    let topo = p.cfg.topology.build();
                    built.push((&p.cfg.topology, Arc::clone(&topo)));
                    topo
                }
            },
        )
        .collect();
    let n = points.len();
    let total = n;
    let completed = AtomicUsize::new(0);
    let report = |index: usize, result: &SimResult| {
        let done = completed.fetch_add(1, Ordering::Relaxed) + 1;
        progress(PointProgress {
            index,
            completed: done,
            total,
            result,
        });
    };
    let run_checked = |index: usize, p: &Point| -> Result<SimResult, RunError> {
        run_prebuilt(&p.cfg, p.load, p.seed, Arc::clone(&topos[index]))
            .map_err(|source| RunError::InvalidPoint { index, source })
    };

    if threads <= 1 || n <= 1 {
        let mut results = Vec::with_capacity(n);
        for (i, p) in points.iter().enumerate() {
            let r = run_checked(i, p)?;
            report(i, &r);
            results.push(r);
        }
        return Ok(results);
    }

    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<Result<SimResult, RunError>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = run_checked(i, &points[i]);
                if let Ok(result) = &r {
                    report(i, result);
                }
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every slot filled")
        })
        .collect()
}

/// Run `seeds` repetitions of one configuration/load and average.
pub fn run_averaged(cfg: &SimConfig, load: f64, seeds: &[u64]) -> Result<SimResult, RunError> {
    if seeds.is_empty() {
        return Err(RunError::EmptyBatch);
    }
    let points: Vec<Point> = seeds
        .iter()
        .map(|&seed| Point {
            cfg: cfg.clone(),
            load,
            seed,
        })
        .collect();
    Ok(SimResult::average(&run_points(&points)?))
}

/// Sweep offered loads for one configuration, averaging over `seeds`;
/// returns `(load, result)` pairs in load order.
pub fn load_sweep(
    cfg: &SimConfig,
    loads: &[f64],
    seeds: &[u64],
) -> Result<Vec<(f64, SimResult)>, RunError> {
    if seeds.is_empty() {
        return Err(RunError::EmptyBatch);
    }
    let points: Vec<Point> = loads
        .iter()
        .flat_map(|&load| {
            seeds.iter().map(move |&seed| Point {
                cfg: cfg.clone(),
                load,
                seed,
            })
        })
        .collect();
    let results = run_points(&points)?;
    Ok(loads
        .iter()
        .enumerate()
        .map(|(i, &load)| {
            let chunk = &results[i * seeds.len()..(i + 1) * seeds.len()];
            (load, SimResult::average(chunk))
        })
        .collect())
}

/// Saturation throughput: accepted load at 100% offered load (the paper's
/// "maximum throughput" metric of Figs. 6 and 11).
pub fn saturation_throughput(cfg: &SimConfig, seeds: &[u64]) -> Result<SimResult, RunError> {
    run_averaged(cfg, 1.0, seeds)
}

/// Worker count: all cores.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexvc_core::{Arrangement, RoutingMode, VcPolicy};
    use flexvc_traffic::{Pattern, Workload};
    use std::sync::atomic::AtomicUsize;

    fn tiny_cfg() -> SimConfig {
        let mut cfg = SimConfig::dragonfly_baseline(
            2,
            RoutingMode::Min,
            Workload::oblivious(Pattern::Uniform),
        )
        .test_scale();
        cfg.warmup = 500;
        cfg.measure = 1000;
        cfg
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let cfg = tiny_cfg();
        let points: Vec<Point> = (0..4)
            .map(|i| Point {
                cfg: cfg.clone(),
                load: 0.2,
                seed: i,
            })
            .collect();
        let seq = run_points_with_threads(&points, 1).unwrap();
        let par = run_points_with_threads(&points, 4).unwrap();
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.accepted, b.accepted);
            assert_eq!(a.latency, b.latency);
        }
    }

    /// The shard count must be invisible in batch results: the same points
    /// through the sharded engine (`shards = 2`) and the plain engine
    /// (`shards = 1`) produce identical numbers, sequential or parallel.
    #[test]
    fn sharded_points_agree_with_single_engine() {
        let single: Vec<Point> = (0..2)
            .map(|i| Point {
                cfg: tiny_cfg(),
                load: 0.3,
                seed: i,
            })
            .collect();
        let mut sharded = single.clone();
        for p in &mut sharded {
            p.cfg.shards = 2;
        }
        let a = run_points_with_threads(&single, 1).unwrap();
        let b = run_points_with_threads(&sharded, 2).unwrap();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.accepted, y.accepted);
            assert_eq!(x.latency, y.latency);
            assert_eq!(x.latency_hist.count(), y.latency_hist.count());
        }
    }

    /// Shared topologies (the per-batch cache) must not change results
    /// relative to per-point construction via `run_one`.
    #[test]
    fn topology_reuse_is_behavior_neutral() {
        let cfg = tiny_cfg();
        let points: Vec<Point> = (0..3)
            .map(|i| Point {
                cfg: cfg.clone(),
                load: 0.25,
                seed: i,
            })
            .collect();
        let batch = run_points_with_threads(&points, 1).unwrap();
        for (p, r) in points.iter().zip(&batch) {
            let fresh = run_one(&p.cfg, p.load, p.seed).unwrap();
            assert_eq!(fresh.accepted, r.accepted);
            assert_eq!(fresh.latency, r.latency);
        }
    }

    #[test]
    fn load_sweep_orders_results() {
        let cfg = tiny_cfg();
        let sweep = load_sweep(&cfg, &[0.1, 0.3], &[1, 2]).unwrap();
        assert_eq!(sweep.len(), 2);
        assert!(sweep[0].0 < sweep[1].0);
        assert!(sweep[0].1.accepted > 0.0);
        assert!(sweep[1].1.accepted > sweep[0].1.accepted);
    }

    #[test]
    fn invalid_point_reports_index_instead_of_panicking() {
        let good = tiny_cfg();
        let mut bad = tiny_cfg();
        // FlexVC VAL on 2/1: unsupported — must surface as a typed error.
        bad.policy = VcPolicy::FlexVc;
        bad.routing = RoutingMode::Valiant;
        bad.arrangement = Arrangement::dragonfly_min();
        let points = [
            Point {
                cfg: good,
                load: 0.2,
                seed: 1,
            },
            Point {
                cfg: bad,
                load: 0.2,
                seed: 1,
            },
        ];
        let err = run_points_with_threads(&points, 2).unwrap_err();
        match err {
            RunError::InvalidPoint { index, source } => {
                assert_eq!(index, 1);
                assert!(matches!(source, ConfigError::InsufficientVcs { .. }));
            }
            other => panic!("unexpected error: {other}"),
        }
    }

    #[test]
    fn empty_seed_batches_are_errors() {
        let cfg = tiny_cfg();
        assert_eq!(
            run_averaged(&cfg, 0.2, &[]).unwrap_err(),
            RunError::EmptyBatch
        );
        assert_eq!(
            load_sweep(&cfg, &[0.1], &[]).unwrap_err(),
            RunError::EmptyBatch
        );
    }

    #[test]
    fn progress_reports_every_point() {
        let cfg = tiny_cfg();
        let points: Vec<Point> = (0..3)
            .map(|i| Point {
                cfg: cfg.clone(),
                load: 0.2,
                seed: i,
            })
            .collect();
        let seen = AtomicUsize::new(0);
        let max_completed = AtomicUsize::new(0);
        let results = run_points_with_progress(&points, 2, |p| {
            seen.fetch_add(1, Ordering::Relaxed);
            max_completed.fetch_max(p.completed, Ordering::Relaxed);
            assert_eq!(p.total, 3);
            assert!(p.index < 3);
            assert!(p.result.accepted >= 0.0);
        })
        .unwrap();
        assert_eq!(results.len(), 3);
        assert_eq!(seen.load(Ordering::Relaxed), 3);
        assert_eq!(max_completed.load(Ordering::Relaxed), 3);
    }
}
