//! Experiment runner: parallel execution of independent simulation points.
//!
//! Every `(configuration, load, seed)` triple is an independent simulation;
//! sweeps fan the triples out over a crossbeam scoped thread pool (one
//! worker per available core) and results come back in input order, so
//! experiment binaries stay deterministic regardless of scheduling.

use crate::config::SimConfig;
use crate::engine::Network;
use crate::metrics::SimResult;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One simulation point.
#[derive(Debug, Clone)]
pub struct Point {
    /// Full configuration.
    pub cfg: SimConfig,
    /// Offered load in phits/node/cycle.
    pub load: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Run one simulation to completion.
pub fn run_one(cfg: &SimConfig, load: f64, seed: u64) -> Result<SimResult, String> {
    let mut net = Network::new(cfg.clone(), load, seed)?;
    Ok(net.run())
}

/// Run a batch of points in parallel; results are in input order.
/// Configuration errors abort with a panic (they indicate a programming
/// error in the experiment definition, not a runtime condition).
pub fn run_points(points: &[Point]) -> Vec<SimResult> {
    run_points_with_threads(points, default_threads())
}

/// [`run_points`] with an explicit worker count (1 = sequential).
pub fn run_points_with_threads(points: &[Point], threads: usize) -> Vec<SimResult> {
    let n = points.len();
    let mut results: Vec<Option<SimResult>> = vec![None; n];
    if threads <= 1 || n <= 1 {
        for (i, p) in points.iter().enumerate() {
            results[i] = Some(run_one(&p.cfg, p.load, p.seed).expect("invalid experiment point"));
        }
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<parking_lot::Mutex<Option<SimResult>>> =
            (0..n).map(|_| parking_lot::Mutex::new(None)).collect();
        crossbeam::scope(|s| {
            for _ in 0..threads.min(n) {
                s.spawn(|_| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let p = &points[i];
                    let r = run_one(&p.cfg, p.load, p.seed).expect("invalid experiment point");
                    *slots[i].lock() = Some(r);
                });
            }
        })
        .expect("worker panicked");
        for (i, slot) in slots.into_iter().enumerate() {
            results[i] = slot.into_inner();
        }
    }
    results.into_iter().map(|r| r.expect("slot filled")).collect()
}

/// Run `seeds` repetitions of one configuration/load and average.
pub fn run_averaged(cfg: &SimConfig, load: f64, seeds: &[u64]) -> SimResult {
    let points: Vec<Point> = seeds
        .iter()
        .map(|&seed| Point {
            cfg: cfg.clone(),
            load,
            seed,
        })
        .collect();
    SimResult::average(&run_points(&points))
}

/// Sweep offered loads for one configuration, averaging over `seeds`;
/// returns `(load, result)` pairs in load order.
pub fn load_sweep(cfg: &SimConfig, loads: &[f64], seeds: &[u64]) -> Vec<(f64, SimResult)> {
    let points: Vec<Point> = loads
        .iter()
        .flat_map(|&load| {
            seeds.iter().map(move |&seed| Point {
                cfg: cfg.clone(),
                load,
                seed,
            })
        })
        .collect();
    let results = run_points(&points);
    loads
        .iter()
        .enumerate()
        .map(|(i, &load)| {
            let chunk = &results[i * seeds.len()..(i + 1) * seeds.len()];
            (load, SimResult::average(chunk))
        })
        .collect()
}

/// Saturation throughput: accepted load at 100% offered load (the paper's
/// "maximum throughput" metric of Figs. 6 and 11).
pub fn saturation_throughput(cfg: &SimConfig, seeds: &[u64]) -> SimResult {
    run_averaged(cfg, 1.0, seeds)
}

/// Worker count: all cores.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexvc_core::RoutingMode;
    use flexvc_traffic::{Pattern, Workload};

    fn tiny_cfg() -> SimConfig {
        let mut cfg = SimConfig::dragonfly_baseline(
            2,
            RoutingMode::Min,
            Workload::oblivious(Pattern::Uniform),
        )
        .test_scale();
        cfg.warmup = 500;
        cfg.measure = 1000;
        cfg
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let cfg = tiny_cfg();
        let points: Vec<Point> = (0..4)
            .map(|i| Point {
                cfg: cfg.clone(),
                load: 0.2,
                seed: i,
            })
            .collect();
        let seq = run_points_with_threads(&points, 1);
        let par = run_points_with_threads(&points, 4);
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.accepted, b.accepted);
            assert_eq!(a.latency, b.latency);
        }
    }

    #[test]
    fn load_sweep_orders_results() {
        let cfg = tiny_cfg();
        let sweep = load_sweep(&cfg, &[0.1, 0.3], &[1, 2]);
        assert_eq!(sweep.len(), 2);
        assert!(sweep[0].0 < sweep[1].0);
        assert!(sweep[0].1.accepted > 0.0);
        assert!(sweep[1].1.accepted > sweep[0].1.accepted);
    }
}
