//! Validating builder for [`SimConfig`].
//!
//! The builder starts from the paper's Table V defaults at the reduced
//! default scale (balanced `h = 2` Dragonfly), derives the minimum safe VC
//! arrangement for the configured routing/workload when none is given
//! explicitly, and validates on [`SimConfigBuilder::build`] — returning a
//! typed [`ConfigError`] instead of panicking on inconsistent input.
//!
//! ```
//! use flexvc_sim::{SimConfig, SensingMode};
//! use flexvc_core::{Arrangement, RoutingMode};
//! use flexvc_traffic::{Pattern, Workload};
//!
//! let cfg = SimConfig::builder()
//!     .routing(RoutingMode::Piggyback)
//!     .workload(Workload::reactive(Pattern::adv1()))
//!     .flexvc(Arrangement::dragonfly_rr((4, 2), (2, 1)))
//!     .sensing_mode(SensingMode::PerVc)
//!     .min_cred(true)
//!     .windows(5_000, 10_000)
//!     .build()
//!     .expect("valid configuration");
//! assert!(cfg.sensing.min_cred);
//! ```

use crate::config::{BufferConfig, BufferOrg, BufferSizing, SensingConfig, SensingMode};
use crate::config::{QosConfig, SimConfig, TopologySpec};
use crate::error::ConfigError;
use flexvc_core::classify::NetworkFamily;
use flexvc_core::{Arrangement, RoutingMode, VcPolicy, VcSelection};
use flexvc_topology::GlobalArrangement;
use flexvc_traffic::{Pattern, Workload};

/// Builder for [`SimConfig`]; see the module docs for defaults.
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    topology: TopologySpec,
    routing: RoutingMode,
    policy: VcPolicy,
    arrangement: Option<Arrangement>,
    selection: VcSelection,
    workload: Workload,
    packet_size: u32,
    local_latency: u32,
    global_latency: u32,
    pipeline_latency: u32,
    speedup: u32,
    buffers: BufferConfig,
    injection_vcs: usize,
    sensing: SensingConfig,
    warmup: u64,
    measure: u64,
    watchdog: u64,
    revert_patience: u32,
    reply_queue_packets: usize,
    adaptive_copies: bool,
    shards: usize,
    qos: Option<QosConfig>,
}

impl Default for SimConfigBuilder {
    fn default() -> Self {
        SimConfigBuilder {
            topology: TopologySpec::DragonflyBalanced {
                h: 2,
                arrangement: GlobalArrangement::default(),
            },
            routing: RoutingMode::Min,
            policy: VcPolicy::Baseline,
            arrangement: None,
            selection: VcSelection::Jsq,
            workload: Workload::oblivious(Pattern::Uniform),
            packet_size: 8,
            local_latency: 10,
            global_latency: 100,
            pipeline_latency: 5,
            speedup: 2,
            buffers: BufferConfig::default(),
            injection_vcs: 3,
            sensing: SensingConfig::default(),
            warmup: 10_000,
            measure: 20_000,
            watchdog: 20_000,
            revert_patience: 16,
            reply_queue_packets: 4,
            adaptive_copies: false,
            shards: 1,
            qos: None,
        }
    }
}

/// The minimum arrangement on which the baseline policy supports `routing`
/// for the topology family, doubled into request/reply halves when
/// `reactive`. This is the arrangement [`SimConfig::dragonfly_baseline`]
/// uses and the builder's fallback when none is set explicitly.
pub fn default_arrangement(
    family: NetworkFamily,
    routing: RoutingMode,
    reactive: bool,
) -> Arrangement {
    match family.generic_diameter() {
        None => {
            // Dragonfly and Dragonfly+ share the `L G L` reference texture
            // and baseline minima (min_dfplus_vcs == min_dragonfly_vcs);
            // only the FlexVC classifier boundaries differ, and those are
            // enforced by `SimConfig::validate`, not by this default.
            let (l, g) = if family == NetworkFamily::DragonflyPlus {
                routing.min_dfplus_vcs()
            } else {
                routing.min_dragonfly_vcs()
            };
            if reactive {
                Arrangement::dragonfly_rr((l, g), (l, g))
            } else {
                Arrangement::dragonfly(l, g)
            }
        }
        Some(d) => {
            let n = routing.generic_reference(d).len();
            if reactive {
                Arrangement::generic_rr(n, n)
            } else {
                Arrangement::generic(n)
            }
        }
    }
}

impl SimConfigBuilder {
    /// Fresh builder with Table V defaults at the reduced default scale.
    pub fn new() -> Self {
        Self::default()
    }

    /// Network topology.
    pub fn topology(mut self, topology: TopologySpec) -> Self {
        self.topology = topology;
        self
    }

    /// Balanced Dragonfly shortcut (`p = h`, `a = 2h`, `g = 2h² + 1`).
    pub fn dragonfly(mut self, h: usize) -> Self {
        self.topology = TopologySpec::DragonflyBalanced {
            h,
            arrangement: GlobalArrangement::default(),
        };
        self
    }

    /// Regular HyperX shortcut: `n` dimensions × `s` routers (unit link
    /// multiplicity), `p` terminals per router, uniform link latency.
    pub fn hyperx(mut self, n: usize, s: usize, p: usize) -> Self {
        self.topology = TopologySpec::HyperX {
            dims: vec![(s, 1); n],
            p,
        };
        self.global_latency = self.local_latency;
        self
    }

    /// Dragonfly+ shortcut: `leaves`/`spines` routers and `hosts_per_leaf`
    /// terminals per group, `groups` groups, one global link per group
    /// pair.
    pub fn dragonfly_plus(
        mut self,
        leaves: usize,
        spines: usize,
        hosts_per_leaf: usize,
        groups: usize,
    ) -> Self {
        self.topology = TopologySpec::DragonflyPlus {
            leaves,
            spines,
            hosts_per_leaf,
            global_mult: 1,
            groups,
        };
        self
    }

    /// Routing mechanism.
    pub fn routing(mut self, routing: RoutingMode) -> Self {
        self.routing = routing;
        self
    }

    /// VC management policy (the arrangement stays as configured).
    pub fn policy(mut self, policy: VcPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Explicit VC arrangement (otherwise the minimum safe arrangement for
    /// the routing/workload is derived at build time).
    pub fn arrangement(mut self, arrangement: Arrangement) -> Self {
        self.arrangement = Some(arrangement);
        self
    }

    /// Switch to the FlexVC policy on the given arrangement.
    pub fn flexvc(mut self, arrangement: Arrangement) -> Self {
        self.policy = VcPolicy::FlexVc;
        self.arrangement = Some(arrangement);
        self
    }

    /// Traffic workload.
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = workload;
        self
    }

    /// FlexVC VC selection function.
    pub fn selection(mut self, selection: VcSelection) -> Self {
        self.selection = selection;
        self
    }

    /// Packet size in phits.
    pub fn packet_size(mut self, phits: u32) -> Self {
        self.packet_size = phits;
        self
    }

    /// Local and global link latencies in cycles.
    pub fn link_latencies(mut self, local: u32, global: u32) -> Self {
        self.local_latency = local;
        self.global_latency = global;
        self
    }

    /// Router pipeline latency in cycles.
    pub fn pipeline_latency(mut self, cycles: u32) -> Self {
        self.pipeline_latency = cycles;
        self
    }

    /// Internal crossbar speedup factor.
    pub fn speedup(mut self, speedup: u32) -> Self {
        self.speedup = speedup;
        self
    }

    /// Full buffer configuration.
    pub fn buffers(mut self, buffers: BufferConfig) -> Self {
        self.buffers = buffers;
        self
    }

    /// Input bank sizing only.
    pub fn buffer_sizing(mut self, sizing: BufferSizing) -> Self {
        self.buffers.sizing = sizing;
        self
    }

    /// Fixed total memory per port, split across its VCs.
    pub fn per_port_buffers(mut self, local: u32, global: u32) -> Self {
        self.buffers.sizing = BufferSizing::PerPort { local, global };
        self
    }

    /// DAMQ buffer organization with the given private reservation.
    pub fn damq(mut self, private_fraction: f64) -> Self {
        self.buffers.organization = BufferOrg::Damq { private_fraction };
        self
    }

    /// Injection VCs per injection port.
    pub fn injection_vcs(mut self, vcs: usize) -> Self {
        self.injection_vcs = vcs;
        self
    }

    /// Full Piggyback sensing configuration.
    pub fn sensing(mut self, sensing: SensingConfig) -> Self {
        self.sensing = sensing;
        self
    }

    /// Piggyback sensing granularity only.
    pub fn sensing_mode(mut self, mode: SensingMode) -> Self {
        self.sensing.mode = mode;
        self
    }

    /// FlexVC-minCred: measure only minimally-routed occupancy.
    pub fn min_cred(mut self, min_cred: bool) -> Self {
        self.sensing.min_cred = min_cred;
        self
    }

    /// Warm-up and measurement windows in cycles (the watchdog follows at
    /// half their sum unless set explicitly afterwards).
    pub fn windows(mut self, warmup: u64, measure: u64) -> Self {
        self.warmup = warmup;
        self.measure = measure;
        self.watchdog = (warmup + measure) / 2;
        self
    }

    /// Forward-progress watchdog limit in cycles.
    pub fn watchdog(mut self, cycles: u64) -> Self {
        self.watchdog = cycles;
        self
    }

    /// Opportunistic-hop reversion patience in allocation evaluations.
    pub fn revert_patience(mut self, evals: u32) -> Self {
        self.revert_patience = evals;
        self
    }

    /// Reply-generation queue depth in packets (reactive workloads).
    pub fn reply_queue_packets(mut self, packets: usize) -> Self {
        self.reply_queue_packets = packets;
        self
    }

    /// Adaptive parallel-copy selection for `k > 1` link multiplicity:
    /// route each hop over the least-occupied copy instead of the static
    /// endpoint hash.
    pub fn adaptive_copies(mut self, adaptive: bool) -> Self {
        self.adaptive_copies = adaptive;
        self
    }

    /// Engine shard count (`1` = plain single engine, `0` = auto-detect
    /// from the host; see `sim::shard`). Results never depend on it.
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Multi-class QoS configuration (strict-priority arbitration with
    /// bounded bypass; see [`QosConfig`]).
    pub fn qos(mut self, qos: QosConfig) -> Self {
        self.qos = Some(qos);
        self
    }

    /// Assemble and validate the configuration.
    pub fn build(self) -> Result<SimConfig, ConfigError> {
        let family = self.topology.family();
        let arrangement = self.arrangement.unwrap_or_else(|| {
            default_arrangement(family, self.routing, self.workload.is_reactive())
        });
        let cfg = SimConfig {
            topology: self.topology,
            routing: self.routing,
            policy: self.policy,
            arrangement,
            selection: self.selection,
            workload: self.workload,
            packet_size: self.packet_size,
            local_latency: self.local_latency,
            global_latency: self.global_latency,
            pipeline_latency: self.pipeline_latency,
            speedup: self.speedup,
            buffers: self.buffers,
            injection_vcs: self.injection_vcs,
            sensing: self.sensing,
            warmup: self.warmup,
            measure: self.measure,
            watchdog: self.watchdog,
            revert_patience: self.revert_patience,
            reply_queue_packets: self.reply_queue_packets,
            adaptive_copies: self.adaptive_copies,
            shards: self.shards,
            qos: self.qos,
        };
        cfg.validate()?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexvc_core::LinkClass;

    #[test]
    fn defaults_match_dragonfly_baseline() {
        let built = SimConfigBuilder::new().build().unwrap();
        let baseline = SimConfig::dragonfly_baseline(
            2,
            RoutingMode::Min,
            Workload::oblivious(Pattern::Uniform),
        );
        assert_eq!(built.packet_size, baseline.packet_size);
        assert_eq!(built.speedup, baseline.speedup);
        assert_eq!(built.arrangement, baseline.arrangement);
        assert_eq!(built.warmup, baseline.warmup);
        assert_eq!(built.measure, baseline.measure);
    }

    #[test]
    fn derives_arrangement_per_routing_and_workload() {
        let val = SimConfigBuilder::new()
            .routing(RoutingMode::Valiant)
            .build()
            .unwrap();
        assert_eq!(val.arrangement.vc_count(LinkClass::Local), 4);
        assert_eq!(val.arrangement.vc_count(LinkClass::Global), 2);

        let rr = SimConfigBuilder::new()
            .workload(Workload::reactive(Pattern::Uniform))
            .build()
            .unwrap();
        assert!(rr.arrangement.has_reply_part());

        let generic = SimConfigBuilder::new()
            .topology(TopologySpec::FlatButterfly { k: 4, p: 2 })
            .routing(RoutingMode::Valiant)
            .build()
            .unwrap();
        assert_eq!(generic.arrangement.total_vcs(), 4);

        // A 3-D HyperX derives diameter-3 references: VAL needs 6 VCs.
        let hx = SimConfigBuilder::new()
            .hyperx(3, 3, 2)
            .routing(RoutingMode::Valiant)
            .build()
            .unwrap();
        assert_eq!(hx.arrangement.total_vcs(), 6);
        assert_eq!(hx.global_latency, hx.local_latency);

        // Dragonfly+ derives the Dragonfly-shaped minima (4/2 for VAL).
        let dfp = SimConfigBuilder::new()
            .dragonfly_plus(2, 2, 2, 5)
            .routing(RoutingMode::Valiant)
            .build()
            .unwrap();
        assert_eq!(dfp.arrangement.vc_count(LinkClass::Local), 4);
        assert_eq!(dfp.arrangement.vc_count(LinkClass::Global), 2);
    }

    #[test]
    fn invalid_combinations_are_typed_errors() {
        // FlexVC VAL on the 2/1 MIN arrangement: unsupported.
        let err = SimConfigBuilder::new()
            .routing(RoutingMode::Valiant)
            .flexvc(Arrangement::dragonfly_min())
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::InsufficientVcs { .. }), "{err}");
        // The rendered rejection names the classifier's safe minimum.
        assert!(err.to_string().contains("4/2 local/global VCs"), "{err}");

        // Degenerate topology shapes are typed errors, not panics.
        let err = SimConfigBuilder::new()
            .topology(TopologySpec::HyperX {
                dims: vec![(2, 1); 4],
                p: 1,
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, ConfigError::InvalidTopology { .. }), "{err}");

        // Zero packet size.
        let err = SimConfigBuilder::new().packet_size(0).build().unwrap_err();
        assert!(matches!(err, ConfigError::NonPositive { .. }));
    }

    #[test]
    fn knobs_land_in_config() {
        let cfg = SimConfigBuilder::new()
            .dragonfly(3)
            .routing(RoutingMode::Valiant)
            .flexvc(Arrangement::dragonfly(4, 2))
            .selection(VcSelection::HighestVc)
            .packet_size(4)
            .link_latencies(5, 50)
            .pipeline_latency(3)
            .speedup(1)
            .per_port_buffers(128, 512)
            .damq(0.75)
            .injection_vcs(2)
            .sensing_mode(SensingMode::PerVc)
            .min_cred(true)
            .windows(1_000, 2_000)
            .watchdog(9_000)
            .revert_patience(0)
            .reply_queue_packets(8)
            .build()
            .unwrap();
        assert_eq!(cfg.selection, VcSelection::HighestVc);
        assert_eq!(cfg.packet_size, 4);
        assert_eq!(cfg.local_latency, 5);
        assert_eq!(cfg.global_latency, 50);
        assert_eq!(cfg.pipeline_latency, 3);
        assert_eq!(cfg.speedup, 1);
        assert!(matches!(
            cfg.buffers.organization,
            BufferOrg::Damq { private_fraction } if private_fraction == 0.75
        ));
        assert_eq!(cfg.injection_vcs, 2);
        assert_eq!(cfg.sensing.mode, SensingMode::PerVc);
        assert!(cfg.sensing.min_cred);
        assert_eq!(cfg.watchdog, 9_000);
        assert_eq!(cfg.revert_patience, 0);
        assert_eq!(cfg.reply_queue_packets, 8);
    }
}
