//! Simulation configuration (Table V of the paper plus policy knobs).
//!
//! Build configurations with [`SimConfig::builder`] (validating, typed
//! errors) or the [`SimConfig::dragonfly_baseline`] convenience
//! constructor; serialize them through `flexvc_serde` (see the
//! `serde_impls` module) to move whole experiments through TOML/JSON.

use crate::builder::SimConfigBuilder;
use crate::error::ConfigError;
use flexvc_core::classify::{classify, NetworkFamily, Support};
use flexvc_core::policy::supports_baseline;
use flexvc_core::{
    Arrangement, LinkClass, MessageClass, RoutingMode, TrafficClass, VcPolicy, VcSelection,
};
use flexvc_topology::{
    Dragonfly, DragonflyPlus, FlatButterfly2D, GlobalArrangement, HyperX, Topology,
};
use flexvc_traffic::{Pattern, Workload};
use std::sync::Arc;

/// Topology selector.
///
/// `PartialEq` compares the *specification* (shape parameters), which is
/// what the runner's topology cache keys on: equal specs build identical
/// topologies, so one built instance can back every sweep point sharing
/// the spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologySpec {
    /// Balanced Dragonfly with global-link count `h` per router
    /// (`p = h`, `a = 2h`, `g = 2h² + 1`). Table V is `h = 8`.
    DragonflyBalanced {
        /// Global links per router.
        h: usize,
        /// Global wiring.
        arrangement: GlobalArrangement,
    },
    /// Explicit Dragonfly parameters.
    Dragonfly {
        /// Terminals per router.
        p: usize,
        /// Routers per group.
        a: usize,
        /// Global links per router.
        h: usize,
        /// Groups.
        g: usize,
        /// Global wiring.
        arrangement: GlobalArrangement,
    },
    /// `k × k` flattened butterfly with `p` terminals per router, treated
    /// as a generic diameter-2 network.
    FlatButterfly {
        /// Routers per row/column.
        k: usize,
        /// Terminals per router.
        p: usize,
    },
    /// `n`-dimensional HyperX with per-dimension `(s, k)` shapes (`s`
    /// routers along the dimension, `k` parallel links per peer pair) and
    /// `p` terminals per router; a generic diameter-`n` network. The 2-D
    /// unit-multiplicity instance coincides with [`FlatButterfly2D`].
    HyperX {
        /// Per-dimension `(s, k)` pairs, dimension 0 first.
        dims: Vec<(usize, usize)>,
        /// Terminals per router.
        p: usize,
    },
    /// Dragonfly+ (Megafly): groups are two-level fat trees — `leaves`
    /// leaf routers with `hosts_per_leaf` terminals each, `spines` spine
    /// routers holding the global links, every group pair joined by
    /// `global_mult` global links. Minimal routes are
    /// `leaf → spine → global → spine → leaf`; supported routing modes are
    /// MIN, VAL, PB and UGAL-L/G (PAR's and DAL's in-transit diverts are
    /// not defined on the fat-tree hierarchy — see
    /// [`SimConfig::validate`]).
    DragonflyPlus {
        /// Leaf routers per group (hosts attach here).
        leaves: usize,
        /// Spine routers per group (global links attach here).
        spines: usize,
        /// Terminals per leaf router.
        hosts_per_leaf: usize,
        /// Global links per group pair.
        global_mult: usize,
        /// Number of groups.
        groups: usize,
    },
}

impl TopologySpec {
    /// Instantiate the topology.
    pub fn build(&self) -> Arc<dyn Topology> {
        match self {
            &TopologySpec::DragonflyBalanced { h, arrangement } => {
                Arc::new(Dragonfly::balanced_with(h, arrangement))
            }
            &TopologySpec::Dragonfly {
                p,
                a,
                h,
                g,
                arrangement,
            } => Arc::new(Dragonfly::new(p, a, h, g, arrangement)),
            &TopologySpec::FlatButterfly { k, p } => Arc::new(FlatButterfly2D::new(k, p)),
            TopologySpec::HyperX { dims, p } => Arc::new(HyperX::new(dims.clone(), *p)),
            &TopologySpec::DragonflyPlus {
                leaves,
                spines,
                hosts_per_leaf,
                global_mult,
                groups,
            } => Arc::new(DragonflyPlus::new(
                leaves,
                spines,
                hosts_per_leaf,
                global_mult,
                groups,
            )),
        }
    }

    /// Router count of the topology, computed from the shape parameters
    /// alone (no instantiation) — the bound the shard count is validated
    /// against, since every shard must own at least one router.
    pub fn num_routers(&self) -> usize {
        match self {
            TopologySpec::DragonflyBalanced { h, .. } => 2 * h * (2 * h * h + 1),
            TopologySpec::Dragonfly { a, g, .. } => a * g,
            TopologySpec::FlatButterfly { k, .. } => k * k,
            TopologySpec::HyperX { dims, .. } => dims.iter().map(|&(s, _)| s).product(),
            TopologySpec::DragonflyPlus {
                leaves,
                spines,
                groups,
                ..
            } => (leaves + spines) * groups,
        }
    }

    /// Terminal-node count of the topology, computed from the shape
    /// parameters alone. Traffic generation needs at least two nodes
    /// (destinations exclude the source), which [`SimConfig::validate`]
    /// enforces.
    pub fn num_nodes(&self) -> usize {
        match self {
            TopologySpec::DragonflyBalanced { h, .. } => h * 2 * h * (2 * h * h + 1),
            TopologySpec::Dragonfly { p, a, g, .. } => p * a * g,
            TopologySpec::FlatButterfly { k, p } => k * k * p,
            TopologySpec::HyperX { dims, p } => dims.iter().map(|&(s, _)| s).product::<usize>() * p,
            TopologySpec::DragonflyPlus {
                leaves,
                hosts_per_leaf,
                groups,
                ..
            } => leaves * hosts_per_leaf * groups,
        }
    }

    /// Classification family of the topology.
    pub fn family(&self) -> NetworkFamily {
        match self {
            TopologySpec::FlatButterfly { .. } => NetworkFamily::Diameter2,
            TopologySpec::HyperX { dims, .. } => NetworkFamily::generic(dims.len().max(1)),
            TopologySpec::DragonflyPlus { .. } => NetworkFamily::DragonflyPlus,
            _ => NetworkFamily::Dragonfly,
        }
    }

    /// Shape validation with typed errors (so serde-loaded configurations
    /// fail [`SimConfig::validate`] instead of panicking in `build`).
    pub fn check_shape(&self) -> Result<(), ConfigError> {
        let fail = |why| Err(ConfigError::InvalidTopology { why });
        match self {
            TopologySpec::DragonflyBalanced { h, .. } => {
                if *h == 0 {
                    return fail("balanced Dragonfly needs h >= 1");
                }
            }
            TopologySpec::Dragonfly { p, a, h, g, .. } => {
                if *p < 1 || *a < 2 || *h < 1 {
                    return fail("Dragonfly needs p >= 1, a >= 2, h >= 1");
                }
                if *g < 2 || *g > a * h + 1 {
                    return fail("Dragonfly group count must be in 2..=a*h+1");
                }
            }
            TopologySpec::FlatButterfly { k, p } => {
                if *k < 2 || *p < 1 {
                    return fail("flattened butterfly needs k >= 2, p >= 1");
                }
            }
            TopologySpec::HyperX { dims, p } => {
                if dims.is_empty() || dims.len() > flexvc_topology::hyperx::MAX_DIMS {
                    return fail("HyperX supports 1..=3 dimensions");
                }
                if dims.iter().any(|&(s, _)| s < 2) {
                    return fail("every HyperX dimension needs at least 2 routers");
                }
                if dims.iter().any(|&(_, k)| k < 1) {
                    return fail("HyperX link multiplicity must be at least 1");
                }
                if *p < 1 {
                    return fail("HyperX needs at least one terminal per router");
                }
            }
            TopologySpec::DragonflyPlus {
                leaves,
                spines,
                hosts_per_leaf,
                global_mult,
                groups,
            } => {
                if *leaves < 1 {
                    return fail(
                        "Dragonfly+ `leaves` must be >= 1 (each group's fat tree \
                         needs leaf routers to attach its hosts to)",
                    );
                }
                if *spines < 1 {
                    return fail(
                        "Dragonfly+ `spines` must be >= 1 (spine routers hold the \
                         group's global links)",
                    );
                }
                if *hosts_per_leaf < 1 {
                    return fail("Dragonfly+ `hosts_per_leaf` must be >= 1");
                }
                if *global_mult < 1 {
                    return fail(
                        "Dragonfly+ `global_mult` must be >= 1 (global links per \
                         group pair)",
                    );
                }
                if *groups < 2 {
                    return fail("Dragonfly+ `groups` must be >= 2");
                }
                if !(global_mult * (groups - 1)).is_multiple_of(*spines) {
                    return fail(
                        "Dragonfly+ shape must satisfy `global_mult * (groups - 1) \
                         % spines == 0` (every spine gets an equal share of its \
                         group's global links)",
                    );
                }
            }
        }
        Ok(())
    }
}

/// How per-VC buffer capacities are derived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BufferSizing {
    /// Fixed capacity per VC (Table V: 32 local, 256 global). Total port
    /// memory grows with the VC count (Fig. 5 methodology).
    PerVc {
        /// Local input buffer per VC, phits.
        local: u32,
        /// Global input buffer per VC, phits.
        global: u32,
    },
    /// Fixed total memory per port, split evenly across its VCs (Fig. 6 /
    /// Fig. 11 methodology, constant cost comparison).
    PerPort {
        /// Total phits per local input port.
        local: u32,
        /// Total phits per global input port.
        global: u32,
    },
}

/// Buffer organization of the network input ports.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BufferOrg {
    /// Statically partitioned FIFOs (one private buffer per VC).
    Static,
    /// Dynamically-Allocated Multi-Queue: a shared pool per port with a
    /// private reservation per VC. The paper's reference configuration
    /// reserves 75% of the port memory privately (§VI-C).
    Damq {
        /// Fraction of the port memory reserved privately per VC,
        /// distributed evenly (0.0 = fully shared, 1.0 = static).
        private_fraction: f64,
    },
}

/// Buffer configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferConfig {
    /// Input bank sizing.
    pub sizing: BufferSizing,
    /// Input bank organization.
    pub organization: BufferOrg,
    /// Injection buffer per injection VC, phits (Table V: 256).
    pub injection: u32,
    /// Output buffer per port, phits (Table V: 32).
    pub output: u32,
}

impl Default for BufferConfig {
    fn default() -> Self {
        BufferConfig {
            sizing: BufferSizing::PerVc {
                local: 32,
                global: 256,
            },
            organization: BufferOrg::Static,
            injection: 256,
            output: 32,
        }
    }
}

/// Congestion-sensing granularity for Piggyback routing (§III-D, §V-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SensingMode {
    /// Sum of the credits of all VCs of each global port.
    PerPort,
    /// First VC of each global port only (first VC of each subpath with
    /// request/reply traffic).
    PerVc,
}

/// Piggyback sensing configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensingConfig {
    /// Occupancy aggregation granularity.
    pub mode: SensingMode,
    /// FlexVC-minCred: measure only minimally-routed occupancy.
    pub min_cred: bool,
    /// UGAL/PB threshold `T` in packets (Table V: 3).
    pub threshold: u32,
}

impl Default for SensingConfig {
    fn default() -> Self {
        SensingConfig {
            mode: SensingMode::PerPort,
            min_cred: false,
            threshold: 3,
        }
    }
}

/// How VC budgets are divided between QoS traffic classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassVcMap {
    /// Both classes draw from the full VC budget; priority acts only on
    /// arbitration order. Works under either VC policy — grants are
    /// reordered among already-legal candidates, so the channel dependency
    /// graph is unchanged.
    Shared,
    /// Control traffic owns the first `control_local`/`control_global` VCs
    /// of each class; bulk owns the rest. Requires [`VcPolicy::FlexVc`]
    /// (the baseline's fixed hop-to-VC map cannot confine a class to a
    /// subset), and each class's sub-arrangement must independently embed
    /// a safe minimal path — see [`SimConfig::validate`].
    Partitioned {
        /// Local-class VCs owned by control traffic.
        control_local: usize,
        /// Global-class VCs owned by control traffic.
        control_global: usize,
    },
}

/// Multi-class QoS configuration: strict-priority arbitration for control
/// traffic with a bounded bypass for bulk liveness, optional per-class VC
/// partitioning, and an optional dynamic per-class buffer repartitioner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QosConfig {
    /// Per-class VC budget mapping.
    pub vc_map: ClassVcMap,
    /// Consecutive priority grants a control head may take while a bulk
    /// head is waiting at the same arbiter before one bulk grant is forced
    /// through (anti-starvation escape). Must be at least 1.
    pub bypass_bound: u32,
    /// Enable the dynamic per-class buffer repartitioner: per-port quota
    /// chunks shift between the classes on occupancy pressure (DAMQ-style,
    /// but class-scoped; quota sums stay constant per port).
    pub repartition: bool,
    /// Initial fraction of each port's buffer quota assigned to the
    /// control class (strictly between 0 and 1).
    pub control_quota_fraction: f64,
}

impl Default for QosConfig {
    fn default() -> Self {
        QosConfig {
            vc_map: ClassVcMap::Shared,
            bypass_bound: 4,
            repartition: false,
            control_quota_fraction: 0.5,
        }
    }
}

impl QosConfig {
    /// Shared-budget priority QoS with the default bypass bound.
    pub fn shared() -> Self {
        QosConfig::default()
    }

    /// Class-partitioned QoS: control owns the first
    /// `control_local`/`control_global` VCs per class.
    pub fn partitioned(control_local: usize, control_global: usize) -> Self {
        QosConfig {
            vc_map: ClassVcMap::Partitioned {
                control_local,
                control_global,
            },
            ..QosConfig::default()
        }
    }

    /// Enable the dynamic per-class buffer repartitioner.
    pub fn with_repartition(mut self) -> Self {
        self.repartition = true;
        self
    }
}

/// Full simulation configuration. Defaults follow Table V at a reduced
/// network scale (see `DESIGN.md` §6 on the scale substitution).
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Network topology.
    pub topology: TopologySpec,
    /// Routing mechanism.
    pub routing: RoutingMode,
    /// VC management policy.
    pub policy: VcPolicy,
    /// VC arrangement (master reference sequence).
    pub arrangement: Arrangement,
    /// FlexVC VC selection function (Table V: JSQ).
    pub selection: VcSelection,
    /// Traffic workload.
    pub workload: Workload,
    /// Packet size in phits (Table V: 8).
    pub packet_size: u32,
    /// Local link latency in cycles (Table V: 10).
    pub local_latency: u32,
    /// Global link latency in cycles (Table V: 100).
    pub global_latency: u32,
    /// Router pipeline latency in cycles (Table V: 5).
    pub pipeline_latency: u32,
    /// Internal crossbar frequency speedup (Table V: 2; Fig. 11 uses 1).
    pub speedup: u32,
    /// Buffers.
    pub buffers: BufferConfig,
    /// Injection VCs per injection port (Table V: 3).
    pub injection_vcs: usize,
    /// Piggyback sensing.
    pub sensing: SensingConfig,
    /// Warm-up cycles before measurement.
    pub warmup: u64,
    /// Measurement window in cycles. The paper measures 60,000 cycles at
    /// its full `h = 8` scale; [`SimConfig::dragonfly_baseline`] defaults
    /// to 20,000 to match the reduced default network (use
    /// `FLEXVC_PAPER=1` with the harness, or set this field, for the full
    /// window).
    pub measure: u64,
    /// Forward-progress watchdog: abort and flag deadlock after this many
    /// cycles without any packet movement while packets are in flight.
    pub watchdog: u64,
    /// How many allocation evaluations a head may stay blocked on an
    /// opportunistic hop before reverting to its escape path. `0` reverts on
    /// the first missing credit (the paper's strictest reading); a small
    /// patience lets transient buffer fill-ups pass, which matters when
    /// reverted packets would pile onto an already-congested minimal
    /// channel. Waiting is deadlock-safe: the escape path stays available
    /// (Duato's criterion).
    pub revert_patience: u32,
    /// Reactive traffic: staged replies a node may hold before its
    /// *request* consumption stalls (the NIC's reply-generation queue).
    /// This is the protocol coupling behind the paper's request–reply
    /// congestion: when replies cannot drain into the network, requests
    /// back up behind the stalled consumption ports. Reply consumption
    /// never stalls, so the dependency chain stays acyclic.
    pub reply_queue_packets: usize,
    /// Adaptive parallel-copy selection for `k > 1` link multiplicity:
    /// route each hop over the least-occupied copy of its link (sensed at
    /// the deciding router) instead of the static endpoint hash. Off by
    /// default — the hash keeps routes a pure function of the endpoints,
    /// which the equivalence snapshots rely on.
    pub adaptive_copies: bool,
    /// Engine shards: partition the routers across this many worker
    /// threads with a deterministic per-cycle boundary exchange (see
    /// `sim::shard`). Results are bit-identical for every shard count;
    /// only wall-clock time changes. `1` runs the plain single-engine
    /// path; `0` auto-detects from the host's available parallelism
    /// (the one setting whose *throughput* — never results — depends on
    /// the machine).
    pub shards: usize,
    /// Multi-class QoS: strict-priority arbitration with bounded bypass,
    /// optional class-partitioned VC budgets and dynamic buffer
    /// repartitioning. `None` runs the single-class engine paths
    /// bit-identically to configurations predating this field.
    pub qos: Option<QosConfig>,
}

impl SimConfig {
    /// Start building a configuration field by field; `build()` validates
    /// and returns typed [`ConfigError`]s instead of panicking.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::new()
    }

    /// Baseline configuration on a balanced Dragonfly of size `h` for a
    /// routing mode, with the minimum VC arrangement of Table V
    /// (2/1 for MIN, 4/2 for VAL/PB, 5/2 for PAR; doubled when reactive).
    pub fn dragonfly_baseline(h: usize, routing: RoutingMode, workload: Workload) -> Self {
        let (l, g) = routing.min_dragonfly_vcs();
        let arrangement = if workload.is_reactive() {
            Arrangement::dragonfly_rr((l, g), (l, g))
        } else {
            Arrangement::dragonfly(l, g)
        };
        SimConfig {
            topology: TopologySpec::DragonflyBalanced {
                h,
                arrangement: GlobalArrangement::default(),
            },
            routing,
            policy: VcPolicy::Baseline,
            arrangement,
            selection: VcSelection::Jsq,
            workload,
            packet_size: 8,
            local_latency: 10,
            global_latency: 100,
            pipeline_latency: 5,
            speedup: 2,
            buffers: BufferConfig::default(),
            injection_vcs: 3,
            sensing: SensingConfig::default(),
            warmup: 10_000,
            measure: 20_000,
            watchdog: 20_000,
            revert_patience: 16,
            reply_queue_packets: 4,
            adaptive_copies: false,
            shards: 1,
            qos: None,
        }
    }

    /// Baseline configuration on a regular `n`-dimensional HyperX of `s`
    /// routers per dimension (unit link multiplicity) with `p` terminals,
    /// using the minimum generic arrangement for the routing mode
    /// ([`RoutingMode::min_hyperx_vcs`]; doubled when reactive). Link
    /// latencies are uniform (all links share one class), so the global
    /// latency is set equal to the local one.
    pub fn hyperx_baseline(
        n: usize,
        s: usize,
        p: usize,
        routing: RoutingMode,
        workload: Workload,
    ) -> Self {
        let vcs = routing.min_hyperx_vcs(n);
        let arrangement = if workload.is_reactive() {
            Arrangement::generic_rr(vcs, vcs)
        } else {
            Arrangement::generic(vcs)
        };
        let mut cfg = Self::dragonfly_baseline(2, routing, workload);
        cfg.topology = TopologySpec::HyperX {
            dims: vec![(s, 1); n],
            p,
        };
        cfg.arrangement = arrangement;
        // Single-class network: one uniform link latency.
        cfg.global_latency = cfg.local_latency;
        cfg
    }

    /// Baseline configuration on a Dragonfly+ with `leaves`/`spines`
    /// routers and `hosts_per_leaf` terminals per group, `groups` groups
    /// and one global link per group pair, using the minimum VC
    /// arrangement for the routing mode
    /// ([`RoutingMode::min_dfplus_vcs`] — the Dragonfly counts, since
    /// Dragonfly+ shares the `L G L` reference texture; doubled when
    /// reactive). Local (fat-tree) links keep the Dragonfly local
    /// latency, global links the global one.
    pub fn dfplus_baseline(
        leaves: usize,
        spines: usize,
        hosts_per_leaf: usize,
        groups: usize,
        routing: RoutingMode,
        workload: Workload,
    ) -> Self {
        let (l, g) = routing.min_dfplus_vcs();
        let arrangement = if workload.is_reactive() {
            Arrangement::dragonfly_rr((l, g), (l, g))
        } else {
            Arrangement::dragonfly(l, g)
        };
        let mut cfg = Self::dragonfly_baseline(2, routing, workload);
        cfg.topology = TopologySpec::DragonflyPlus {
            leaves,
            spines,
            hosts_per_leaf,
            global_mult: 1,
            groups,
        };
        cfg.arrangement = arrangement;
        cfg
    }

    /// Switch to FlexVC with the given arrangement.
    pub fn with_flexvc(mut self, arrangement: Arrangement) -> Self {
        self.policy = VcPolicy::FlexVc;
        self.arrangement = arrangement;
        self
    }

    /// Attach a multi-class QoS configuration.
    pub fn with_qos(mut self, qos: QosConfig) -> Self {
        self.qos = Some(qos);
        self
    }

    /// Switch the buffer organization to DAMQ with the paper's reference
    /// 75% private reservation.
    pub fn with_damq75(mut self) -> Self {
        self.buffers.organization = BufferOrg::Damq {
            private_fraction: 0.75,
        };
        self
    }

    /// VC count for a port of the given class.
    pub fn vcs_for_class(&self, class: flexvc_core::LinkClass) -> usize {
        self.arrangement.vc_count(class)
    }

    /// Per-VC input buffer capacity for a port class.
    pub fn vc_capacity(&self, class: flexvc_core::LinkClass) -> u32 {
        use flexvc_core::LinkClass::*;
        match self.buffers.sizing {
            BufferSizing::PerVc { local, global } => match class {
                Local => local,
                Global => global,
            },
            BufferSizing::PerPort { local, global } => {
                let total = match class {
                    Local => local,
                    Global => global,
                };
                let n = self.vcs_for_class(class).max(1) as u32;
                (total / n).max(self.packet_size)
            }
        }
    }

    /// Bitmask over the per-class VC indices of `link` that packets of
    /// `tclass` may occupy under the configured QoS VC map. All ones when
    /// QoS is off or the budget is shared; under
    /// [`ClassVcMap::Partitioned`] control owns the low indices and bulk
    /// the rest.
    pub fn qos_vc_mask(&self, link: LinkClass, tclass: TrafficClass) -> u32 {
        let n = self.vcs_for_class(link);
        let full = if n >= 32 { u32::MAX } else { (1u32 << n) - 1 };
        let Some(qos) = &self.qos else { return full };
        match qos.vc_map {
            ClassVcMap::Shared => full,
            ClassVcMap::Partitioned {
                control_local,
                control_global,
            } => {
                let c = match link {
                    LinkClass::Local => control_local,
                    LinkClass::Global => control_global,
                }
                .min(n);
                let ctrl = if c >= 32 { u32::MAX } else { (1u32 << c) - 1 };
                match tclass {
                    TrafficClass::Control => ctrl,
                    TrafficClass::Bulk => full & !ctrl,
                }
            }
        }
    }

    /// The sub-arrangement (a subsequence of the master reference
    /// sequence) a traffic class is confined to under a partitioned QoS
    /// VC map: control keeps the positions whose per-class VC index falls
    /// below its budget, bulk keeps the complement. `None` when QoS is
    /// off, the budget is shared, or the class's subsequence is empty.
    ///
    /// This is the object of the priority-composition proof: strict
    /// priority composes with FlexVC's position-based safety argument iff
    /// each class's sub-arrangement independently admits a safe minimal
    /// embedding (validated in [`SimConfig::validate`]).
    pub fn qos_sub_arrangement(&self, tclass: TrafficClass) -> Option<Arrangement> {
        let qos = self.qos.as_ref()?;
        let ClassVcMap::Partitioned {
            control_local,
            control_global,
        } = qos.vc_map
        else {
            return None;
        };
        let mut seq = Vec::new();
        for pos in 0..self.arrangement.len() {
            let class = self.arrangement.class_at(pos);
            let bound = match class {
                LinkClass::Local => control_local,
                LinkClass::Global => control_global,
            };
            let in_control = self.arrangement.vc_index_at(pos) < bound;
            if (tclass == TrafficClass::Control) == in_control {
                seq.push(class);
            }
        }
        if seq.is_empty() {
            None
        } else {
            Some(Arrangement::new(seq))
        }
    }

    /// Total memory of an input port of the given class.
    pub fn port_capacity(&self, class: flexvc_core::LinkClass) -> u32 {
        use flexvc_core::LinkClass::*;
        match self.buffers.sizing {
            BufferSizing::PerVc { local, global } => {
                let per = match class {
                    Local => local,
                    Global => global,
                };
                per * self.vcs_for_class(class) as u32
            }
            BufferSizing::PerPort { local, global } => match class {
                Local => local,
                Global => global,
            },
        }
    }

    /// Validate the configuration; returns a typed [`ConfigError`] when the
    /// policy cannot operate deadlock-free on the arrangement (or the
    /// configuration cannot be simulated at all).
    pub fn validate(&self) -> Result<(), ConfigError> {
        // Checked before the shape: a single-node topology would pass the
        // per-parameter minimums of some families, then panic inside the
        // generators' `gen_range(0..num_nodes - 1)` destination draw.
        let nodes = self.topology.num_nodes();
        if nodes == 1 {
            return Err(ConfigError::SingleNodeTopology);
        }
        self.topology.check_shape()?;
        let routers = self.topology.num_routers();
        if self.shards > routers {
            return Err(ConfigError::ShardsExceedRouters {
                shards: self.shards,
                routers,
            });
        }
        let family = self.topology.family();
        if self.routing.needs_dimensions() && !matches!(self.topology, TopologySpec::HyperX { .. })
        {
            return Err(ConfigError::InvalidTopology {
                why: "DAL routing needs the per-dimension divert structure of a HyperX topology",
            });
        }
        if self.routing.decides_in_transit()
            && matches!(self.topology, TopologySpec::DragonflyPlus { .. })
        {
            // PAR's classic divert point is "after one minimal local hop,
            // before the global" — on Dragonfly+ that router is a spine,
            // where a divert would need spine-level Valiant paths that
            // exceed the `L G L | L G L` reference. DAL additionally needs
            // per-dimension structure (caught above).
            return Err(ConfigError::InvalidTopology {
                why: "PAR/DAL in-transit diverts are not defined on Dragonfly+ \
                      (the first minimal hop lands on a spine); use VAL, PB or \
                      UGAL for non-minimal routing",
            });
        }
        if self.packet_size == 0 {
            return Err(ConfigError::NonPositive {
                what: "packet size",
            });
        }
        if self.speedup == 0 {
            return Err(ConfigError::NonPositive { what: "speedup" });
        }
        let classes: &[MessageClass] = if self.workload.is_reactive() {
            &[MessageClass::Request, MessageClass::Reply]
        } else {
            &[MessageClass::Request]
        };
        if self.workload.is_reactive() && !self.arrangement.has_reply_part() {
            return Err(ConfigError::MissingReplyArrangement);
        }
        if !self.workload.is_reactive() && self.arrangement.has_reply_part() {
            return Err(ConfigError::UnexpectedReplyArrangement);
        }
        if let Some(spec) = self.workload.flow_spec() {
            self.check_flow_spec(spec, nodes)?;
        }
        for &msg in classes {
            match self.policy {
                VcPolicy::Baseline => {
                    let reference: &[_] = match family.generic_diameter() {
                        None => self.routing.dragonfly_reference(),
                        Some(d) => self.routing.generic_reference(d),
                    };
                    if !supports_baseline(&self.arrangement, msg, reference) {
                        return Err(ConfigError::BaselineArrangement {
                            routing: self.routing,
                            msg,
                            arrangement: self.arrangement.to_string(),
                        });
                    }
                }
                VcPolicy::FlexVc => {
                    // MIN must be safe (it is every packet's escape), and the
                    // configured routing must be at least opportunistic.
                    if classify(family, RoutingMode::Min, &self.arrangement, msg) != Support::Safe {
                        return Err(ConfigError::MinimalNotSafe {
                            msg,
                            arrangement: self.arrangement.to_string(),
                        });
                    }
                    if classify(family, self.routing, &self.arrangement, msg)
                        == Support::Unsupported
                    {
                        // Name the classifier's safe minimum so the error
                        // tells the user which arrangement would work.
                        let minimum = match family.generic_diameter() {
                            Some(d) => {
                                format!("{} single-class VCs", self.routing.min_hyperx_vcs(d))
                            }
                            None if family == NetworkFamily::DragonflyPlus => {
                                let (l, g) = self.routing.min_dfplus_vcs();
                                format!("{l}/{g} local/global VCs")
                            }
                            None => {
                                let (l, g) = self.routing.min_dragonfly_vcs();
                                format!("{l}/{g} local/global VCs")
                            }
                        };
                        return Err(ConfigError::InsufficientVcs {
                            routing: self.routing,
                            msg,
                            arrangement: self.arrangement.to_string(),
                            minimum,
                        });
                    }
                }
            }
        }
        if let Some(qos) = &self.qos {
            self.check_qos(qos, family)?;
        }
        // Buffers must hold at least one packet per VC.
        for class in [
            flexvc_core::LinkClass::Local,
            flexvc_core::LinkClass::Global,
        ] {
            if self.vcs_for_class(class) > 0 && self.vc_capacity(class) < self.packet_size {
                return Err(ConfigError::VcCapacityBelowPacket { class });
            }
        }
        if self.buffers.output < self.packet_size || self.buffers.injection < self.packet_size {
            return Err(ConfigError::PortBuffersBelowPacket);
        }
        Ok(())
    }

    /// QoS sanity and deadlock-safety checks (part of
    /// [`SimConfig::validate`]). The partitioned branch proves — or
    /// refutes, via [`ConfigError::QosPartitionUnsafe`] — that strict
    /// priority composes with FlexVC's position-based safety argument:
    /// the two classes occupy disjoint VC subsets, so no cross-class
    /// buffer dependency exists, and each class's sub-arrangement must
    /// independently embed a safe minimal (escape) path.
    fn check_qos(&self, qos: &QosConfig, family: NetworkFamily) -> Result<(), ConfigError> {
        if self.workload.is_reactive() {
            return Err(ConfigError::QosReactiveUnsupported);
        }
        let fail = |why| Err(ConfigError::QosInvalidParam { why });
        if qos.bypass_bound == 0 {
            return fail("bypass bound must be at least 1");
        }
        if !(qos.control_quota_fraction > 0.0 && qos.control_quota_fraction < 1.0) {
            return fail("control quota fraction must be strictly between 0 and 1");
        }
        if let ClassVcMap::Partitioned {
            control_local,
            control_global,
        } = qos.vc_map
        {
            if !matches!(self.policy, VcPolicy::FlexVc) {
                return Err(ConfigError::QosPartitionRequiresFlexVc);
            }
            let nl = self.arrangement.vc_count(LinkClass::Local);
            let ng = self.arrangement.vc_count(LinkClass::Global);
            if control_local > nl || control_global > ng {
                return fail("control partition exceeds the VC budget");
            }
            if control_local + control_global == 0 {
                return fail("control partition must own at least one VC");
            }
            if control_local == nl && control_global == ng {
                return fail("bulk partition must own at least one VC");
            }
            for tclass in [TrafficClass::Control, TrafficClass::Bulk] {
                let sub = self
                    .qos_sub_arrangement(tclass)
                    .expect("both partitions are non-empty (checked above)");
                // MIN must be safe inside the partition (it is the
                // class's escape), and the configured routing must be at
                // least opportunistic there.
                if classify(family, RoutingMode::Min, &sub, MessageClass::Request) != Support::Safe
                    || classify(family, self.routing, &sub, MessageClass::Request)
                        == Support::Unsupported
                {
                    return Err(ConfigError::QosPartitionUnsafe {
                        tclass,
                        arrangement: sub.to_string(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Flow-workload sanity checks (part of [`SimConfig::validate`]).
    fn check_flow_spec(
        &self,
        spec: flexvc_traffic::FlowSpec,
        nodes: usize,
    ) -> Result<(), ConfigError> {
        use flexvc_traffic::{FlowPattern, SizeDist};
        let fail = |why| Err(ConfigError::InvalidWorkload { why });
        match spec.sizes {
            SizeDist::Fixed { packets: 0 } => {
                return fail("flow size must be at least one packet");
            }
            SizeDist::Bimodal {
                mice,
                elephants,
                elephant_frac,
            } => {
                if mice == 0 || elephants == 0 {
                    return fail("bimodal flow sizes must be at least one packet");
                }
                if !(0.0..=1.0).contains(&elephant_frac) {
                    return fail("elephant fraction must be in [0, 1]");
                }
            }
            SizeDist::Pareto { min, max, alpha } => {
                if min == 0 {
                    return fail("Pareto minimum flow size must be at least one packet");
                }
                if max < min {
                    return fail("Pareto maximum flow size must be >= the minimum");
                }
                if alpha <= 0.0 {
                    return fail("Pareto tail index alpha must be positive");
                }
            }
            _ => {}
        }
        match spec.pattern {
            FlowPattern::Hotspot { hotspots, fraction } => {
                if hotspots == 0 || hotspots > nodes {
                    return fail("hotspot count must be in 1..=num_nodes");
                }
                if !(0.0..=1.0).contains(&fraction) {
                    return fail("hotspot fraction must be in [0, 1]");
                }
            }
            FlowPattern::Incast {
                fanin,
                phase_cycles,
            } => {
                if fanin == 0 {
                    return fail("incast fan-in must be at least 1");
                }
                if phase_cycles == 0 {
                    return fail("incast phase length must be at least one cycle");
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// Convenience: the paper's quick test scale (h = 2 Dragonfly, short
    /// windows) for unit/integration tests.
    pub fn test_scale(mut self) -> Self {
        self.topology = TopologySpec::DragonflyBalanced {
            h: 2,
            arrangement: GlobalArrangement::default(),
        };
        self.warmup = 3_000;
        self.measure = 6_000;
        self.watchdog = 10_000;
        self
    }
}

/// Convenience constructor for oblivious workloads matching the paper's
/// Fig. 5 setups: MIN for UN/BURSTY-UN, VAL for ADV.
pub fn paper_routing_for(pattern: Pattern) -> RoutingMode {
    match pattern {
        Pattern::Adversarial { .. } => RoutingMode::Valiant,
        _ => RoutingMode::Min,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexvc_core::LinkClass::*;

    #[test]
    fn baseline_min_config_validates() {
        let cfg = SimConfig::dragonfly_baseline(
            2,
            RoutingMode::Min,
            Workload::oblivious(Pattern::Uniform),
        );
        cfg.validate().unwrap();
        assert_eq!(cfg.vcs_for_class(Local), 2);
        assert_eq!(cfg.vcs_for_class(Global), 1);
        assert_eq!(cfg.vc_capacity(Local), 32);
        assert_eq!(cfg.vc_capacity(Global), 256);
        assert_eq!(cfg.port_capacity(Local), 64);
    }

    #[test]
    fn baseline_rejects_flexvc_only_arrangement() {
        let cfg = SimConfig::dragonfly_baseline(
            2,
            RoutingMode::Valiant,
            Workload::oblivious(Pattern::adv1()),
        )
        .with_flexvc(Arrangement::dragonfly(3, 2));
        // FlexVC 3/2 validates (opportunistic VAL)…
        cfg.validate().unwrap();
        // …but baseline on 3/2 must not.
        let mut bad = cfg;
        bad.policy = VcPolicy::Baseline;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn flexvc_rejects_unsupported() {
        let mut cfg = SimConfig::dragonfly_baseline(
            2,
            RoutingMode::Valiant,
            Workload::oblivious(Pattern::adv1()),
        );
        cfg = cfg.with_flexvc(Arrangement::dragonfly_min()); // VAL on 2/1: X
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn reactive_requires_split_arrangement() {
        let mut cfg = SimConfig::dragonfly_baseline(
            2,
            RoutingMode::Min,
            Workload::reactive(Pattern::Uniform),
        );
        cfg.validate().unwrap(); // constructor doubles the arrangement
        cfg.arrangement = Arrangement::dragonfly_min();
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn per_port_sizing_splits_memory() {
        let mut cfg = SimConfig::dragonfly_baseline(
            2,
            RoutingMode::Min,
            Workload::oblivious(Pattern::Uniform),
        )
        .with_flexvc(Arrangement::dragonfly(4, 2));
        cfg.buffers.sizing = BufferSizing::PerPort {
            local: 128,
            global: 512,
        };
        assert_eq!(cfg.vc_capacity(Local), 32); // 128 / 4
        assert_eq!(cfg.vc_capacity(Global), 256); // 512 / 2
        assert_eq!(cfg.port_capacity(Local), 128);
        cfg.validate().unwrap();
    }

    #[test]
    fn dfplus_baseline_validates_across_modes() {
        for routing in [
            RoutingMode::Min,
            RoutingMode::Valiant,
            RoutingMode::Piggyback,
            RoutingMode::UgalL,
            RoutingMode::UgalG,
        ] {
            let pattern = if routing == RoutingMode::Min {
                Pattern::Uniform
            } else {
                Pattern::adv1()
            };
            let cfg = SimConfig::dfplus_baseline(2, 2, 2, 5, routing, Workload::oblivious(pattern));
            cfg.validate().unwrap_or_else(|e| panic!("{routing}: {e}"));
            let reactive =
                SimConfig::dfplus_baseline(2, 2, 2, 5, routing, Workload::reactive(pattern));
            reactive
                .validate()
                .unwrap_or_else(|e| panic!("{routing} rr: {e}"));
        }
    }

    /// Satellite: Dragonfly+ shape rejections name the offending parameter
    /// and its constraint, mirroring the HyperX `check_shape` wording.
    #[test]
    fn dfplus_shape_errors_name_the_parameter() {
        type Shape = (usize, usize, usize, usize, usize);
        let cases: [(Shape, &str); 6] = [
            ((0, 2, 1, 1, 5), "`leaves` must be >= 1"),
            ((2, 0, 1, 1, 5), "`spines` must be >= 1"),
            ((2, 2, 0, 1, 5), "`hosts_per_leaf` must be >= 1"),
            ((2, 2, 1, 0, 5), "`global_mult` must be >= 1"),
            ((2, 2, 1, 1, 1), "`groups` must be >= 2"),
            (
                (2, 3, 1, 1, 5),
                "`global_mult * (groups - 1) % spines == 0`",
            ),
        ];
        for ((leaves, spines, hosts_per_leaf, global_mult, groups), needle) in cases {
            let spec = TopologySpec::DragonflyPlus {
                leaves,
                spines,
                hosts_per_leaf,
                global_mult,
                groups,
            };
            let err = spec.check_shape().expect_err("degenerate shape accepted");
            let rendered = err.to_string();
            assert!(
                rendered.starts_with("invalid topology: Dragonfly+"),
                "{rendered}"
            );
            assert!(rendered.contains(needle), "{rendered}");
        }
        // A valid shape passes.
        TopologySpec::DragonflyPlus {
            leaves: 4,
            spines: 4,
            hosts_per_leaf: 2,
            global_mult: 1,
            groups: 9,
        }
        .check_shape()
        .unwrap();
    }

    #[test]
    fn dfplus_rejects_in_transit_modes() {
        for routing in [RoutingMode::Par, RoutingMode::Dal] {
            let mut cfg = SimConfig::dfplus_baseline(
                2,
                2,
                2,
                5,
                RoutingMode::Valiant,
                Workload::oblivious(Pattern::adv1()),
            );
            cfg.routing = routing;
            cfg.arrangement = Arrangement::dragonfly(5, 2);
            let err = cfg.validate().unwrap_err();
            assert!(
                matches!(err, ConfigError::InvalidTopology { .. }),
                "{routing}: {err}"
            );
        }
    }

    /// FlexVC boundaries on Dragonfly+: MIN works from 2/1 (minimal paths
    /// never leave the leaf hierarchy), but VAL on 3/2 — opportunistic on
    /// a Dragonfly — is rejected (the spine escape `L L G L` eats the
    /// slack), with the error naming the 4/2 minimum.
    #[test]
    fn dfplus_flexvc_boundaries() {
        let min = SimConfig::dfplus_baseline(
            2,
            2,
            2,
            5,
            RoutingMode::Min,
            Workload::oblivious(Pattern::Uniform),
        )
        .with_flexvc(Arrangement::dragonfly_min());
        min.validate().unwrap();

        let val = SimConfig::dfplus_baseline(
            2,
            2,
            2,
            5,
            RoutingMode::Valiant,
            Workload::oblivious(Pattern::adv1()),
        )
        .with_flexvc(Arrangement::dragonfly(3, 2));
        let err = val.validate().unwrap_err();
        assert!(matches!(err, ConfigError::InsufficientVcs { .. }), "{err}");
        assert!(err.to_string().contains("4/2 local/global VCs"), "{err}");

        // The safe 4/2 validates under FlexVC.
        let ok = SimConfig::dfplus_baseline(
            2,
            2,
            2,
            5,
            RoutingMode::Valiant,
            Workload::oblivious(Pattern::adv1()),
        )
        .with_flexvc(Arrangement::dragonfly(4, 2));
        ok.validate().unwrap();
    }

    #[test]
    fn node_counts_match_shapes() {
        assert_eq!(
            TopologySpec::DragonflyBalanced {
                h: 2,
                arrangement: GlobalArrangement::default(),
            }
            .num_nodes(),
            72
        );
        assert_eq!(
            TopologySpec::Dragonfly {
                p: 2,
                a: 4,
                h: 2,
                g: 9,
                arrangement: GlobalArrangement::default(),
            }
            .num_nodes(),
            72
        );
        assert_eq!(TopologySpec::FlatButterfly { k: 4, p: 2 }.num_nodes(), 32);
        assert_eq!(
            TopologySpec::HyperX {
                dims: vec![(4, 1), (3, 2)],
                p: 2,
            }
            .num_nodes(),
            24
        );
        assert_eq!(
            TopologySpec::DragonflyPlus {
                leaves: 4,
                spines: 4,
                hosts_per_leaf: 2,
                global_mult: 1,
                groups: 9,
            }
            .num_nodes(),
            72
        );
    }

    /// Satellite: a single-node topology used to slip past the per-family
    /// shape minimums and panic inside `NodeGenerator::uniform_dest`'s
    /// `gen_range(0..0)`; `validate` now rejects it with a typed error.
    #[test]
    fn single_node_topology_rejected_at_validation() {
        let mut cfg = SimConfig::dragonfly_baseline(
            2,
            RoutingMode::Min,
            Workload::oblivious(Pattern::Uniform),
        );
        cfg.topology = TopologySpec::Dragonfly {
            p: 1,
            a: 1,
            h: 1,
            g: 1,
            arrangement: GlobalArrangement::default(),
        };
        let err = cfg.validate().unwrap_err();
        assert_eq!(err, ConfigError::SingleNodeTopology);
    }

    #[test]
    fn flow_workloads_validate() {
        use flexvc_traffic::{FlowPattern, FlowSpec, SizeDist};
        let with_spec = |spec| {
            let mut cfg = SimConfig::dragonfly_baseline(
                2,
                RoutingMode::Min,
                Workload::oblivious(Pattern::Uniform),
            );
            cfg.workload = Workload::flows(spec);
            cfg
        };
        with_spec(FlowSpec::uniform(SizeDist::Fixed { packets: 4 }))
            .validate()
            .unwrap();
        with_spec(FlowSpec::permutation(SizeDist::mice_elephants()))
            .validate()
            .unwrap();
        with_spec(FlowSpec::incast(4, SizeDist::heavy_tail()))
            .validate()
            .unwrap();

        let bad = [
            FlowSpec::uniform(SizeDist::Fixed { packets: 0 }),
            FlowSpec::uniform(SizeDist::Bimodal {
                mice: 1,
                elephants: 16,
                elephant_frac: 1.5,
            }),
            FlowSpec::uniform(SizeDist::Pareto {
                min: 8,
                max: 4,
                alpha: 1.5,
            }),
            FlowSpec::uniform(SizeDist::Pareto {
                min: 1,
                max: 64,
                alpha: -1.0,
            }),
            FlowSpec {
                pattern: FlowPattern::Hotspot {
                    hotspots: 0,
                    fraction: 0.2,
                },
                sizes: SizeDist::Fixed { packets: 1 },
            },
            FlowSpec {
                pattern: FlowPattern::Incast {
                    fanin: 0,
                    phase_cycles: 100,
                },
                sizes: SizeDist::Fixed { packets: 1 },
            },
        ];
        for spec in bad {
            let err = with_spec(spec).validate().unwrap_err();
            assert!(
                matches!(err, ConfigError::InvalidWorkload { .. }),
                "{spec:?}: {err}"
            );
        }
    }

    fn min_flexvc_42() -> SimConfig {
        SimConfig::dragonfly_baseline(
            2,
            RoutingMode::Min,
            Workload::oblivious(Pattern::Uniform).with_mix(0.1),
        )
        .with_flexvc(Arrangement::dragonfly(4, 2))
    }

    /// Tentpole: the composition proof. On `L G L L G L` (4/2) the
    /// control partition (2,1) carves `L G L` and leaves bulk `L G L` —
    /// both safe, so priority composes and the config validates. On
    /// `L G L G L` (3/2) the same split leaves bulk `G L`, which has no
    /// safe minimal embedding — refuted with a typed error naming the
    /// class and its sub-arrangement.
    #[test]
    fn qos_partition_safety_proved_or_refuted() {
        let ok = min_flexvc_42().with_qos(QosConfig::partitioned(2, 1));
        ok.validate().unwrap();
        assert_eq!(
            ok.qos_sub_arrangement(TrafficClass::Control)
                .unwrap()
                .to_string(),
            ok.qos_sub_arrangement(TrafficClass::Bulk)
                .unwrap()
                .to_string(),
            "the (2,1) split of 4/2 halves the arrangement symmetrically"
        );

        let mut bad = ok.clone();
        bad.arrangement = Arrangement::dragonfly(3, 2);
        let err = bad.validate().unwrap_err();
        match &err {
            ConfigError::QosPartitionUnsafe {
                tclass,
                arrangement,
            } => {
                assert_eq!(*tclass, TrafficClass::Bulk, "{err}");
                assert_eq!(arrangement, "1/1 [G L]", "{err}");
            }
            other => panic!("expected QosPartitionUnsafe, got {other}"),
        }
    }

    #[test]
    fn qos_partition_requires_flexvc() {
        let mut cfg = SimConfig::dragonfly_baseline(
            2,
            RoutingMode::Min,
            Workload::oblivious(Pattern::Uniform),
        )
        .with_qos(QosConfig::partitioned(1, 0));
        // Baseline + Partitioned: the fixed hop-to-VC map cannot confine
        // a class to a subset.
        assert_eq!(
            cfg.validate().unwrap_err(),
            ConfigError::QosPartitionRequiresFlexVc
        );
        // Baseline + Shared is fine: priority only reorders grants.
        cfg.qos = Some(QosConfig::shared());
        cfg.validate().unwrap();
    }

    #[test]
    fn qos_rejects_reactive_and_bad_params() {
        let reactive = SimConfig::dragonfly_baseline(
            2,
            RoutingMode::Min,
            Workload::reactive(Pattern::Uniform),
        )
        .with_qos(QosConfig::shared());
        assert_eq!(
            reactive.validate().unwrap_err(),
            ConfigError::QosReactiveUnsupported
        );

        let base = min_flexvc_42();
        let cases: [(QosConfig, &str); 5] = [
            (
                QosConfig {
                    bypass_bound: 0,
                    ..QosConfig::default()
                },
                "bypass bound",
            ),
            (
                QosConfig {
                    control_quota_fraction: 0.0,
                    ..QosConfig::default()
                },
                "quota fraction",
            ),
            (QosConfig::partitioned(5, 1), "exceeds the VC budget"),
            (QosConfig::partitioned(0, 0), "at least one VC"),
            (QosConfig::partitioned(4, 2), "bulk partition"),
        ];
        for (qos, needle) in cases {
            let err = base.clone().with_qos(qos).validate().unwrap_err();
            assert!(
                matches!(err, ConfigError::QosInvalidParam { .. })
                    && err.to_string().contains(needle),
                "{qos:?}: {err}"
            );
        }
    }

    #[test]
    fn qos_vc_masks_partition_the_budget() {
        let cfg = min_flexvc_42().with_qos(QosConfig::partitioned(2, 1));
        assert_eq!(
            cfg.qos_vc_mask(Local, flexvc_core::TrafficClass::Control),
            0b0011
        );
        assert_eq!(
            cfg.qos_vc_mask(Local, flexvc_core::TrafficClass::Bulk),
            0b1100
        );
        assert_eq!(
            cfg.qos_vc_mask(Global, flexvc_core::TrafficClass::Control),
            0b01
        );
        assert_eq!(
            cfg.qos_vc_mask(Global, flexvc_core::TrafficClass::Bulk),
            0b10
        );
        // Shared (and QoS-off) masks are all ones over the budget.
        let shared = min_flexvc_42().with_qos(QosConfig::shared());
        let off = min_flexvc_42();
        for link in [Local, Global] {
            for t in [
                flexvc_core::TrafficClass::Control,
                flexvc_core::TrafficClass::Bulk,
            ] {
                assert_eq!(shared.qos_vc_mask(link, t), off.qos_vc_mask(link, t));
            }
        }
        assert_eq!(
            off.qos_vc_mask(Local, flexvc_core::TrafficClass::Bulk),
            0b1111
        );
    }

    #[test]
    fn paper_routing_selection() {
        assert_eq!(paper_routing_for(Pattern::Uniform), RoutingMode::Min);
        assert_eq!(paper_routing_for(Pattern::bursty()), RoutingMode::Min);
        assert_eq!(paper_routing_for(Pattern::adv1()), RoutingMode::Valiant);
    }

    #[test]
    fn damq_helper() {
        let cfg = SimConfig::dragonfly_baseline(
            2,
            RoutingMode::Min,
            Workload::oblivious(Pattern::Uniform),
        )
        .with_damq75();
        match cfg.buffers.organization {
            BufferOrg::Damq { private_fraction } => assert_eq!(private_fraction, 0.75),
            _ => panic!("expected DAMQ"),
        }
        cfg.validate().unwrap();
    }
}
