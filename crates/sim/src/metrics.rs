//! Measurement-window statistics and simulation results.

use flexvc_core::{MessageClass, TrafficClass};
use flexvc_traffic::FlowTag;
use std::collections::HashMap;

/// Power-of-two bucketed latency histogram (cycles). Bucket `i` counts
/// latencies in `[2^i, 2^(i+1))`; the last bucket (20) is an *overflow*
/// bucket absorbing everything at `2^20` cycles and above, so the recorded
/// maximum is kept alongside the buckets to bound its contents.
///
/// Each bucket also accumulates the *sum* of its samples, so
/// [`LatencyHistogram::quantile_interp`] can resolve within a bucket (the
/// in-bucket mean) instead of snapping to the power-of-two lower bound.
/// The sums are plain integer accumulators, so shard merges stay exact.
#[derive(Debug, Clone, Default)]
pub struct LatencyHistogram {
    buckets: [u64; 21],
    /// Sum of the samples landing in each bucket.
    sums: [u64; 21],
    count: u64,
    /// Largest recorded sample (0 when empty).
    max: u64,
}

/// Index of the overflow bucket (`[2^20, ∞)`).
const OVERFLOW_BUCKET: usize = 20;

impl LatencyHistogram {
    /// Record one latency sample.
    pub fn record(&mut self, latency: u64) {
        let b = (64 - latency.max(1).leading_zeros() as usize - 1).min(OVERFLOW_BUCKET);
        self.buckets[b] += 1;
        self.sums[b] += latency;
        self.count += 1;
        self.max = self.max.max(latency);
    }

    /// Total samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Largest recorded sample (0 when empty). After deserialization from
    /// bucket counts alone this is the lower bound of the highest non-empty
    /// bucket — the best information the buckets carry.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Raw bucket counts (bucket `i` covers `[2^i, 2^(i+1))`; bucket 0 also
    /// absorbs latency 0; bucket 20 absorbs everything >= 2^20).
    pub fn buckets(&self) -> &[u64; 21] {
        &self.buckets
    }

    /// Per-bucket sample sums (aligned with [`LatencyHistogram::buckets`]).
    pub fn bucket_sums(&self) -> &[u64; 21] {
        &self.sums
    }

    /// Rebuild from serialized bucket counts. The maximum is estimated as
    /// the lower bound of the highest non-empty bucket; callers holding the
    /// true recorded maximum should follow up with
    /// [`LatencyHistogram::observe_max`], and callers holding the per-bucket
    /// sums with [`LatencyHistogram::restore_bucket_sums`].
    pub fn from_buckets(buckets: [u64; 21]) -> Self {
        let count = buckets.iter().sum();
        let max = buckets
            .iter()
            .rposition(|&c| c > 0)
            .map_or(0, |i| 1u64 << i);
        LatencyHistogram {
            buckets,
            sums: [0; 21],
            count,
            max,
        }
    }

    /// Raise the recorded maximum (used when deserializing a histogram whose
    /// true maximum was stored alongside the buckets). Never lowers it.
    pub fn observe_max(&mut self, max: u64) {
        self.max = self.max.max(max);
    }

    /// Restore per-bucket sums stored alongside serialized bucket counts.
    /// Old files carry no sums and leave them zero, which
    /// [`LatencyHistogram::quantile_interp`] treats as "unknown" and falls
    /// back to the bucket lower bound for.
    pub fn restore_bucket_sums(&mut self, sums: [u64; 21]) {
        self.sums = sums;
    }

    /// Approximate quantile: the *lower* bound of the bucket containing the
    /// `q`-th sample. The target rank is clamped to `[1, count]` so `q = 0`
    /// resolves to the first non-empty bucket (not an arbitrary constant)
    /// and `q = 1` to the last. A quantile resolving to the *overflow*
    /// bucket reports the recorded maximum instead of the bucket's lower
    /// bound — the bucket is unbounded above, so `2^20` could understate a
    /// tail latency by orders of magnitude.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i == OVERFLOW_BUCKET {
                    self.max.max(1u64 << OVERFLOW_BUCKET)
                } else {
                    1u64 << i
                };
            }
        }
        self.max.max(1u64 << OVERFLOW_BUCKET)
    }

    /// Interpolated quantile: resolves *within* the bucket containing the
    /// `q`-th sample by reporting the bucket's sample mean (`sum ÷ count`),
    /// which is exact whenever the bucket holds a single sample and never
    /// off by more than the bucket width otherwise. Buckets without sum
    /// data (histograms deserialized from old files) fall back to the
    /// power-of-two lower bound, matching [`LatencyHistogram::quantile`];
    /// the overflow bucket keeps reporting the recorded maximum, since its
    /// mean can still understate an unbounded tail.
    pub fn quantile_interp(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i == OVERFLOW_BUCKET {
                    self.max.max(1u64 << OVERFLOW_BUCKET) as f64
                } else if self.sums[i] > 0 {
                    self.sums[i] as f64 / c as f64
                } else {
                    (1u64 << i) as f64
                };
            }
        }
        self.max.max(1u64 << OVERFLOW_BUCKET) as f64
    }

    /// Merge another histogram.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        for (a, b) in self.sums.iter_mut().zip(&other.sums) {
            *a += b;
        }
        self.count += other.count;
        self.max = self.max.max(other.max);
    }
}

/// Mean per-VC occupancy profile of network input ports, per link class
/// (sampled periodically during the measurement window). This is the
/// signal behind the paper's §III-D observation: under adversarial
/// traffic with the baseline policy, minimal traffic occupies only the
/// first VC of each class, so per-VC occupancy identifies the pattern;
/// FlexVC merges flows and flattens the profile.
#[derive(Debug, Clone, Default)]
pub struct VcOccupancyProfile {
    /// Sum of sampled occupancies per (class, vc).
    pub sums: [Vec<u64>; 2],
    /// Number of samples taken.
    pub samples: u64,
    /// Ports contributing per class (for per-port averaging).
    pub ports: [u64; 2],
}

impl VcOccupancyProfile {
    /// Mean phits per port for VC `vc` of `class`.
    pub fn mean(&self, class: flexvc_core::LinkClass, vc: usize) -> f64 {
        let i = class.index();
        let denom = (self.samples * self.ports[i].max(1)) as f64;
        if denom == 0.0 || vc >= self.sums[i].len() {
            return 0.0;
        }
        self.sums[i][vc] as f64 / denom
    }

    /// Per-VC means for a class.
    pub fn means(&self, class: flexvc_core::LinkClass) -> Vec<f64> {
        (0..self.sums[class.index()].len())
            .map(|vc| self.mean(class, vc))
            .collect()
    }
}

/// Flow-completion-time accounting under flow workloads.
///
/// A flow completes when its last packet is consumed; all of a flow's
/// packets are consumed at its (single, latched) destination node, so in a
/// sharded run every flow's accounting lives on exactly one shard and
/// [`Metrics::absorb`] merges the integer accumulators exactly.
#[derive(Debug, Clone, Default)]
pub struct FlowStats {
    /// Remaining packet count per in-flight measured flow.
    live: HashMap<u64, u32>,
    /// Flows whose last packet was consumed inside the window.
    pub completed: u64,
    /// Sum of flow completion times (cycles).
    pub fct_sum: u64,
    /// Sum of ideal (zero-load) FCTs: serialization time plus unloaded
    /// min-path latency (cycles).
    pub ideal_sum: u64,
    /// Sum of per-flow slowdowns (FCT ÷ ideal zero-load FCT) in integer
    /// units of 1/1000, so shard merging stays exact.
    pub slowdown_milli_sum: u64,
    /// FCT histogram over completed flows.
    pub fct_hist: LatencyHistogram,
    /// FCT histograms per QoS traffic class (mice flows are control,
    /// elephants bulk), indexed by [`TrafficClass::index`].
    pub fct_class_hist: [LatencyHistogram; 2],
}

/// Raw counters accumulated inside the measurement window.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Packets produced by the generators (including dropped ones).
    pub generated_packets: u64,
    /// Phits produced by the generators.
    pub generated_phits: u64,
    /// Packets dropped at the source (injection queue full).
    pub dropped_packets: u64,
    /// Packets consumed, per message class.
    pub consumed_packets: [u64; 2],
    /// Phits consumed, per message class.
    pub consumed_phits: [u64; 2],
    /// Sum of packet latencies (generation → tail consumption), per class.
    pub latency_sum: [u64; 2],
    /// Packets consumed per QoS traffic class
    /// ([`TrafficClass::index`]: control = 0, bulk = 1).
    pub class_packets: [u64; 2],
    /// Phits consumed per QoS traffic class.
    pub class_phits: [u64; 2],
    /// Latency sums per QoS traffic class.
    pub class_latency_sum: [u64; 2],
    /// Latency histograms per QoS traffic class.
    pub class_latency_hist: [LatencyHistogram; 2],
    /// Consumed packets that travelled non-minimally.
    pub misrouted_packets: u64,
    /// Total opportunistic-path reversions among consumed packets.
    pub reverts: u64,
    /// Total hops of consumed packets.
    pub hop_sum: u64,
    /// The watchdog detected a deadlock (no movement with packets stuck).
    pub deadlocked: bool,
    /// Cycles actually simulated in the measurement window.
    pub cycles: u64,
    /// Latency histogram over all consumed packets.
    pub latency_hist: LatencyHistogram,
    /// Sampled per-VC occupancy profile.
    pub vc_profile: VcOccupancyProfile,
    /// Flow-completion-time accounting (flow workloads only).
    pub flows: FlowStats,
}

impl Metrics {
    /// Record a consumed packet.
    #[allow(clippy::too_many_arguments)] // mirrors the packet's fields
    pub fn consume(
        &mut self,
        class: MessageClass,
        tclass: TrafficClass,
        size: u32,
        latency: u64,
        hops: u16,
        min_routed: bool,
        reverts: u16,
    ) {
        let i = class.index();
        self.latency_hist.record(latency);
        self.consumed_packets[i] += 1;
        self.consumed_phits[i] += size as u64;
        self.latency_sum[i] += latency;
        let t = tclass.index();
        self.class_packets[t] += 1;
        self.class_phits[t] += size as u64;
        self.class_latency_sum[t] += latency;
        self.class_latency_hist[t].record(latency);
        self.hop_sum += hops as u64;
        self.reverts += reverts as u64;
        if !min_routed {
            self.misrouted_packets += 1;
        }
    }

    /// Account one consumed packet of a measured flow and report whether it
    /// was the flow's *last* outstanding packet. The caller gates on the
    /// flow's *start* cycle (flow-level windowing), so a flow either has
    /// all of its packets tracked here or none; on `true` the caller must
    /// follow up with [`Metrics::complete_flow`] — the ideal FCT depends on
    /// the topology's unloaded path latency, which metrics cannot see.
    #[must_use]
    pub fn flow_packet_done(&mut self, tag: &FlowTag) -> bool {
        let rem = self.flows.live.entry(tag.id).or_insert(tag.len);
        debug_assert!(*rem > 0);
        *rem -= 1;
        if *rem > 0 {
            return false;
        }
        self.flows.live.remove(&tag.id);
        true
    }

    /// Complete a measured flow. `done` is the cycle the flow's last packet
    /// was consumed; `ideal` is its zero-load FCT (serialization time plus
    /// unloaded min-path latency). The flow's FCT (`done − start`) and
    /// slowdown (FCT ÷ ideal, in exact integer millis) are accumulated.
    pub fn complete_flow(&mut self, tag: &FlowTag, done: u64, ideal: u64, tclass: TrafficClass) {
        let fct = done.saturating_sub(tag.start);
        let ideal = ideal.max(1);
        self.flows.completed += 1;
        self.flows.fct_sum += fct;
        self.flows.ideal_sum += ideal;
        self.flows.slowdown_milli_sum += fct * 1000 / ideal;
        self.flows.fct_hist.record(fct);
        self.flows.fct_class_hist[tclass.index()].record(fct);
    }

    /// Fold another shard's counters into this one. Every field is either a
    /// plain sum, a logical OR (`deadlocked`), or a histogram merge, so
    /// absorbing the per-shard metrics of a sharded run reproduces the
    /// single-engine counters *exactly* — no floating-point involved.
    ///
    /// `cycles` is left untouched (it is a property of the run, not a
    /// per-shard counter) and the occupancy profile's `samples`/`ports` are
    /// replicated per shard (every shard samples at the same cycles and
    /// records the full-network port count), so they are validated equal and
    /// kept rather than summed.
    pub fn absorb(&mut self, other: &Metrics) {
        self.generated_packets += other.generated_packets;
        self.generated_phits += other.generated_phits;
        self.dropped_packets += other.dropped_packets;
        for i in 0..2 {
            self.consumed_packets[i] += other.consumed_packets[i];
            self.consumed_phits[i] += other.consumed_phits[i];
            self.latency_sum[i] += other.latency_sum[i];
            self.class_packets[i] += other.class_packets[i];
            self.class_phits[i] += other.class_phits[i];
            self.class_latency_sum[i] += other.class_latency_sum[i];
            self.class_latency_hist[i].merge(&other.class_latency_hist[i]);
            self.flows.fct_class_hist[i].merge(&other.flows.fct_class_hist[i]);
        }
        self.misrouted_packets += other.misrouted_packets;
        self.reverts += other.reverts;
        self.hop_sum += other.hop_sum;
        self.deadlocked |= other.deadlocked;
        self.latency_hist.merge(&other.latency_hist);
        // A flow's packets all eject on the shard owning its destination
        // node, so the live maps are key-disjoint and the accumulators sum.
        self.flows.completed += other.flows.completed;
        self.flows.fct_sum += other.flows.fct_sum;
        self.flows.ideal_sum += other.flows.ideal_sum;
        self.flows.slowdown_milli_sum += other.flows.slowdown_milli_sum;
        self.flows.fct_hist.merge(&other.flows.fct_hist);
        for (id, rem) in &other.flows.live {
            let prev = self.flows.live.insert(*id, *rem);
            debug_assert!(prev.is_none(), "flow {id} tracked on two shards");
        }
        let prof = &mut self.vc_profile;
        debug_assert_eq!(prof.samples, other.vc_profile.samples);
        for i in 0..2 {
            debug_assert!(
                prof.samples == 0 || prof.ports[i] == other.vc_profile.ports[i],
                "shards must record the full-network port count"
            );
            let theirs = &other.vc_profile.sums[i];
            if prof.sums[i].len() < theirs.len() {
                prof.sums[i].resize(theirs.len(), 0);
            }
            for (a, b) in prof.sums[i].iter_mut().zip(theirs) {
                *a += b;
            }
        }
    }
}

/// Per-QoS-class slice of a simulation result, indexed by
/// [`TrafficClass::index`] (control = 0, bulk = 1). All fields are zero
/// for the classes a single-class run never tags (legacy runs put every
/// packet in `Bulk` via [`TrafficClass::default`]).
#[derive(Debug, Clone, Default)]
pub struct ClassResult {
    /// Accepted load of the class, phits/node/cycle.
    pub accepted: f64,
    /// Mean packet latency of the class (cycles).
    pub latency: f64,
    /// Approximate 99th-percentile packet latency of the class (cycles).
    pub latency_p99: f64,
    /// 99th-percentile flow completion time of the class (cycles; 0
    /// without completed flows of the class).
    pub fct_p99: f64,
    /// Packet latency histogram of the class (merged across seeds like
    /// [`SimResult::latency_hist`]).
    pub latency_hist: LatencyHistogram,
    /// FCT histogram of the class.
    pub fct_hist: LatencyHistogram,
}

/// Aggregated result of one simulation run.
#[derive(Debug, Clone, Default)]
pub struct SimResult {
    /// Offered load, phits/node/cycle (as configured).
    pub offered: f64,
    /// Accepted load, phits/node/cycle (consumed in the window).
    pub accepted: f64,
    /// Mean packet latency in cycles over all classes.
    pub latency: f64,
    /// Mean request latency (equals `latency` for single-class traffic).
    pub latency_req: f64,
    /// Mean reply latency (0 when not reactive).
    pub latency_rep: f64,
    /// Fraction of consumed packets that were misrouted.
    pub misroute_fraction: f64,
    /// Mean hops per consumed packet.
    pub avg_hops: f64,
    /// Mean opportunistic reversions per consumed packet.
    pub reverts_per_packet: f64,
    /// Fraction of generated packets dropped at the source.
    pub drop_fraction: f64,
    /// Whether the run deadlocked.
    pub deadlocked: bool,
    /// Approximate 99th-percentile latency (cycles).
    pub latency_p99: f64,
    /// Mean per-VC occupancy of local input ports (phits).
    pub local_vc_occupancy: Vec<f64>,
    /// Mean per-VC occupancy of global input ports (phits).
    pub global_vc_occupancy: Vec<f64>,
    /// Latency histogram of the run. Kept on the result so multi-seed
    /// averages can merge distributions and re-derive quantiles (means of
    /// per-seed quantiles are not quantiles).
    pub latency_hist: LatencyHistogram,
    /// Flows completed in the measurement window (0 for synthetic
    /// workloads).
    pub flows_completed: f64,
    /// Mean flow completion time in cycles (0 without completed flows).
    pub fct_mean: f64,
    /// Median flow completion time (cycles).
    pub fct_p50: f64,
    /// 99th-percentile flow completion time (cycles).
    pub fct_p99: f64,
    /// Mean slowdown: FCT ÷ ideal zero-load FCT (serialization time
    /// `len · packet_size` plus the unloaded min-path latency).
    pub slowdown_mean: f64,
    /// FCT histogram of the run (merged for multi-seed quantiles, like
    /// `latency_hist`).
    pub fct_hist: LatencyHistogram,
    /// Per-QoS-class results (control = 0, bulk = 1).
    pub classes: [ClassResult; 2],
}

impl SimResult {
    /// Build from raw metrics.
    pub fn from_metrics(m: &Metrics, offered: f64, nodes: usize) -> Self {
        let cycles = m.cycles.max(1) as f64;
        let packets: u64 = m.consumed_packets.iter().sum();
        let phits: u64 = m.consumed_phits.iter().sum();
        let lat_total: u64 = m.latency_sum.iter().sum();
        let per_class = |i: usize| {
            if m.consumed_packets[i] == 0 {
                0.0
            } else {
                m.latency_sum[i] as f64 / m.consumed_packets[i] as f64
            }
        };
        SimResult {
            offered,
            accepted: phits as f64 / (nodes as f64 * cycles),
            latency: if packets == 0 {
                0.0
            } else {
                lat_total as f64 / packets as f64
            },
            latency_req: per_class(0),
            latency_rep: per_class(1),
            misroute_fraction: if packets == 0 {
                0.0
            } else {
                m.misrouted_packets as f64 / packets as f64
            },
            avg_hops: if packets == 0 {
                0.0
            } else {
                m.hop_sum as f64 / packets as f64
            },
            reverts_per_packet: if packets == 0 {
                0.0
            } else {
                m.reverts as f64 / packets as f64
            },
            drop_fraction: if m.generated_packets == 0 {
                0.0
            } else {
                m.dropped_packets as f64 / m.generated_packets as f64
            },
            deadlocked: m.deadlocked,
            latency_p99: m.latency_hist.quantile(0.99) as f64,
            local_vc_occupancy: m.vc_profile.means(flexvc_core::LinkClass::Local),
            global_vc_occupancy: m.vc_profile.means(flexvc_core::LinkClass::Global),
            latency_hist: m.latency_hist.clone(),
            flows_completed: m.flows.completed as f64,
            fct_mean: if m.flows.completed == 0 {
                0.0
            } else {
                m.flows.fct_sum as f64 / m.flows.completed as f64
            },
            fct_p50: m.flows.fct_hist.quantile_interp(0.5),
            fct_p99: m.flows.fct_hist.quantile_interp(0.99),
            slowdown_mean: if m.flows.completed == 0 {
                0.0
            } else {
                m.flows.slowdown_milli_sum as f64 / (m.flows.completed as f64 * 1000.0)
            },
            fct_hist: m.flows.fct_hist.clone(),
            classes: std::array::from_fn(|t| {
                let hist = m.class_latency_hist[t].clone();
                let fct = m.flows.fct_class_hist[t].clone();
                ClassResult {
                    accepted: m.class_phits[t] as f64 / (nodes as f64 * cycles),
                    latency: if m.class_packets[t] == 0 {
                        0.0
                    } else {
                        m.class_latency_sum[t] as f64 / m.class_packets[t] as f64
                    },
                    latency_p99: hist.quantile(0.99) as f64,
                    fct_p99: if fct.count() == 0 {
                        0.0
                    } else {
                        fct.quantile_interp(0.99)
                    },
                    latency_hist: hist,
                    fct_hist: fct,
                }
            }),
        }
    }

    /// Per-class result slice (control or bulk).
    pub fn class(&self, tclass: TrafficClass) -> &ClassResult {
        &self.classes[tclass.index()]
    }

    /// Average several runs (different seeds) into one result.
    ///
    /// Occupancy vectors are reconciled by index: seeds whose vector is
    /// shorter (e.g. a run that deadlocked before the first occupancy
    /// sample) simply don't contribute to the missing indices instead of
    /// panicking. The p99 is re-derived from the merged latency histograms;
    /// only when no run carries histogram data (results deserialized from
    /// an old file) does it fall back to the arithmetic mean of per-seed
    /// quantiles.
    pub fn average(results: &[SimResult]) -> SimResult {
        assert!(!results.is_empty());
        let n = results.len() as f64;
        let mut out = SimResult::default();
        let vec_avg = |get: fn(&SimResult) -> &Vec<f64>| -> Vec<f64> {
            let len = results.iter().map(|r| get(r).len()).max().unwrap_or(0);
            (0..len)
                .map(|i| {
                    let present: Vec<f64> = results
                        .iter()
                        .filter_map(|r| get(r).get(i).copied())
                        .collect();
                    present.iter().sum::<f64>() / present.len().max(1) as f64
                })
                .collect()
        };
        out.local_vc_occupancy = vec_avg(|r| &r.local_vc_occupancy);
        out.global_vc_occupancy = vec_avg(|r| &r.global_vc_occupancy);
        let mut p99_mean = 0.0;
        let mut fct_p50_mean = 0.0;
        let mut fct_p99_mean = 0.0;
        let mut class_p99_mean = [0.0f64; 2];
        let mut class_fct_p99_mean = [0.0f64; 2];
        for r in results {
            out.offered += r.offered / n;
            p99_mean += r.latency_p99 / n;
            out.accepted += r.accepted / n;
            out.latency += r.latency / n;
            out.latency_req += r.latency_req / n;
            out.latency_rep += r.latency_rep / n;
            out.misroute_fraction += r.misroute_fraction / n;
            out.avg_hops += r.avg_hops / n;
            out.reverts_per_packet += r.reverts_per_packet / n;
            out.drop_fraction += r.drop_fraction / n;
            out.deadlocked |= r.deadlocked;
            out.latency_hist.merge(&r.latency_hist);
            out.flows_completed += r.flows_completed / n;
            out.fct_mean += r.fct_mean / n;
            out.slowdown_mean += r.slowdown_mean / n;
            fct_p50_mean += r.fct_p50 / n;
            fct_p99_mean += r.fct_p99 / n;
            out.fct_hist.merge(&r.fct_hist);
            for t in 0..2 {
                out.classes[t].accepted += r.classes[t].accepted / n;
                out.classes[t].latency += r.classes[t].latency / n;
                class_p99_mean[t] += r.classes[t].latency_p99 / n;
                class_fct_p99_mean[t] += r.classes[t].fct_p99 / n;
                out.classes[t]
                    .latency_hist
                    .merge(&r.classes[t].latency_hist);
                out.classes[t].fct_hist.merge(&r.classes[t].fct_hist);
            }
        }
        out.latency_p99 = if out.latency_hist.count() > 0 {
            out.latency_hist.quantile(0.99) as f64
        } else {
            p99_mean
        };
        (out.fct_p50, out.fct_p99) = if out.fct_hist.count() > 0 {
            (
                out.fct_hist.quantile_interp(0.5),
                out.fct_hist.quantile_interp(0.99),
            )
        } else {
            (fct_p50_mean, fct_p99_mean)
        };
        for t in 0..2 {
            out.classes[t].latency_p99 = if out.classes[t].latency_hist.count() > 0 {
                out.classes[t].latency_hist.quantile(0.99) as f64
            } else {
                class_p99_mean[t]
            };
            out.classes[t].fct_p99 = if out.classes[t].fct_hist.count() > 0 {
                out.classes[t].fct_hist.quantile_interp(0.99)
            } else {
                class_fct_p99_mean[t]
            };
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consume_accumulates() {
        let mut m = Metrics::default();
        m.consume(
            MessageClass::Request,
            TrafficClass::Control,
            8,
            100,
            3,
            true,
            0,
        );
        m.consume(MessageClass::Reply, TrafficClass::Bulk, 8, 200, 6, false, 2);
        assert_eq!(m.consumed_packets, [1, 1]);
        assert_eq!(m.consumed_phits, [8, 8]);
        assert_eq!(m.latency_sum, [100, 200]);
        assert_eq!(m.misrouted_packets, 1);
        assert_eq!(m.reverts, 2);
        assert_eq!(m.hop_sum, 9);
    }

    #[allow(clippy::field_reassign_with_default)] // builds raw counters field by field
    #[test]
    fn result_from_metrics() {
        let mut m = Metrics::default();
        m.cycles = 1000;
        m.generated_packets = 30;
        m.dropped_packets = 3;
        for _ in 0..10 {
            m.consume(
                MessageClass::Request,
                TrafficClass::Bulk,
                8,
                150,
                3,
                true,
                0,
            );
        }
        let r = SimResult::from_metrics(&m, 0.5, 16);
        assert!((r.accepted - 80.0 / 16_000.0).abs() < 1e-12);
        assert_eq!(r.latency, 150.0);
        assert_eq!(r.latency_req, 150.0);
        assert_eq!(r.latency_rep, 0.0);
        assert_eq!(r.avg_hops, 3.0);
        assert_eq!(r.drop_fraction, 0.1);
        assert!(!r.deadlocked);
    }

    /// Tentpole: per-traffic-class accounting splits accepted load,
    /// latency and p99 by class, merges exactly across shards, and
    /// re-derives class p99s from merged histograms when averaging seeds.
    #[test]
    fn per_class_accounting_and_averaging() {
        let mut m = Metrics {
            cycles: 1000,
            ..Metrics::default()
        };
        for _ in 0..10 {
            m.consume(
                MessageClass::Request,
                TrafficClass::Control,
                8,
                100,
                3,
                true,
                0,
            );
        }
        for _ in 0..30 {
            m.consume(
                MessageClass::Request,
                TrafficClass::Bulk,
                8,
                900,
                3,
                true,
                0,
            );
        }
        assert_eq!(m.class_packets, [10, 30]);
        assert_eq!(m.class_phits, [80, 240]);
        let r = SimResult::from_metrics(&m, 0.5, 16);
        let ctrl = r.class(TrafficClass::Control);
        let bulk = r.class(TrafficClass::Bulk);
        assert!((ctrl.accepted - 80.0 / 16_000.0).abs() < 1e-12);
        assert!((bulk.accepted - 240.0 / 16_000.0).abs() < 1e-12);
        assert_eq!(ctrl.latency, 100.0);
        assert_eq!(bulk.latency, 900.0);
        assert_eq!(ctrl.latency_p99, 64.0); // bucket [64,128)
        assert_eq!(bulk.latency_p99, 512.0); // bucket [512,1024)
                                             // Whole-run counters still see both classes.
        assert_eq!(r.latency, (10.0 * 100.0 + 30.0 * 900.0) / 40.0);

        // Sharded absorb reproduces the single-engine class counters.
        let mut a = Metrics::default();
        a.consume(
            MessageClass::Request,
            TrafficClass::Control,
            8,
            100,
            3,
            true,
            0,
        );
        let mut b = Metrics::default();
        b.consume(
            MessageClass::Request,
            TrafficClass::Bulk,
            8,
            900,
            3,
            true,
            0,
        );
        a.absorb(&b);
        assert_eq!(a.class_packets, [1, 1]);
        assert_eq!(a.class_latency_sum, [100, 900]);
        assert_eq!(a.class_latency_hist[0].count(), 1);
        assert_eq!(a.class_latency_hist[1].count(), 1);

        // Seed averaging merges the class histograms.
        let avg = SimResult::average(&[r.clone(), r]);
        assert_eq!(avg.class(TrafficClass::Control).latency_p99, 64.0);
        assert!((avg.class(TrafficClass::Bulk).accepted - 240.0 / 16_000.0).abs() < 1e-12);
        assert_eq!(avg.class(TrafficClass::Control).latency_hist.count(), 20);
    }

    /// Per-class FCT histograms: mice (control) and elephants (bulk)
    /// complete into separate distributions.
    #[test]
    fn per_class_fct_histograms() {
        let mut m = Metrics::default();
        let tag = |id| FlowTag {
            id,
            len: 1,
            index: 0,
            start: 0,
        };
        if m.flow_packet_done(&tag(1)) {
            m.complete_flow(&tag(1), 50, 8, TrafficClass::Control);
        }
        if m.flow_packet_done(&tag(2)) {
            m.complete_flow(&tag(2), 5000, 80, TrafficClass::Bulk);
        }
        assert_eq!(m.flows.fct_class_hist[0].count(), 1);
        assert_eq!(m.flows.fct_class_hist[1].count(), 1);
        let r = SimResult::from_metrics(&m, 0.5, 16);
        assert_eq!(r.class(TrafficClass::Control).fct_p99, 50.0);
        assert_eq!(r.class(TrafficClass::Bulk).fct_p99, 5000.0);
        assert_eq!(r.flows_completed, 2.0);
    }

    #[test]
    fn averaging() {
        let a = SimResult {
            accepted: 0.4,
            latency: 100.0,
            ..Default::default()
        };
        let b = SimResult {
            accepted: 0.6,
            latency: 200.0,
            deadlocked: true,
            ..Default::default()
        };
        let avg = SimResult::average(&[a, b]);
        assert!((avg.accepted - 0.5).abs() < 1e-12);
        assert!((avg.latency - 150.0).abs() < 1e-12);
        assert!(avg.deadlocked, "deadlock in any run taints the average");
    }

    #[test]
    fn averaging_reconciles_unequal_occupancy_vectors() {
        // Regression: vec_avg used to take the length from results[0] and
        // index the rest, panicking when a seed produced a shorter vector
        // (e.g. a deadlock before the first occupancy sample).
        let a = SimResult {
            local_vc_occupancy: vec![2.0, 4.0],
            ..Default::default()
        };
        let b = SimResult {
            local_vc_occupancy: vec![],
            deadlocked: true,
            ..Default::default()
        };
        let c = SimResult {
            local_vc_occupancy: vec![4.0, 8.0, 6.0],
            ..Default::default()
        };
        let avg = SimResult::average(&[a, b, c]);
        assert_eq!(avg.local_vc_occupancy, vec![3.0, 6.0, 6.0]);
        // Order must not matter either (results[0] being the short one was
        // the original panic).
        let b2 = SimResult {
            local_vc_occupancy: vec![],
            deadlocked: true,
            ..Default::default()
        };
        let a2 = SimResult {
            local_vc_occupancy: vec![2.0, 4.0],
            ..Default::default()
        };
        let avg2 = SimResult::average(&[b2, a2]);
        assert_eq!(avg2.local_vc_occupancy, vec![2.0, 4.0]);
    }

    #[test]
    fn averaging_merges_histograms_for_p99() {
        // Two seeds with very different tails: the averaged p99 must come
        // from the merged distribution, not the mean of the per-seed p99s.
        let mut m1 = Metrics::default();
        for _ in 0..99 {
            m1.consume(
                MessageClass::Request,
                TrafficClass::Bulk,
                8,
                100,
                3,
                true,
                0,
            );
        }
        let mut m2 = Metrics::default();
        for _ in 0..99 {
            m2.consume(
                MessageClass::Request,
                TrafficClass::Bulk,
                8,
                100,
                3,
                true,
                0,
            );
        }
        m2.consume(
            MessageClass::Request,
            TrafficClass::Bulk,
            8,
            100_000,
            3,
            true,
            0,
        );
        let r1 = SimResult::from_metrics(&m1, 0.5, 16);
        let r2 = SimResult::from_metrics(&m2, 0.5, 16);
        let avg = SimResult::average(&[r1.clone(), r2.clone()]);
        // Merged: 199 samples, rank ceil(0.99*199)=198 is still in the
        // [64,128) bucket -> 64. The mean of per-seed p99s would be
        // (64 + 65536) / 2 = 32800, wildly wrong.
        assert_eq!(avg.latency_p99, 64.0);
        assert_eq!(avg.latency_hist.count(), 199);
        // Results without histogram data (old serialized files) fall back
        // to the arithmetic mean.
        let bare1 = SimResult {
            latency_p99: 100.0,
            ..Default::default()
        };
        let bare2 = SimResult {
            latency_p99: 300.0,
            ..Default::default()
        };
        let bare_avg = SimResult::average(&[bare1, bare2]);
        assert!((bare_avg.latency_p99 - 200.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = LatencyHistogram::default();
        for lat in [100u64, 110, 120, 130, 2000] {
            h.record(lat);
        }
        assert_eq!(h.count(), 5);
        // 3/5 of samples are in [64,128); p50 bucket lower bound = 64.
        assert_eq!(h.quantile(0.5), 64);
        // 2000 lands in [1024,2048).
        assert_eq!(h.quantile(0.99), 1024);
        let mut h2 = LatencyHistogram::default();
        h2.record(100);
        h2.merge(&h);
        assert_eq!(h2.count(), 6);
        assert_eq!(LatencyHistogram::default().quantile(0.5), 0);
    }

    #[test]
    fn quantile_extremes_do_not_degenerate() {
        // Regression: q=0 used to produce target rank 0, which the first
        // (possibly empty) bucket trivially satisfied, returning the
        // constant 2 regardless of data.
        let mut h = LatencyHistogram::default();
        for lat in [100u64, 110, 120, 130, 2000] {
            h.record(lat);
        }
        assert_eq!(h.quantile(0.0), 64, "q=0 is the first non-empty bucket");
        assert_eq!(h.quantile(1.0), 1024, "q=1 is the last non-empty bucket");
        // Out-of-range q is clamped, not wrapped.
        assert_eq!(h.quantile(-3.0), h.quantile(0.0));
        assert_eq!(h.quantile(7.0), h.quantile(1.0));
    }

    /// Regression: a quantile resolving to the overflow bucket used to
    /// report the bucket's lower bound (2^20 = 1,048,576), understating a
    /// multi-million-cycle tail by an unbounded factor. It must report the
    /// recorded maximum instead.
    #[test]
    fn quantile_overflow_bucket_reports_recorded_max() {
        let mut h = LatencyHistogram::default();
        h.record(100); // bucket [64, 128)
        h.record(5_000_000); // overflow bucket [2^20, inf)
        assert_eq!(h.max(), 5_000_000);
        assert_eq!(h.quantile(1.0), 5_000_000, "q=1 lands in overflow");
        assert_eq!(h.quantile(0.0), 64, "q=0 unaffected");
        // All samples in overflow: every quantile reports the max.
        let mut h = LatencyHistogram::default();
        for lat in [2_000_000u64, 3_000_000, 9_999_999] {
            h.record(lat);
        }
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), 9_999_999, "q={q}");
        }
        // Merging propagates the maximum.
        let mut h2 = LatencyHistogram::default();
        h2.record(50);
        h2.merge(&h);
        assert_eq!(h2.max(), 9_999_999);
        assert_eq!(h2.quantile(1.0), 9_999_999);
        // A deserialized histogram without the recorded max falls back to
        // the overflow bucket's lower bound — never less.
        let bare = LatencyHistogram::from_buckets(*h.buckets());
        assert_eq!(bare.quantile(1.0), 1 << 20);
        let mut restored = LatencyHistogram::from_buckets(*h.buckets());
        restored.observe_max(9_999_999);
        assert_eq!(restored.quantile(1.0), 9_999_999);
    }

    #[test]
    fn quantile_single_sample() {
        let mut h = LatencyHistogram::default();
        h.record(150); // bucket [128, 256)
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 128, "q={q}");
        }
    }

    #[test]
    fn quantile_all_same_latency() {
        let mut h = LatencyHistogram::default();
        for _ in 0..1000 {
            h.record(300); // bucket [256, 512)
        }
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 256, "q={q}");
        }
        // The estimate must never exceed the true latency by more than the
        // bucket width (the old upper-bound convention biased p99 2x high).
        assert!(h.quantile(0.99) <= 300);
    }

    #[test]
    fn quantile_zero_latency_sample() {
        let mut h = LatencyHistogram::default();
        h.record(0); // clamped into bucket 0 = [1, 2)
        assert_eq!(h.quantile(0.5), 1);
    }

    #[test]
    fn histogram_bucket_roundtrip() {
        let mut h = LatencyHistogram::default();
        for lat in [1u64, 5, 1000, u64::MAX] {
            h.record(lat);
        }
        let back = LatencyHistogram::from_buckets(*h.buckets());
        assert_eq!(back.count(), h.count());
        assert_eq!(back.buckets(), h.buckets());
    }

    /// Test helper: the engine-side pairing of `flow_packet_done` and
    /// `complete_flow` with an explicit ideal.
    fn track(m: &mut Metrics, tag: &FlowTag, done: u64, ideal: u64) {
        if m.flow_packet_done(tag) {
            m.complete_flow(tag, done, ideal, TrafficClass::Bulk);
        }
    }

    #[test]
    fn flow_tracking_completes_on_last_packet() {
        let mut m = Metrics::default();
        let tag = |index| FlowTag {
            id: 7,
            len: 3,
            index,
            start: 100,
        };
        // Packets may arrive out of order under adaptive routing; only the
        // count matters. Ideal = 3·8 serialization + 8 path latency = 32.
        track(&mut m, &tag(0), 150, 32);
        track(&mut m, &tag(2), 180, 32);
        assert_eq!(m.flows.completed, 0);
        track(&mut m, &tag(1), 196, 32);
        assert_eq!(m.flows.completed, 1);
        // FCT = 196 - 100 = 96; slowdown = 96 / 32 = 3.0.
        assert_eq!(m.flows.fct_sum, 96);
        assert_eq!(m.flows.ideal_sum, 32);
        assert_eq!(m.flows.slowdown_milli_sum, 3_000);
        assert_eq!(m.flows.fct_hist.count(), 1);
        let r = SimResult::from_metrics(&m, 0.5, 16);
        assert_eq!(r.flows_completed, 1.0);
        assert_eq!(r.fct_mean, 96.0);
        assert!((r.slowdown_mean - 3.0).abs() < 1e-12);
        assert_eq!(r.fct_p50, 96.0, "single-sample bucket interpolates exactly");
    }

    #[test]
    fn flow_stats_absorb_is_exact() {
        let tag = |id, len, index| FlowTag {
            id,
            len,
            index,
            start: 0,
        };
        // All packets of each flow on one "shard", like real sharded runs.
        let mut a = Metrics::default();
        track(&mut a, &tag(1, 1, 0), 40, 8);
        track(&mut a, &tag(2, 2, 0), 50, 16);
        let mut b = Metrics::default();
        track(&mut b, &tag(3, 2, 0), 60, 16);
        track(&mut b, &tag(3, 2, 1), 70, 16);
        let mut whole = Metrics::default();
        for (t, done, ideal) in [
            (tag(1, 1, 0), 40, 8),
            (tag(2, 2, 0), 50, 16),
            (tag(3, 2, 0), 60, 16),
            (tag(3, 2, 1), 70, 16),
        ] {
            track(&mut whole, &t, done, ideal);
        }
        a.absorb(&b);
        assert_eq!(a.flows.completed, whole.flows.completed);
        assert_eq!(a.flows.fct_sum, whole.flows.fct_sum);
        assert_eq!(a.flows.ideal_sum, whole.flows.ideal_sum);
        assert_eq!(a.flows.slowdown_milli_sum, whole.flows.slowdown_milli_sum);
        assert_eq!(a.flows.fct_hist.count(), whole.flows.fct_hist.count());
        assert_eq!(
            a.flows.fct_hist.bucket_sums(),
            whole.flows.fct_hist.bucket_sums(),
            "per-bucket sums must merge exactly for sharded interpolation"
        );
        assert_eq!(a.flows.live.len(), whole.flows.live.len());
    }

    #[test]
    fn averaging_merges_fct_histograms() {
        let mut m1 = Metrics::default();
        for id in 0..99 {
            track(
                &mut m1,
                &FlowTag {
                    id,
                    len: 1,
                    index: 0,
                    start: 0,
                },
                100,
                8,
            );
        }
        let mut m2 = m1.clone();
        track(
            &mut m2,
            &FlowTag {
                id: 1_000,
                len: 1,
                index: 0,
                start: 0,
            },
            100_000,
            8,
        );
        let r1 = SimResult::from_metrics(&m1, 0.5, 16);
        let r2 = SimResult::from_metrics(&m2, 0.5, 16);
        let avg = SimResult::average(&[r1, r2]);
        // Merged: 199 samples, rank 198 still in [64,128); every sample
        // there is exactly 100, so the interpolated p99 is 100 — not the
        // mean of per-seed p99s and not the bucket's lower bound 64.
        assert_eq!(avg.fct_p99, 100.0);
        assert!((avg.flows_completed - 99.5).abs() < 1e-12);
        // Without histogram data the quantiles fall back to the mean.
        let bare = SimResult {
            fct_p99: 100.0,
            ..Default::default()
        };
        let bare2 = SimResult {
            fct_p99: 300.0,
            ..Default::default()
        };
        assert!((SimResult::average(&[bare, bare2]).fct_p99 - 200.0).abs() < 1e-12);
    }

    /// Regression for the power-of-two FCT quantization bug: quantiles used
    /// to snap to bucket lower bounds (p50 of [100,110,120,130,2000] read
    /// 64; the CLI smoke test literally compared 1024 against 2048). With
    /// per-bucket sums the quantile resolves to the in-bucket mean — exact
    /// for single-sample buckets.
    #[test]
    fn interpolated_quantiles_resolve_within_buckets() {
        let mut h = LatencyHistogram::default();
        for lat in [100u64, 110, 120, 130, 2000] {
            h.record(lat);
        }
        // p50 rank 3 lands in [64,128) holding {100,110,120}: mean 110.
        assert_eq!(h.quantile_interp(0.5), 110.0);
        // p99 rank 5 lands in [1024,2048) holding only 2000: exact.
        assert_eq!(h.quantile_interp(0.99), 2000.0);
        assert_eq!(h.quantile_interp(0.0), 110.0, "rank clamps to 1");
        // A single sample is reproduced exactly at every quantile.
        let mut single = LatencyHistogram::default();
        single.record(1500);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(single.quantile_interp(q), 1500.0, "q={q}");
        }
        // Merging keeps interpolation exact (integer sums, no averaging).
        let mut merged = LatencyHistogram::default();
        merged.record(90);
        merged.merge(&h);
        // [64,128) now holds {90,100,110,120}: mean 105.
        assert_eq!(merged.quantile_interp(0.5), 105.0);
        assert_eq!(LatencyHistogram::default().quantile_interp(0.5), 0.0);
    }

    /// Histograms rebuilt from bucket counts alone (old serialized files)
    /// carry no sums: interpolation degrades to the lower-bound convention
    /// of `quantile`, and restoring the sums recovers exactness. The
    /// overflow bucket keeps the recorded-max convention either way.
    #[test]
    fn interpolated_quantiles_degrade_without_sums() {
        let mut h = LatencyHistogram::default();
        for lat in [100u64, 110, 120, 130, 5_000_000] {
            h.record(lat);
        }
        let mut bare = LatencyHistogram::from_buckets(*h.buckets());
        assert_eq!(bare.quantile_interp(0.5), 64.0, "no sums: lower bound");
        assert_eq!(bare.quantile_interp(1.0), (1u64 << 20) as f64);
        bare.restore_bucket_sums(*h.bucket_sums());
        bare.observe_max(h.max());
        assert_eq!(bare.quantile_interp(0.5), 110.0, "sums restored: mean");
        assert_eq!(bare.quantile_interp(1.0), 5_000_000.0, "overflow: max");
        assert_eq!(h.quantile_interp(1.0), 5_000_000.0);
    }

    #[test]
    fn vc_profile_means() {
        let mut p = VcOccupancyProfile::default();
        p.sums[0] = vec![100, 50];
        p.samples = 10;
        p.ports[0] = 5;
        assert!((p.mean(flexvc_core::LinkClass::Local, 0) - 2.0).abs() < 1e-12);
        assert!((p.mean(flexvc_core::LinkClass::Local, 1) - 1.0).abs() < 1e-12);
        assert_eq!(p.mean(flexvc_core::LinkClass::Global, 0), 0.0);
        assert_eq!(p.means(flexvc_core::LinkClass::Local).len(), 2);
    }

    #[test]
    fn empty_window_is_safe() {
        let m = Metrics::default();
        let r = SimResult::from_metrics(&m, 0.1, 8);
        assert_eq!(r.accepted, 0.0);
        assert_eq!(r.latency, 0.0);
    }
}
