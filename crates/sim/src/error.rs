//! Typed errors for configuration validation and experiment runs.
//!
//! [`SimConfig::validate`](crate::SimConfig::validate) and
//! [`Network::new`](crate::Network::new) report [`ConfigError`]; the batch
//! runner ([`run_points`](crate::runner::run_points) and friends) wraps it
//! in [`RunError`] with the index of the offending point. Both implement
//! `std::error::Error`, so they compose with `?` and `Box<dyn Error>`.

use flexvc_core::{LinkClass, MessageClass, RoutingMode, TrafficClass};
use std::fmt;

/// A configuration that cannot be simulated deadlock-free (or at all).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A scalar parameter that must be strictly positive is zero.
    NonPositive {
        /// Which parameter.
        what: &'static str,
    },
    /// A reactive workload needs a request+reply split arrangement.
    MissingReplyArrangement,
    /// A non-reactive workload must not carry a reply sub-sequence.
    UnexpectedReplyArrangement,
    /// The baseline policy requires the exact reference arrangement of the
    /// routing mode.
    BaselineArrangement {
        /// Configured routing mode.
        routing: RoutingMode,
        /// Message class whose reference failed to match.
        msg: MessageClass,
        /// Display rendering of the configured arrangement.
        arrangement: String,
    },
    /// FlexVC requires minimal routing to be *safe* (it is every packet's
    /// escape path).
    MinimalNotSafe {
        /// Message class lacking a safe minimal embedding.
        msg: MessageClass,
        /// Display rendering of the configured arrangement.
        arrangement: String,
    },
    /// The configured routing is unsupported (not even opportunistic) on
    /// the arrangement: it has too few VCs for the mode's reference
    /// sequence. Carries the classifier's minimum
    /// ([`RoutingMode::min_dragonfly_vcs`] /
    /// [`RoutingMode::min_hyperx_vcs`]) so the message tells the user what
    /// would work.
    InsufficientVcs {
        /// Configured routing mode.
        routing: RoutingMode,
        /// Message class without support.
        msg: MessageClass,
        /// Display rendering of the configured arrangement.
        arrangement: String,
        /// Human rendering of the classifier's safe minimum for the mode
        /// on this topology family (e.g. `4/2 local/global VCs` or
        /// `6 VCs`).
        minimum: String,
    },
    /// A per-VC input buffer cannot hold one packet.
    VcCapacityBelowPacket {
        /// Link class of the undersized buffers.
        class: LinkClass,
    },
    /// Output or injection buffers cannot hold one packet.
    PortBuffersBelowPacket,
    /// The topology parameters describe a shape the simulator cannot build
    /// (e.g. a HyperX with more than 3 dimensions or a degenerate axis).
    InvalidTopology {
        /// What is wrong with the shape.
        why: &'static str,
    },
    /// The topology has exactly one terminal node. Traffic generation
    /// draws destinations different from the source (`gen_range(0..n-1)`),
    /// which is undefined with a single node — rejected at validation time
    /// instead of panicking inside the generator.
    SingleNodeTopology,
    /// A flow workload parameter is out of range (zero-packet flows, a
    /// fraction outside `[0, 1]`, a degenerate Pareto bound, …).
    InvalidWorkload {
        /// What is wrong with the flow specification.
        why: &'static str,
    },
    /// More engine shards requested than the topology has routers — every
    /// shard must own at least one router (`shards = 0` auto-detects and
    /// never triggers this).
    ShardsExceedRouters {
        /// Requested shard count.
        shards: usize,
        /// Router count of the configured topology.
        routers: usize,
    },
    /// Class-partitioned QoS VC budgets require the FlexVC policy: the
    /// baseline's fixed hop-to-VC map assigns every packet the VC of its
    /// reference position and cannot confine a class to a VC subset.
    QosPartitionRequiresFlexVc,
    /// A QoS class partition carves out a per-class VC subset whose
    /// sub-arrangement has no safe minimal embedding — packets of that
    /// class could deadlock inside their own partition, so strict priority
    /// cannot be composed with FlexVC's position-based safety argument on
    /// this split.
    QosPartitionUnsafe {
        /// Traffic class whose sub-arrangement is unsafe.
        tclass: TrafficClass,
        /// Display rendering of the class's sub-arrangement.
        arrangement: String,
    },
    /// QoS classes do not compose with request–reply (reactive) workloads:
    /// replies already occupy a dedicated virtual network and the priority
    /// rule would be ambiguous across the two splits.
    QosReactiveUnsupported,
    /// A QoS parameter is out of range (zero bypass bound, a control quota
    /// fraction outside `(0, 1)`, a partition that exceeds the VC
    /// budget, …).
    QosInvalidParam {
        /// What is wrong with the QoS specification.
        why: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NonPositive { what } => {
                write!(f, "{what} must be positive")
            }
            ConfigError::MissingReplyArrangement => {
                write!(f, "reactive workload requires a request+reply arrangement")
            }
            ConfigError::UnexpectedReplyArrangement => {
                write!(f, "non-reactive workload must not split the arrangement")
            }
            ConfigError::BaselineArrangement {
                routing,
                msg,
                arrangement,
            } => write!(
                f,
                "baseline policy requires the exact {routing} reference arrangement for {msg:?} \
                 (got {arrangement})"
            ),
            ConfigError::MinimalNotSafe { msg, arrangement } => {
                write!(
                    f,
                    "minimal routing must be safe for {msg:?} on {arrangement}"
                )
            }
            ConfigError::InsufficientVcs {
                routing,
                msg,
                arrangement,
                minimum,
            } => write!(
                f,
                "{routing} is unsupported for {msg:?} on {arrangement}: too few VCs \
                 (the safe minimum for {routing} is {minimum}; FlexVC can run \
                 opportunistically on fewer, but not this few)"
            ),
            ConfigError::VcCapacityBelowPacket { class } => {
                write!(f, "{class:?} VC capacity below one packet")
            }
            ConfigError::PortBuffersBelowPacket => {
                write!(f, "output/injection buffers below one packet")
            }
            ConfigError::InvalidTopology { why } => {
                write!(f, "invalid topology: {why}")
            }
            ConfigError::SingleNodeTopology => {
                write!(
                    f,
                    "topology has a single terminal node; traffic generation needs \
                     at least two (destinations exclude the source)"
                )
            }
            ConfigError::InvalidWorkload { why } => {
                write!(f, "invalid workload: {why}")
            }
            ConfigError::ShardsExceedRouters { shards, routers } => {
                write!(
                    f,
                    "{shards} engine shards exceed the topology's {routers} routers \
                     (every shard must own at least one router; use 0 to auto-detect)"
                )
            }
            ConfigError::QosPartitionRequiresFlexVc => {
                write!(
                    f,
                    "class-partitioned QoS VC budgets require the FlexVC policy \
                     (the baseline's fixed hop-to-VC map cannot confine a class \
                     to a VC subset)"
                )
            }
            ConfigError::QosPartitionUnsafe {
                tclass,
                arrangement,
            } => write!(
                f,
                "QoS partition is deadlock-unsafe: the {tclass}-class VC subset \
                 ({arrangement}) has no safe minimal embedding"
            ),
            ConfigError::QosReactiveUnsupported => {
                write!(
                    f,
                    "QoS traffic classes do not compose with reactive \
                     (request-reply) workloads"
                )
            }
            ConfigError::QosInvalidParam { why } => {
                write!(f, "invalid QoS parameter: {why}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A batch run that could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// A point's configuration failed [`crate::SimConfig::validate`].
    InvalidPoint {
        /// Index of the point within the submitted batch.
        index: usize,
        /// The underlying configuration error.
        source: ConfigError,
    },
    /// The batch was empty where at least one point is required (e.g.
    /// averaging over zero seeds).
    EmptyBatch,
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::InvalidPoint { index, source } => {
                write!(f, "experiment point #{index} is invalid: {source}")
            }
            RunError::EmptyBatch => write!(f, "experiment batch is empty"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::InvalidPoint { source, .. } => Some(source),
            RunError::EmptyBatch => None,
        }
    }
}

impl From<ConfigError> for RunError {
    fn from(source: ConfigError) -> Self {
        RunError::InvalidPoint { index: 0, source }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_messages() {
        let e = ConfigError::NonPositive {
            what: "packet size",
        };
        assert_eq!(e.to_string(), "packet size must be positive");
        let r = RunError::InvalidPoint {
            index: 3,
            source: e.clone(),
        };
        assert_eq!(
            r.to_string(),
            "experiment point #3 is invalid: packet size must be positive"
        );
        assert!(r.source().is_some());
    }

    #[test]
    fn shards_error_names_both_counts() {
        let e = ConfigError::ShardsExceedRouters {
            shards: 9,
            routers: 4,
        };
        let rendered = e.to_string();
        assert!(rendered.contains('9'), "{rendered}");
        assert!(rendered.contains('4'), "{rendered}");
        assert!(rendered.contains("auto-detect"), "{rendered}");
    }

    /// Satellite: the single-node rejection renders an actionable message
    /// (the old behavior was a `gen_range(0..0)` panic at runtime).
    #[test]
    fn single_node_error_renders_the_reason() {
        let rendered = ConfigError::SingleNodeTopology.to_string();
        assert_eq!(
            rendered,
            "topology has a single terminal node; traffic generation needs \
             at least two (destinations exclude the source)"
        );
        let wl = ConfigError::InvalidWorkload {
            why: "incast fan-in must be at least 1",
        };
        assert_eq!(
            wl.to_string(),
            "invalid workload: incast fan-in must be at least 1"
        );
    }

    /// The QoS rejections render the class, the offending sub-arrangement,
    /// and the reason — the "refute" half of the priority-composition
    /// argument must be actionable, not a bare error code.
    #[test]
    fn qos_errors_render_class_and_reason() {
        let e = ConfigError::QosPartitionUnsafe {
            tclass: TrafficClass::Bulk,
            arrangement: "G L".to_string(),
        };
        let rendered = e.to_string();
        assert!(rendered.contains("bulk"), "{rendered}");
        assert!(rendered.contains("G L"), "{rendered}");
        assert!(rendered.contains("safe minimal"), "{rendered}");
        assert!(ConfigError::QosPartitionRequiresFlexVc
            .to_string()
            .contains("FlexVC"));
        assert!(ConfigError::QosReactiveUnsupported
            .to_string()
            .contains("reactive"));
        assert_eq!(
            ConfigError::QosInvalidParam {
                why: "bypass bound must be at least 1"
            }
            .to_string(),
            "invalid QoS parameter: bypass bound must be at least 1"
        );
    }

    #[test]
    fn from_config_error() {
        let r: RunError = ConfigError::PortBuffersBelowPacket.into();
        assert!(matches!(r, RunError::InvalidPoint { index: 0, .. }));
    }

    /// The too-few-VCs rejection must name the classifier's minimum so the
    /// user knows which arrangement would work.
    #[test]
    fn insufficient_vcs_names_the_classifier_minimum() {
        let e = ConfigError::InsufficientVcs {
            routing: RoutingMode::Valiant,
            msg: MessageClass::Request,
            arrangement: "L G L".to_string(),
            minimum: "4/2 local/global VCs".to_string(),
        };
        assert_eq!(
            e.to_string(),
            "VAL is unsupported for Request on L G L: too few VCs (the safe minimum \
             for VAL is 4/2 local/global VCs; FlexVC can run opportunistically on \
             fewer, but not this few)"
        );
        let hx = ConfigError::InsufficientVcs {
            routing: RoutingMode::Dal,
            msg: MessageClass::Request,
            arrangement: "T T T".to_string(),
            minimum: "6 single-class VCs".to_string(),
        };
        let rendered = hx.to_string();
        assert!(rendered.contains("DAL"), "{rendered}");
        assert!(rendered.contains("6 single-class VCs"), "{rendered}");
    }
}
