//! Directed link pipelines: in-flight packets and returning credits.
//!
//! Each directed link is owned by its transmitting router. Phits serialize
//! at one per cycle; a packet transmitted from cycle `t0` delivers its head
//! at `t0 + latency` and its tail at `t0 + latency + size − 1`. Credits flow
//! on the reverse direction with the same latency.

use crate::packet::Packet;
use flexvc_core::{CreditClass, TrafficClass};
use std::collections::VecDeque;

/// A packet in flight on a link.
#[derive(Debug)]
pub struct InFlight {
    /// The packet itself.
    pub packet: Packet,
    /// Destination VC at the receiving input port.
    pub vc: u8,
    /// Cycle the head phit arrives downstream.
    pub head_arrival: u64,
    /// Cycle the tail phit arrives downstream.
    pub tail_arrival: u64,
}

/// A credit message returning upstream.
#[derive(Debug, Clone, Copy)]
pub struct CreditMsg {
    /// Arrival cycle at the upstream router.
    pub arrival: u64,
    /// VC whose space is released.
    pub vc: u8,
    /// Phits released.
    pub phits: u32,
    /// Routing type of the released packet (minCred flag).
    pub class: CreditClass,
    /// QoS class of the released packet (per-class occupancy accounting
    /// for the dynamic buffer repartitioner).
    pub tclass: TrafficClass,
}

/// State of one directed link (plus its reverse credit flow).
#[derive(Debug, Default)]
pub struct LinkState {
    /// Packets in flight, ordered by arrival.
    pub packets: VecDeque<InFlight>,
    /// Credits in flight on the reverse direction, ordered by arrival.
    pub credits: VecDeque<CreditMsg>,
    /// The link is serializing a packet until this cycle (exclusive).
    pub busy_until: u64,
}

impl LinkState {
    /// A link with both rings preallocated for the expected in-flight
    /// population (≈ latency / packet serialization time), so steady-state
    /// traffic never grows them.
    pub fn with_capacity(in_flight: usize) -> Self {
        LinkState {
            packets: VecDeque::with_capacity(in_flight),
            credits: VecDeque::with_capacity(in_flight),
            busy_until: 0,
        }
    }
    /// Begin transmitting `packet` at cycle `now` toward input VC `vc`
    /// downstream. Returns the tail-arrival cycle.
    pub fn transmit(&mut self, now: u64, latency: u32, vc: u8, packet: Packet) -> u64 {
        debug_assert!(self.busy_until <= now, "link already serializing");
        let size = packet.size as u64;
        self.busy_until = now + size;
        let head_arrival = now + latency as u64;
        let tail_arrival = head_arrival + size - 1;
        self.packets.push_back(InFlight {
            packet,
            vc,
            head_arrival,
            tail_arrival,
        });
        tail_arrival
    }

    /// Begin transmitting `packet` at cycle `now` across a shard boundary.
    ///
    /// Identical to [`LinkState::transmit`] except the [`InFlight`] record is
    /// *returned* instead of queued locally: the transmitting shard keeps only
    /// the serialization state (`busy_until`), and the record travels to the
    /// receiving shard's replica of this link as a boundary event, where
    /// [`LinkState::receive_flight`] enqueues it.
    pub fn transmit_boundary(
        &mut self,
        now: u64,
        latency: u32,
        vc: u8,
        packet: Packet,
    ) -> InFlight {
        debug_assert!(self.busy_until <= now, "link already serializing");
        let size = packet.size as u64;
        self.busy_until = now + size;
        let head_arrival = now + latency as u64;
        let tail_arrival = head_arrival + size - 1;
        InFlight {
            packet,
            vc,
            head_arrival,
            tail_arrival,
        }
    }

    /// Enqueue an in-flight record produced by [`LinkState::transmit_boundary`]
    /// on the transmitting shard. Each link has a single transmitter, and
    /// boundary events are applied in emission order, so a back-push keeps the
    /// queue arrival-sorted exactly as local `transmit` calls would.
    pub fn receive_flight(&mut self, flight: InFlight) {
        debug_assert!(
            self.packets
                .back()
                .is_none_or(|f| f.head_arrival <= flight.head_arrival),
            "boundary packets must arrive in order per link"
        );
        self.packets.push_back(flight);
    }

    /// Enqueue a credit that was emitted by a foreign shard's router on the
    /// downstream end of this link. Mirrors [`LinkState::send_credit`] with a
    /// pre-computed arrival cycle; the same single-source monotonicity
    /// argument applies because boundary events are applied in emission order.
    pub fn receive_credit(
        &mut self,
        arrival: u64,
        vc: u8,
        phits: u32,
        class: CreditClass,
        tclass: TrafficClass,
    ) {
        debug_assert!(
            self.credits.back().is_none_or(|c| c.arrival <= arrival),
            "credit departures must be monotonic per link"
        );
        self.credits.push_back(CreditMsg {
            arrival,
            vc,
            phits,
            class,
            tclass,
        });
    }

    /// Pop the next packet whose head has arrived by `now`.
    pub fn pop_arrived(&mut self, now: u64) -> Option<InFlight> {
        if self.packets.front().is_some_and(|f| f.head_arrival <= now) {
            self.packets.pop_front()
        } else {
            None
        }
    }

    /// Queue a credit return departing at `departs`, arriving after
    /// `latency`.
    pub fn send_credit(
        &mut self,
        departs: u64,
        latency: u32,
        vc: u8,
        phits: u32,
        class: CreditClass,
        tclass: TrafficClass,
    ) {
        let msg = CreditMsg {
            arrival: departs + latency as u64,
            vc,
            phits,
            class,
            tclass,
        };
        // Credit departures on one link are strictly monotonic: they all
        // originate from the single downstream input port feeding this
        // link, whose `in_busy` serialization guarantees each transfer
        // completes (and thus departs its credit) after the previous one.
        // A plain back-push therefore keeps the queue arrival-sorted — no
        // O(n) sorted insert needed.
        debug_assert!(
            self.credits.back().is_none_or(|c| c.arrival <= msg.arrival),
            "credit departures must be monotonic per link"
        );
        self.credits.push_back(msg);
    }

    /// Pop the next credit arrived by `now`.
    pub fn pop_credit(&mut self, now: u64) -> Option<CreditMsg> {
        if self.credits.front().is_some_and(|c| c.arrival <= now) {
            self.credits.pop_front()
        } else {
            None
        }
    }

    /// Whether the link can start a new serialization at `now`.
    pub fn is_free(&self, now: u64) -> bool {
        self.busy_until <= now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PlannedPath;
    use flexvc_core::MessageClass;

    fn pkt(id: u64, size: u32) -> Packet {
        Packet {
            id,
            src: 0,
            dst: 1,
            dst_router: 0,
            class: MessageClass::Request,
            tclass: TrafficClass::Bulk,
            size,
            gen_cycle: 0,
            head_arrival: 0,
            tail_arrival: 0,
            position: None,
            plan: PlannedPath::empty(),
            min_routed: true,
            derouted: false,
            buffered_class: CreditClass::MinRouted,
            planned: true,
            par_evaluated: false,
            hop_decided: false,
            flex_opts: None,
            opp_blocked: 0,
            hops: 0,
            reverts: 0,
        }
    }

    #[test]
    fn transmit_timing() {
        let mut link = LinkState::default();
        assert!(link.is_free(0));
        let tail = link.transmit(10, 100, 0, pkt(1, 8));
        assert_eq!(tail, 10 + 100 + 7);
        assert!(!link.is_free(10));
        assert!(!link.is_free(17));
        assert!(link.is_free(18)); // 8 phits serialized
        assert!(link.pop_arrived(109).is_none());
        let f = link.pop_arrived(110).unwrap();
        assert_eq!(f.packet.id, 1);
        assert_eq!(f.head_arrival, 110);
        assert_eq!(f.tail_arrival, 117);
    }

    #[test]
    fn packets_arrive_in_order() {
        let mut link = LinkState::default();
        link.transmit(0, 10, 0, pkt(1, 8));
        link.transmit(8, 10, 1, pkt(2, 8));
        assert_eq!(link.pop_arrived(10).unwrap().packet.id, 1);
        assert!(link.pop_arrived(17).is_none());
        assert_eq!(link.pop_arrived(18).unwrap().packet.id, 2);
    }

    #[test]
    fn credits_pop_in_arrival_order() {
        let mut link = LinkState::default();
        link.send_credit(5, 10, 0, 8, CreditClass::NonMinRouted, TrafficClass::Bulk);
        link.send_credit(20, 10, 1, 8, CreditClass::MinRouted, TrafficClass::Control);
        assert!(link.pop_credit(14).is_none());
        assert_eq!(link.pop_credit(15).unwrap().vc, 0);
        assert!(link.pop_credit(29).is_none());
        assert_eq!(link.pop_credit(30).unwrap().vc, 1);
        assert!(link.pop_credit(100).is_none());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "monotonic")]
    fn out_of_order_credit_departure_is_a_bug() {
        let mut link = LinkState::default();
        link.send_credit(20, 10, 1, 8, CreditClass::MinRouted, TrafficClass::Bulk);
        link.send_credit(5, 10, 0, 8, CreditClass::NonMinRouted, TrafficClass::Bulk);
    }

    #[test]
    fn with_capacity_preallocates() {
        let link = LinkState::with_capacity(16);
        assert!(link.packets.capacity() >= 16);
        assert!(link.credits.capacity() >= 16);
    }
}
