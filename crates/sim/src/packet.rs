//! Packets and planned paths.

use flexvc_core::{CreditClass, HopVcs, MessageClass, TrafficClass};
use flexvc_topology::{Route, RouteHop};

/// Maximum hops of any plan (the PAR reference path has 7).
pub const MAX_PLAN: usize = 8;

/// A packet's planned path: fixed-capacity, copy-friendly.
#[derive(Debug, Clone, Copy)]
pub struct PlannedPath {
    hops: [RouteHop; MAX_PLAN],
    len: u8,
    idx: u8,
}

impl PlannedPath {
    /// Empty plan (packet already at its destination router).
    pub fn empty() -> Self {
        PlannedPath {
            hops: [RouteHop {
                port: 0,
                class: flexvc_core::LinkClass::Local,
                slot: 0,
            }; MAX_PLAN],
            len: 0,
            idx: 0,
        }
    }

    /// Build from a computed route.
    pub fn from_route(route: &Route) -> Self {
        assert!(route.len() <= MAX_PLAN, "route exceeds plan capacity");
        let mut p = Self::empty();
        for (i, h) in route.iter().enumerate() {
            p.hops[i] = *h;
        }
        p.len = route.len() as u8;
        p
    }

    /// Remaining hops (including the next one).
    pub fn remaining(&self) -> &[RouteHop] {
        &self.hops[self.idx as usize..self.len as usize]
    }

    /// Next hop, if any.
    pub fn next_hop(&self) -> Option<&RouteHop> {
        self.remaining().first()
    }

    /// Number of remaining hops.
    pub fn remaining_len(&self) -> usize {
        (self.len - self.idx) as usize
    }

    /// `true` when no hops remain.
    pub fn is_done(&self) -> bool {
        self.idx == self.len
    }

    /// Advance past the next hop (called when a hop is granted).
    pub fn advance(&mut self) {
        debug_assert!(self.idx < self.len);
        self.idx += 1;
    }

    /// Replace the remaining plan (reversion to an escape path).
    pub fn replace(&mut self, route: &Route) {
        *self = Self::from_route(route);
    }

    /// Redirect the next hop over a parallel copy of its link (adaptive
    /// `k > 1` copy selection): same neighbor, same class and slot, a
    /// different physical port.
    pub fn set_next_port(&mut self, port: u16) {
        debug_assert!(self.idx < self.len, "no next hop to redirect");
        self.hops[self.idx as usize].port = port;
    }

    /// Hops consumed so far.
    pub fn hops_taken(&self) -> usize {
        self.idx as usize
    }
}

/// A packet in flight. Compact and clone-free on the hot path: the
/// simulator moves packets between queues by value, so every field rides
/// along on each buffer move — flow identity deliberately lives in an
/// engine-side table keyed by packet id instead of here, keeping synthetic
/// workloads from paying for flow workloads' tagging.
#[derive(Debug, Clone)]
pub struct Packet {
    /// Unique id (monotonic per simulation).
    pub id: u64,
    /// Source node.
    pub src: u32,
    /// Destination node.
    pub dst: u32,
    /// Destination router (cached).
    pub dst_router: u32,
    /// Message class (request/reply).
    pub class: MessageClass,
    /// QoS traffic class (control/bulk) assigned by the workload layer;
    /// drives priority arbitration and per-class metrics.
    pub tclass: TrafficClass,
    /// Size in phits.
    pub size: u32,
    /// Generation cycle (latency baseline; reply creation time for replies).
    pub gen_cycle: u64,
    /// Cycle the head phit arrived in the current buffer (cut-through
    /// eligibility).
    pub head_arrival: u64,
    /// Cycle the tail phit arrives in the current buffer.
    pub tail_arrival: u64,
    /// Position of the current buffer in the master sequence (`None` while
    /// in an injection queue).
    pub position: Option<u16>,
    /// Remaining planned path.
    pub plan: PlannedPath,
    /// Live routing-type header flag used by minCred credit accounting:
    /// `false` while following a non-minimal plan, and back to `true` after
    /// a reversion (the remaining path *is* minimal, and sensing must see
    /// the packet's occupancy on the minimal channels it now uses).
    pub min_routed: bool,
    /// `true` if the packet ever adopted a non-minimal plan (statistics:
    /// the misroute fraction counts detours even after reversion).
    pub derouted: bool,
    /// Credit class under which the packet entered its *current* buffer;
    /// releases must use this class even if `min_routed` changed since
    /// (PAR diverts packets while they sit in a buffer).
    pub buffered_class: CreditClass,
    /// Whether the routing decision has been made (plans are computed when
    /// the packet reaches the head of its injection queue, so adaptive
    /// decisions use fresh congestion state).
    pub planned: bool,
    /// PAR: the in-transit divert decision was already evaluated.
    pub par_evaluated: bool,
    /// The per-router transit decision (DAL misroute, adaptive copy
    /// re-selection) already ran for the packet's current buffer; cleared
    /// on every buffer entry alongside the lookahead cache.
    pub hop_decided: bool,
    /// Cached FlexVC lookahead options for the packet's current
    /// (buffer, plan) state. The options are a pure function of the
    /// arrangement, message class, buffer position, and the (fixed) plan
    /// with its escapes, so a head blocked across many allocation rounds
    /// reuses them instead of re-running the lookahead embedding. `None`
    /// means "not computed"; the cache is cleared whenever the packet
    /// enters a new buffer or its plan is replaced.
    pub flex_opts: Option<Option<HopVcs>>,
    /// Consecutive allocation evaluations this head has been blocked on an
    /// opportunistic hop (reversion triggers past the configured patience).
    pub opp_blocked: u32,
    /// Total hops traversed (statistics).
    pub hops: u16,
    /// Times the packet reverted from an opportunistic plan (statistics).
    pub reverts: u16,
}

impl Packet {
    /// Credit class for minCred accounting.
    pub fn credit_class(&self) -> CreditClass {
        if self.min_routed {
            CreditClass::MinRouted
        } else {
            CreditClass::NonMinRouted
        }
    }

    /// Current position as the policy layer's `Pos`.
    pub fn pos(&self) -> Option<usize> {
        self.position.map(|p| p as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexvc_core::LinkClass;

    fn hop(port: u16, slot: u8) -> RouteHop {
        RouteHop {
            port,
            class: LinkClass::Local,
            slot,
        }
    }

    #[test]
    fn planned_path_lifecycle() {
        let route = vec![hop(1, 0), hop(2, 1), hop(3, 2)];
        let mut p = PlannedPath::from_route(&route);
        assert_eq!(p.remaining_len(), 3);
        assert_eq!(p.next_hop().unwrap().port, 1);
        p.advance();
        assert_eq!(p.next_hop().unwrap().port, 2);
        assert_eq!(p.hops_taken(), 1);
        p.advance();
        p.advance();
        assert!(p.is_done());
        assert!(p.next_hop().is_none());
    }

    #[test]
    fn replace_resets_progress() {
        let mut p = PlannedPath::from_route(&vec![hop(1, 0), hop(2, 1)]);
        p.advance();
        p.replace(&vec![hop(9, 0)]);
        assert_eq!(p.remaining_len(), 1);
        assert_eq!(p.next_hop().unwrap().port, 9);
        assert_eq!(p.hops_taken(), 0);
    }

    #[test]
    fn empty_plan_is_done() {
        assert!(PlannedPath::empty().is_done());
        assert_eq!(PlannedPath::empty().remaining_len(), 0);
    }

    #[test]
    #[should_panic(expected = "route exceeds plan capacity")]
    fn oversized_route_rejected() {
        let route: Vec<_> = (0..9).map(|i| hop(i, 0)).collect();
        let _ = PlannedPath::from_route(&route);
    }

    #[test]
    fn credit_class_follows_min_flag() {
        let mut pkt = Packet {
            id: 0,
            src: 0,
            dst: 1,
            dst_router: 0,
            class: MessageClass::Request,
            tclass: TrafficClass::Bulk,
            size: 8,
            gen_cycle: 0,
            head_arrival: 0,
            tail_arrival: 7,
            position: None,
            plan: PlannedPath::empty(),
            min_routed: true,
            derouted: false,
            buffered_class: CreditClass::MinRouted,
            planned: true,
            par_evaluated: false,
            hop_decided: false,
            flex_opts: None,
            opp_blocked: 0,
            hops: 0,
            reverts: 0,
        };
        assert_eq!(pkt.credit_class(), CreditClass::MinRouted);
        pkt.min_routed = false;
        assert_eq!(pkt.credit_class(), CreditClass::NonMinRouted);
        assert_eq!(pkt.pos(), None);
    }
}
