//! Path planning: minimal, Valiant and PAR plans with baseline slots.
//!
//! Plans carry the *reference-path slots* used by the baseline
//! distance-based policy. FlexVC ignores slots entirely; it derives allowed
//! VCs from the remaining class sequence (see `flexvc-core`).
//!
//! Slot layout per routing mode:
//!
//! * MIN: `l0 g1 l2` (Dragonfly) / `t0 t1` (diameter-2).
//! * VAL `l0 g1 l2 | l3 g4 l5`: first subpath uses MIN slots, second is
//!   offset by the diameter-dependent reference length (3 / 2).
//! * PAR `l0 | l1 g2 l3 | l4 g5 l6`: first minimal hop at slot 0; a
//!   non-diverted continuation maps its global to slot 2 and final local to
//!   slot 3; a diverted path offsets the Valiant subpaths by +1 and +4
//!   (+1/+3 for diameter-2).

use crate::packet::PlannedPath;
use flexvc_core::classify::NetworkFamily;
use flexvc_core::LinkClass;
use flexvc_topology::{offset_slots, Route, Topology};

/// Minimal plan with plain MIN slots.
pub fn min_plan(topo: &dyn Topology, from: usize, to: usize) -> PlannedPath {
    PlannedPath::from_route(&topo.min_route(from, to))
}

/// Valiant plan `from → via → to`; degenerate `via` choices (on the minimal
/// path endpoints) fall back to plain concatenation of the sub-routes.
pub fn valiant_plan(
    topo: &dyn Topology,
    family: NetworkFamily,
    from: usize,
    via: usize,
    to: usize,
) -> PlannedPath {
    let offset = second_subpath_offset(family);
    let mut first = topo.min_route(from, via);
    let mut second = topo.min_route(via, to);
    offset_slots(&mut second, offset);
    first.append(&mut second);
    PlannedPath::from_route(&first)
}

/// PAR plan used at injection: a minimal route whose slots leave room for a
/// later divert (`l0 g2 l3` in the Dragonfly reference).
pub fn par_min_plan(
    topo: &dyn Topology,
    family: NetworkFamily,
    from: usize,
    to: usize,
) -> PlannedPath {
    let mut route = topo.min_route(from, to);
    remap_par_min_slots(&mut route, family);
    PlannedPath::from_route(&route)
}

/// PAR divert plan adopted in-transit at `divert` (after the first minimal
/// hop): Valiant via `via` with subpath slots offset by +1 and the
/// reference length + 1.
pub fn par_divert_plan(
    topo: &dyn Topology,
    family: NetworkFamily,
    divert: usize,
    via: usize,
    to: usize,
) -> PlannedPath {
    let mut first = topo.min_route(divert, via);
    offset_slots(&mut first, 1);
    let mut second = topo.min_route(via, to);
    offset_slots(&mut second, second_subpath_offset(family) + 1);
    first.append(&mut second);
    PlannedPath::from_route(&first)
}

/// Offset of the second Valiant subpath in the reference sequence: the
/// length of the minimal reference (3 for Dragonfly, the diameter `d` for
/// generic networks).
fn second_subpath_offset(family: NetworkFamily) -> u8 {
    match family.generic_diameter() {
        None => 3,
        Some(d) => d as u8,
    }
}

/// Remap MIN slots into the PAR reference (`l0 l1 g2 l3 l4 g5 l6` in a
/// Dragonfly, `t0 t2 t3 … td` in a generic `T^(2d+1)` reference): the first
/// hop keeps slot 0; later hops shift past the divert slot.
fn remap_par_min_slots(route: &mut Route, family: NetworkFamily) {
    match family.generic_diameter() {
        None => {
            for hop in route.iter_mut() {
                hop.slot = match (hop.class, hop.slot) {
                    (LinkClass::Local, 0) => 0,
                    (LinkClass::Global, 1) => 2,
                    (LinkClass::Local, 2) => 3,
                    _ => hop.slot,
                };
            }
        }
        Some(_) => {
            // T^(2d+1) reference: keep slot 0, shift every later hop past
            // the divert slot 1.
            for hop in route.iter_mut() {
                if hop.slot >= 1 {
                    hop.slot += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexvc_topology::{Dragonfly, FlatButterfly2D};

    #[test]
    fn valiant_plan_slots_are_offset() {
        let d = Dragonfly::balanced(2);
        // Pick src/via/dst in three different groups for a full 6-hop path.
        let from = d.router_id(0, 1);
        let via = d.router_id(4, 2);
        let to = d.router_id(7, 3);
        let plan = valiant_plan(&d, NetworkFamily::Dragonfly, from, via, to);
        let slots: Vec<u8> = plan.remaining().iter().map(|h| h.slot).collect();
        // Strictly increasing slots guarantee baseline deadlock-freedom.
        assert!(slots.windows(2).all(|w| w[0] < w[1]), "slots {slots:?}");
        assert!(plan.remaining_len() <= 6);
        // Second-subpath slots are >= 3.
        let n_first = d.min_route(from, via).len();
        for (i, h) in plan.remaining().iter().enumerate() {
            if i >= n_first {
                assert!(h.slot >= 3, "second subpath slot {}", h.slot);
            } else {
                assert!(h.slot < 3);
            }
        }
    }

    #[test]
    fn valiant_degenerate_via_is_minimal() {
        let d = Dragonfly::balanced(2);
        let from = d.router_id(0, 0);
        let to = d.router_id(2, 1);
        let plan = valiant_plan(&d, NetworkFamily::Dragonfly, from, from, to);
        assert_eq!(plan.remaining_len(), d.min_route(from, to).len());
    }

    #[test]
    fn par_min_slots_leave_divert_room() {
        let d = Dragonfly::balanced(2);
        let from = d.router_id(0, 1);
        let to = d.router_id(5, 2);
        let plan = par_min_plan(&d, NetworkFamily::Dragonfly, from, to);
        for h in plan.remaining() {
            match h.class {
                LinkClass::Global => assert_eq!(h.slot, 2),
                LinkClass::Local => assert!(h.slot == 0 || h.slot == 3),
            }
        }
    }

    #[test]
    fn par_divert_slots_fit_reference() {
        let d = Dragonfly::balanced(2);
        let divert = d.router_id(0, 2);
        let via = d.router_id(3, 1);
        let to = d.router_id(6, 0);
        let plan = par_divert_plan(&d, NetworkFamily::Dragonfly, divert, via, to);
        let slots: Vec<u8> = plan.remaining().iter().map(|h| h.slot).collect();
        assert!(slots.windows(2).all(|w| w[0] < w[1]), "slots {slots:?}");
        // All diverted slots live past the first minimal hop (slot >= 1)
        // and within the 7-slot PAR reference.
        assert!(
            slots.iter().all(|&s| (1..7).contains(&s)),
            "slots {slots:?}"
        );
    }

    #[test]
    fn diameter3_hyperx_plans() {
        use flexvc_topology::HyperX;
        let t = HyperX::regular(3, 3, 1);
        let fam = NetworkFamily::generic(3);
        // Valiant slots strictly increase with the second subpath >= d = 3.
        let plan = valiant_plan(&t, fam, 0, 13, 26);
        assert!(plan.remaining_len() <= 6);
        let n_first = t.min_route(0, 13).len();
        let slots: Vec<u8> = plan.remaining().iter().map(|h| h.slot).collect();
        assert!(slots.windows(2).all(|w| w[0] < w[1]), "slots {slots:?}");
        for (i, h) in plan.remaining().iter().enumerate() {
            if i >= n_first {
                assert!(h.slot >= 3, "second subpath slot {}", h.slot);
            } else {
                assert!(h.slot < 3);
            }
        }
        // PAR MIN slots leave room at slot 1 for the divert.
        let pm = par_min_plan(&t, fam, 0, 26);
        let slots: Vec<u8> = pm.remaining().iter().map(|h| h.slot).collect();
        assert_eq!(slots, vec![0, 2, 3]);
        // PAR divert slots stay inside the T^7 reference and increase.
        let pd = par_divert_plan(&t, fam, 1, 13, 26);
        let slots: Vec<u8> = pd.remaining().iter().map(|h| h.slot).collect();
        assert!(slots.windows(2).all(|w| w[0] < w[1]), "slots {slots:?}");
        assert!(
            slots.iter().all(|&s| (1..7).contains(&s)),
            "slots {slots:?}"
        );
    }

    #[test]
    fn diameter2_plans() {
        let t = FlatButterfly2D::new(4, 1);
        let plan = valiant_plan(&t, NetworkFamily::Diameter2, 0, 10, 15);
        assert!(plan.remaining_len() <= 4);
        let slots: Vec<u8> = plan.remaining().iter().map(|h| h.slot).collect();
        assert!(slots.windows(2).all(|w| w[0] < w[1]), "slots {slots:?}");
        let pm = par_min_plan(&t, NetworkFamily::Diameter2, 0, 15);
        let slots: Vec<u8> = pm.remaining().iter().map(|h| h.slot).collect();
        assert_eq!(slots, vec![0, 2]);
    }
}
