//! Path planning: the per-hop routing-decision layer.
//!
//! This module is the simulator half of the `RoutePolicy` pipeline: the
//! pure decision rules live in `flexvc_core::decision`; here they are bound
//! to a concrete topology and the engine's sensed state. One object —
//! [`RoutePolicy`] — owns *every* routing decision of a simulation:
//!
//! * **injection planning** ([`RoutePolicy::plan_injection`]): MIN / VAL
//!   plans, PB's board-vetoed credit choice, UGAL-L/G's hop-weighted
//!   comparison and DAL's first-dimension decision, all evaluated when a
//!   packet reaches the head of its injection queue (fresh congestion
//!   state);
//! * **in-transit decisions** ([`RoutePolicy::transit_update`]): PAR's
//!   one-shot divert after the first minimal hop, DAL's per-dimension
//!   misroutes at every router, and adaptive parallel-copy (`k > 1`)
//!   re-selection.
//!
//! The engine calls exactly these two entry points — `plan_injection`
//! from the route-planning phase, `transit_update` from head evaluation
//! (only when [`RoutePolicy::decides_in_transit`]) — and nothing else; it
//! no longer contains routing-mode special cases. Congestion reaches the
//! policy only through [`SenseView`], the simulator's implementation of
//! [`flexvc_core::decision::SensedState`] over credit mirrors and
//! piggyback boards (see that module's docs for the exact contract the
//! view upholds). Valiant intermediates are drawn through
//! [`Topology::valiant_via`], which restricts the candidate set on
//! topologies whose references only cover endpoint detours (Dragonfly+
//! leaves) and is the identity elsewhere.
//!
//! Plans carry the *reference-path slots* used by the baseline
//! distance-based policy. FlexVC ignores slots entirely; it derives allowed
//! VCs from the remaining class sequence (see `flexvc-core`).
//!
//! Slot layout per routing mode:
//!
//! * MIN: `l0 g1 l2` (Dragonfly) / `t0 t1` (diameter-2). Dragonfly+
//!   shares the Dragonfly layout with `up = l0`, `global = g1`,
//!   `down = l2` (intra-group routes take `l0`/`l2` of the same
//!   reference).
//! * VAL `l0 g1 l2 | l3 g4 l5`: first subpath uses MIN slots, second is
//!   offset by the diameter-dependent reference length (3 / 2). PB and
//!   UGAL-L/G plan whole MIN or VAL paths and share this layout;
//!   Dragonfly+ detours (leaf vias only) land on it verbatim.
//! * PAR `l0 | l1 g2 l3 l4 g5 l6`: first minimal hop at slot 0; a
//!   non-diverted continuation maps its global to slot 2 and final local to
//!   slot 3; a diverted path offsets the Valiant subpaths by +1 and +4
//!   (+1/+3 for diameter-2).
//! * DAL `t0 t1 | t2 t3 | …`: each dimension correction owns a *pair* of
//!   slots — the direct hop takes the even slot, a misroute takes the even
//!   slot and its correction the odd one — so any divert pattern yields
//!   strictly increasing slots within the `T^2d` reference.

use crate::bank::Occupancy;
use crate::config::SimConfig;
use crate::packet::{Packet, PlannedPath};
use crate::sensing::GroupBoard;
use flexvc_core::classify::NetworkFamily;
use flexvc_core::decision::{
    choose_nonminimal, dal_divert_choice, least_occupied, ugal_choice, PathChoice, SensedState,
};
use flexvc_core::{LinkClass, MessageClass, RoutingMode};
use flexvc_topology::{offset_slots, Route, RouteHop, Topology};
use rand::rngs::SmallRng;
use rand::Rng;

/// Minimal plan with plain MIN slots.
pub fn min_plan(topo: &dyn Topology, from: usize, to: usize) -> PlannedPath {
    PlannedPath::from_route(&topo.min_route(from, to))
}

/// Draw a Valiant intermediate router: uniform over the topology's
/// candidate set ([`Topology::valiant_via`] — every router for
/// Dragonfly/flattened-butterfly/HyperX, leaves only on Dragonfly+ so the
/// detour reference stays `L G L | L G L`). One `gen_range` call either
/// way, preserving the pre-refactor draw order on existing topologies.
fn draw_via(topo: &dyn Topology, rng: &mut SmallRng) -> usize {
    topo.valiant_via(rng.gen_range(0..topo.valiant_via_count()))
}

/// Valiant plan `from → via → to`; degenerate `via` choices (on the minimal
/// path endpoints) fall back to plain concatenation of the sub-routes.
pub fn valiant_plan(
    topo: &dyn Topology,
    family: NetworkFamily,
    from: usize,
    via: usize,
    to: usize,
) -> PlannedPath {
    let offset = second_subpath_offset(family);
    let mut first = topo.min_route(from, via);
    let mut second = topo.min_route(via, to);
    offset_slots(&mut second, offset);
    first.append(&mut second);
    PlannedPath::from_route(&first)
}

/// PAR plan used at injection: a minimal route whose slots leave room for a
/// later divert (`l0 g2 l3` in the Dragonfly reference).
pub fn par_min_plan(
    topo: &dyn Topology,
    family: NetworkFamily,
    from: usize,
    to: usize,
) -> PlannedPath {
    let mut route = topo.min_route(from, to);
    remap_par_min_slots(&mut route, family);
    PlannedPath::from_route(&route)
}

/// PAR divert plan adopted in-transit at `divert` (after the first minimal
/// hop): Valiant via `via` with subpath slots offset by +1 and the
/// reference length + 1.
pub fn par_divert_plan(
    topo: &dyn Topology,
    family: NetworkFamily,
    divert: usize,
    via: usize,
    to: usize,
) -> PlannedPath {
    let mut first = topo.min_route(divert, via);
    offset_slots(&mut first, 1);
    let mut second = topo.min_route(via, to);
    offset_slots(&mut second, second_subpath_offset(family) + 1);
    first.append(&mut second);
    PlannedPath::from_route(&first)
}

/// DAL plan used at injection: the DOR minimal route with each hop on the
/// *even* slot of its correction pair (`t0 t2 t4 …`), leaving the odd slot
/// of every pair free for an in-transit misroute.
pub fn dal_plan(topo: &dyn Topology, from: usize, to: usize) -> PlannedPath {
    let mut route = topo.min_route(from, to);
    for (i, hop) in route.iter_mut().enumerate() {
        hop.slot = (2 * i) as u8;
    }
    PlannedPath::from_route(&route)
}

/// DAL divert plan adopted when the correction pair starting at `base_slot`
/// misroutes: the misroute hop keeps the even slot, its correction takes
/// the odd one, and every later dimension keeps its own pair.
pub fn dal_divert_plan(
    topo: &dyn Topology,
    via_port: u16,
    via: usize,
    to: usize,
    base_slot: u8,
    class: LinkClass,
) -> PlannedPath {
    let mut route = Route::new();
    route.push(RouteHop {
        port: via_port,
        class,
        slot: base_slot,
    });
    let rest = topo.min_route(via, to);
    for (i, h) in rest.iter().enumerate() {
        let slot = if i == 0 {
            base_slot + 1
        } else {
            base_slot + 2 * i as u8
        };
        route.push(RouteHop {
            port: h.port,
            class: h.class,
            slot,
        });
    }
    PlannedPath::from_route(&route)
}

/// Offset of the second Valiant subpath in the reference sequence: the
/// length of the minimal reference (3 for Dragonfly, the diameter `d` for
/// generic networks).
fn second_subpath_offset(family: NetworkFamily) -> u8 {
    match family.generic_diameter() {
        None => 3,
        Some(d) => d as u8,
    }
}

/// Remap MIN slots into the PAR reference (`l0 l1 g2 l3 l4 g5 l6` in a
/// Dragonfly, `t0 t2 t3 … td` in a generic `T^(2d+1)` reference): the first
/// hop keeps slot 0; later hops shift past the divert slot.
fn remap_par_min_slots(route: &mut Route, family: NetworkFamily) {
    match family.generic_diameter() {
        None => {
            for hop in route.iter_mut() {
                hop.slot = match (hop.class, hop.slot) {
                    (LinkClass::Local, 0) => 0,
                    (LinkClass::Global, 1) => 2,
                    (LinkClass::Local, 2) => 3,
                    _ => hop.slot,
                };
            }
        }
        Some(_) => {
            // T^(2d+1) reference: keep slot 0, shift every later hop past
            // the divert slot 1.
            for hop in route.iter_mut() {
                if hop.slot >= 1 {
                    hop.slot += 1;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Sensed state
// ---------------------------------------------------------------------------

/// The engine's congestion view at one router, handed to the decision
/// layer: credit mirrors of the router's output ports, the per-group
/// piggyback boards, and the wiring needed to walk a minimal route to its
/// first sensed channel.
pub struct SenseView<'a> {
    /// Credit mirrors of the deciding router's network output ports.
    pub out_credit: &'a [Occupancy],
    /// Per-group saturation boards (empty unless the mode publishes them).
    pub boards: &'a [GroupBoard],
    /// Ports whose occupancy the sensing phase publishes.
    pub sense_ports: &'a [usize],
    /// `true` when every network port is sensed (single-class topologies).
    pub sense_all: bool,
    /// FlexVC-minCred: measure only minimally-routed occupancy.
    pub min_cred: bool,
    /// Flat adjacency of the whole network (`r*pp + port`).
    pub adj: &'a [Option<(u32, u16)>],
    /// Class per port index.
    pub port_class: &'a [LinkClass],
}

impl SenseView<'_> {
    /// Raw total occupancy of an output port (PAR's divert metric, which
    /// predates minCred and always reads the full counter).
    #[inline]
    pub fn port_total(&self, port: u16) -> u32 {
        self.out_credit[port as usize].total()
    }

    /// Walk `min_route` from `r` to the first sensed channel (the first
    /// global hop in a Dragonfly; the very first hop on single-class
    /// topologies) and read its piggybacked saturation flag — PB's
    /// decision input. `false` when no boards are published.
    pub fn min_path_saturated(
        &self,
        topo: &dyn Topology,
        r: usize,
        min_route: &Route,
        class: MessageClass,
    ) -> bool {
        self.walk_saturation(topo, r, min_route, class, false)
    }

    /// Walk the *whole* minimal route and OR the saturation flags of every
    /// sensed channel along it — UGAL-G's globally-informed veto. Unlike
    /// PB's first-channel read, this sees congestion on any later hop
    /// (e.g. the adversarial last-dimension link of a HyperX, invisible to
    /// local credit at the source).
    pub fn min_path_saturated_any(
        &self,
        topo: &dyn Topology,
        r: usize,
        min_route: &Route,
        class: MessageClass,
    ) -> bool {
        self.walk_saturation(topo, r, min_route, class, true)
    }

    fn walk_saturation(
        &self,
        topo: &dyn Topology,
        r: usize,
        min_route: &Route,
        class: MessageClass,
        whole_path: bool,
    ) -> bool {
        if self.boards.is_empty() {
            return false;
        }
        let pp = topo.num_ports();
        let rpg = topo.routers_per_group();
        let mut cur = r;
        for hop in min_route {
            if self.sense_all || self.port_class[hop.port as usize] == LinkClass::Global {
                let group = topo.group_of_router(cur);
                let local = cur - group * rpg;
                // With all ports sensed the offset is the port itself;
                // only Dragonfly global ports need the lookup.
                let gp_off = if self.sense_all {
                    hop.port as usize
                } else {
                    self.sense_ports
                        .iter()
                        .position(|&g| g == hop.port as usize)
                        .expect("sense port")
                };
                let sat = self.remote_saturated(group, local, gp_off, class);
                if sat || !whole_path {
                    return sat;
                }
            }
            cur = self.adj[cur * pp + hop.port as usize].expect("wired").0 as usize;
        }
        false
    }
}

impl SensedState for SenseView<'_> {
    /// Sensed occupancy after the configured credit metric (minCred splits
    /// min/non-min accounting, plain mode reads the total).
    fn port_occupancy(&self, port: u16) -> u32 {
        let occ = &self.out_credit[port as usize];
        if self.min_cred {
            occ.split_total().min_occupancy()
        } else {
            occ.total()
        }
    }

    fn remote_saturated(
        &self,
        group: usize,
        router_local: usize,
        channel: usize,
        class: MessageClass,
    ) -> bool {
        if self.boards.is_empty() {
            return false;
        }
        self.boards[group].read(router_local, channel, class)
    }
}

// ---------------------------------------------------------------------------
// RoutePolicy
// ---------------------------------------------------------------------------

/// The per-simulation routing-decision pipeline: one object per
/// [`crate::Network`], constructed from the configuration, consulted at
/// injection planning and (for in-transit modes) at every head evaluation.
pub struct RoutePolicy {
    mode: RoutingMode,
    family: NetworkFamily,
    /// UGAL/PB/DAL threshold `T` in phits.
    threshold_phits: u32,
    /// Route parallel `k > 1` copies by sensed occupancy instead of the
    /// endpoint hash.
    adaptive_copies: bool,
    /// DAL divert-candidate scratch.
    diverts: Vec<(usize, u16)>,
    /// Parallel-copy scratch.
    copies: Vec<u16>,
}

impl RoutePolicy {
    /// Build the policy for a configuration.
    pub fn new(cfg: &SimConfig) -> Self {
        RoutePolicy {
            mode: cfg.routing,
            family: cfg.topology.family(),
            threshold_phits: cfg.sensing.threshold * cfg.packet_size,
            adaptive_copies: cfg.adaptive_copies,
            diverts: Vec::new(),
            copies: Vec::new(),
        }
    }

    /// Whether head evaluations must consult [`RoutePolicy::transit_update`]
    /// (PAR's divert, DAL's per-dimension misroutes, adaptive copy
    /// re-selection).
    pub fn decides_in_transit(&self) -> bool {
        self.mode.decides_in_transit() || self.adaptive_copies
    }

    /// Whether injection planning is the *static minimal* fast path: in
    /// [`RoutingMode::Min`] without adaptive copies,
    /// [`RoutePolicy::plan_injection`] reduces to [`min_plan`] (or the
    /// ejection-empty plan at the destination router), reads no sensed
    /// state, and draws no randomness — so the engine may bypass the
    /// policy object and its `SenseView` setup entirely on this, the most
    /// common, configuration.
    pub fn is_static_min(&self) -> bool {
        self.mode == RoutingMode::Min && !self.adaptive_copies
    }

    /// Plan a packet's route at injection. Returns the plan and whether it
    /// is minimal. Decisions consume congestion exclusively through
    /// `sense`; random draws (Valiant intermediates) come from the
    /// deciding router's RNG, preserving the pre-refactor draw order.
    #[allow(clippy::too_many_arguments)]
    pub fn plan_injection(
        &mut self,
        topo: &dyn Topology,
        sense: &SenseView<'_>,
        rng: &mut SmallRng,
        r: usize,
        dst_r: usize,
        class: MessageClass,
    ) -> (PlannedPath, bool) {
        if dst_r == r {
            return (PlannedPath::empty(), true);
        }
        let (mut plan, min_routed) = match self.mode {
            RoutingMode::Min => (min_plan(topo, r, dst_r), true),
            RoutingMode::Valiant => {
                let via = draw_via(topo, rng);
                (valiant_plan(topo, self.family, r, via, dst_r), false)
            }
            RoutingMode::Par => (par_min_plan(topo, self.family, r, dst_r), true),
            RoutingMode::Piggyback => {
                let min_route = topo.min_route(r, dst_r);
                // Same-group destinations route minimally.
                if topo.group_of_router(r) == topo.group_of_router(dst_r) {
                    return (PlannedPath::from_route(&min_route), true);
                }
                let sat = sense.min_path_saturated(topo, r, &min_route, class);
                let q_min = sense.port_occupancy(min_route[0].port);
                let via = draw_via(topo, rng);
                let val = valiant_plan(topo, self.family, r, via, dst_r);
                let q_val = val
                    .next_hop()
                    .map(|h| sense.port_occupancy(h.port))
                    .unwrap_or(u32::MAX);
                if choose_nonminimal(sat, q_min, q_val, self.threshold_phits)
                    && val.next_hop().is_some()
                {
                    (val, false)
                } else {
                    (PlannedPath::from_route(&min_route), true)
                }
            }
            RoutingMode::UgalL | RoutingMode::UgalG => {
                let min_route = topo.min_route(r, dst_r);
                // UGAL-G feeds the piggybacked saturation veto into the
                // comparison — over the *whole* minimal path, so remote
                // hot spots invisible to local credit trigger the detour;
                // UGAL-L is purely local.
                let sat = self.mode == RoutingMode::UgalG
                    && sense.min_path_saturated_any(topo, r, &min_route, class);
                let q_min = sense.port_occupancy(min_route[0].port);
                let via = draw_via(topo, rng);
                let val = valiant_plan(topo, self.family, r, via, dst_r);
                let q_val = val
                    .next_hop()
                    .map(|h| sense.port_occupancy(h.port))
                    .unwrap_or(u32::MAX);
                let nonmin = ugal_choice(
                    sat,
                    q_min,
                    min_route.len(),
                    q_val,
                    val.remaining_len(),
                    self.threshold_phits,
                ) == PathChoice::NonMinimal;
                if nonmin && val.next_hop().is_some() {
                    (val, false)
                } else {
                    (PlannedPath::from_route(&min_route), true)
                }
            }
            RoutingMode::Dal => {
                // DOR plan on even slots; the source router immediately
                // evaluates the first dimension's misroute with fresh
                // credit state (later dimensions decide in transit).
                let mut plan = dal_plan(topo, r, dst_r);
                let diverted = self.maybe_dal_divert(topo, sense, r, dst_r, &mut plan);
                (plan, !diverted)
            }
        };
        if self.adaptive_copies {
            self.repick_copy(topo, sense, r, &mut plan);
        }
        (plan, min_routed)
    }

    /// In-transit decision point, invoked once per head evaluation by the
    /// engine when [`RoutePolicy::decides_in_transit`]: PAR's one-shot
    /// divert (its own `par_evaluated` latch keeps it idempotent), DAL's
    /// per-dimension misroute and adaptive copy re-selection (latched by
    /// `Packet::hop_decided`, cleared on every buffer entry).
    #[allow(clippy::too_many_arguments)]
    pub fn transit_update(
        &mut self,
        topo: &dyn Topology,
        sense: &SenseView<'_>,
        rng: &mut SmallRng,
        r: usize,
        head: &mut Packet,
        is_injection: bool,
        in_class: LinkClass,
    ) {
        if self.mode == RoutingMode::Par && !is_injection {
            self.maybe_par_divert(topo, sense, rng, r, head, in_class);
        }
        if head.hop_decided {
            return;
        }
        head.hop_decided = true;
        if self.mode == RoutingMode::Dal && !is_injection && head.planned && !head.plan.is_done() {
            let dst_r = head.dst_router as usize;
            let mut plan = head.plan;
            if self.maybe_dal_divert(topo, sense, r, dst_r, &mut plan) {
                head.plan = plan;
                head.min_routed = false;
                head.derouted = true;
                head.flex_opts = None;
            }
        }
        if self.adaptive_copies && head.planned {
            let mut plan = head.plan;
            if self.repick_copy(topo, sense, r, &mut plan) {
                head.plan = plan;
                head.flex_opts = None;
            }
        }
    }

    /// PAR: after the first minimal hop, decide whether to divert to a
    /// Valiant path based on local congestion toward the next minimal hop.
    /// Diverts exactly at the classic decision point: after one minimal
    /// *local* hop in the source group, before committing to the global hop
    /// (the divert slots l1.. lie between l0 and g2 in the reference;
    /// diverting after a global hop would descend positions).
    fn maybe_par_divert(
        &mut self,
        topo: &dyn Topology,
        sense: &SenseView<'_>,
        rng: &mut SmallRng,
        r: usize,
        head: &mut Packet,
        in_class: LinkClass,
    ) {
        if head.par_evaluated
            || !head.min_routed
            || head.hops != 1
            || head.plan.is_done()
            || in_class != LinkClass::Local
            || head.plan.next_hop().map(|h| h.class) != Some(LinkClass::Global)
        {
            return;
        }
        head.par_evaluated = true;
        let dst_r = head.dst_router as usize;
        let next = *head.plan.next_hop().expect("plan not done");
        let q_min = sense.port_total(next.port);
        let via = draw_via(topo, rng);
        let divert = par_divert_plan(topo, self.family, r, via, dst_r);
        let Some(first) = divert.next_hop() else {
            return;
        };
        let q_val = sense.port_total(first.port);
        if choose_nonminimal(false, q_min, q_val, self.threshold_phits) {
            head.plan = divert;
            head.min_routed = false;
            head.derouted = true;
            head.flex_opts = None;
        }
    }

    /// DAL: misroute the plan's next correction pair through the
    /// least-occupied intermediate coordinate when the direct hop is
    /// congested enough. Only fresh-dimension hops (even slots) are
    /// eligible — a correction hop (odd slot) is committed, which bounds
    /// the detour to one misroute per dimension.
    fn maybe_dal_divert(
        &mut self,
        topo: &dyn Topology,
        sense: &SenseView<'_>,
        r: usize,
        dst_r: usize,
        plan: &mut PlannedPath,
    ) -> bool {
        let Some(next) = plan.next_hop().copied() else {
            return false;
        };
        if next.slot % 2 != 0 {
            return false;
        }
        if !topo.dim_diverts(r, dst_r, &mut self.diverts) || self.diverts.is_empty() {
            return false;
        }
        let q_min = sense.port_occupancy(next.port);
        // Deterministic JSQ over the candidate ports (first-appearance
        // tie-break), shared with adaptive copy selection.
        self.copies.clear();
        self.copies.extend(self.diverts.iter().map(|&(_, p)| p));
        let (port, q_div) = least_occupied(sense, &self.copies).expect("non-empty candidates");
        let via = self
            .diverts
            .iter()
            .find(|&&(_, p)| p == port)
            .expect("port came from the candidate list")
            .0;
        if !dal_divert_choice(q_min, q_div, self.threshold_phits) {
            return false;
        }
        *plan = dal_divert_plan(topo, port, via, dst_r, next.slot, next.class);
        true
    }

    /// Adaptive `k > 1` copy selection: re-route the plan's next hop over
    /// the least-occupied parallel copy of its link (deterministic JSQ,
    /// ties to the lowest port). Returns whether the port changed.
    fn repick_copy(
        &mut self,
        topo: &dyn Topology,
        sense: &SenseView<'_>,
        r: usize,
        plan: &mut PlannedPath,
    ) -> bool {
        let Some(hop) = plan.next_hop().copied() else {
            return false;
        };
        topo.parallel_ports(r, hop.port as usize, &mut self.copies);
        if self.copies.len() <= 1 {
            return false;
        }
        match least_occupied(sense, &self.copies) {
            Some((best, _)) if best != hop.port => {
                plan.set_next_port(best);
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexvc_topology::{Dragonfly, FlatButterfly2D};

    #[test]
    fn valiant_plan_slots_are_offset() {
        let d = Dragonfly::balanced(2);
        // Pick src/via/dst in three different groups for a full 6-hop path.
        let from = d.router_id(0, 1);
        let via = d.router_id(4, 2);
        let to = d.router_id(7, 3);
        let plan = valiant_plan(&d, NetworkFamily::Dragonfly, from, via, to);
        let slots: Vec<u8> = plan.remaining().iter().map(|h| h.slot).collect();
        // Strictly increasing slots guarantee baseline deadlock-freedom.
        assert!(slots.windows(2).all(|w| w[0] < w[1]), "slots {slots:?}");
        assert!(plan.remaining_len() <= 6);
        // Second-subpath slots are >= 3.
        let n_first = d.min_route(from, via).len();
        for (i, h) in plan.remaining().iter().enumerate() {
            if i >= n_first {
                assert!(h.slot >= 3, "second subpath slot {}", h.slot);
            } else {
                assert!(h.slot < 3);
            }
        }
    }

    #[test]
    fn valiant_degenerate_via_is_minimal() {
        let d = Dragonfly::balanced(2);
        let from = d.router_id(0, 0);
        let to = d.router_id(2, 1);
        let plan = valiant_plan(&d, NetworkFamily::Dragonfly, from, from, to);
        assert_eq!(plan.remaining_len(), d.min_route(from, to).len());
    }

    #[test]
    fn par_min_slots_leave_divert_room() {
        let d = Dragonfly::balanced(2);
        let from = d.router_id(0, 1);
        let to = d.router_id(5, 2);
        let plan = par_min_plan(&d, NetworkFamily::Dragonfly, from, to);
        for h in plan.remaining() {
            match h.class {
                LinkClass::Global => assert_eq!(h.slot, 2),
                LinkClass::Local => assert!(h.slot == 0 || h.slot == 3),
            }
        }
    }

    #[test]
    fn par_divert_slots_fit_reference() {
        let d = Dragonfly::balanced(2);
        let divert = d.router_id(0, 2);
        let via = d.router_id(3, 1);
        let to = d.router_id(6, 0);
        let plan = par_divert_plan(&d, NetworkFamily::Dragonfly, divert, via, to);
        let slots: Vec<u8> = plan.remaining().iter().map(|h| h.slot).collect();
        assert!(slots.windows(2).all(|w| w[0] < w[1]), "slots {slots:?}");
        // All diverted slots live past the first minimal hop (slot >= 1)
        // and within the 7-slot PAR reference.
        assert!(
            slots.iter().all(|&s| (1..7).contains(&s)),
            "slots {slots:?}"
        );
    }

    #[test]
    fn diameter3_hyperx_plans() {
        use flexvc_topology::HyperX;
        let t = HyperX::regular(3, 3, 1);
        let fam = NetworkFamily::generic(3);
        // Valiant slots strictly increase with the second subpath >= d = 3.
        let plan = valiant_plan(&t, fam, 0, 13, 26);
        assert!(plan.remaining_len() <= 6);
        let n_first = t.min_route(0, 13).len();
        let slots: Vec<u8> = plan.remaining().iter().map(|h| h.slot).collect();
        assert!(slots.windows(2).all(|w| w[0] < w[1]), "slots {slots:?}");
        for (i, h) in plan.remaining().iter().enumerate() {
            if i >= n_first {
                assert!(h.slot >= 3, "second subpath slot {}", h.slot);
            } else {
                assert!(h.slot < 3);
            }
        }
        // PAR MIN slots leave room at slot 1 for the divert.
        let pm = par_min_plan(&t, fam, 0, 26);
        let slots: Vec<u8> = pm.remaining().iter().map(|h| h.slot).collect();
        assert_eq!(slots, vec![0, 2, 3]);
        // PAR divert slots stay inside the T^7 reference and increase.
        let pd = par_divert_plan(&t, fam, 1, 13, 26);
        let slots: Vec<u8> = pd.remaining().iter().map(|h| h.slot).collect();
        assert!(slots.windows(2).all(|w| w[0] < w[1]), "slots {slots:?}");
        assert!(
            slots.iter().all(|&s| (1..7).contains(&s)),
            "slots {slots:?}"
        );
    }

    #[test]
    fn diameter2_plans() {
        let t = FlatButterfly2D::new(4, 1);
        let plan = valiant_plan(&t, NetworkFamily::Diameter2, 0, 10, 15);
        assert!(plan.remaining_len() <= 4);
        let slots: Vec<u8> = plan.remaining().iter().map(|h| h.slot).collect();
        assert!(slots.windows(2).all(|w| w[0] < w[1]), "slots {slots:?}");
        let pm = par_min_plan(&t, NetworkFamily::Diameter2, 0, 15);
        let slots: Vec<u8> = pm.remaining().iter().map(|h| h.slot).collect();
        assert_eq!(slots, vec![0, 2]);
    }

    #[test]
    fn dal_plan_uses_even_slots() {
        use flexvc_topology::HyperX;
        let t = HyperX::regular(3, 3, 1);
        // 0 -> 26 differs in all three dimensions.
        let plan = dal_plan(&t, 0, 26);
        let slots: Vec<u8> = plan.remaining().iter().map(|h| h.slot).collect();
        assert_eq!(slots, vec![0, 2, 4]);
        // A partial-distance pair still pairs up from slot 0.
        let plan = dal_plan(&t, 0, 2);
        let slots: Vec<u8> = plan.remaining().iter().map(|h| h.slot).collect();
        assert_eq!(slots, vec![0]);
    }

    #[test]
    fn dal_divert_plan_fills_correction_pairs() {
        use flexvc_topology::HyperX;
        let t = HyperX::regular(3, 3, 1);
        // Divert the first dimension of 0 -> 26 through coordinate 2's
        // router (id 2), then fix the remaining dimensions.
        let mut cands = Vec::new();
        assert!(t.dim_diverts(0, 26, &mut cands));
        let (via, port) = cands[0];
        let plan = dal_divert_plan(&t, port, via, 26, 0, LinkClass::Local);
        let slots: Vec<u8> = plan.remaining().iter().map(|h| h.slot).collect();
        // Misroute 0, correction 1, later dimensions on their even slots.
        assert_eq!(slots, vec![0, 1, 2, 4]);
        assert!(slots.iter().all(|&s| s < 6), "inside the T^6 reference");
        // The path reaches the destination.
        let mut cur = 0usize;
        for h in plan.remaining() {
            cur = t.neighbor(cur, h.port as usize).expect("wired").0;
        }
        assert_eq!(cur, 26);
    }

    /// Every divert pattern yields strictly increasing slots inside T^2d:
    /// simulate the worst case (all dimensions misrouted in sequence).
    #[test]
    fn dal_all_dims_misrouted_stays_in_reference() {
        use flexvc_topology::HyperX;
        let t = HyperX::regular(3, 3, 1);
        let (from, to) = (0usize, 26usize);
        let mut cur = from;
        let mut plan = dal_plan(&t, from, to);
        let mut slots = Vec::new();
        let mut cands = Vec::new();
        let mut hops = 0;
        while let Some(next) = plan.next_hop().copied() {
            if next.slot % 2 == 0 && t.dim_diverts(cur, to, &mut cands) && !cands.is_empty() {
                // Force the misroute at every opportunity.
                let (via, port) = cands[0];
                plan = dal_divert_plan(&t, port, via, to, next.slot, next.class);
            }
            let hop = *plan.next_hop().expect("non-empty");
            slots.push(hop.slot);
            cur = t.neighbor(cur, hop.port as usize).expect("wired").0;
            plan.advance();
            hops += 1;
            assert!(hops <= 6, "detour exceeded the T^6 reference");
        }
        assert_eq!(cur, to);
        assert_eq!(hops, 6, "every dimension misrouted once");
        assert!(slots.windows(2).all(|w| w[0] < w[1]), "slots {slots:?}");
        assert_eq!(slots, vec![0, 1, 2, 3, 4, 5]);
    }
}
