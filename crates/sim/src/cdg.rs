//! Channel-dependency-graph validation (Dally–Seitz / Duato).
//!
//! Distance-based deadlock avoidance is correct iff every realizable path
//! occupies buffers of strictly increasing *positions* in the master
//! sequence, which makes the buffer-level dependency graph acyclic. This
//! module verifies that property constructively on concrete topologies:
//!
//! * [`check_baseline_routes`] walks every minimal route (plus sampled
//!   Valiant and PAR-divert realizations) and asserts the baseline slot
//!   mapping yields strictly increasing positions — catching any slot
//!   assignment bug in the planners.
//! * [`build_min_cdg`] / [`is_acyclic`] build the explicit buffer-level
//!   dependency graph of minimal routing and check it for cycles; useful
//!   as a template for users adding their own topologies or policies.
//!
//! FlexVC's relaxed rule is validated differently: its *escape network*
//! (moves with strictly increasing positions) is acyclic by construction,
//! and the per-grant invariants are property-tested in `flexvc-core` and
//! debug-asserted in the engine.

use flexvc_core::policy::baseline_vc;
use flexvc_core::{Arrangement, MessageClass, RoutingMode};
use flexvc_topology::Topology;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Walk a route from `src`, returning the master-sequence position of each
/// buffer the packet occupies under the baseline policy.
fn route_positions(
    arr: &Arrangement,
    msg: MessageClass,
    reference: &[flexvc_core::LinkClass],
    route: &flexvc_topology::Route,
) -> Vec<usize> {
    route
        .iter()
        .map(|hop| {
            let (class, vc) = baseline_vc(arr, msg, reference, hop.slot as usize);
            debug_assert_eq!(class, hop.class);
            arr.position(class, vc).expect("baseline vc exists")
        })
        .collect()
}

fn strictly_increasing(v: &[usize]) -> bool {
    v.windows(2).all(|w| w[0] < w[1])
}

/// Verify that every realizable baseline route occupies strictly increasing
/// positions. Checks all minimal pairs exhaustively and `samples` random
/// Valiant (and, for PAR, divert) realizations.
#[allow(clippy::too_many_arguments)]
pub fn check_baseline_routes(
    topo: &dyn Topology,
    routing: RoutingMode,
    arr: &Arrangement,
    msg: MessageClass,
    samples: usize,
    seed: u64,
) -> Result<(), String> {
    let family = topo.family();
    let reference: Vec<flexvc_core::LinkClass> = match family.generic_diameter() {
        None => routing.dragonfly_reference().to_vec(),
        Some(d) => routing.generic_reference(d).to_vec(),
    };
    // The baseline only ever routes between traffic endpoints (and
    // through the topology's own Valiant candidates) — on Dragonfly+
    // those are the leaves; on uniformly-populated topologies the list is
    // simply every router, so draws match the historical 0..n ones.
    let endpoints = endpoint_routers(topo);
    let n = endpoints.len();
    // Exhaustive minimal pairs (the escape substrate of every mode).
    if routing == RoutingMode::Min {
        for &s in &endpoints {
            for &d in &endpoints {
                let route = topo.min_route(s, d);
                let pos = route_positions(arr, msg, &reference, &route);
                if !strictly_increasing(&pos) {
                    return Err(format!("min route {s}->{d}: positions {pos:?}"));
                }
            }
        }
        return Ok(());
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    for _ in 0..samples {
        let s = endpoints[rng.gen_range(0..n)];
        let d = endpoints[rng.gen_range(0..n)];
        let via = topo.valiant_via(rng.gen_range(0..topo.valiant_via_count()));
        let plan = match routing {
            RoutingMode::Valiant
            | RoutingMode::Piggyback
            | RoutingMode::UgalL
            | RoutingMode::UgalG => crate::plan::valiant_plan(topo, family, s, via, d),
            RoutingMode::Dal => {
                // Random per-dimension misroute pattern: walk the DAL plan
                // from `s`, diverting each eligible correction pair with
                // probability 1/2 through a random candidate — exactly the
                // replanning the engine performs in transit.
                let mut cur = s;
                let mut plan = crate::plan::dal_plan(topo, s, d);
                let mut route: flexvc_topology::Route = Vec::new();
                let mut cands = Vec::new();
                while let Some(next) = plan.next_hop().copied() {
                    if next.slot % 2 == 0
                        && rng.gen_range(0..2u32) == 0
                        && topo.dim_diverts(cur, d, &mut cands)
                        && !cands.is_empty()
                    {
                        let (via2, port) = cands[rng.gen_range(0..cands.len())];
                        plan = crate::plan::dal_divert_plan(
                            topo, port, via2, d, next.slot, next.class,
                        );
                    }
                    let hop = *plan.next_hop().expect("non-empty");
                    route.push(hop);
                    cur = topo.neighbor(cur, hop.port as usize).expect("wired").0;
                    plan.advance();
                }
                let pos = route_positions(arr, msg, &reference, &route);
                if !strictly_increasing(&pos) {
                    return Err(format!("DAL {s}->{d}: positions {pos:?}"));
                }
                if cur != d {
                    return Err(format!("DAL {s}->{d}: route ends at {cur}"));
                }
                continue;
            }
            RoutingMode::Par => {
                // A divert happens after the first minimal *local* hop (the
                // engine only evaluates the divert at that point); validate
                // the divert plan from that router. PAR plans carry the
                // remapped slots of `par_min_plan`.
                let first = crate::plan::par_min_plan(topo, family, s, d);
                let Some(h0) = first.remaining().first().copied() else {
                    continue;
                };
                if h0.class != flexvc_core::LinkClass::Local {
                    continue;
                }
                let (divert_router, _) = topo.neighbor(s, h0.port as usize).expect("wired");
                let mut route = vec![h0];
                route.extend(
                    crate::plan::par_divert_plan(topo, family, divert_router, via, d)
                        .remaining()
                        .iter()
                        .copied(),
                );
                let pos = route_positions(arr, msg, &reference, &route);
                if !strictly_increasing(&pos) {
                    return Err(format!("PAR divert {s}->{d} via {via}: positions {pos:?}"));
                }
                continue;
            }
            RoutingMode::Min => unreachable!(),
        };
        let route: flexvc_topology::Route = plan.remaining().to_vec();
        let pos = route_positions(arr, msg, &reference, &route);
        if !strictly_increasing(&pos) {
            return Err(format!("{routing} {s}->{d} via {via}: positions {pos:?}"));
        }
    }
    Ok(())
}

/// Routers that carry traffic endpoints (have attached nodes), in
/// ascending order: every router on uniformly-populated topologies, the
/// leaves on Dragonfly+. Node ids attach in contiguous blocks, so the
/// per-node router list is already sorted and deduplicates in place.
fn endpoint_routers(topo: &dyn Topology) -> Vec<usize> {
    let mut endpoints: Vec<usize> = (0..topo.num_nodes())
        .map(|node| topo.router_of_node(node))
        .collect();
    endpoints.dedup();
    endpoints
}

/// Buffer identifier: `(router, input port, vc)`.
pub type BufferId = (usize, usize, usize);

/// Build the buffer-level dependency graph of baseline minimal routing:
/// an edge `a -> b` means a packet can occupy buffer `a` while waiting for
/// space in buffer `b`.
pub fn build_min_cdg(
    topo: &dyn Topology,
    arr: &Arrangement,
    msg: MessageClass,
) -> Vec<(BufferId, BufferId)> {
    let reference: Vec<flexvc_core::LinkClass> = match topo.family().generic_diameter() {
        None => RoutingMode::Min.dragonfly_reference().to_vec(),
        Some(d) => RoutingMode::Min.generic_reference(d).to_vec(),
    };
    let mut edges = std::collections::HashSet::new();
    let endpoints = endpoint_routers(topo);
    for &s in &endpoints {
        for &d in &endpoints {
            let route = topo.min_route(s, d);
            let mut bufs: Vec<BufferId> = Vec::with_capacity(route.len());
            let mut cur = s;
            for hop in &route {
                let (next, next_port) = topo.neighbor(cur, hop.port as usize).expect("wired");
                let (_, vc) = baseline_vc(arr, msg, &reference, hop.slot as usize);
                bufs.push((next, next_port, vc));
                cur = next;
            }
            for w in bufs.windows(2) {
                edges.insert((w[0], w[1]));
            }
        }
    }
    edges.into_iter().collect()
}

/// Escape-network dependency graph of FlexVC minimal routing on an
/// arrangement — or on a QoS class's sub-arrangement, which is a
/// subsequence of the master reference and so does not follow the
/// baseline slot texture [`build_min_cdg`] assumes. Every minimal route
/// is embedded greedily at strictly increasing positions (the canonical
/// safe embedding whose existence the classifier's `Safe` verdict
/// asserts; greedy-lowest succeeds whenever any embedding does), and
/// consecutive buffers form the edges. Errors if some minimal route does
/// not embed, i.e. the arrangement is not actually MIN-safe.
pub fn build_flexvc_min_cdg(
    topo: &dyn Topology,
    arr: &Arrangement,
) -> Result<Vec<(BufferId, BufferId)>, String> {
    let mut edges = std::collections::HashSet::new();
    let endpoints = endpoint_routers(topo);
    for &s in &endpoints {
        for &d in &endpoints {
            let route = topo.min_route(s, d);
            let mut cur = s;
            let mut prev: Option<usize> = None;
            let mut bufs: Vec<BufferId> = Vec::with_capacity(route.len());
            for hop in &route {
                let start = prev.map_or(0, |p| p + 1);
                let Some(pos) = (start..arr.len()).find(|&p| arr.class_at(p) == hop.class) else {
                    return Err(format!(
                        "min route {s}->{d}: no {:?} position above {prev:?} in {arr}",
                        hop.class
                    ));
                };
                let (next, next_port) = topo.neighbor(cur, hop.port as usize).expect("wired");
                bufs.push((next, next_port, arr.vc_index_at(pos)));
                prev = Some(pos);
                cur = next;
            }
            for w in bufs.windows(2) {
                edges.insert((w[0], w[1]));
            }
        }
    }
    Ok(edges.into_iter().collect())
}

/// Combined buffer-level dependency graph of a class-partitioned QoS
/// configuration under minimal routing (each class's escape substrate).
///
/// Under [`crate::config::ClassVcMap::Partitioned`] the classes own
/// disjoint VC subsets, and strict-priority arbitration never adds a
/// buffer-wait edge *between* classes: a head denied by priority keeps
/// only the buffer it already occupies — in its own partition — and waits
/// for a grant, not for buffer space in the other class. The full
/// dependency graph is therefore exactly the disjoint union of the
/// per-class graphs, encoded here by offsetting bulk's VC ids out of
/// control's id space. Acyclicity of this union is the graph-level
/// statement of the priority-composition proof performed algebraically by
/// `SimConfig::validate`.
pub fn build_qos_min_cdg(
    topo: &dyn Topology,
    control: &Arrangement,
    bulk: &Arrangement,
) -> Result<Vec<(BufferId, BufferId)>, String> {
    // Any offset past the 32-VC ceiling keeps the id spaces disjoint.
    const BULK_VC_OFFSET: usize = 32;
    let mut edges = build_flexvc_min_cdg(topo, control)?;
    edges.extend(build_flexvc_min_cdg(topo, bulk)?.into_iter().map(
        |((ra, pa, va), (rb, pb, vb))| {
            ((ra, pa, va + BULK_VC_OFFSET), (rb, pb, vb + BULK_VC_OFFSET))
        },
    ));
    Ok(edges)
}

/// Kahn's algorithm: is the dependency graph acyclic?
pub fn is_acyclic(edges: &[(BufferId, BufferId)]) -> bool {
    use std::collections::HashMap;
    let mut indeg: HashMap<BufferId, usize> = HashMap::new();
    let mut out: HashMap<BufferId, Vec<BufferId>> = HashMap::new();
    for &(a, b) in edges {
        out.entry(a).or_default().push(b);
        *indeg.entry(b).or_insert(0) += 1;
        indeg.entry(a).or_insert(0);
    }
    let mut queue: Vec<BufferId> = indeg
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&b, _)| b)
        .collect();
    let mut seen = 0;
    while let Some(b) = queue.pop() {
        seen += 1;
        if let Some(succs) = out.get(&b) {
            for &s in succs {
                let e = indeg.get_mut(&s).expect("known node");
                *e -= 1;
                if *e == 0 {
                    queue.push(s);
                }
            }
        }
    }
    seen == indeg.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexvc_topology::{Dragonfly, FlatButterfly2D};

    #[test]
    fn min_routes_strictly_increase() {
        let topo = Dragonfly::balanced(2);
        let arr = Arrangement::dragonfly_min();
        check_baseline_routes(&topo, RoutingMode::Min, &arr, MessageClass::Request, 0, 1).unwrap();
    }

    #[test]
    fn min_reply_routes_strictly_increase() {
        let topo = Dragonfly::balanced(2);
        let arr = Arrangement::dragonfly_rr((2, 1), (2, 1));
        for msg in [MessageClass::Request, MessageClass::Reply] {
            check_baseline_routes(&topo, RoutingMode::Min, &arr, msg, 0, 1).unwrap();
        }
    }

    #[test]
    fn valiant_routes_strictly_increase() {
        let topo = Dragonfly::balanced(2);
        let arr = Arrangement::dragonfly_val();
        check_baseline_routes(
            &topo,
            RoutingMode::Valiant,
            &arr,
            MessageClass::Request,
            5_000,
            2,
        )
        .unwrap();
    }

    #[test]
    fn par_divert_routes_strictly_increase() {
        let topo = Dragonfly::balanced(2);
        let arr = Arrangement::dragonfly_par();
        check_baseline_routes(
            &topo,
            RoutingMode::Par,
            &arr,
            MessageClass::Request,
            5_000,
            3,
        )
        .unwrap();
    }

    #[test]
    fn generic_valiant_routes_strictly_increase() {
        let topo = FlatButterfly2D::new(4, 1);
        let arr = Arrangement::generic(4);
        check_baseline_routes(
            &topo,
            RoutingMode::Valiant,
            &arr,
            MessageClass::Request,
            5_000,
            4,
        )
        .unwrap();
    }

    #[test]
    fn hyperx_valiant_routes_strictly_increase() {
        use flexvc_topology::HyperX;
        let topo = HyperX::regular(3, 3, 1);
        let arr = Arrangement::generic(6);
        check_baseline_routes(
            &topo,
            RoutingMode::Valiant,
            &arr,
            MessageClass::Request,
            5_000,
            6,
        )
        .unwrap();
    }

    #[test]
    fn hyperx_par_routes_strictly_increase() {
        use flexvc_topology::HyperX;
        let topo = HyperX::regular(3, 3, 1);
        let arr = Arrangement::generic(7);
        check_baseline_routes(
            &topo,
            RoutingMode::Par,
            &arr,
            MessageClass::Request,
            5_000,
            7,
        )
        .unwrap();
    }

    #[test]
    fn ugal_routes_strictly_increase() {
        // UGAL's paths are MIN or VAL paths under the VAL reference — the
        // sampled realizations must occupy strictly increasing positions
        // on both topology families.
        let topo = Dragonfly::balanced(2);
        let arr = Arrangement::dragonfly_val();
        for mode in [RoutingMode::UgalL, RoutingMode::UgalG] {
            check_baseline_routes(&topo, mode, &arr, MessageClass::Request, 2_000, 5).unwrap();
        }
        use flexvc_topology::HyperX;
        let hx = HyperX::regular(3, 3, 1);
        let arr = Arrangement::generic(6);
        check_baseline_routes(
            &hx,
            RoutingMode::UgalG,
            &arr,
            MessageClass::Request,
            2_000,
            6,
        )
        .unwrap();
    }

    #[test]
    fn dal_divert_routes_strictly_increase() {
        use flexvc_topology::HyperX;
        // Random misroute patterns on 3-D and mixed-shape HyperX: every
        // realization's baseline positions strictly increase inside the
        // T^6 (resp. T^4) reference.
        let topo = HyperX::regular(3, 3, 1);
        let arr = Arrangement::generic(6);
        check_baseline_routes(
            &topo,
            RoutingMode::Dal,
            &arr,
            MessageClass::Request,
            5_000,
            7,
        )
        .unwrap();
        let mixed = HyperX::new(vec![(4, 2), (3, 1)], 1);
        let arr = Arrangement::generic(4);
        check_baseline_routes(
            &mixed,
            RoutingMode::Dal,
            &arr,
            MessageClass::Request,
            5_000,
            8,
        )
        .unwrap();
    }

    /// Dragonfly+ baseline safety: leaf-to-leaf minimal routes occupy
    /// strictly increasing positions in the `2/1` reference, leaf-via
    /// Valiant/UGAL realizations in the `4/2` one, and the minimal CDG
    /// over the leaf endpoints is acyclic.
    #[test]
    fn dfplus_routes_strictly_increase_and_min_cdg_acyclic() {
        use flexvc_topology::DragonflyPlus;
        let topo = DragonflyPlus::new(2, 2, 1, 1, 5);
        let arr = Arrangement::dragonfly_min();
        check_baseline_routes(&topo, RoutingMode::Min, &arr, MessageClass::Request, 0, 1).unwrap();
        let val = Arrangement::dragonfly_val();
        for mode in [
            RoutingMode::Valiant,
            RoutingMode::Piggyback,
            RoutingMode::UgalL,
            RoutingMode::UgalG,
        ] {
            check_baseline_routes(&topo, mode, &val, MessageClass::Request, 2_000, 9).unwrap();
        }
        let edges = build_min_cdg(&topo, &arr, MessageClass::Request);
        assert!(!edges.is_empty());
        assert!(is_acyclic(&edges), "Dragonfly+ baseline MIN CDG cyclic");
        // Request+reply: both halves stay increasing within their parts.
        let rr = Arrangement::dragonfly_rr((2, 1), (2, 1));
        for msg in [MessageClass::Request, MessageClass::Reply] {
            check_baseline_routes(&topo, RoutingMode::Min, &rr, msg, 0, 1).unwrap();
        }
    }

    #[test]
    fn min_cdg_acyclic_on_hyperx() {
        use flexvc_topology::HyperX;
        let topo = HyperX::regular(3, 2, 1);
        let arr = Arrangement::generic(3);
        let edges = build_min_cdg(&topo, &arr, MessageClass::Request);
        assert!(!edges.is_empty());
        assert!(is_acyclic(&edges));
    }

    #[test]
    fn min_cdg_is_acyclic() {
        let topo = Dragonfly::balanced(2);
        let arr = Arrangement::dragonfly_min();
        let edges = build_min_cdg(&topo, &arr, MessageClass::Request);
        assert!(!edges.is_empty());
        assert!(is_acyclic(&edges), "baseline MIN CDG must be acyclic");
    }

    #[test]
    fn min_cdg_acyclic_on_flatbf() {
        let topo = FlatButterfly2D::new(4, 1);
        let arr = Arrangement::generic(2);
        let edges = build_min_cdg(&topo, &arr, MessageClass::Request);
        assert!(is_acyclic(&edges));
    }

    /// Priority preserves CDG acyclicity: over random Dragonfly,
    /// Dragonfly+ and HyperX shapes with random VC budgets and random
    /// control partitions, every partition `SimConfig::validate` accepts
    /// yields per-class sub-arrangements whose combined minimal
    /// dependency graph (the disjoint union — strict priority adds no
    /// cross-class buffer edges) is acyclic, and whose per-class minimal
    /// routes occupy strictly increasing positions.
    #[test]
    fn qos_partition_min_cdg_acyclic_on_random_shapes() {
        use crate::config::{QosConfig, SimConfig};
        use flexvc_core::TrafficClass;
        use flexvc_traffic::{Pattern, Workload};

        let mut rng = SmallRng::seed_from_u64(33);
        let workload = || Workload::oblivious(Pattern::Uniform).with_mix(0.1);
        let mut accepted = 0;
        let mut attempts = 0;
        while accepted < 12 {
            attempts += 1;
            assert!(
                attempts < 2_000,
                "random shapes almost never validate ({accepted}/12 after {attempts})"
            );
            let (base, l, g) = match rng.gen_range(0..3u32) {
                0 => {
                    let h = rng.gen_range(2..4usize);
                    (
                        SimConfig::dragonfly_baseline(h, RoutingMode::Min, workload()),
                        rng.gen_range(2..6usize),
                        rng.gen_range(1..3usize),
                    )
                }
                1 => {
                    let groups = [3, 5][rng.gen_range(0..2usize)];
                    (
                        SimConfig::dfplus_baseline(2, 2, 1, groups, RoutingMode::Min, workload()),
                        rng.gen_range(2..6usize),
                        rng.gen_range(1..3usize),
                    )
                }
                _ => {
                    let n = rng.gen_range(2..4usize);
                    let s = rng.gen_range(2..4usize);
                    // All HyperX links are Local-class: the whole budget
                    // is the local one.
                    (
                        SimConfig::hyperx_baseline(n, s, 1, RoutingMode::Min, workload()),
                        rng.gen_range(2..7usize),
                        0,
                    )
                }
            };
            let arr = if g == 0 {
                Arrangement::generic(l)
            } else {
                Arrangement::dragonfly(l, g)
            };
            let cl = rng.gen_range(0..l + 1);
            let cg = rng.gen_range(0..g + 1);
            let cfg = base
                .with_flexvc(arr)
                .with_qos(QosConfig::partitioned(cl, cg));
            if cfg.validate().is_err() {
                continue;
            }
            accepted += 1;
            let ctrl = cfg.qos_sub_arrangement(TrafficClass::Control).unwrap();
            let bulk = cfg.qos_sub_arrangement(TrafficClass::Bulk).unwrap();
            let topo = cfg.topology.build();
            let edges = build_qos_min_cdg(&*topo, &ctrl, &bulk)
                .unwrap_or_else(|e| panic!("{:?}: {e}", cfg.topology));
            assert!(!edges.is_empty(), "{:?}: degenerate CDG", cfg.topology);
            assert!(
                is_acyclic(&edges),
                "{:?}: partitioned QoS CDG cyclic (control {ctrl}, bulk {bulk})",
                cfg.topology
            );
        }
    }

    #[test]
    fn cycle_detector_detects_cycles() {
        let a = (0, 0, 0);
        let b = (1, 0, 0);
        let c = (2, 0, 0);
        assert!(is_acyclic(&[(a, b), (b, c)]));
        assert!(!is_acyclic(&[(a, b), (b, c), (c, a)]));
    }
}
