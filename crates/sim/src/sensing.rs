//! Piggyback congestion sensing (paper §II "PB and source adaptive
//! routing", §III-D, §V-C).
//!
//! Every router measures the occupancy of its global output ports (mirrored
//! by its credit counters), marks ports *saturated* when they exceed the
//! group-local average by 50% (with a floor of `T` packets to avoid
//! flapping at idle), and shares the flags with the routers of its group.
//! Sharing is modelled by a per-group double-buffered board swapped every
//! local-link-latency cycles, matching the piggybacked distribution delay.
//!
//! At injection the router routes minimally unless the minimal path's
//! global channel is flagged saturated or the local credit comparison
//! `q_min > 2·q_val + T` prefers the Valiant path (UGAL-style).

use flexvc_core::MessageClass;

/// Per-group saturation board: `flags[router_local][global_port][class]`.
///
/// Writers update `next`; readers see `cur`; the two swap every
/// `swap_period` cycles, so information is between 0 and 2 periods stale.
#[derive(Debug, Clone)]
pub struct GroupBoard {
    cur: Vec<[bool; 2]>,
    next: Vec<[bool; 2]>,
    routers: usize,
    global_ports: usize,
    swap_period: u64,
    last_swap: u64,
}

impl GroupBoard {
    /// Board for `routers` routers with `global_ports` global ports each.
    pub fn new(routers: usize, global_ports: usize, swap_period: u64) -> Self {
        let size = routers * global_ports;
        GroupBoard {
            cur: vec![[false; 2]; size],
            next: vec![[false; 2]; size],
            routers,
            global_ports,
            swap_period: swap_period.max(1),
            last_swap: 0,
        }
    }

    #[inline]
    fn idx(&self, router_local: usize, gp: usize) -> usize {
        debug_assert!(router_local < self.routers && gp < self.global_ports);
        router_local * self.global_ports + gp
    }

    /// Publish a router's flag for one of its global ports.
    pub fn publish(&mut self, router_local: usize, gp: usize, class: MessageClass, sat: bool) {
        let i = self.idx(router_local, gp);
        self.next[i][class.index()] = sat;
    }

    /// Read the (delayed) flag of a global port in the group.
    pub fn read(&self, router_local: usize, gp: usize, class: MessageClass) -> bool {
        self.cur[self.idx(router_local, gp)][class.index()]
    }

    /// Advance time; swap buffers when the period elapses.
    pub fn tick(&mut self, now: u64) {
        if now >= self.last_swap + self.swap_period {
            std::mem::swap(&mut self.cur, &mut self.next);
            // Carry current knowledge forward so unwritten entries persist.
            self.next.copy_from_slice(&self.cur);
            self.last_swap = now;
        }
    }
}

/// Saturation rule: occupancy exceeds the average of the router's global
/// ports by 50% *and* at least `floor_phits` (the `T`-packet floor).
pub fn saturated_flags(occ: &[u32], floor_phits: u32) -> Vec<bool> {
    let mut out = Vec::new();
    saturated_flags_into(occ, floor_phits, &mut out);
    out
}

/// [`saturated_flags`] writing into a caller-provided buffer (cleared
/// first), so the per-cycle sensing hot path allocates nothing.
pub fn saturated_flags_into(occ: &[u32], floor_phits: u32, out: &mut Vec<bool>) {
    out.clear();
    if occ.is_empty() {
        return;
    }
    let avg = occ.iter().map(|&o| o as f64).sum::<f64>() / occ.len() as f64;
    out.extend(
        occ.iter()
            .map(|&o| (o as f64) > 1.5 * avg && o >= floor_phits.max(1)),
    );
}

/// UGAL/PB injection decision: take the Valiant path?
///
/// `q_min`/`q_val` are local occupancies (phits) toward the minimal and
/// Valiant next hops; the minimal path is additionally vetoed by its global
/// channel's saturation flag. The rule itself lives with the other pure
/// decision functions in [`flexvc_core::decision`]; this re-export keeps
/// the historical path alive.
pub use flexvc_core::decision::choose_nonminimal;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_needs_both_conditions() {
        // avg = 10; 1.5*avg = 15; floor = 24.
        assert_eq!(
            saturated_flags(&[40, 0, 0, 0], 24),
            vec![true, false, false, false]
        );
        // 40 > 15 but below the floor of 48.
        assert_eq!(
            saturated_flags(&[40, 0, 0, 0], 48),
            vec![false, false, false, false]
        );
        // Balanced load: nothing saturated even when high.
        assert_eq!(saturated_flags(&[100, 100, 100, 100], 24), vec![false; 4]);
    }

    #[test]
    fn empty_occupancies() {
        assert!(saturated_flags(&[], 24).is_empty());
    }

    #[test]
    fn ugal_decision() {
        assert!(choose_nonminimal(true, 0, 100, 24));
        assert!(!choose_nonminimal(false, 10, 0, 24));
        assert!(choose_nonminimal(false, 25, 0, 24));
        assert!(!choose_nonminimal(false, 48, 12, 24)); // 48 <= 24+24
        assert!(choose_nonminimal(false, 49, 12, 24));
    }

    #[test]
    fn board_delays_visibility() {
        let mut b = GroupBoard::new(2, 2, 10);
        b.publish(1, 0, MessageClass::Request, true);
        assert!(!b.read(1, 0, MessageClass::Request), "not visible yet");
        b.tick(5);
        assert!(!b.read(1, 0, MessageClass::Request), "period not elapsed");
        b.tick(10);
        assert!(b.read(1, 0, MessageClass::Request), "visible after swap");
        // Knowledge persists across swaps without re-publishing.
        b.tick(20);
        assert!(b.read(1, 0, MessageClass::Request));
        // Clearing propagates too.
        b.publish(1, 0, MessageClass::Request, false);
        b.tick(30);
        assert!(!b.read(1, 0, MessageClass::Request));
    }

    #[test]
    fn board_classes_are_independent() {
        let mut b = GroupBoard::new(1, 1, 1);
        b.publish(0, 0, MessageClass::Reply, true);
        b.tick(1);
        assert!(b.read(0, 0, MessageClass::Reply));
        assert!(!b.read(0, 0, MessageClass::Request));
    }
}
