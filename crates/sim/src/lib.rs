//! # flexvc-sim — cycle-accurate phit-level network simulator
//!
//! The evaluation substrate of this FlexVC reproduction: a from-scratch
//! equivalent of the FOGSim simulator used by the paper (Fuentes et al.,
//! IPDPS 2017, §IV). It models:
//!
//! * combined input-output-buffered routers with per-VC input banks
//!   (statically partitioned or DAMQ with private reservations), 32-phit
//!   output buffers, an iterative input-first separable allocator with
//!   round-robin arbiters, a 5-cycle pipeline and 2× crossbar speedup;
//! * credit-based virtual cut-through flow control with phit-accurate link
//!   serialization (10-cycle local, 100-cycle global latencies) and
//!   credit-return delays;
//! * every VC-management policy of the paper — the baseline distance-based
//!   scheme, FlexVC (safe + opportunistic hops with reversion), and
//!   FlexVC-minCred (split min/non-min credit accounting);
//! * routing: MIN, Valiant-node, PAR (in-transit divert) and Piggyback
//!   source-adaptive routing with per-port / per-VC congestion sensing;
//! * traffic: UN / ADV+1 / BURSTY-UN patterns, optionally request–reply
//!   reactive;
//! * separate request/reply consumption channels, injection queues with
//!   source-drop accounting, a forward-progress watchdog that *detects*
//!   deadlock (used to reproduce Fig. 10's DAMQ deadlock), and a parallel
//!   sweep runner.
//!
//! Entry points: [`SimConfig`] → [`Network`] → [`SimResult`], or the
//! higher-level [`runner`] helpers for sweeps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbiter;
pub mod bank;
pub mod builder;
pub mod cdg;
pub mod config;
pub mod engine;
pub mod equivalence;
pub mod error;
pub mod link;
pub mod metrics;
pub mod packet;
pub mod plan;
pub mod runner;
pub mod sensing;
pub mod serde_impls;
pub mod shard;

pub use builder::SimConfigBuilder;
pub use config::{
    paper_routing_for, BufferConfig, BufferOrg, BufferSizing, ClassVcMap, QosConfig, SensingConfig,
    SensingMode, SimConfig, TopologySpec,
};
pub use engine::Network;
pub use error::{ConfigError, RunError};
pub use metrics::{Metrics, SimResult};
pub use runner::{
    load_sweep, run_averaged, run_one, run_points, run_points_with_progress,
    run_points_with_threads, saturation_throughput, Point, PointProgress,
};
pub use shard::{ShardStats, ShardedNetwork};

/// Common imports for examples and experiment binaries.
pub mod prelude {
    pub use crate::builder::SimConfigBuilder;
    pub use crate::config::{
        paper_routing_for, BufferConfig, BufferOrg, BufferSizing, ClassVcMap, QosConfig,
        SensingConfig, SensingMode, SimConfig, TopologySpec,
    };
    pub use crate::engine::Network;
    pub use crate::error::{ConfigError, RunError};
    pub use crate::metrics::SimResult;
    pub use crate::runner::{
        load_sweep, run_averaged, run_one, run_points, run_points_with_progress,
        run_points_with_threads, saturation_throughput, Point, PointProgress,
    };
    pub use crate::shard::{ShardStats, ShardedNetwork};
}
