//! Input buffer banks and their upstream credit mirrors.
//!
//! The same [`Occupancy`] accounting is used for the physical bank at the
//! downstream router and for the credit counters at the upstream router, so
//! the two views can never disagree about whether a packet fits — the
//! essential property of credit-based flow control.
//!
//! Two organizations are modelled (paper §II, Fig. 2):
//!
//! * **Statically partitioned** — every VC owns a private FIFO of fixed
//!   capacity.
//! * **DAMQ** — the port's memory is a shared pool with a per-VC private
//!   reservation. A VC may always use its reservation; beyond it, phits
//!   consume the shared pool. With 0% private reservation a single VC can
//!   absorb the whole port and deadlock the network (Fig. 10); the paper's
//!   reference DAMQ reserves 75% privately.

use crate::packet::Packet;
use flexvc_core::{CreditClass, SplitOccupancy};
use std::collections::VecDeque;

/// Pure occupancy accounting for one port's VCs (static or DAMQ).
#[derive(Debug, Clone)]
pub struct Occupancy {
    /// Phits resident per VC.
    occ: Vec<u32>,
    /// Private reservation per VC (equals per-VC capacity for static banks).
    resv: Vec<u32>,
    /// Shared pool capacity (0 for static banks).
    shared_cap: u32,
    /// Per-routing-type split per VC (minCred).
    split: Vec<SplitOccupancy>,
}

impl Occupancy {
    /// Statically partitioned: `vcs` private FIFOs of `per_vc` phits.
    pub fn new_static(vcs: usize, per_vc: u32) -> Self {
        Occupancy {
            occ: vec![0; vcs],
            resv: vec![per_vc; vcs],
            shared_cap: 0,
            split: vec![SplitOccupancy::new(); vcs],
        }
    }

    /// DAMQ: total port memory `total`, of which `private_per_vc` phits are
    /// reserved for each of the `vcs` VCs and the remainder is shared.
    pub fn new_damq(vcs: usize, total: u32, private_per_vc: u32) -> Self {
        let reserved = private_per_vc * vcs as u32;
        assert!(
            reserved <= total,
            "private reservation {reserved} exceeds port memory {total}"
        );
        Occupancy {
            occ: vec![0; vcs],
            resv: vec![private_per_vc; vcs],
            shared_cap: total - reserved,
            split: vec![SplitOccupancy::new(); vcs],
        }
    }

    /// Number of VCs.
    pub fn vcs(&self) -> usize {
        self.occ.len()
    }

    /// Shared-pool phits currently in use.
    fn shared_used(&self) -> u32 {
        self.occ
            .iter()
            .zip(&self.resv)
            .map(|(&o, &r)| o.saturating_sub(r))
            .sum()
    }

    /// Can `size` phits enter VC `vc` right now?
    pub fn can_accept(&self, vc: usize, size: u32) -> bool {
        let new_occ = self.occ[vc] + size;
        let new_over = new_occ.saturating_sub(self.resv[vc]);
        let others: u32 = self
            .occ
            .iter()
            .zip(&self.resv)
            .enumerate()
            .filter(|(i, _)| *i != vc)
            .map(|(_, (&o, &r))| o.saturating_sub(r))
            .sum();
        others + new_over <= self.shared_cap
    }

    /// Free space available to VC `vc` (private headroom plus remaining
    /// shared pool) — the JSQ metric.
    pub fn free_for(&self, vc: usize) -> u32 {
        let private_head = self.resv[vc].saturating_sub(self.occ[vc]);
        let shared_free = self.shared_cap - self.shared_used();
        private_head + shared_free
    }

    /// Record `size` phits entering VC `vc`.
    pub fn add(&mut self, vc: usize, size: u32, class: CreditClass) {
        debug_assert!(self.can_accept(vc, size), "overflow on VC {vc}");
        self.occ[vc] += size;
        self.split[vc].add(class, size);
    }

    /// Record `size` phits leaving VC `vc`.
    pub fn remove(&mut self, vc: usize, size: u32, class: CreditClass) {
        debug_assert!(self.occ[vc] >= size, "underflow on VC {vc}");
        self.occ[vc] -= size;
        self.split[vc].remove(class, size);
    }

    /// Phits resident in VC `vc`.
    pub fn occupancy(&self, vc: usize) -> u32 {
        self.occ[vc]
    }

    /// Total phits resident in the port.
    pub fn total(&self) -> u32 {
        self.occ.iter().sum()
    }

    /// Min/non-min split of VC `vc` (minCred sensing).
    pub fn split(&self, vc: usize) -> &SplitOccupancy {
        &self.split[vc]
    }

    /// Aggregated min/non-min split over the whole port.
    pub fn split_total(&self) -> SplitOccupancy {
        let mut s = SplitOccupancy::new();
        for v in &self.split {
            s.merge(v);
        }
        s
    }
}

/// A physical input bank: occupancy accounting plus per-VC packet queues.
#[derive(Debug)]
pub struct BufferBank {
    /// Occupancy view (identical accounting to the upstream mirror).
    pub occ: Occupancy,
    /// Per-VC FIFO of resident packets.
    pub queues: Vec<VecDeque<Packet>>,
}

impl BufferBank {
    /// Build a bank around an occupancy model.
    pub fn new(occ: Occupancy) -> Self {
        let queues = (0..occ.vcs()).map(|_| VecDeque::new()).collect();
        BufferBank { occ, queues }
    }

    /// Enqueue an arriving packet into VC `vc` (space was guaranteed by the
    /// upstream credit check). Stamps the packet's `buffered_class` so the
    /// eventual release matches this add even if the packet's routing type
    /// changes while buffered.
    pub fn push(&mut self, vc: usize, mut pkt: Packet) {
        pkt.buffered_class = pkt.credit_class();
        let class = pkt.buffered_class;
        self.occ.add(vc, pkt.size, class);
        self.queues[vc].push_back(pkt);
    }

    /// Head packet of VC `vc`.
    pub fn head(&self, vc: usize) -> Option<&Packet> {
        self.queues[vc].front()
    }

    /// Mutable head packet of VC `vc`.
    pub fn head_mut(&mut self, vc: usize) -> Option<&mut Packet> {
        self.queues[vc].front_mut()
    }

    /// Dequeue the head of VC `vc`. Occupancy is *not* released here — the
    /// phits drain over the transfer duration; the caller schedules the
    /// release at transfer completion.
    pub fn pop(&mut self, vc: usize) -> Packet {
        self.queues[vc].pop_front().expect("pop on empty VC")
    }

    /// Release `size` phits of VC `vc` after the transfer completes.
    pub fn release(&mut self, vc: usize, size: u32, class: CreditClass) {
        self.occ.remove(vc, size, class);
    }

    /// Number of VCs.
    pub fn vcs(&self) -> usize {
        self.queues.len()
    }

    /// Total queued packets across VCs (diagnostics).
    pub fn queued_packets(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use CreditClass::*;

    #[test]
    fn static_bank_private_capacity() {
        let mut o = Occupancy::new_static(2, 32);
        assert!(o.can_accept(0, 32));
        assert!(!o.can_accept(0, 33));
        o.add(0, 32, MinRouted);
        assert!(!o.can_accept(0, 8));
        assert!(o.can_accept(1, 32), "VC1 unaffected by VC0 fill");
        assert_eq!(o.free_for(0), 0);
        assert_eq!(o.free_for(1), 32);
        o.remove(0, 8, MinRouted);
        assert!(o.can_accept(0, 8));
        assert_eq!(o.total(), 24);
    }

    #[test]
    fn damq_shares_pool() {
        // 2 VCs, 64 total, 16 private each => 32 shared.
        let mut o = Occupancy::new_damq(2, 64, 16);
        // VC0 can take its 16 private + all 32 shared.
        assert!(o.can_accept(0, 48));
        assert!(!o.can_accept(0, 49));
        o.add(0, 48, MinRouted);
        // VC1 still has its private 16, but no shared.
        assert!(o.can_accept(1, 16));
        assert!(!o.can_accept(1, 17));
        assert_eq!(o.free_for(1), 16);
    }

    #[test]
    fn damq_zero_private_lets_one_vc_hog_everything() {
        let mut o = Occupancy::new_damq(2, 64, 0);
        o.add(0, 64, NonMinRouted);
        // The pathological state behind Fig. 10's deadlock:
        assert!(!o.can_accept(1, 8));
        assert_eq!(o.free_for(1), 0);
    }

    #[test]
    fn damq_full_private_equals_static() {
        let damq = Occupancy::new_damq(2, 64, 32);
        let stat = Occupancy::new_static(2, 32);
        for vc in 0..2 {
            for size in [1, 8, 32, 33] {
                assert_eq!(damq.can_accept(vc, size), stat.can_accept(vc, size));
            }
            assert_eq!(damq.free_for(vc), stat.free_for(vc));
        }
    }

    #[test]
    fn mincred_split_tracks_classes() {
        let mut o = Occupancy::new_static(1, 64);
        o.add(0, 8, MinRouted);
        o.add(0, 16, NonMinRouted);
        assert_eq!(o.split(0).min_occupancy(), 8);
        assert_eq!(o.split(0).nonmin_occupancy(), 16);
        assert_eq!(o.split_total().total(), 24);
        o.remove(0, 8, NonMinRouted);
        assert_eq!(o.split(0).nonmin_occupancy(), 8);
    }

    #[test]
    #[should_panic(expected = "exceeds port memory")]
    fn damq_overreservation_rejected() {
        let _ = Occupancy::new_damq(4, 64, 32);
    }

    fn mk_packet(id: u64, size: u32) -> Packet {
        use crate::packet::PlannedPath;
        Packet {
            id,
            src: 0,
            dst: 1,
            dst_router: 0,
            class: flexvc_core::MessageClass::Request,
            size,
            gen_cycle: 0,
            head_arrival: 0,
            tail_arrival: size as u64 - 1,
            position: None,
            plan: PlannedPath::empty(),
            min_routed: true,
            derouted: false,
            buffered_class: CreditClass::MinRouted,
            planned: true,
            par_evaluated: false,
            opp_blocked: 0,
            hops: 0,
            reverts: 0,
        }
    }

    #[test]
    fn bank_push_pop_release() {
        let mut bank = BufferBank::new(Occupancy::new_static(2, 32));
        bank.push(0, mk_packet(1, 8));
        bank.push(0, mk_packet(2, 8));
        assert_eq!(bank.head(0).unwrap().id, 1);
        assert_eq!(bank.occ.occupancy(0), 16);
        let p = bank.pop(0);
        assert_eq!(p.id, 1);
        // Occupancy stays until the transfer completes.
        assert_eq!(bank.occ.occupancy(0), 16);
        bank.release(0, 8, MinRouted);
        assert_eq!(bank.occ.occupancy(0), 8);
        assert_eq!(bank.head(0).unwrap().id, 2);
        assert_eq!(bank.queued_packets(), 1);
    }
}
