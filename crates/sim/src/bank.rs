//! Input buffer banks and their upstream credit mirrors.
//!
//! The same [`Occupancy`] accounting is used for the physical bank at the
//! downstream router and for the credit counters at the upstream router, so
//! the two views can never disagree about whether a packet fits — the
//! essential property of credit-based flow control.
//!
//! Two organizations are modelled (paper §II, Fig. 2):
//!
//! * **Statically partitioned** — every VC owns a private FIFO of fixed
//!   capacity.
//! * **DAMQ** — the port's memory is a shared pool with a per-VC private
//!   reservation. A VC may always use its reservation; beyond it, phits
//!   consume the shared pool. With 0% private reservation a single VC can
//!   absorb the whole port and deadlock the network (Fig. 10); the paper's
//!   reference DAMQ reserves 75% privately.

use crate::packet::Packet;
use flexvc_core::{CreditClass, SplitOccupancy};

/// Pure occupancy accounting for one port's VCs (static or DAMQ).
#[derive(Debug, Clone)]
pub struct Occupancy {
    /// Phits resident per VC.
    occ: Vec<u32>,
    /// Private reservation per VC (equals per-VC capacity for static banks).
    resv: Vec<u32>,
    /// Shared pool capacity (0 for static banks).
    shared_cap: u32,
    /// Per-routing-type split per VC (minCred).
    split: Vec<SplitOccupancy>,
    /// Probe size registered via [`Occupancy::register_probe`] (0 when the
    /// ready mask is not maintained).
    probe: u32,
    /// Bit `v` set iff `can_accept(v, probe)` — maintained incrementally by
    /// `add`/`remove`, valid only while `probe != 0`.
    ready: u32,
}

impl Occupancy {
    /// Statically partitioned: `vcs` private FIFOs of `per_vc` phits.
    pub fn new_static(vcs: usize, per_vc: u32) -> Self {
        Occupancy {
            occ: vec![0; vcs],
            resv: vec![per_vc; vcs],
            shared_cap: 0,
            split: vec![SplitOccupancy::new(); vcs],
            probe: 0,
            ready: 0,
        }
    }

    /// DAMQ: total port memory `total`, of which `private_per_vc` phits are
    /// reserved for each of the `vcs` VCs and the remainder is shared.
    pub fn new_damq(vcs: usize, total: u32, private_per_vc: u32) -> Self {
        let reserved = private_per_vc * vcs as u32;
        assert!(
            reserved <= total,
            "private reservation {reserved} exceeds port memory {total}"
        );
        Occupancy {
            occ: vec![0; vcs],
            resv: vec![private_per_vc; vcs],
            shared_cap: total - reserved,
            split: vec![SplitOccupancy::new(); vcs],
            probe: 0,
            ready: 0,
        }
    }

    /// Number of VCs.
    pub fn vcs(&self) -> usize {
        self.occ.len()
    }

    /// Shared-pool phits currently in use.
    fn shared_used(&self) -> u32 {
        self.occ
            .iter()
            .zip(&self.resv)
            .map(|(&o, &r)| o.saturating_sub(r))
            .sum()
    }

    /// Can `size` phits enter VC `vc` right now?
    pub fn can_accept(&self, vc: usize, size: u32) -> bool {
        // Static banks (no shared pool) keep `occ <= resv` per VC, so the
        // general shared-overflow scan below reduces to one comparison —
        // this is the allocator's hottest check.
        if self.shared_cap == 0 {
            return self.occ[vc] + size <= self.resv[vc];
        }
        let new_occ = self.occ[vc] + size;
        let new_over = new_occ.saturating_sub(self.resv[vc]);
        let others: u32 = self
            .occ
            .iter()
            .zip(&self.resv)
            .enumerate()
            .filter(|(i, _)| *i != vc)
            .map(|(_, (&o, &r))| o.saturating_sub(r))
            .sum();
        others + new_over <= self.shared_cap
    }

    /// Free space available to VC `vc` (private headroom plus remaining
    /// shared pool) — the JSQ metric.
    pub fn free_for(&self, vc: usize) -> u32 {
        let private_head = self.resv[vc].saturating_sub(self.occ[vc]);
        if self.shared_cap == 0 {
            return private_head;
        }
        let shared_free = self.shared_cap - self.shared_used();
        private_head + shared_free
    }

    /// Maintain a ready-VC bitmask for a fixed probe size: after this call
    /// (and incrementally across every `add`/`remove`),
    /// [`Occupancy::ready_mask`] has bit `v` set iff
    /// `can_accept(v, probe)`. Only meaningful for static banks — DAMQ
    /// admission depends on the *other* VCs' shared-pool use, so a per-VC
    /// bit cannot be maintained by that VC's mutations alone — and banks of
    /// at most 32 VCs; the call is a no-op otherwise and `ready_mask` keeps
    /// reporting `None`.
    pub fn register_probe(&mut self, probe: u32) {
        if self.shared_cap != 0 || self.occ.len() > 32 || probe == 0 {
            return;
        }
        self.probe = probe;
        self.ready = 0;
        for vc in 0..self.occ.len() {
            if self.occ[vc] + probe <= self.resv[vc] {
                self.ready |= 1 << vc;
            }
        }
    }

    /// The maintained ready-VC bitmask (bit `v` iff the registered probe
    /// size fits VC `v`), or `None` when no probe is registered.
    #[inline]
    pub fn ready_mask(&self) -> Option<u32> {
        (self.probe != 0).then_some(self.ready)
    }

    /// Re-derive VC `vc`'s ready bit after an occupancy mutation.
    #[inline]
    fn refresh_ready(&mut self, vc: usize) {
        if self.probe != 0 {
            let bit = 1u32 << vc;
            if self.occ[vc] + self.probe <= self.resv[vc] {
                self.ready |= bit;
            } else {
                self.ready &= !bit;
            }
        }
    }

    /// Record `size` phits entering VC `vc`.
    pub fn add(&mut self, vc: usize, size: u32, class: CreditClass) {
        debug_assert!(self.can_accept(vc, size), "overflow on VC {vc}");
        self.occ[vc] += size;
        self.split[vc].add(class, size);
        self.refresh_ready(vc);
    }

    /// Record `size` phits leaving VC `vc`.
    pub fn remove(&mut self, vc: usize, size: u32, class: CreditClass) {
        debug_assert!(self.occ[vc] >= size, "underflow on VC {vc}");
        self.occ[vc] -= size;
        self.split[vc].remove(class, size);
        self.refresh_ready(vc);
    }

    /// Phits resident in VC `vc`.
    pub fn occupancy(&self, vc: usize) -> u32 {
        self.occ[vc]
    }

    /// Total phits resident in the port.
    pub fn total(&self) -> u32 {
        self.occ.iter().sum()
    }

    /// Min/non-min split of VC `vc` (minCred sensing).
    pub fn split(&self, vc: usize) -> &SplitOccupancy {
        &self.split[vc]
    }

    /// Aggregated min/non-min split over the whole port.
    pub fn split_total(&self) -> SplitOccupancy {
        let mut s = SplitOccupancy::new();
        for v in &self.split {
            s.merge(v);
        }
        s
    }
}

/// Sentinel for "no slot" in the intrusive FIFO links.
const NIL: u32 = u32::MAX;

/// A physical input bank: occupancy accounting plus per-VC packet FIFOs.
///
/// The FIFOs are flattened into one index-based pool per bank (a packet
/// slab plus intrusive `next` links and per-VC head/tail cursors) instead
/// of a `Vec<VecDeque<Packet>>`: pushes and pops are O(1) slot relinks with
/// no per-VC ring buffers, freed slots are recycled through a free list,
/// and after warm-up the slab stops allocating entirely — the property the
/// active-set engine relies on for allocation-free steady-state cycles.
#[derive(Debug)]
pub struct BufferBank {
    /// Occupancy view (identical accounting to the upstream mirror).
    pub occ: Occupancy,
    /// Packet slab; `None` marks a free slot.
    slots: Vec<Option<Packet>>,
    /// Intrusive FIFO links over `slots`.
    next: Vec<u32>,
    /// Recycled slot indices.
    free: Vec<u32>,
    /// Per-VC FIFO head slot.
    head: Vec<u32>,
    /// Per-VC FIFO tail slot.
    tail: Vec<u32>,
    /// Per-VC queue length.
    len: Vec<u32>,
    /// Total queued packets (hot-path skip test for the allocator).
    total: u32,
}

impl BufferBank {
    /// Build a bank around an occupancy model.
    pub fn new(occ: Occupancy) -> Self {
        Self::with_packet_capacity(occ, 0)
    }

    /// Build a bank with the slab preallocated for `packets` resident
    /// packets (the engine passes the port capacity in packets so the
    /// steady state never reallocates).
    pub fn with_packet_capacity(occ: Occupancy, packets: usize) -> Self {
        let vcs = occ.vcs();
        BufferBank {
            occ,
            slots: Vec::with_capacity(packets),
            next: Vec::with_capacity(packets),
            free: Vec::new(),
            head: vec![NIL; vcs],
            tail: vec![NIL; vcs],
            len: vec![0; vcs],
            total: 0,
        }
    }

    /// Enqueue an arriving packet into VC `vc` (space was guaranteed by the
    /// upstream credit check). Stamps the packet's `buffered_class` so the
    /// eventual release matches this add even if the packet's routing type
    /// changes while buffered.
    pub fn push(&mut self, vc: usize, mut pkt: Packet) {
        pkt.buffered_class = pkt.credit_class();
        // New buffer, new position: any cached lookahead is stale, and the
        // per-router transit decision (DAL / adaptive copies) re-arms.
        pkt.flex_opts = None;
        pkt.hop_decided = false;
        let class = pkt.buffered_class;
        self.occ.add(vc, pkt.size, class);
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(pkt);
                self.next[s as usize] = NIL;
                s
            }
            None => {
                let s = self.slots.len() as u32;
                self.slots.push(Some(pkt));
                self.next.push(NIL);
                s
            }
        };
        if self.tail[vc] == NIL {
            self.head[vc] = slot;
        } else {
            self.next[self.tail[vc] as usize] = slot;
        }
        self.tail[vc] = slot;
        self.len[vc] += 1;
        self.total += 1;
    }

    /// Head packet of VC `vc`.
    pub fn head(&self, vc: usize) -> Option<&Packet> {
        match self.head[vc] {
            NIL => None,
            s => self.slots[s as usize].as_ref(),
        }
    }

    /// Mutable head packet of VC `vc`.
    pub fn head_mut(&mut self, vc: usize) -> Option<&mut Packet> {
        match self.head[vc] {
            NIL => None,
            s => self.slots[s as usize].as_mut(),
        }
    }

    /// Dequeue the head of VC `vc`. Occupancy is *not* released here — the
    /// phits drain over the transfer duration; the caller schedules the
    /// release at transfer completion.
    pub fn pop(&mut self, vc: usize) -> Packet {
        let s = self.head[vc];
        assert_ne!(s, NIL, "pop on empty VC");
        let s = s as usize;
        self.head[vc] = self.next[s];
        if self.head[vc] == NIL {
            self.tail[vc] = NIL;
        }
        self.len[vc] -= 1;
        self.total -= 1;
        self.free.push(s as u32);
        self.slots[s].take().expect("occupied slot")
    }

    /// Release `size` phits of VC `vc` after the transfer completes.
    pub fn release(&mut self, vc: usize, size: u32, class: CreditClass) {
        self.occ.remove(vc, size, class);
    }

    /// Number of VCs.
    pub fn vcs(&self) -> usize {
        self.head.len()
    }

    /// Queued packets in VC `vc` (the active-set engine's skip test).
    pub fn vc_len(&self, vc: usize) -> usize {
        self.len[vc] as usize
    }

    /// Total queued packets across VCs (O(1); the allocator's port-level
    /// skip test).
    pub fn queued_packets(&self) -> usize {
        debug_assert_eq!(
            self.total as usize,
            self.len.iter().map(|&l| l as usize).sum::<usize>()
        );
        self.total as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use CreditClass::*;

    #[test]
    fn static_bank_private_capacity() {
        let mut o = Occupancy::new_static(2, 32);
        assert!(o.can_accept(0, 32));
        assert!(!o.can_accept(0, 33));
        o.add(0, 32, MinRouted);
        assert!(!o.can_accept(0, 8));
        assert!(o.can_accept(1, 32), "VC1 unaffected by VC0 fill");
        assert_eq!(o.free_for(0), 0);
        assert_eq!(o.free_for(1), 32);
        o.remove(0, 8, MinRouted);
        assert!(o.can_accept(0, 8));
        assert_eq!(o.total(), 24);
    }

    #[test]
    fn damq_shares_pool() {
        // 2 VCs, 64 total, 16 private each => 32 shared.
        let mut o = Occupancy::new_damq(2, 64, 16);
        // VC0 can take its 16 private + all 32 shared.
        assert!(o.can_accept(0, 48));
        assert!(!o.can_accept(0, 49));
        o.add(0, 48, MinRouted);
        // VC1 still has its private 16, but no shared.
        assert!(o.can_accept(1, 16));
        assert!(!o.can_accept(1, 17));
        assert_eq!(o.free_for(1), 16);
    }

    #[test]
    fn damq_zero_private_lets_one_vc_hog_everything() {
        let mut o = Occupancy::new_damq(2, 64, 0);
        o.add(0, 64, NonMinRouted);
        // The pathological state behind Fig. 10's deadlock:
        assert!(!o.can_accept(1, 8));
        assert_eq!(o.free_for(1), 0);
    }

    #[test]
    fn damq_full_private_equals_static() {
        let damq = Occupancy::new_damq(2, 64, 32);
        let stat = Occupancy::new_static(2, 32);
        for vc in 0..2 {
            for size in [1, 8, 32, 33] {
                assert_eq!(damq.can_accept(vc, size), stat.can_accept(vc, size));
            }
            assert_eq!(damq.free_for(vc), stat.free_for(vc));
        }
    }

    #[test]
    fn mincred_split_tracks_classes() {
        let mut o = Occupancy::new_static(1, 64);
        o.add(0, 8, MinRouted);
        o.add(0, 16, NonMinRouted);
        assert_eq!(o.split(0).min_occupancy(), 8);
        assert_eq!(o.split(0).nonmin_occupancy(), 16);
        assert_eq!(o.split_total().total(), 24);
        o.remove(0, 8, NonMinRouted);
        assert_eq!(o.split(0).nonmin_occupancy(), 8);
    }

    #[test]
    #[should_panic(expected = "exceeds port memory")]
    fn damq_overreservation_rejected() {
        let _ = Occupancy::new_damq(4, 64, 32);
    }

    fn mk_packet(id: u64, size: u32) -> Packet {
        use crate::packet::PlannedPath;
        Packet {
            id,
            src: 0,
            dst: 1,
            dst_router: 0,
            class: flexvc_core::MessageClass::Request,
            tclass: flexvc_core::TrafficClass::Bulk,
            size,
            gen_cycle: 0,
            head_arrival: 0,
            tail_arrival: size as u64 - 1,
            position: None,
            plan: PlannedPath::empty(),
            min_routed: true,
            derouted: false,
            buffered_class: CreditClass::MinRouted,
            planned: true,
            par_evaluated: false,
            hop_decided: false,
            flex_opts: None,
            opp_blocked: 0,
            hops: 0,
            reverts: 0,
        }
    }

    #[test]
    fn bank_push_pop_release() {
        let mut bank = BufferBank::new(Occupancy::new_static(2, 32));
        bank.push(0, mk_packet(1, 8));
        bank.push(0, mk_packet(2, 8));
        assert_eq!(bank.head(0).unwrap().id, 1);
        assert_eq!(bank.occ.occupancy(0), 16);
        let p = bank.pop(0);
        assert_eq!(p.id, 1);
        // Occupancy stays until the transfer completes.
        assert_eq!(bank.occ.occupancy(0), 16);
        bank.release(0, 8, MinRouted);
        assert_eq!(bank.occ.occupancy(0), 8);
        assert_eq!(bank.head(0).unwrap().id, 2);
        assert_eq!(bank.queued_packets(), 1);
        assert_eq!(bank.vc_len(0), 1);
        assert_eq!(bank.vc_len(1), 0);
    }

    #[test]
    fn slab_interleaves_vcs_and_recycles_slots() {
        // Two VCs share one slab; FIFO order per VC must survive arbitrary
        // interleaving and slot reuse.
        let mut bank = BufferBank::with_packet_capacity(Occupancy::new_static(2, 64), 8);
        for round in 0u64..50 {
            bank.push(0, mk_packet(round * 10 + 1, 8));
            bank.push(1, mk_packet(round * 10 + 2, 8));
            bank.push(0, mk_packet(round * 10 + 3, 8));
            assert_eq!(bank.head(0).unwrap().id, round * 10 + 1);
            assert_eq!(bank.head(1).unwrap().id, round * 10 + 2);
            assert_eq!(bank.pop(0).id, round * 10 + 1);
            assert_eq!(bank.pop(0).id, round * 10 + 3);
            assert_eq!(bank.pop(1).id, round * 10 + 2);
            bank.release(0, 16, MinRouted);
            bank.release(1, 8, MinRouted);
            assert_eq!(bank.queued_packets(), 0);
            assert!(bank.head(0).is_none() && bank.head(1).is_none());
        }
        // The slab never grew past the peak resident count.
        assert!(bank.slots.len() <= 3, "slab grew: {}", bank.slots.len());
    }

    #[test]
    #[should_panic(expected = "pop on empty VC")]
    fn pop_empty_vc_panics() {
        let mut bank = BufferBank::new(Occupancy::new_static(1, 32));
        let _ = bank.pop(0);
    }
}
