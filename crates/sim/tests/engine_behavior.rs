//! Behavioural tests of the simulation engine at tiny scale.
//!
//! These exercise the full stack (topology → traffic → routing → router
//! microarchitecture → metrics) on an h=2 Dragonfly with short windows so
//! they stay fast in debug builds. The quantitative paper-shape checks live
//! in the workspace-level integration tests (run in release).

use flexvc_core::{Arrangement, RoutingMode, VcPolicy, VcSelection};
use flexvc_sim::prelude::*;
use flexvc_traffic::{Pattern, Workload};

fn base(routing: RoutingMode, pattern: Pattern) -> SimConfig {
    let mut cfg = SimConfig::dragonfly_baseline(2, routing, Workload::oblivious(pattern));
    cfg.warmup = 1_500;
    cfg.measure = 3_000;
    cfg.watchdog = 8_000;
    cfg
}

#[test]
fn min_uniform_low_load_delivers_offered() {
    let cfg = base(RoutingMode::Min, Pattern::Uniform);
    let r = run_one(&cfg, 0.2, 1).unwrap();
    assert!(!r.deadlocked);
    assert!(
        (r.accepted - 0.2).abs() < 0.03,
        "accepted {} vs offered 0.2",
        r.accepted
    );
    assert_eq!(r.drop_fraction, 0.0, "no drops far below saturation");
    // Zero-load latency sanity: a MIN path crosses at most 1 global
    // (100 cycles) + 2 local links (10 each) + 4 router pipelines + packet
    // serialization; queueing at 0.2 load adds little.
    assert!(r.latency > 30.0, "latency {} too small", r.latency);
    assert!(r.latency < 350.0, "latency {} too large", r.latency);
    // Hierarchical MIN paths are at most 3 hops + ejection.
    assert!(r.avg_hops <= 3.0 + 1e-9, "avg hops {}", r.avg_hops);
    assert_eq!(r.misroute_fraction, 0.0);
}

#[test]
fn results_are_deterministic_per_seed() {
    let cfg = base(RoutingMode::Min, Pattern::Uniform);
    let a = run_one(&cfg, 0.35, 7).unwrap();
    let b = run_one(&cfg, 0.35, 7).unwrap();
    assert_eq!(a.accepted, b.accepted);
    assert_eq!(a.latency, b.latency);
    let c = run_one(&cfg, 0.35, 8).unwrap();
    assert!(
        (a.accepted, a.latency) != (c.accepted, c.latency),
        "different seeds should differ"
    );
}

#[test]
fn flexvc_min_2_1_works() {
    let cfg = base(RoutingMode::Min, Pattern::Uniform).with_flexvc(Arrangement::dragonfly_min());
    let r = run_one(&cfg, 0.2, 1).unwrap();
    assert!(!r.deadlocked);
    assert!((r.accepted - 0.2).abs() < 0.03, "accepted {}", r.accepted);
}

#[test]
fn flexvc_min_exploits_4_2() {
    let cfg = base(RoutingMode::Min, Pattern::Uniform).with_flexvc(Arrangement::dragonfly(4, 2));
    let r = run_one(&cfg, 0.3, 1).unwrap();
    assert!(!r.deadlocked);
    assert!((r.accepted - 0.3).abs() < 0.03, "accepted {}", r.accepted);
}

#[test]
fn valiant_handles_adversarial() {
    // Under ADV+1, minimal routing is capped by the single inter-group
    // global link: a*p nodes share 1 phit/cycle => 1/8 with h=2.
    let min = base(RoutingMode::Min, Pattern::adv1());
    let r_min = run_one(&min, 0.5, 1).unwrap();
    assert!(
        r_min.accepted < 0.20,
        "MIN under ADV should saturate near 0.125, got {}",
        r_min.accepted
    );
    let val = base(RoutingMode::Valiant, Pattern::adv1());
    let r_val = run_one(&val, 0.5, 1).unwrap();
    assert!(!r_val.deadlocked);
    assert!(
        r_val.accepted > r_min.accepted + 0.1,
        "VAL {} must clearly beat MIN {} under ADV",
        r_val.accepted,
        r_min.accepted
    );
    assert!(r_val.misroute_fraction > 0.9, "VAL misroutes everything");
}

#[test]
fn valiant_paths_are_longer() {
    let val = base(RoutingMode::Valiant, Pattern::Uniform);
    let r = run_one(&val, 0.2, 3).unwrap();
    assert!(
        r.avg_hops > 3.0,
        "VAL avg hops {} should exceed MIN",
        r.avg_hops
    );
    assert!(r.avg_hops <= 6.0 + 1e-9);
}

#[test]
fn reactive_traffic_round_trips() {
    let mut cfg =
        SimConfig::dragonfly_baseline(2, RoutingMode::Min, Workload::reactive(Pattern::Uniform));
    cfg.warmup = 2_000;
    cfg.measure = 3_000;
    cfg.watchdog = 8_000;
    let r = run_one(&cfg, 0.3, 1).unwrap();
    assert!(!r.deadlocked);
    assert!((r.accepted - 0.3).abs() < 0.05, "accepted {}", r.accepted);
    assert!(r.latency_rep > 0.0, "replies must flow");
    assert!(r.latency_req > 0.0);
}

#[test]
fn flexvc_reactive_5_3_runs() {
    // The 50%-reduction configuration: 3/2 + 2/1 VCs (paper §III-C).
    let mut cfg =
        SimConfig::dragonfly_baseline(2, RoutingMode::Min, Workload::reactive(Pattern::Uniform))
            .with_flexvc(Arrangement::dragonfly_rr((3, 2), (2, 1)));
    cfg.warmup = 2_000;
    cfg.measure = 3_000;
    cfg.watchdog = 8_000;
    let r = run_one(&cfg, 0.3, 2).unwrap();
    assert!(!r.deadlocked);
    assert!((r.accepted - 0.3).abs() < 0.05, "accepted {}", r.accepted);
}

#[test]
fn damq_without_reservation_deadlocks_at_saturation() {
    // Fig. 10: a fully shared DAMQ lets VC0 absorb whole ports and the
    // VC escape chain wedges. The watchdog must flag it.
    let mut cfg = base(RoutingMode::Min, Pattern::Uniform);
    cfg.buffers.organization = BufferOrg::Damq {
        private_fraction: 0.0,
    };
    cfg.warmup = 2_000;
    cfg.measure = 20_000;
    cfg.watchdog = 4_000;
    let r = run_one(&cfg, 1.0, 1).unwrap();
    assert!(
        r.deadlocked,
        "fully-shared DAMQ should deadlock at saturation (accepted {})",
        r.accepted
    );
}

#[test]
fn damq_75_private_does_not_deadlock() {
    let mut cfg = base(RoutingMode::Min, Pattern::Uniform).with_damq75();
    cfg.measure = 4_000;
    let r = run_one(&cfg, 0.9, 1).unwrap();
    assert!(!r.deadlocked, "75% private DAMQ must be stable");
    assert!(r.accepted > 0.3);
}

#[test]
fn static_buffers_never_deadlock_at_saturation() {
    for policy_flex in [false, true] {
        let mut cfg = base(RoutingMode::Min, Pattern::Uniform);
        if policy_flex {
            cfg = cfg.with_flexvc(Arrangement::dragonfly(4, 2));
        }
        cfg.measure = 4_000;
        let r = run_one(&cfg, 1.0, 5).unwrap();
        assert!(!r.deadlocked, "flex={policy_flex} deadlocked");
        assert!(
            r.accepted > 0.3,
            "flex={policy_flex} accepted {}",
            r.accepted
        );
    }
}

#[test]
fn watchdog_tolerates_saturated_but_draining_network() {
    // Regression guard for the watchdog false-positive fix: a saturated
    // ADV+1 network under MIN is extremely congested (every group funnels
    // into one global link) but alive — grants can be spaced by long
    // credit round trips (~2 x (100 + 10) cycles). Since credit returns
    // and link serialization now count as forward progress, a watchdog of
    // a few credit RTTs must not flag this as a deadlock.
    let mut cfg = base(RoutingMode::Min, Pattern::adv1());
    cfg.warmup = 2_000;
    cfg.measure = 6_000;
    cfg.watchdog = 500;
    let r = run_one(&cfg, 1.0, 1).unwrap();
    assert!(
        !r.deadlocked,
        "saturated-but-draining network misflagged as deadlocked"
    );
    assert!(
        r.accepted > 0.05,
        "network must keep draining, accepted {}",
        r.accepted
    );
    // The genuine-deadlock counterpart lives in
    // `damq_without_reservation_deadlocks_at_saturation`: when nothing
    // moves at all (no grants, no credits), the watchdog must still fire.
}

#[test]
fn credit_returns_count_as_progress() {
    // Direct probe of the fix: while packets are in flight, returning
    // credits alone must refresh `last_progress` even on cycles without
    // any grant or consumption.
    let mut cfg = base(RoutingMode::Min, Pattern::Uniform);
    cfg.warmup = 0;
    cfg.measure = u64::MAX / 2;
    cfg.watchdog = u64::MAX / 2;
    let mut net = Network::new(cfg, 0.4, 3).unwrap();
    for _ in 0..2_000 {
        net.step();
    }
    // In a warmed 0.4-load network some progress source fires essentially
    // every cycle; the gap must stay far below one credit round trip.
    let mut max_gap = 0;
    for _ in 0..2_000 {
        net.step();
        max_gap = max_gap.max(net.cycle().saturating_sub(net.last_progress()));
    }
    assert!(
        max_gap < 110,
        "progress gaps of {max_gap} cycles in a busy network suggest a progress source went missing"
    );
}

#[test]
fn bursty_traffic_flows() {
    let cfg = base(RoutingMode::Min, Pattern::bursty());
    let r = run_one(&cfg, 0.3, 1).unwrap();
    assert!(!r.deadlocked);
    assert!((r.accepted - 0.3).abs() < 0.05, "accepted {}", r.accepted);
}

#[test]
fn piggyback_uniform_routes_mostly_minimal() {
    let cfg = base(RoutingMode::Piggyback, Pattern::Uniform);
    let r = run_one(&cfg, 0.2, 1).unwrap();
    assert!(!r.deadlocked);
    assert!(
        r.misroute_fraction < 0.25,
        "PB at low UN load should stay minimal, misroute {}",
        r.misroute_fraction
    );
}

#[test]
fn piggyback_adversarial_misroutes() {
    let cfg = base(RoutingMode::Piggyback, Pattern::adv1());
    let r = run_one(&cfg, 0.4, 1).unwrap();
    assert!(!r.deadlocked);
    assert!(
        r.misroute_fraction > 0.5,
        "PB under ADV must divert most traffic, misroute {}",
        r.misroute_fraction
    );
    assert!(r.accepted > 0.2, "PB under ADV accepted {}", r.accepted);
}

#[test]
fn par_runs_on_5_2() {
    let cfg = base(RoutingMode::Par, Pattern::adv1());
    let r = run_one(&cfg, 0.3, 1).unwrap();
    assert!(!r.deadlocked);
    assert!(r.accepted > 0.15, "PAR under ADV accepted {}", r.accepted);
}

#[test]
fn selection_functions_all_run() {
    for sel in VcSelection::all() {
        let mut cfg =
            base(RoutingMode::Min, Pattern::Uniform).with_flexvc(Arrangement::dragonfly(4, 2));
        cfg.selection = sel;
        cfg.warmup = 1_000;
        cfg.measure = 2_000;
        let r = run_one(&cfg, 0.4, 1).unwrap();
        assert!(!r.deadlocked, "{sel}");
        assert!(
            (r.accepted - 0.4).abs() < 0.06,
            "{sel}: accepted {}",
            r.accepted
        );
    }
}

#[test]
fn flatbutterfly_generic_network_runs() {
    let mut cfg =
        SimConfig::dragonfly_baseline(2, RoutingMode::Min, Workload::oblivious(Pattern::Uniform));
    cfg.topology = TopologySpec::FlatButterfly { k: 4, p: 2 };
    cfg.arrangement = Arrangement::generic(2);
    cfg.warmup = 1_000;
    cfg.measure = 2_000;
    let r = run_one(&cfg, 0.3, 1).unwrap();
    assert!(!r.deadlocked);
    assert!((r.accepted - 0.3).abs() < 0.05, "accepted {}", r.accepted);

    // FlexVC with extra VCs on the generic network (Fig. 3a setting).
    let cfg2 = {
        let mut c = cfg.clone();
        c.policy = VcPolicy::FlexVc;
        c.arrangement = Arrangement::generic(4);
        c
    };
    let r2 = run_one(&cfg2, 0.3, 1).unwrap();
    assert!(!r2.deadlocked);

    // Opportunistic Valiant with 3 VCs (Fig. 3b setting).
    let cfg3 = {
        let mut c = cfg.clone();
        c.policy = VcPolicy::FlexVc;
        c.routing = RoutingMode::Valiant;
        c.arrangement = Arrangement::generic(3);
        c
    };
    let r3 = run_one(&cfg3, 0.2, 1).unwrap();
    assert!(!r3.deadlocked);
    assert!(r3.accepted > 0.1);
}

#[test]
fn flexvc_opportunistic_3_2_reverts_under_pressure() {
    // VAL on 3/2 VCs is opportunistic: at saturation some packets must
    // revert to their minimal escape (truncated detours).
    let mut cfg =
        base(RoutingMode::Valiant, Pattern::Uniform).with_flexvc(Arrangement::dragonfly(3, 2));
    cfg.measure = 3_000;
    let r = run_one(&cfg, 0.9, 1).unwrap();
    assert!(!r.deadlocked);
    assert!(r.accepted > 0.2);
    assert!(
        r.reverts_per_packet > 0.0,
        "opportunistic VAL at saturation should revert sometimes"
    );
}
