//! Classifier property tests for class-partitioned QoS.
//!
//! `SimConfig::validate` claims a composition proof: strict priority is
//! safe on a partitioned VC map iff each class's sub-arrangement
//! independently admits a safe minimal embedding. These properties
//! restate that claim as implications the validator must satisfy over
//! random Dragonfly / Dragonfly+ / HyperX shapes, VC budgets and
//! partitions:
//!
//! * accepted partition ⇒ each sub-arrangement validates as a
//!   *single-class* FlexVC config of the same routing (the partition adds
//!   no safety the classes don't have on their own);
//! * accepted partition ⇒ the class VC masks tile the budget exactly
//!   (disjoint, exhaustive, control owning the low indices);
//! * accepted partition ⇒ the combined minimal-escape dependency graph
//!   (disjoint union — priority adds no cross-class buffer edges) is
//!   acyclic;
//! * rejected-as-unsafe partition ⇒ the named class's sub-arrangement
//!   really is empty or unsafe on its own (rejections are refutations,
//!   not false alarms).

use flexvc_core::{Arrangement, LinkClass, RoutingMode, TrafficClass};
use flexvc_sim::cdg::{build_qos_min_cdg, is_acyclic};
use flexvc_sim::prelude::*;
use flexvc_traffic::{Pattern, Workload};
use proptest::prelude::*;

/// Random (topology, routing, arrangement, partition) draw. The raw
/// integers are folded into valid shape parameters here so every draw is
/// constructible; whether the *partition* is legal is exactly what the
/// properties interrogate.
fn qos_point(
    (kind, a, b): (u32, u32, u32),
    (routing, l, g): (u32, usize, usize),
    (cl, cg): (usize, usize),
) -> SimConfig {
    let workload = Workload::oblivious(Pattern::Uniform).with_mix(0.1);
    let routing = if routing == 0 {
        RoutingMode::Min
    } else {
        RoutingMode::Valiant
    };
    let (base, arr) = match kind % 3 {
        0 => (
            SimConfig::dragonfly_baseline(2 + (a % 2) as usize, routing, workload),
            Arrangement::dragonfly(l, g),
        ),
        1 => (
            SimConfig::dfplus_baseline(2, 2, 1, 3 + 2 * (a % 2) as usize, routing, workload),
            Arrangement::dragonfly(l, g),
        ),
        // All HyperX links are Local-class: the whole budget is local.
        _ => (
            SimConfig::hyperx_baseline(
                2 + (a % 2) as usize,
                2 + (b % 2) as usize,
                1,
                routing,
                workload,
            ),
            Arrangement::generic(l + g),
        ),
    };
    let (cl, cg) = if kind % 3 == 2 {
        ((cl + cg) % (l + g + 1), 0)
    } else {
        (cl % (l + 1), cg % (g + 1))
    };
    base.with_flexvc(arr)
        .with_qos(QosConfig::partitioned(cl, cg))
}

fn arb_qos_point() -> impl Strategy<Value = SimConfig> {
    (
        (0u32..3, 0u32..2, 0u32..2),
        (0u32..2, 2usize..6, 1usize..3),
        (0usize..7, 0usize..4),
    )
        .prop_map(|(shape, arr, part)| qos_point(shape, arr, part))
}

/// The same config with `sub` as its whole (single-class) arrangement.
fn single_class(cfg: &SimConfig, sub: Arrangement) -> SimConfig {
    let mut single = cfg.clone();
    single.arrangement = sub;
    single.qos = None;
    single
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn partition_verdicts_match_single_class_safety(cfg in arb_qos_point()) {
        let Some(QosConfig { vc_map: ClassVcMap::Partitioned { control_local, control_global }, .. }) = cfg.qos
        else { unreachable!("draws are partitioned") };
        match cfg.validate() {
            Ok(()) => {
                // Accepted ⇒ both sub-arrangements stand on their own.
                for tclass in [TrafficClass::Control, TrafficClass::Bulk] {
                    let sub = cfg
                        .qos_sub_arrangement(tclass)
                        .expect("accepted partitions are two-sided");
                    let single = single_class(&cfg, sub.clone());
                    prop_assert!(
                        single.validate().is_ok(),
                        "accepted partition but {tclass:?} sub {sub} fails single-class: {:?}",
                        single.validate()
                    );
                }

                // Accepted ⇒ the masks tile each link budget exactly.
                for link in [LinkClass::Local, LinkClass::Global] {
                    let n = cfg.arrangement.vc_count(link);
                    if n == 0 {
                        continue;
                    }
                    let ctrl = cfg.qos_vc_mask(link, TrafficClass::Control);
                    let bulk = cfg.qos_vc_mask(link, TrafficClass::Bulk);
                    let full = (1u32 << n) - 1;
                    prop_assert_eq!(ctrl & bulk, 0, "overlapping masks on {:?}", link);
                    prop_assert_eq!(ctrl | bulk, full, "masks leave {:?} VCs unowned", link);
                    let budget = match link {
                        LinkClass::Local => control_local,
                        LinkClass::Global => control_global,
                    };
                    prop_assert_eq!(
                        ctrl.count_ones() as usize,
                        budget.min(n),
                        "control owns the wrong number of {:?} VCs",
                        link
                    );
                    prop_assert_eq!(ctrl, ctrl & ((1u32 << budget.min(n)) - 1),
                        "control does not own the low {:?} indices", link);
                }

                // Accepted ⇒ the combined escape CDG is acyclic.
                let ctrl = cfg.qos_sub_arrangement(TrafficClass::Control).unwrap();
                let bulk = cfg.qos_sub_arrangement(TrafficClass::Bulk).unwrap();
                let topo = cfg.topology.build();
                let edges = build_qos_min_cdg(&*topo, &ctrl, &bulk)
                    .expect("accepted partitions embed their minimal routes");
                prop_assert!(
                    is_acyclic(&edges),
                    "accepted partition but CDG cyclic (control {}, bulk {})",
                    ctrl,
                    bulk
                );
            }
            Err(ConfigError::QosPartitionUnsafe { tclass, .. }) => {
                // Rejected-as-unsafe ⇒ the named class really is empty or
                // unsafe on its own; the rejection is a refutation.
                match cfg.qos_sub_arrangement(tclass) {
                    None => {}
                    Some(sub) => {
                        let single = single_class(&cfg, sub.clone());
                        prop_assert!(
                            single.validate().is_err(),
                            "refuted {tclass:?} but sub {sub} validates single-class"
                        );
                    }
                }
            }
            // Other rejections (budget bounds, empty partitions, FlexVC
            // missing) are parameter checks, not safety claims.
            Err(_) => {}
        }
    }

    /// The sub-arrangements partition the master sequence: together they
    /// hold every position, separately they are disjoint subsequences
    /// with the same per-class VC counts as the mask popcounts.
    #[test]
    fn sub_arrangements_partition_the_master_sequence(cfg in arb_qos_point()) {
        if cfg.validate().is_ok() {
            let ctrl = cfg.qos_sub_arrangement(TrafficClass::Control).unwrap();
            let bulk = cfg.qos_sub_arrangement(TrafficClass::Bulk).unwrap();
            prop_assert_eq!(
                ctrl.len() + bulk.len(),
                cfg.arrangement.len(),
                "sub-arrangements {} + {} do not tile {}",
                ctrl,
                bulk,
                cfg.arrangement
            );
            for link in [LinkClass::Local, LinkClass::Global] {
                prop_assert_eq!(
                    ctrl.vc_count(link),
                    cfg.qos_vc_mask(link, TrafficClass::Control).count_ones() as usize,
                    "control {:?} count disagrees with its mask",
                    link
                );
            }
        }
    }

    /// Shared budgets under priority never change what validates: QoS
    /// with `ClassVcMap::Shared` is accepted exactly when the same config
    /// without QoS is (priority only reorders legal grants).
    #[test]
    fn shared_qos_validates_iff_base_does(cfg in arb_qos_point()) {
        let mut shared = cfg.clone();
        shared.qos = Some(QosConfig::shared());
        let mut base = cfg;
        base.qos = None;
        prop_assert_eq!(
            shared.validate().is_ok(),
            base.validate().is_ok(),
            "shared-budget QoS changed the validation verdict"
        );
    }
}
