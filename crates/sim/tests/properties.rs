//! Property-based tests of the simulator's flow-control accounting.

use flexvc_core::CreditClass;
use flexvc_sim::bank::Occupancy;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Add { vc: usize, phits: u32, min: bool },
    Remove { vc: usize },
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..4, 1u32..16, any::<bool>()).prop_map(|(vc, phits, min)| Op::Add {
                vc,
                phits,
                min
            }),
            (0usize..4).prop_map(|vc| Op::Remove { vc }),
        ],
        0..64,
    )
}

/// Replay adds/removes against an occupancy model; maintain a shadow ledger
/// per (vc, class) so removes always match a prior add.
fn replay(mut occ: Occupancy, ops: &[Op]) -> (Occupancy, Vec<Vec<(u32, CreditClass)>>) {
    let vcs = occ.vcs();
    let mut ledger: Vec<Vec<(u32, CreditClass)>> = vec![Vec::new(); vcs];
    for op in ops {
        match *op {
            Op::Add { vc, phits, min } => {
                let vc = vc % vcs;
                let class = if min {
                    CreditClass::MinRouted
                } else {
                    CreditClass::NonMinRouted
                };
                if occ.can_accept(vc, phits) {
                    occ.add(vc, phits, class);
                    ledger[vc].push((phits, class));
                }
            }
            Op::Remove { vc } => {
                let vc = vc % vcs;
                if let Some((phits, class)) = ledger[vc].pop() {
                    occ.remove(vc, phits, class);
                }
            }
        }
    }
    (occ, ledger)
}

proptest! {
    /// Static banks: occupancy equals the ledger, per-VC caps are never
    /// exceeded, and free space is exact.
    #[allow(clippy::needless_range_loop)] // vc indexes occupancy and ledger in parallel
    #[test]
    fn static_occupancy_invariants(ops in arb_ops()) {
        let (occ, ledger) = replay(Occupancy::new_static(4, 32), &ops);
        let mut total = 0;
        for vc in 0..4 {
            let expect: u32 = ledger[vc].iter().map(|(p, _)| p).sum();
            prop_assert_eq!(occ.occupancy(vc), expect);
            prop_assert!(occ.occupancy(vc) <= 32);
            prop_assert_eq!(occ.free_for(vc), 32 - expect);
            let min: u32 = ledger[vc]
                .iter()
                .filter(|(_, c)| *c == CreditClass::MinRouted)
                .map(|(p, _)| p)
                .sum();
            prop_assert_eq!(occ.split(vc).min_occupancy(), min);
            total += expect;
        }
        prop_assert_eq!(occ.total(), total);
    }

    /// DAMQ banks: the shared pool is never oversubscribed, every VC always
    /// retains its private reservation, and can_accept is exact (accepting
    /// what it promised, rejecting what would overflow).
    #[allow(clippy::needless_range_loop)] // vc indexes occupancy and ledger in parallel
    #[test]
    fn damq_occupancy_invariants(ops in arb_ops(), private in 0u32..=16) {
        let total_cap = 64;
        let (occ, ledger) = replay(Occupancy::new_damq(4, total_cap, private), &ops);
        let mut shared_used = 0;
        for vc in 0..4 {
            let expect: u32 = ledger[vc].iter().map(|(p, _)| p).sum();
            prop_assert_eq!(occ.occupancy(vc), expect);
            shared_used += expect.saturating_sub(private);
        }
        prop_assert!(shared_used <= total_cap - 4 * private);
        for vc in 0..4 {
            // The private reservation is always available.
            let private_head = private.saturating_sub(occ.occupancy(vc));
            prop_assert!(occ.free_for(vc) >= private_head);
            // can_accept agrees with free_for.
            if occ.free_for(vc) >= 8 {
                prop_assert!(occ.can_accept(vc, 8));
            } else {
                prop_assert!(!occ.can_accept(vc, 8));
            }
        }
    }

    /// A DAMQ with full private reservation behaves exactly like a static
    /// bank under any operation sequence.
    #[test]
    fn damq_full_private_equals_static(ops in arb_ops()) {
        let (damq, _) = replay(Occupancy::new_damq(4, 128, 32), &ops);
        let (stat, _) = replay(Occupancy::new_static(4, 32), &ops);
        for vc in 0..4 {
            prop_assert_eq!(damq.occupancy(vc), stat.occupancy(vc));
            prop_assert_eq!(damq.free_for(vc), stat.free_for(vc));
            for size in [1u32, 8, 32] {
                prop_assert_eq!(damq.can_accept(vc, size), stat.can_accept(vc, size));
            }
        }
    }
}

mod determinism {
    use flexvc_core::RoutingMode;
    use flexvc_sim::prelude::*;
    use flexvc_traffic::{Pattern, Workload};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]
        /// Same seed, same result — across arbitrary seeds and loads.
        #[test]
        fn simulation_is_deterministic(seed in 0u64..1000, load in 1u32..9) {
            let mut cfg = SimConfig::dragonfly_baseline(
                2,
                RoutingMode::Min,
                Workload::oblivious(Pattern::Uniform),
            );
            cfg.warmup = 300;
            cfg.measure = 700;
            let load = load as f64 / 10.0;
            let a = run_one(&cfg, load, seed).unwrap();
            let b = run_one(&cfg, load, seed).unwrap();
            prop_assert_eq!(a.accepted, b.accepted);
            prop_assert_eq!(a.latency, b.latency);
            prop_assert_eq!(a.misroute_fraction, b.misroute_fraction);
        }
    }
}
