//! QoS starvation/deadlock stress pass.
//!
//! The worst case for strict-priority arbitration is a saturated bulk
//! plane with a trickle of control packets riding on top: priority must
//! keep control latency bounded *without* starving bulk (the bounded
//! bypass) and *without* introducing a cyclic credit dependency (the
//! per-class sub-arrangement safety argument in `SimConfig::validate`).
//!
//! Every point here drives the network at 100% offered load — deep into
//! saturation — with a small control fraction mixed in, across the
//! routing × policy × shard matrix, then asserts four liveness
//! properties:
//!
//! 1. the deadlock watchdog never fires;
//! 2. bulk makes nonzero forward progress (no starvation under priority);
//! 3. control-plane p99 latency stays bounded and never exceeds bulk p99
//!    (priority actually prioritizes);
//! 4. after injection stops, the network drains to zero packets in
//!    flight — conservation "injected = consumed", so no packet of either
//!    class is stranded in a buffer, queue or link by the class masks,
//!    the bypass counters or the repartitioner.
//!
//! Results are also asserted shard-invariant: partitioning must not
//! change behavior even under saturation with class-tagged credits.

use flexvc_core::{Arrangement, RoutingMode, TrafficClass};
use flexvc_sim::prelude::*;
use flexvc_traffic::{Pattern, Workload};

/// Trickle of control traffic on top of the bulk flood.
const CONTROL_FRACTION: f64 = 0.03;

/// Saturating offered load (phits/node/cycle).
const SATURATION: f64 = 1.0;

/// Drain budget after the measured run; generous because the run ends
/// with every buffer in the network full.
const DRAIN_CYCLES: u64 = 60_000;

/// Base h=2 Dragonfly at short windows, 100% load, mixed-class traffic.
fn stress_cfg(routing: RoutingMode, pattern: Pattern) -> SimConfig {
    let mut cfg = SimConfig::dragonfly_baseline(
        2,
        routing,
        Workload::oblivious(pattern).with_mix(CONTROL_FRACTION),
    );
    cfg.warmup = 500;
    cfg.measure = 1_500;
    cfg.watchdog = 6_000;
    cfg
}

/// The stress matrix: MIN / VAL / UGAL-L, each under the baseline policy
/// (shared budgets — the only legal map without FlexVC) and under FlexVC
/// (class-partitioned budgets where the per-class sub-arrangements stay
/// safe, shared otherwise).
fn stress_points() -> Vec<(String, SimConfig)> {
    let mut pts = Vec::new();
    for routing in [RoutingMode::Min, RoutingMode::Valiant, RoutingMode::UgalL] {
        // Non-minimal modes need adversarial pressure to actually fill
        // the escape paths; MIN saturates on uniform traffic already.
        let pattern = if routing == RoutingMode::Min {
            Pattern::Uniform
        } else {
            Pattern::adv1()
        };
        pts.push((
            format!("{routing:?}_baseline_shared"),
            stress_cfg(routing, pattern).with_qos(QosConfig::shared()),
        ));
        // MIN's per-class sub-arrangements (2/1 + 2/1) are each MIN-safe,
        // so it exercises hard partitioning; VAL and UGAL-L need the full
        // 4/2 window per class and run shared budgets under priority.
        let qos = if routing == RoutingMode::Min {
            QosConfig::partitioned(2, 1)
        } else {
            QosConfig::shared()
        };
        pts.push((
            format!(
                "{routing:?}_flexvc_{}",
                if routing == RoutingMode::Min {
                    "part"
                } else {
                    "shared"
                }
            ),
            stress_cfg(routing, pattern)
                .with_flexvc(Arrangement::dragonfly(4, 2))
                .with_qos(qos),
        ));
    }
    pts
}

/// Run one point at a shard count, assert the liveness properties, and
/// return the serialized result for shard-invariance comparison.
fn run_and_check(name: &str, cfg: &SimConfig, shards: usize) -> String {
    let mut sharded_cfg = cfg.clone();
    sharded_cfg.shards = shards;
    let mut net =
        ShardedNetwork::new(sharded_cfg, SATURATION, 11).unwrap_or_else(|e| panic!("{name}: {e}"));
    let r = net.run();

    assert!(!r.deadlocked, "{name} shards={shards}: watchdog fired");

    let ctrl = &r.classes[TrafficClass::Control.index()];
    let bulk = &r.classes[TrafficClass::Bulk.index()];
    assert!(
        bulk.accepted > 0.0,
        "{name} shards={shards}: bulk starved under priority (accepted = 0)"
    );
    assert!(
        ctrl.accepted > 0.0,
        "{name} shards={shards}: no control traffic delivered"
    );
    // Priority must actually prioritize: the control plane's tail stays
    // at or below bulk's even with bulk holding every buffer, and stays
    // absolutely bounded (the histogram top bucket is 2^20 cycles; a
    // starved class pins p99 there).
    assert!(
        ctrl.latency_p99 <= bulk.latency_p99,
        "{name} shards={shards}: control p99 {} above bulk p99 {}",
        ctrl.latency_p99,
        bulk.latency_p99
    );
    assert!(
        ctrl.latency_p99 <= 4096.0,
        "{name} shards={shards}: control p99 {} unbounded at saturation",
        ctrl.latency_p99
    );

    // Conservation at drain: mute the generators and step until empty.
    let pending = net.drain(DRAIN_CYCLES);
    assert_eq!(
        pending, 0,
        "{name} shards={shards}: {pending} packets stranded after drain"
    );
    assert!(
        !net.deadlocked(),
        "{name} shards={shards}: watchdog fired during drain"
    );

    flexvc_serde::to_json(&r)
}

#[test]
fn saturated_bulk_never_starves_or_strands_packets() {
    for (name, cfg) in stress_points() {
        let single = run_and_check(&name, &cfg, 1);
        for shards in [2, 4] {
            let sharded = run_and_check(&name, &cfg, shards);
            assert_eq!(
                single, sharded,
                "{name}: shards={shards} diverged from the single engine under saturation"
            );
        }
    }
}

/// The dynamic repartitioner under the same saturation stress: bulk
/// occupancy pressure pulls buffer credit away from the idle control
/// partition, which must not strand control packets (each class keeps a
/// one-packet floor) nor leak credit (per-port quota sums are invariant,
/// checked indirectly by the drain-to-zero property).
#[test]
fn repartitioner_under_saturation_keeps_both_classes_live() {
    let cfg = stress_cfg(RoutingMode::Min, Pattern::Uniform)
        .with_flexvc(Arrangement::dragonfly(4, 2))
        .with_qos(QosConfig::shared().with_repartition());
    let single = run_and_check("min_flexvc_repart", &cfg, 1);
    for shards in [2, 4] {
        let sharded = run_and_check("min_flexvc_repart", &cfg, shards);
        assert_eq!(
            single, sharded,
            "min_flexvc_repart: shards={shards} diverged under repartitioning"
        );
    }
}

/// Control-plane protection is the point of the whole feature: a
/// trickle-control run at saturation must see a *much* better control
/// tail than the same traffic without QoS (where the trickle queues
/// behind the bulk flood).
#[test]
fn priority_beats_fifo_for_the_control_tail() {
    let mut base =
        stress_cfg(RoutingMode::Min, Pattern::Uniform).with_flexvc(Arrangement::dragonfly(4, 2));
    // Longer window than the matrix points so bulk queueing fully
    // develops — the tail gap is what this test measures.
    base.warmup = 1_000;
    base.measure = 4_000;
    base.watchdog = 10_000;
    // Hard-partitioned budgets: control owns its VCs outright, so its
    // packets never sit behind bulk in a shared buffer — priority at the
    // arbiters plus isolation in the buffers.
    let with_qos = base.clone().with_qos(QosConfig::partitioned(2, 1));

    let fifo = run_one(&base, SATURATION, 11).unwrap();
    let prio = run_one(&with_qos, SATURATION, 11).unwrap();
    let fifo_ctrl = &fifo.classes[TrafficClass::Control.index()];
    let prio_ctrl = &prio.classes[TrafficClass::Control.index()];
    assert!(
        fifo_ctrl.accepted > 0.0 && prio_ctrl.accepted > 0.0,
        "degenerate runs: fifo {} prio {}",
        fifo_ctrl.accepted,
        prio_ctrl.accepted
    );
    // The coarse power-of-two `latency_p99` field quantizes both tails
    // into the same bucket; compare interpolated quantiles instead.
    let fifo_p99 = fifo_ctrl.latency_hist.quantile_interp(0.99);
    let prio_p99 = prio_ctrl.latency_hist.quantile_interp(0.99);
    assert!(
        prio_p99 <= 0.5 * fifo_p99,
        "priority control p99 {prio_p99} not under half of FIFO control p99 {fifo_p99}"
    );
}
