//! Engine-equivalence harness: the active-set engine must be *bit-identical*
//! to the original full-sweep engine.
//!
//! The snapshots below were recorded by running the fixed point set of
//! [`flexvc_sim::equivalence`] on the pre-refactor engine (per-cycle full
//! sweeps over every router x port x VC) immediately before the active-set
//! rewrite, with the latency-statistics fixes already applied. Every field
//! of every [`SimResult`] is asserted with exact `f64` equality: the
//! refactor may only change *how* work is found, never *what* happens, so
//! any drift in arbitration order, RNG draws, or credit timing shows up
//! here as a failure.
//!
//! If a point legitimately changes (e.g. a new feature alters semantics on
//! purpose), re-record by printing the fields of `run_one` on the old
//! engine - never by copying the new engine's output untested.

use flexvc_sim::equivalence::{hyperx_flatbf_differential_points, points};
use flexvc_sim::runner::run_one;
use flexvc_sim::{ShardedNetwork, TopologySpec};

struct Golden {
    name: &'static str,
    accepted: f64,
    latency: f64,
    latency_req: f64,
    latency_rep: f64,
    misroute_fraction: f64,
    avg_hops: f64,
    reverts_per_packet: f64,
    drop_fraction: f64,
    deadlocked: bool,
    latency_p99: f64,
    hist_count: u64,
    local_vc_occupancy: &'static [f64],
    global_vc_occupancy: &'static [f64],
    flows_completed: f64,
    fct_p50: f64,
    fct_p99: f64,
    slowdown_mean: f64,
}

const GOLDENS: &[Golden] = &[
    Golden {
        name: "fig5_un_min_baseline",
        accepted: 0.4461851851851852,
        latency: 138.5055200464846,
        latency_req: 138.5055200464846,
        latency_rep: 0.0,
        misroute_fraction: 0.0,
        avg_hops: 2.3352701917489833,
        reverts_per_packet: 0.0,
        drop_fraction: 0.0,
        deadlocked: false,
        latency_p99: 128.0,
        hist_count: 12047,
        local_vc_occupancy: &[2.0771604938271606, 2.2222222222222223],
        global_vc_occupancy: &[4.3842592592592595],
        flows_completed: 0.0,
        fct_p50: 0.0,
        fct_p99: 0.0,
        slowdown_mean: 0.0,
    },
    Golden {
        name: "fig5_un_min_flexvc42",
        accepted: 0.6437407407407407,
        latency: 160.31494160289972,
        latency_req: 160.31494160289972,
        latency_rep: 0.0,
        misroute_fraction: 0.0,
        avg_hops: 2.3399689315919683,
        reverts_per_packet: 0.0,
        drop_fraction: 0.0,
        deadlocked: false,
        latency_p99: 256.0,
        hist_count: 17381,
        local_vc_occupancy: &[
            1.287037037037037,
            1.6944444444444444,
            2.4814814814814814,
            2.234567901234568,
        ],
        global_vc_occupancy: &[5.523148148148148, 5.050925925925926],
        flows_completed: 0.0,
        fct_p50: 0.0,
        fct_p99: 0.0,
        slowdown_mean: 0.0,
    },
    Golden {
        name: "fig5_adv_val_baseline",
        accepted: 0.4579259259259259,
        latency: 557.6700097055968,
        latency_req: 557.6700097055968,
        latency_rep: 0.0,
        misroute_fraction: 1.0,
        avg_hops: 4.606357165965707,
        reverts_per_packet: 0.0,
        drop_fraction: 0.0015579790785666592,
        deadlocked: false,
        latency_p99: 1024.0,
        hist_count: 12364,
        local_vc_occupancy: &[
            6.734567901234568,
            5.598765432098766,
            4.114197530864198,
            2.3333333333333335,
        ],
        global_vc_occupancy: &[52.64351851851852, 20.88888888888889],
        flows_completed: 0.0,
        fct_p50: 0.0,
        fct_p99: 0.0,
        slowdown_mean: 0.0,
    },
    Golden {
        name: "fig5_un_val_flexvc32_sat",
        accepted: 0.6823703703703704,
        latency: 891.4257490230135,
        latency_req: 891.4257490230135,
        latency_rep: 0.0,
        misroute_fraction: 0.9873534520191055,
        avg_hops: 3.159248805905341,
        reverts_per_packet: 0.4355731654363873,
        drop_fraction: 0.08739703459637561,
        deadlocked: false,
        latency_p99: 1024.0,
        hist_count: 18424,
        local_vc_occupancy: &[9.382716049382717, 9.407407407407407, 4.425925925925926],
        global_vc_occupancy: &[47.745370370370374, 31.02314814814815],
        flows_completed: 0.0,
        fct_p50: 0.0,
        fct_p99: 0.0,
        slowdown_mean: 0.0,
    },
    Golden {
        name: "fig5_bursty_min_flexvc42",
        accepted: 0.48348148148148146,
        latency: 252.78374444614678,
        latency_req: 252.78374444614678,
        latency_rep: 0.0,
        misroute_fraction: 0.0,
        avg_hops: 2.366094683621878,
        reverts_per_packet: 0.0,
        drop_fraction: 0.0,
        deadlocked: false,
        latency_p99: 512.0,
        hist_count: 13054,
        local_vc_occupancy: &[
            2.2808641975308643,
            2.814814814814815,
            3.447530864197531,
            2.404320987654321,
        ],
        global_vc_occupancy: &[13.652777777777779, 16.078703703703702],
        flows_completed: 0.0,
        fct_p50: 0.0,
        fct_p99: 0.0,
        slowdown_mean: 0.0,
    },
    Golden {
        name: "fig7_rr_min_baseline",
        accepted: 0.34203703703703703,
        latency: 130.95993502977802,
        latency_req: 131.4828856152513,
        latency_rep: 130.4373240961247,
        misroute_fraction: 0.0,
        avg_hops: 2.342934488359502,
        reverts_per_packet: 0.0,
        drop_fraction: 0.0,
        deadlocked: false,
        latency_p99: 128.0,
        hist_count: 9235,
        local_vc_occupancy: &[
            0.7283950617283951,
            0.7067901234567902,
            0.6851851851851852,
            0.7037037037037037,
        ],
        global_vc_occupancy: &[1.2222222222222223, 1.4675925925925926],
        flows_completed: 0.0,
        fct_p50: 0.0,
        fct_p99: 0.0,
        slowdown_mean: 0.0,
    },
    Golden {
        name: "fig7_rr_min_flexvc_5_3",
        accepted: 0.49274074074074076,
        latency: 137.3321557426338,
        latency_req: 137.8655550548295,
        latency_rep: 136.79795396419436,
        misroute_fraction: 0.0,
        avg_hops: 2.339822609741431,
        reverts_per_packet: 0.0,
        drop_fraction: 0.0,
        deadlocked: false,
        latency_p99: 128.0,
        hist_count: 13304,
        local_vc_occupancy: &[
            0.6234567901234568,
            1.1790123456790123,
            0.8950617283950617,
            0.8425925925925926,
            0.7345679012345679,
        ],
        global_vc_occupancy: &[1.3518518518518519, 1.5416666666666667, 1.3333333333333333],
        flows_completed: 0.0,
        fct_p50: 0.0,
        fct_p99: 0.0,
        slowdown_mean: 0.0,
    },
    Golden {
        name: "fig10_damq0_deadlock",
        accepted: 0.00970501275193536,
        latency: 1375.3232558139534,
        latency_req: 1375.3232558139534,
        latency_rep: 0.0,
        misroute_fraction: 0.0,
        avg_hops: 2.4093023255813955,
        reverts_per_packet: 0.0,
        drop_fraction: 0.9860281254969671,
        deadlocked: true,
        latency_p99: 1024.0,
        hist_count: 430,
        local_vc_occupancy: &[30.533713200379868, 0.030389363722697058],
        global_vc_occupancy: &[143.64102564102564],
        flows_completed: 0.0,
        fct_p50: 0.0,
        fct_p99: 0.0,
        slowdown_mean: 0.0,
    },
    Golden {
        name: "fig10_damq75",
        accepted: 0.6961851851851852,
        latency: 631.1867319253072,
        latency_req: 631.1867319253072,
        latency_rep: 0.0,
        misroute_fraction: 0.0,
        avg_hops: 2.338671064531574,
        reverts_per_packet: 0.0,
        drop_fraction: 0.04873362445414847,
        deadlocked: false,
        latency_p99: 1024.0,
        hist_count: 18797,
        local_vc_occupancy: &[10.95679012345679, 5.583333333333333],
        global_vc_occupancy: &[51.65277777777778],
        flows_completed: 0.0,
        fct_p50: 0.0,
        fct_p99: 0.0,
        slowdown_mean: 0.0,
    },
    Golden {
        name: "fig8_pb_flexvc_mincred",
        accepted: 0.4997037037037037,
        latency: 166.17943966795139,
        latency_req: 167.34009776329432,
        latency_rep: 165.01705978341494,
        misroute_fraction: 0.16854432256151794,
        avg_hops: 2.844129854728728,
        reverts_per_packet: 0.0,
        drop_fraction: 0.0,
        deadlocked: false,
        latency_p99: 256.0,
        hist_count: 13492,
        local_vc_occupancy: &[
            0.6018518518518519,
            0.8641975308641975,
            1.287037037037037,
            1.1358024691358024,
            0.9598765432098766,
            0.7839506172839507,
        ],
        global_vc_occupancy: &[1.9166666666666667, 1.9212962962962963, 1.6064814814814814],
        flows_completed: 0.0,
        fct_p50: 0.0,
        fct_p99: 0.0,
        slowdown_mean: 0.0,
    },
    Golden {
        name: "par_adv_baseline",
        accepted: 0.2713703703703704,
        latency: 1045.6649379009145,
        latency_req: 1045.6649379009145,
        latency_rep: 0.0,
        misroute_fraction: 0.6050225194486147,
        avg_hops: 4.418861744233657,
        reverts_per_packet: 0.0,
        drop_fraction: 0.026967122275581824,
        deadlocked: false,
        latency_p99: 2048.0,
        hist_count: 7327,
        local_vc_occupancy: &[
            3.5709876543209877,
            0.8888888888888888,
            1.3364197530864197,
            1.4845679012345678,
            0.8395061728395061,
        ],
        global_vc_occupancy: &[4.1342592592592595, 1.5555555555555556],
        flows_completed: 0.0,
        fct_p50: 0.0,
        fct_p99: 0.0,
        slowdown_mean: 0.0,
    },
    // Recorded from the engine at the commit introducing the HyperX
    // topology (`cargo run --release -p flexvc-sim --example record_goldens
    // hyperx3d_adv_val_flexvc4`): guards the generic-diameter-3 path —
    // DOR plans, per-dimension escapes, opportunistic VAL with reversion —
    // against behavioral drift.
    Golden {
        name: "hyperx3d_adv_val_flexvc4",
        accepted: 0.5965925925925926,
        latency: 152.12714179289793,
        latency_req: 152.12714179289793,
        latency_rep: 0.0,
        misroute_fraction: 1.0,
        avg_hops: 3.9679662279612615,
        reverts_per_packet: 0.015644400297988578,
        drop_fraction: 0.0,
        deadlocked: false,
        latency_p99: 256.0,
        hist_count: 12081,
        local_vc_occupancy: &[
            4.5699588477366255,
            3.51440329218107,
            2.683127572016461,
            1.7613168724279835,
        ],
        global_vc_occupancy: &[],
        flows_completed: 0.0,
        fct_p50: 0.0,
        fct_p99: 0.0,
        slowdown_mean: 0.0,
    },
    // Recorded at the commit introducing the RoutePolicy decision layer
    // (`cargo run --release -p flexvc-sim --example record_goldens
    // hyperx3d_adv_ugal_l_flexvc6 hyperx2d_adv_dal_flexvc4`): guard the
    // UGAL-L weighted-comparison injection path and DAL's per-dimension
    // misroute pipeline against behavioral drift.
    Golden {
        name: "hyperx3d_adv_ugal_l_flexvc6",
        accepted: 0.526074074074074,
        latency: 731.9320379235896,
        latency_req: 731.9320379235896,
        latency_rep: 0.0,
        misroute_fraction: 0.12897775274570544,
        avg_hops: 2.475828405144091,
        reverts_per_packet: 0.0,
        drop_fraction: 0.037183376843293585,
        deadlocked: false,
        latency_p99: 2048.0,
        hist_count: 10653,
        local_vc_occupancy: &[
            14.843621399176955,
            16.39917695473251,
            17.438271604938272,
            18.25925925925926,
            11.199588477366255,
            0.8868312757201646,
        ],
        global_vc_occupancy: &[],
        flows_completed: 0.0,
        fct_p50: 0.0,
        fct_p99: 0.0,
        slowdown_mean: 0.0,
    },
    Golden {
        name: "hyperx2d_adv_dal_flexvc4",
        accepted: 0.7044166666666667,
        latency: 90.28013722938601,
        latency_req: 90.28013722938601,
        latency_rep: 0.0,
        misroute_fraction: 0.3789187270791435,
        avg_hops: 2.1347450609251153,
        reverts_per_packet: 0.0,
        drop_fraction: 0.0,
        deadlocked: false,
        latency_p99: 256.0,
        hist_count: 8453,
        local_vc_occupancy: &[
            1.6805555555555556,
            2.4340277777777777,
            3.15625,
            2.1041666666666665,
        ],
        global_vc_occupancy: &[],
        flows_completed: 0.0,
        fct_p50: 0.0,
        fct_p99: 0.0,
        slowdown_mean: 0.0,
    },
    // Recorded at the commit introducing the flow workload layer
    // (`cargo run --release -p flexvc-sim --example record_goldens
    // flows_un_bimodal_min_flexvc42 flows_perm_pareto_hyperx2d_min_flexvc4
    // flows_incast4_min_baseline`): guard flow arrivals, packet trains,
    // the seed-only permutation table, incast phase rotation, and FCT
    // accounting against behavioral drift.
    Golden {
        name: "flows_un_bimodal_min_flexvc42",
        accepted: 0.49274074074074076,
        latency: 339.04863199037885,
        latency_req: 339.04863199037885,
        latency_rep: 0.0,
        misroute_fraction: 0.0,
        avg_hops: 2.3574113048707157,
        reverts_per_packet: 0.0,
        drop_fraction: 0.0,
        deadlocked: false,
        latency_p99: 1024.0,
        hist_count: 13304,
        local_vc_occupancy: &[
            2.7191358024691357,
            3.3487654320987654,
            3.7839506172839505,
            2.54320987654321,
        ],
        global_vc_occupancy: &[18.083333333333332, 19.324074074074073],
        flows_completed: 4869.0,
        fct_p50: 172.6522687609075,
        fct_p99: 1277.75,
        slowdown_mean: 2.7029928116656396,
    },
    Golden {
        name: "flows_perm_pareto_hyperx2d_min_flexvc4",
        accepted: 0.384,
        latency: 69.35373263888889,
        latency_req: 69.35373263888889,
        latency_rep: 0.0,
        misroute_fraction: 0.0,
        avg_hops: 1.5345052083333333,
        reverts_per_packet: 0.0,
        drop_fraction: 0.0,
        deadlocked: false,
        latency_p99: 512.0,
        hist_count: 4608,
        local_vc_occupancy: &[
            0.3541666666666667,
            0.4236111111111111,
            0.5798611111111112,
            0.34375,
        ],
        global_vc_occupancy: &[],
        flows_completed: 1828.0,
        fct_p50: 45.21609702315325,
        fct_p99: 675.9473684210526,
        slowdown_mean: 1.9602439824945295,
    },
    Golden {
        name: "flows_incast4_min_baseline",
        accepted: 0.24225925925925926,
        latency: 333.2144931967589,
        latency_req: 333.2144931967589,
        latency_rep: 0.0,
        misroute_fraction: 0.0,
        avg_hops: 0.8399327319981654,
        reverts_per_packet: 0.0,
        drop_fraction: 0.0,
        deadlocked: false,
        latency_p99: 1024.0,
        hist_count: 6541,
        local_vc_occupancy: &[2.074074074074074, 0.08641975308641975],
        global_vc_occupancy: &[3.0462962962962963],
        flows_completed: 1439.0,
        fct_p50: 190.9585635359116,
        fct_p99: 1399.8080808080808,
        slowdown_mean: 7.857785267546908,
    },
    // Hot-path pins (recorded when the fast paths landed, PR 8): static-MIN
    // + baseline VC policy exercises the monomorphized injection-plan path
    // and the batched per-link credit drain on both topologies.
    Golden {
        name: "hotpath_un_min_baseline_hyperx2d",
        accepted: 0.7271666666666666,
        latency: 144.4562227824891,
        latency_req: 144.4562227824891,
        latency_rep: 0.0,
        misroute_fraction: 0.0,
        avg_hops: 1.5399954159981664,
        reverts_per_packet: 0.0,
        drop_fraction: 0.005496921723834653,
        deadlocked: false,
        latency_p99: 1024.0,
        hist_count: 8726,
        local_vc_occupancy: &[4.204861111111111, 3.482638888888889],
        global_vc_occupancy: &[],
        flows_completed: 0.0,
        fct_p50: 0.0,
        fct_p99: 0.0,
        slowdown_mean: 0.0,
    },
    Golden {
        name: "hotpath_flows_perm_min_baseline",
        accepted: 0.404,
        latency: 354.4011734506784,
        latency_req: 354.4011734506784,
        latency_rep: 0.0,
        misroute_fraction: 0.0,
        avg_hops: 2.218738540520719,
        reverts_per_packet: 0.0,
        drop_fraction: 0.015026660203587009,
        deadlocked: false,
        latency_p99: 1024.0,
        hist_count: 10908,
        local_vc_occupancy: &[3.4166666666666665, 1.3271604938271604],
        global_vc_occupancy: &[17.47685185185185],
        flows_completed: 3846.0,
        fct_p50: 161.11389521640092,
        fct_p99: 1293.6521739130435,
        slowdown_mean: 2.736770670826833,
    },
    // Recorded at the commit introducing multi-class QoS (`cargo run
    // --release -p flexvc-sim --example record_goldens
    // qos_ctrlbulk_df_min_flexvc42_part qos_repart_hyperx2d_min_flexvc4
    // qos_prio_dfplus_val_flexvc42`): guard class-partitioned VC masks,
    // the dynamic per-class buffer repartitioner, and strict-priority
    // arbitration with bounded bypass against behavioral drift. The
    // sharded tests below run these at shards {1..5} so the class-tagged
    // credit exchange is also pinned.
    Golden {
        name: "qos_ctrlbulk_df_min_flexvc42_part",
        accepted: 0.5994074074074074,
        latency: 159.0490608007909,
        latency_req: 159.0490608007909,
        latency_rep: 0.0,
        misroute_fraction: 0.0,
        avg_hops: 2.3413247652001976,
        reverts_per_packet: 0.0,
        drop_fraction: 0.0,
        deadlocked: false,
        latency_p99: 256.0,
        hist_count: 16184,
        local_vc_occupancy: &[
            0.10802469135802469,
            0.5401234567901234,
            3.373456790123457,
            2.8518518518518516,
        ],
        global_vc_occupancy: &[0.6666666666666666, 8.856481481481481],
        flows_completed: 0.0,
        fct_p50: 0.0,
        fct_p99: 0.0,
        slowdown_mean: 0.0,
    },
    Golden {
        name: "qos_repart_hyperx2d_min_flexvc4",
        accepted: 0.70675,
        latency: 60.324843768423534,
        latency_req: 60.324843768423534,
        latency_rep: 0.0,
        misroute_fraction: 0.0,
        avg_hops: 1.5533545572456078,
        reverts_per_packet: 0.0,
        drop_fraction: 0.0,
        deadlocked: false,
        latency_p99: 128.0,
        hist_count: 8481,
        local_vc_occupancy: &[
            0.6875,
            1.1319444444444444,
            1.7847222222222223,
            1.5902777777777777,
        ],
        global_vc_occupancy: &[],
        flows_completed: 0.0,
        fct_p50: 0.0,
        fct_p99: 0.0,
        slowdown_mean: 0.0,
    },
    Golden {
        name: "qos_prio_dfplus_val_flexvc42",
        accepted: 0.4478666666666667,
        latency: 535.9705269425424,
        latency_req: 535.9705269425424,
        latency_rep: 0.0,
        misroute_fraction: 1.0,
        avg_hops: 5.194998511461745,
        reverts_per_packet: 0.0,
        drop_fraction: 0.0010579211848717272,
        deadlocked: false,
        latency_p99: 1024.0,
        hist_count: 3359,
        local_vc_occupancy: &[
            7.0,
            4.566666666666666,
            2.533333333333333,
            1.3083333333333333,
        ],
        global_vc_occupancy: &[20.566666666666666, 7.108333333333333],
        flows_completed: 0.0,
        fct_p50: 0.0,
        fct_p99: 0.0,
        slowdown_mean: 0.0,
    },
];

/// Differential check: a 2-D unit-multiplicity HyperX is the same machine
/// as the flattened butterfly it generalizes — identical wiring, port
/// numbering, routes, slots, groups and classification family — so the
/// same `(config, load, seed)` must produce *bit-identical* results on
/// both `TopologySpec`s, across policies and routings.
#[test]
fn hyperx_2d_is_bit_identical_to_flat_butterfly() {
    for (name, cfg, load, seed) in hyperx_flatbf_differential_points() {
        let (k, p) = match cfg.topology {
            TopologySpec::FlatButterfly { k, p } => (k, p),
            ref other => panic!("{name}: differential point must start from FB, got {other:?}"),
        };
        let fb = run_one(&cfg, load, seed).unwrap();
        let mut hx_cfg = cfg.clone();
        hx_cfg.topology = TopologySpec::HyperX {
            dims: vec![(k, 1); 2],
            p,
        };
        let hx = run_one(&hx_cfg, load, seed).unwrap();
        // Serialized form covers every result field including the latency
        // histogram; exact string equality = exact f64/u64 equality.
        assert_eq!(
            flexvc_serde::to_json(&fb),
            flexvc_serde::to_json(&hx),
            "{name}: HyperX(2, {k}, {p}) diverged from FlatButterfly2D({k}, {p})"
        );
        assert!(fb.accepted > 0.0, "{name}: degenerate run");
    }
}

/// Sharded-engine matrix: partitioning the routers across worker shards
/// must be invisible in the results. Every golden point runs through
/// `ShardedNetwork` with shards ∈ {1, 2, 3, 4} and is compared bit-for-bit
/// (serialized form, covering every field including the histogram) against
/// the plain single-engine run — PB sensing, adaptive routing, DAMQ
/// deadlock and reactive points included, so every cross-shard effect
/// class (link packets, credits, board publishes) is exercised under the
/// epoch-batched exchange (and per-cycle exchange for the board users).
/// The shard counts include a non-power-of-two so group-aligned and
/// fallback partitions both see uneven splits.
#[test]
fn sharded_engine_is_bit_identical_to_single() {
    for (name, cfg, load, seed) in points() {
        let single = flexvc_serde::to_json(&run_one(&cfg, load, seed).unwrap());
        for shards in [1, 2, 3, 4] {
            let mut sharded_cfg = cfg.clone();
            sharded_cfg.shards = shards;
            let r = ShardedNetwork::new(sharded_cfg, load, seed)
                .unwrap_or_else(|e| panic!("{name}: {e}"))
                .run();
            assert_eq!(
                single,
                flexvc_serde::to_json(&r),
                "{name}: shards={shards} diverged from the single engine"
            );
        }
    }
}

/// Five shards force the partitioner off group alignment on the smaller
/// goldens (fewer groups/planes than shards → count-balanced fallback
/// with intra-group cuts, the λ = local-latency epoch regime) while the
/// larger ones keep aligned global-only cuts — both epoch regimes at a
/// shard count that divides nothing evenly.
#[test]
fn sharded_engine_is_bit_identical_at_five_shards() {
    for (name, cfg, load, seed) in points() {
        let single = flexvc_serde::to_json(&run_one(&cfg, load, seed).unwrap());
        let mut sharded_cfg = cfg.clone();
        sharded_cfg.shards = 5;
        let r = ShardedNetwork::new(sharded_cfg, load, seed)
            .unwrap_or_else(|e| panic!("{name}: {e}"))
            .run();
        assert_eq!(
            single,
            flexvc_serde::to_json(&r),
            "{name}: shards=5 diverged from the single engine"
        );
    }
}

#[test]
fn engine_reproduces_pre_refactor_snapshots() {
    let pts = points();
    assert_eq!(
        pts.len(),
        GOLDENS.len(),
        "point set and snapshot list out of sync"
    );
    for ((name, cfg, load, seed), g) in pts.iter().zip(GOLDENS) {
        assert_eq!(name, g.name, "point order changed");
        let r = run_one(cfg, *load, *seed).unwrap();
        let ctx = |field: &str| format!("{name}: {field} drifted from the pre-refactor engine");
        assert_eq!(r.accepted, g.accepted, "{}", ctx("accepted"));
        assert_eq!(r.latency, g.latency, "{}", ctx("latency"));
        assert_eq!(r.latency_req, g.latency_req, "{}", ctx("latency_req"));
        assert_eq!(r.latency_rep, g.latency_rep, "{}", ctx("latency_rep"));
        assert_eq!(
            r.misroute_fraction,
            g.misroute_fraction,
            "{}",
            ctx("misroute_fraction")
        );
        assert_eq!(r.avg_hops, g.avg_hops, "{}", ctx("avg_hops"));
        assert_eq!(
            r.reverts_per_packet,
            g.reverts_per_packet,
            "{}",
            ctx("reverts_per_packet")
        );
        assert_eq!(r.drop_fraction, g.drop_fraction, "{}", ctx("drop_fraction"));
        assert_eq!(r.deadlocked, g.deadlocked, "{}", ctx("deadlocked"));
        assert_eq!(r.latency_p99, g.latency_p99, "{}", ctx("latency_p99"));
        assert_eq!(
            r.latency_hist.count(),
            g.hist_count,
            "{}",
            ctx("hist_count")
        );
        assert_eq!(
            r.local_vc_occupancy.as_slice(),
            g.local_vc_occupancy,
            "{}",
            ctx("local_vc_occupancy")
        );
        assert_eq!(
            r.global_vc_occupancy.as_slice(),
            g.global_vc_occupancy,
            "{}",
            ctx("global_vc_occupancy")
        );
        assert_eq!(
            r.flows_completed,
            g.flows_completed,
            "{}",
            ctx("flows_completed")
        );
        assert_eq!(r.fct_p50, g.fct_p50, "{}", ctx("fct_p50"));
        assert_eq!(r.fct_p99, g.fct_p99, "{}", ctx("fct_p99"));
        assert_eq!(r.slowdown_mean, g.slowdown_mean, "{}", ctx("slowdown_mean"));
    }
}
