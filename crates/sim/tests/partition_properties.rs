//! Property tests for the topology-aware shard partitioner.
//!
//! Over random Dragonfly / Dragonfly+ / HyperX / flattened-butterfly
//! shapes and shard counts, [`partition_topology`] must produce
//!
//! (a) **a cover** — exactly `shards` contiguous, non-empty, gap-free
//!     ranges covering every router;
//! (b) **alignment** — whenever the topology offers at least as many
//!     alignment units (groups / planes / rows) as shards, every shard
//!     boundary lands on a unit boundary, so no intra-group local link
//!     crosses a cut;
//! (c) **balance** — the heaviest shard (by [`Topology::router_weight`])
//!     matches the exact min-max optimum over unit-aligned contiguous
//!     splits, computed here by dynamic programming.

use flexvc_sim::shard::{partition, partition_topology};
use flexvc_topology::{Dragonfly, DragonflyPlus, FlatButterfly2D, HyperX, Topology};
use proptest::prelude::*;

/// A randomly shaped topology, kept small enough for per-case scans.
#[derive(Debug, Clone)]
enum Shape {
    HyperX { dims: Vec<(usize, usize)>, p: usize },
    Dragonfly { h: usize },
    FlatBf { k: usize, p: usize },
    DfPlus { l: usize, s: usize, h: usize },
}

impl Shape {
    fn build(&self) -> Box<dyn Topology> {
        match self {
            Shape::HyperX { dims, p } => Box::new(HyperX::new(dims.clone(), *p)),
            Shape::Dragonfly { h } => Box::new(Dragonfly::balanced(*h)),
            Shape::FlatBf { k, p } => Box::new(FlatButterfly2D::new(*k, *p)),
            // Unit global multiplicity with `groups = spines + 1` keeps the
            // per-spine global share integral for any (l, s, h).
            Shape::DfPlus { l, s, h } => Box::new(DragonflyPlus::new(*l, *s, *h, 1, s + 1)),
        }
    }
}

fn arb_shape() -> impl Strategy<Value = Shape> {
    prop_oneof![
        (1usize..=3, 2usize..=4, 1usize..=2, 1usize..=2).prop_map(|(n, s, k, p)| {
            Shape::HyperX {
                dims: vec![(s, k); n],
                p,
            }
        }),
        (2usize..=4, 2usize..=4, 1usize..=2).prop_map(|(s0, s1, p)| Shape::HyperX {
            dims: vec![(s0, 1), (s1, 1)],
            p,
        }),
        (1usize..=3).prop_map(|h| Shape::Dragonfly { h }),
        (2usize..=5, 1usize..=2).prop_map(|(k, p)| Shape::FlatBf { k, p }),
        (1usize..=4, 2usize..=4, 1usize..=3).prop_map(|(l, s, h)| Shape::DfPlus { l, s, h }),
    ]
}

/// Exact min-max weight over all splits of `weights` into `k` contiguous
/// non-empty segments (O(k·n²) DP — fine at property-test scale).
fn optimal_minmax(weights: &[u64], k: usize) -> u64 {
    let n = weights.len();
    let mut prefix = vec![0u64; n + 1];
    for (i, &w) in weights.iter().enumerate() {
        prefix[i + 1] = prefix[i] + w;
    }
    // best[j][i] = min-max over splitting the first i units into j segments.
    let mut best = vec![u64::MAX; n + 1];
    for (i, b) in best.iter_mut().enumerate().skip(1) {
        *b = prefix[i];
    }
    for _ in 2..=k {
        let mut next = vec![u64::MAX; n + 1];
        for i in 1..=n {
            for cut in 1..i {
                let cand = best[cut].max(prefix[i] - prefix[cut]);
                if cand < next[i] {
                    next[i] = cand;
                }
            }
        }
        best = next;
    }
    best[n]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn partitioner_covers_aligns_and_balances(shape in arb_shape(), shards in 1usize..=6) {
        let topo = shape.build();
        let nr = topo.num_routers();
        let shards = shards.min(nr);
        let ranges = partition_topology(topo.as_ref(), shards);

        // (a) Exactly `shards` contiguous, non-empty ranges covering 0..nr.
        prop_assert_eq!(ranges.len(), shards);
        prop_assert_eq!(ranges[0].start, 0);
        prop_assert_eq!(ranges[shards - 1].end as usize, nr);
        for i in 0..shards {
            prop_assert!(ranges[i].start < ranges[i].end, "empty shard {i}");
            if i > 0 {
                prop_assert_eq!(ranges[i].start, ranges[i - 1].end, "gap before shard {i}");
            }
        }

        // (b) Group/plane alignment whenever the topology has enough units.
        let unit = topo.partition_unit();
        let aligned = unit > 1 && nr.is_multiple_of(unit) && nr / unit >= shards;
        if aligned {
            for r in &ranges {
                prop_assert_eq!(
                    r.start as usize % unit, 0,
                    "shard boundary {} off the {}-router unit grid", r.start, unit
                );
            }
            // Aligned boundaries must never cut an intra-group (local-only
            // in Dragonfly terms) pair: both endpoints of any intra-group
            // link share a range.
            let owner = |r: usize| ranges.iter().position(|rg| rg.contains(&(r as u32))).unwrap();
            for r in 0..nr {
                for p in 0..topo.num_ports() {
                    if let Some((peer, _)) = topo.neighbor(r, p) {
                        if topo.group_of_router(r) == topo.group_of_router(peer) {
                            prop_assert_eq!(owner(r), owner(peer), "intra-group link cut");
                        }
                    }
                }
            }
        }

        // (c) Exact min-max port+terminal balance over the chosen grid.
        let grid = if aligned { unit } else { 1 };
        let units = nr / grid;
        let weights: Vec<u64> = (0..units)
            .map(|u| (u * grid..(u + 1) * grid).map(|r| topo.router_weight(r)).sum())
            .collect();
        let heaviest = ranges
            .iter()
            .map(|rg| {
                rg.clone()
                    .map(|r| topo.router_weight(r as usize))
                    .sum::<u64>()
            })
            .max()
            .unwrap();
        if aligned {
            prop_assert_eq!(
                heaviest,
                optimal_minmax(&weights, shards),
                "aligned partition missed the min-max optimum"
            );
        } else {
            // Fallback is count-balanced, not weight-balanced; it must at
            // least match the plain splitter exactly.
            prop_assert_eq!(ranges, partition(nr, shards));
        }
    }
}
