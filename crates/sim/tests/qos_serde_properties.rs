//! Serde properties for the QoS additions: workload class mixes and
//! per-class QoS/buffer specs round-trip losslessly through JSON and
//! TOML, and a single-class configuration still serializes to the legacy
//! wire form — no `qos`, `control_fraction` or `classes` keys — so
//! pre-QoS files and recorded results parse unchanged.

use flexvc_core::{Arrangement, RoutingMode};
use flexvc_sim::prelude::*;
use flexvc_sim::{BufferSizing, ClassVcMap, QosConfig};
use flexvc_traffic::{Pattern, Workload};
use proptest::prelude::*;

fn arb_pattern() -> impl Strategy<Value = Pattern> {
    prop_oneof![
        Just(Pattern::Uniform),
        Just(Pattern::adv1()),
        Just(Pattern::bursty()),
        (1usize..5).prop_map(|offset| Pattern::Adversarial { offset }),
    ]
}

/// Synthetic workloads across the class-mix space: no mix (legacy),
/// and control fractions sweeping (0, 1) at milli resolution.
fn arb_workload() -> impl Strategy<Value = Workload> {
    (arb_pattern(), any::<bool>(), 0u32..1000).prop_map(|(p, reactive, mix_milli)| {
        let w = if reactive {
            Workload::reactive(p)
        } else {
            Workload::oblivious(p)
        };
        if mix_milli == 0 {
            w // legacy single-class form
        } else {
            w.with_mix(mix_milli as f64 / 1000.0)
        }
    })
}

fn arb_qos() -> impl Strategy<Value = QosConfig> {
    ((0usize..5, 0usize..4), 1u32..9, any::<bool>(), 1u32..1000).prop_map(
        |((cl, cg), bypass, repart, frac_milli)| {
            let mut q = if cl + cg == 0 {
                QosConfig::shared()
            } else {
                QosConfig::partitioned(cl, cg)
            };
            q.bypass_bound = bypass;
            if repart {
                q = q.with_repartition();
            }
            q.control_quota_fraction = frac_milli as f64 / 1000.0;
            q
        },
    )
}

/// Full configs over the QoS/buffer product space. Not necessarily
/// *valid* — serde must round-trip what it is given; validation is a
/// separate layer.
fn arb_cfg() -> impl Strategy<Value = SimConfig> {
    (
        arb_workload(),
        proptest::option::of(arb_qos()),
        (6u32..10, 8u32..12),
        any::<bool>(),
    )
        .prop_map(|(workload, qos, (lb, gb), per_port)| {
            let mut cfg = SimConfig::dragonfly_baseline(2, RoutingMode::Min, workload)
                .with_flexvc(Arrangement::dragonfly(4, 2));
            // Per-class buffer budgets in packets (local/global drawn
            // independently), in both sizing shapes.
            cfg.buffers.sizing = if per_port {
                BufferSizing::PerPort {
                    local: lb * cfg.packet_size * 4,
                    global: gb * cfg.packet_size * 2,
                }
            } else {
                BufferSizing::PerVc {
                    local: lb * cfg.packet_size,
                    global: gb * cfg.packet_size,
                }
            };
            cfg.qos = qos;
            cfg
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Workload class mixes survive a JSON round trip exactly.
    #[test]
    fn workload_class_mix_round_trips(wl in arb_workload()) {
        let json = flexvc_serde::to_json(&wl);
        let back: Workload = flexvc_serde::from_json(&json).unwrap();
        prop_assert_eq!(&back, &wl, "JSON: {}", json);
        prop_assert_eq!(back.class_mix(), wl.class_mix());
    }

    /// Full configs — class mixes, QoS maps, bypass bounds, repartition
    /// flags, quota fractions and per-class buffer budgets — round-trip
    /// through both JSON and TOML.
    #[test]
    fn qos_config_round_trips(cfg in arb_cfg()) {
        let json = flexvc_serde::to_json(&cfg);
        let back: SimConfig = flexvc_serde::from_json(&json).unwrap();
        prop_assert_eq!(flexvc_serde::to_json(&back), json.clone(), "JSON: {}", json);

        let toml = flexvc_serde::to_toml(&cfg).unwrap();
        let back: SimConfig = flexvc_serde::from_toml(&toml).unwrap();
        prop_assert_eq!(flexvc_serde::to_json(&back), json, "TOML: {}", toml);
    }

    /// The `qos` key is present exactly when QoS is configured; a
    /// single-class config keeps the legacy wire form.
    #[test]
    fn qos_key_mirrors_configuration(cfg in arb_cfg()) {
        let json = flexvc_serde::to_json(&cfg);
        prop_assert_eq!(
            json.contains("\"qos\""),
            cfg.qos.is_some(),
            "wire form: {}",
            json
        );
    }
}

/// A pre-QoS (legacy) config file — no `qos` key, no `control_fraction`
/// — parses to exactly `qos: None`, `mix: None`, and re-serializes
/// byte-identically: old files and new single-class files are the same
/// wire form.
#[test]
fn legacy_single_class_wire_form_is_stable() {
    let cfg =
        SimConfig::dragonfly_baseline(2, RoutingMode::Min, Workload::oblivious(Pattern::Uniform))
            .with_flexvc(Arrangement::dragonfly(4, 2));
    let json = flexvc_serde::to_json(&cfg);
    assert!(
        !json.contains("qos"),
        "single-class JSON grew a qos key: {json}"
    );
    assert!(
        !json.contains("control_fraction"),
        "single-class JSON grew a mix key: {json}"
    );
    let back: SimConfig = flexvc_serde::from_json(&json).unwrap();
    assert_eq!(back.qos, None);
    assert_eq!(back.workload.class_mix(), None);
    assert_eq!(flexvc_serde::to_json(&back), json);
    back.validate().unwrap();
}

/// Partitioned maps keep their budgets through the wire; shared maps
/// collapse to the compact string form.
#[test]
fn class_vc_map_wire_forms() {
    let part = QosConfig::partitioned(3, 1);
    let json = flexvc_serde::to_json(&part);
    let back: QosConfig = flexvc_serde::from_json(&json).unwrap();
    assert_eq!(
        back.vc_map,
        ClassVcMap::Partitioned {
            control_local: 3,
            control_global: 1
        }
    );
    let shared = flexvc_serde::to_json(&QosConfig::shared());
    assert!(
        shared.contains("\"shared\""),
        "shared map wire form: {shared}"
    );
}
