//! Print the `Golden` struct literals for the engine-equivalence point set
//! (`tests/engine_equivalence.rs`).
//!
//! Usage: `cargo run --release -p flexvc-sim --example record_goldens [name…]`
//! — with names, only the matching points are printed. Re-record a snapshot
//! only when a point's behavior changes *on purpose*; paste the printed
//! literal into the `GOLDENS` table.

use flexvc_sim::equivalence::points;
use flexvc_sim::runner::run_one;

fn main() {
    let filter: Vec<String> = std::env::args().skip(1).collect();
    for (name, cfg, load, seed) in points() {
        if !filter.is_empty() && !filter.contains(&name) {
            continue;
        }
        let r = run_one(&cfg, load, seed).unwrap();
        println!("    Golden {{");
        println!("        name: \"{name}\",");
        println!("        accepted: {:?},", r.accepted);
        println!("        latency: {:?},", r.latency);
        println!("        latency_req: {:?},", r.latency_req);
        println!("        latency_rep: {:?},", r.latency_rep);
        println!("        misroute_fraction: {:?},", r.misroute_fraction);
        println!("        avg_hops: {:?},", r.avg_hops);
        println!("        reverts_per_packet: {:?},", r.reverts_per_packet);
        println!("        drop_fraction: {:?},", r.drop_fraction);
        println!("        deadlocked: {:?},", r.deadlocked);
        println!("        latency_p99: {:?},", r.latency_p99);
        println!("        hist_count: {},", r.latency_hist.count());
        println!("        local_vc_occupancy: &{:?},", r.local_vc_occupancy);
        println!("        global_vc_occupancy: &{:?},", r.global_vc_occupancy);
        println!("        flows_completed: {:?},", r.flows_completed);
        println!("        fct_p50: {:?},", r.fct_p50);
        println!("        fct_p99: {:?},", r.fct_p99);
        println!("        slowdown_mean: {:?},", r.slowdown_mean);
        println!("    }},");
    }
}
