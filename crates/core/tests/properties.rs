//! Property-based tests of the core position framework and policies.

use flexvc_core::classify::{classify, NetworkFamily, Support};
use flexvc_core::policy::{flexvc_options, flexvc_options_lookahead};
use flexvc_core::{Arrangement, HopKind, LinkClass, MessageClass, RoutingMode};
use proptest::prelude::*;

fn arb_class() -> impl Strategy<Value = LinkClass> {
    prop_oneof![Just(LinkClass::Local), Just(LinkClass::Global)]
}

/// Arbitrary arrangement with at least one Local (so minimal hops exist) and
/// 2..=12 positions, optionally split into request/reply parts.
fn arb_arrangement() -> impl Strategy<Value = Arrangement> {
    (
        proptest::collection::vec(arb_class(), 1..=11),
        any::<bool>(),
        0usize..11,
    )
        .prop_map(|(mut seq, split, cut)| {
            seq.insert(0, LinkClass::Local);
            if split && seq.len() >= 2 {
                let cut = 1 + cut % (seq.len() - 1);
                Arrangement::with_request_len(seq, cut)
            } else {
                Arrangement::new(seq)
            }
        })
}

/// Arbitrary hop sequence (1..=6 hops).
fn arb_hops() -> impl Strategy<Value = Vec<LinkClass>> {
    proptest::collection::vec(arb_class(), 1..=6)
}

proptest! {
    /// position() and vc_index_at() are inverse bijections per class.
    #[test]
    fn position_index_roundtrip(arr in arb_arrangement()) {
        for pos in 0..arr.len() {
            let c = arr.class_at(pos);
            let idx = arr.vc_index_at(pos);
            prop_assert_eq!(arr.position(c, idx), Some(pos));
        }
        for c in [LinkClass::Local, LinkClass::Global] {
            for idx in 0..arr.vc_count(c) {
                let pos = arr.position(c, idx).unwrap();
                prop_assert_eq!(arr.vc_index_at(pos), idx);
                prop_assert_eq!(arr.class_at(pos), c);
            }
        }
    }

    /// Embedding is monotone in the starting position: anything that embeds
    /// after position q also embeds after any q' < q (and from the start).
    #[test]
    fn embeds_monotone(arr in arb_arrangement(), hops in arb_hops(), q in 0usize..12) {
        let region = (0, arr.len());
        let q = q % arr.len();
        if arr.embeds(&hops, Some(q), region) {
            for q2 in (0..q).rev() {
                prop_assert!(arr.embeds(&hops, Some(q2), region));
            }
            prop_assert!(arr.embeds(&hops, None, region));
        }
    }

    /// max_landing returns the maximum: the returned landing satisfies the
    /// embedding and every higher same-class landing fails it.
    #[test]
    fn max_landing_is_maximal(arr in arb_arrangement(), hops in arb_hops()) {
        let region = (0, arr.len());
        let hop = hops[0];
        let rest = &hops[1..];
        if let Some(q) = arr.max_landing(hop, rest, None, arr.len(), region) {
            prop_assert_eq!(arr.class_at(q), hop);
            prop_assert!(arr.embeds(rest, Some(q), region));
            for idx in 0..arr.vc_count(hop) {
                let pos = arr.position(hop, idx).unwrap();
                if pos > q {
                    prop_assert!(!arr.embeds(rest, Some(pos), region));
                }
            }
        }
    }

    /// Every VC offered by flexvc_options preserves the deadlock invariant:
    /// safe hops keep the planned remainder embeddable above the landing,
    /// opportunistic hops keep the escape embeddable and respect the floor.
    #[test]
    fn options_preserve_escape_invariant(
        arr in arb_arrangement(),
        planned in arb_hops(),
        esc in arb_hops(),
        cur in proptest::option::of(0usize..12),
        msg in prop_oneof![Just(MessageClass::Request), Just(MessageClass::Reply)],
    ) {
        let msg = if arr.has_reply_part() { msg } else { MessageClass::Request };
        let cur = cur.map(|c| c % arr.len());
        let escape: Vec<LinkClass> = esc;
        if let Some(opts) = flexvc_options(&arr, msg, cur, &planned, &escape) {
            let region = arr.safe_region(msg);
            let hop = planned[0];
            prop_assert!(opts.lo <= opts.hi);
            prop_assert!(opts.hi < arr.vc_count(hop));
            for idx in opts.iter() {
                let q = arr.position(hop, idx).unwrap();
                let (_, land_hi) = arr.landing_region(msg);
                prop_assert!(q < land_hi, "landing inside the landing region");
                match opts.kind {
                    HopKind::Safe => {
                        prop_assert!(arr.embeds(&planned[1..], Some(q), region));
                    }
                    HopKind::Opportunistic => {
                        prop_assert!(arr.embeds(&escape, Some(q), region));
                        if let Some(p) = cur {
                            prop_assert!(q >= p, "floor c_j1 >= c_j0");
                        }
                    }
                }
            }
        }
    }

    /// The lookahead never *widens* the plain options and never changes safe
    /// hops.
    #[test]
    fn lookahead_is_a_restriction(
        arr in arb_arrangement(),
        planned in arb_hops(),
        cur in proptest::option::of(0usize..12),
    ) {
        let cur = cur.map(|c| c % arr.len());
        // Use the planned tail as every hop's escape (a minimal-plan shape).
        let escapes: Vec<&[LinkClass]> =
            (0..planned.len()).map(|i| &planned[i + 1..]).collect();
        let plain = flexvc_options(&arr, MessageClass::Request, cur, &planned, escapes[0]);
        let checked =
            flexvc_options_lookahead(&arr, MessageClass::Request, cur, &planned, &escapes);
        match (plain, checked) {
            (None, None) => {}
            (Some(p), Some(c)) => {
                prop_assert_eq!(p.kind, c.kind);
                prop_assert_eq!(p.lo, c.lo);
                prop_assert!(c.hi <= p.hi);
                if p.kind == HopKind::Safe {
                    prop_assert_eq!(p.hi, c.hi);
                }
            }
            (Some(_), None) => {} // lookahead may reject entirely
            (None, Some(_)) => prop_assert!(false, "lookahead cannot widen"),
        }
    }

    /// Support is monotone in VC count for generic networks of *any*
    /// supported diameter (1-D..3-D HyperX): adding a VC never reduces what
    /// the network can route (Table I reads top-down at every diameter).
    #[test]
    fn support_monotone_in_vcs(n in 2usize..8, d in 1usize..4) {
        let family = NetworkFamily::generic(d);
        for mode in [RoutingMode::Min, RoutingMode::Valiant, RoutingMode::Par] {
            let small = classify(
                family,
                mode,
                &Arrangement::generic(n),
                MessageClass::Request,
            );
            let large = classify(
                family,
                mode,
                &Arrangement::generic(n + 1),
                MessageClass::Request,
            );
            prop_assert!(large >= small, "{mode} d={d}: {small:?} -> {large:?}");
        }
    }

    /// The HyperX Table-V analogue is exact: `min_hyperx_vcs` is the
    /// *smallest* generic arrangement on which the mode is Safe — it
    /// classifies Safe, and one VC fewer does not.
    #[test]
    fn min_hyperx_vcs_is_tight(d in 1usize..4) {
        let family = NetworkFamily::generic(d);
        for mode in [
            RoutingMode::Min,
            RoutingMode::Valiant,
            RoutingMode::Par,
            RoutingMode::Piggyback,
        ] {
            let n = mode.min_hyperx_vcs(d);
            prop_assert_eq!(
                classify(family, mode, &Arrangement::generic(n), MessageClass::Request),
                Support::Safe,
                "{} at diameter {} with {} VCs",
                mode, d, n
            );
            if n > 1 {
                prop_assert!(
                    classify(
                        family,
                        mode,
                        &Arrangement::generic(n - 1),
                        MessageClass::Request
                    ) < Support::Safe,
                    "{} at diameter {} safe with only {} VCs?",
                    mode, d, n - 1
                );
            }
        }
    }

    /// Any route a diameter-`d` HyperX can generate — MIN (at most `d`
    /// single-class hops) or VAL (two minimal subpaths of at most `d` hops
    /// each) — embeds in its mode's reference arrangement from position 0:
    /// generated routes are always safe.
    #[test]
    fn hyperx_route_shapes_embed_in_references(
        d in 1usize..4,
        min_hops in 0usize..4,
        val_split in (0usize..4, 0usize..4),
    ) {
        let min_hops = min_hops.min(d);
        let min_arr = Arrangement::generic(RoutingMode::Min.min_hyperx_vcs(d));
        let path = vec![LinkClass::Local; min_hops];
        prop_assert!(min_arr.embeds(&path, None, (0, min_arr.len())));

        let (a, b) = (val_split.0.min(d), val_split.1.min(d));
        let val_arr = Arrangement::generic(RoutingMode::Valiant.min_hyperx_vcs(d));
        let detour = vec![LinkClass::Local; a + b];
        prop_assert!(val_arr.embeds(&detour, None, (0, val_arr.len())));
        // The escape from any prefix position also embeds (Definition 2's
        // substrate): after i hops the minimal continuation has at most d
        // hops and must fit above position i - 1.
        let worst_escape = vec![LinkClass::Local; d];
        for i in 1..=a {
            prop_assert!(val_arr.embeds(&worst_escape, Some(i - 1), (0, val_arr.len())));
        }
    }

    /// MIN is safe on every arrangement whose request prefix embeds l-g-l —
    /// and FlexVC's first-hop options always exist for it.
    #[test]
    fn min_routing_always_has_options(l in 2usize..6, g in 1usize..4) {
        let arr = Arrangement::dragonfly(l, g);
        prop_assert_eq!(
            classify(NetworkFamily::Dragonfly, RoutingMode::Min, &arr, MessageClass::Request),
            Support::Safe
        );
        let min = [LinkClass::Local, LinkClass::Global, LinkClass::Local];
        let mut cur = None;
        for i in 0..3 {
            let opts = flexvc_options(&arr, MessageClass::Request, cur, &min[i..], &min[i + 1..])
                .expect("safe minimal hop");
            prop_assert_eq!(opts.kind, HopKind::Safe);
            cur = Some(arr.position(min[i], opts.hi).unwrap());
        }
    }
}
