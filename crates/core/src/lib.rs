//! # flexvc-core — the FlexVC virtual-channel management model
//!
//! This crate implements the central contribution of *FlexVC: Flexible
//! Virtual Channel Management in Low-Diameter Networks* (Fuentes et al.,
//! IPDPS 2017) as a pure, simulator-independent model:
//!
//! * [`LinkClass`] — link/buffer classes (local vs. global in a Dragonfly,
//!   a single generic class in diameter-2 networks such as Slim Fly).
//! * [`Arrangement`] — a *master reference sequence* of buffer classes that
//!   encodes a VC configuration (e.g. `4/2 = L G L L G L`), optionally split
//!   into request and reply sub-sequences for protocol-deadlock avoidance.
//! * [`policy`] — the per-hop allowed-VC rules: the baseline distance-based
//!   policy (one fixed VC per reference hop) and FlexVC's relaxed rule with
//!   *safe* and *opportunistic* hops (Definitions 1 and 2 of the paper).
//! * [`mod@classify`] — analytic path classification reproducing Tables I–IV of
//!   the paper (Safe / Opportunistic / not supported).
//! * [`selection`] — VC selection functions (JSQ, highest, lowest, random;
//!   Section VI-A of the paper).
//! * [`credit`] — split min/non-min occupancy accounting used by
//!   FlexVC-minCred (Section III-D).
//!
//! The cycle-accurate simulator in `flexvc-sim` consumes these rules verbatim,
//! so the same code path that reproduces the paper's tables also drives every
//! forwarding decision in the simulation.
//!
//! ## The position framework
//!
//! Deadlock freedom of distance-based schemes follows from assigning each hop
//! a buffer whose *position* in a master sequence strictly increases along any
//! blocking chain. FlexVC relaxes the per-hop assignment to a *range* of
//! positions while preserving the invariant that, from every buffer a packet
//! may occupy, a strictly-increasing *escape path* to its destination exists
//! (its planned path if the hop was safe, the minimal continuation otherwise).
//! See `DESIGN.md` §2 for the full derivation and the mapping to the paper's
//! definitions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrangement;
pub mod classify;
pub mod credit;
pub mod decision;
pub mod link;
pub mod policy;
pub mod routing;
pub mod selection;
pub mod serde_impls;

pub use arrangement::Arrangement;
pub use classify::{classify, NetworkFamily, Support};
pub use credit::{CreditClass, SplitOccupancy};
pub use decision::{choose_nonminimal, dal_divert_choice, ugal_choice, PathChoice, SensedState};
pub use link::{LinkClass, MessageClass, TrafficClass};
pub use policy::{baseline_vc, flexvc_options, HopKind, HopVcs, VcPolicy};
pub use routing::RoutingMode;
pub use selection::VcSelection;
