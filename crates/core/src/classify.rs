//! Analytic path classification: reproduces Tables I–IV of the paper.
//!
//! A (network family, routing mode, arrangement, message class) combination
//! is classified as:
//!
//! * [`Support::Safe`] — the routing mode's *worst-case* reference path
//!   embeds as a strictly-increasing sequence in the message class's safe
//!   region, so every path the mode can produce is a safe path.
//! * [`Support::Opportunistic`] — not safe, but the *canonical
//!   randomization realization* of the mode traverses under FlexVC's
//!   per-hop rules (mixing safe and opportunistic hops with worst-case
//!   minimal escapes). For a Dragonfly this realization is the paper's
//!   `l0 − g1 − l2 − g3 − l4` shape: two hops to the entry router of an
//!   arbitrary intermediate group followed by a worst-case minimal
//!   continuation — the detour granularity that load-balances adversarial
//!   traffic. For a diameter-2 network it is the full 2+2-hop Valiant path.
//! * [`Support::Unsupported`] — the mode cannot make non-minimal progress
//!   at all (`X` in the paper's tables).
//!
//! The traversal uses exactly the same [`flexvc_options`] rule as the
//! simulator, searching over landing choices (a hop's landing constrains the
//! floors of later opportunistic hops).

use crate::arrangement::{Arrangement, Pos};
use crate::link::{LinkClass, MessageClass};
use crate::policy::flexvc_options;
use crate::routing::RoutingMode;

/// Network family for classification purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkFamily {
    /// Generic diameter-2 network without link-class restrictions
    /// (Slim Fly, demi-PN; Tables I and II).
    Diameter2,
    /// Diameter-3 Dragonfly with local/global link classes (Tables III, IV).
    Dragonfly,
    /// Dragonfly+ / Megafly: groups are two-level fat trees (leaf routers
    /// hold the hosts, spine routers hold the global links), so minimal
    /// leaf-to-leaf paths follow `local-up — global — local-down` and map
    /// onto the Dragonfly's `L G L` class texture. The family is distinct
    /// because its *worst-case minimal escape* is longer: a detoured packet
    /// parked on a spine without a direct global link to the destination
    /// group must descend, re-ascend, cross and descend — `L L G L` — which
    /// shifts where the opportunistic/unsupported boundaries fall (see
    /// `worst_min` and `valiant_specs`).
    DragonflyPlus,
    /// Generic single-class network of an arbitrary diameter `d` (an `n`-D
    /// HyperX has `d = n`). Construct through [`NetworkFamily::generic`]
    /// only (enforced outside this crate by `#[non_exhaustive]`): diameter
    /// 2 canonicalizes to [`NetworkFamily::Diameter2`], keeping one
    /// representation per family so derived equality and hashing agree
    /// with serde round-trips.
    #[non_exhaustive]
    Generic {
        /// Network diameter in hops (minimal reference length).
        diameter: usize,
    },
}

impl NetworkFamily {
    /// Canonical generic family of diameter `d` (`d = 2` yields
    /// [`NetworkFamily::Diameter2`]).
    pub fn generic(diameter: usize) -> Self {
        assert!(diameter >= 1, "degenerate diameter");
        if diameter == 2 {
            NetworkFamily::Diameter2
        } else {
            NetworkFamily::Generic { diameter }
        }
    }

    /// Diameter of a generic (single-class) family; `None` for families with
    /// link-class restrictions (Dragonfly).
    pub fn generic_diameter(self) -> Option<usize> {
        match self {
            NetworkFamily::Diameter2 => Some(2),
            NetworkFamily::Generic { diameter } => Some(diameter),
            NetworkFamily::Dragonfly | NetworkFamily::DragonflyPlus => None,
        }
    }
}

/// Classification outcome, ordered `Unsupported < Opportunistic < Safe`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Support {
    /// `X` in the paper: the mode cannot be used with this arrangement.
    Unsupported,
    /// Usable through opportunistic hops ("opport." in the paper).
    Opportunistic,
    /// All paths of the mode are safe.
    Safe,
}

impl Support {
    /// Table rendering used by the paper.
    pub fn label(self) -> &'static str {
        match self {
            Support::Safe => "safe",
            Support::Opportunistic => "opport.",
            Support::Unsupported => "X",
        }
    }
}

impl std::fmt::Display for Support {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One hop of a canonical realization: the plan the router sees at that hop
/// and the escape (minimal continuation from the next router) used when the
/// plan does not embed.
#[derive(Debug, Clone)]
struct HopSpec {
    planned: Vec<LinkClass>,
    escape: Vec<LinkClass>,
}

/// Worst-case minimal *continuation* from any router a realization can park
/// a packet on — the escape path FlexVC's reversion may demand. Dragonfly:
/// `l g l` from anywhere. Dragonfly+: a spine without a direct global link
/// to the destination group must go down, up, across and down — `L L G L`
/// (leaf-origin minimal paths are only `L G L`, but detours land on
/// spines). Generic diameter-`d`: `T^d`.
fn worst_min(family: NetworkFamily) -> Vec<LinkClass> {
    use LinkClass::*;
    match family.generic_diameter() {
        Some(d) => vec![Local; d],
        None => match family {
            NetworkFamily::DragonflyPlus => vec![Local, Local, Global, Local],
            _ => vec![Local, Global, Local],
        },
    }
}

/// Canonical Valiant realization: `to_group` hops reach an arbitrary detour
/// point, then a worst-case minimal continuation.
fn valiant_specs(family: NetworkFamily) -> Vec<HopSpec> {
    use LinkClass::*;
    let (first, second): (Vec<LinkClass>, Vec<LinkClass>) = match family.generic_diameter() {
        // Generic diameter-d network: worst-case minimal path to the detour
        // router, then a worst-case minimal continuation.
        Some(d) => (vec![Local; d], vec![Local; d]),
        // Dragonfly+: the detour point is a *leaf* of an arbitrary
        // intermediate group (up — global — down), and the continuation
        // from a leaf is again up — global — down. Mid-detour escapes use
        // the longer spine-origin `worst_min` below.
        None if family == NetworkFamily::DragonflyPlus => {
            (vec![Local, Global, Local], vec![Local, Global, Local])
        }
        // Dragonfly: local to a neighbour + its global link reaches an
        // arbitrary intermediate group; continuation is worst-case minimal.
        None => (vec![Local, Global], vec![Local, Global, Local]),
    };
    let f_len = first.len();
    let hops: Vec<LinkClass> = first.iter().chain(second.iter()).copied().collect();
    (0..hops.len())
        .map(|i| HopSpec {
            planned: hops[i..].to_vec(),
            escape: if i + 1 < f_len {
                // Next router is an arbitrary point of the detour: assume the
                // worst-case minimal continuation.
                worst_min(family)
            } else if i + 1 == f_len {
                // Next router is the detour point itself.
                second.clone()
            } else {
                hops[i + 1..].to_vec()
            },
        })
        .collect()
}

/// Canonical DAL realization on a generic diameter-`d` network: every
/// dimension misrouted once — `2d` hops in misroute/correction pairs. The
/// escape after a misroute hop of dimension `i` still has to fix dimensions
/// `i..d` (the misroute lands on a wrong coordinate of `i`), after the
/// correction only `i+1..d`. Dragonfly families fall back to the Valiant
/// realization (DAL is rejected there by configuration validation; the
/// fallback keeps classification total).
fn dal_specs(family: NetworkFamily) -> Vec<HopSpec> {
    use LinkClass::*;
    let Some(d) = family.generic_diameter() else {
        return valiant_specs(family);
    };
    (0..2 * d)
        .map(|j| {
            let dim = j / 2;
            let esc_len = if j % 2 == 0 { d - dim } else { d - dim - 1 };
            HopSpec {
                planned: vec![Local; 2 * d - j],
                escape: vec![Local; esc_len],
            }
        })
        .collect()
}

/// Canonical PAR realization: one minimal hop, then the Valiant realization
/// from the divert router.
fn par_specs(family: NetworkFamily) -> Vec<HopSpec> {
    let min = worst_min(family);
    let first = HopSpec {
        planned: min.clone(),
        escape: min[1..].to_vec(),
    };
    std::iter::once(first)
        .chain(valiant_specs(family))
        .collect()
}

/// Depth-first search over landing choices: can the realization traverse?
fn traverse(arr: &Arrangement, msg: MessageClass, specs: &[HopSpec]) -> bool {
    fn dfs(
        arr: &Arrangement,
        msg: MessageClass,
        specs: &[HopSpec],
        i: usize,
        cur: Pos,
        seen: &mut std::collections::HashSet<(usize, isize)>,
    ) -> bool {
        if i == specs.len() {
            return true;
        }
        let key = (i, cur.map_or(-1, |p| p as isize));
        if !seen.insert(key) {
            return false; // already explored and failed
        }
        let spec = &specs[i];
        let Some(opts) = flexvc_options(arr, msg, cur, &spec.planned, &spec.escape) else {
            return false;
        };
        let class = spec.planned[0];
        for idx in opts.iter() {
            let pos = arr.position(class, idx).expect("index within range");
            if dfs(arr, msg, specs, i + 1, Some(pos), seen) {
                return true;
            }
        }
        false
    }
    let mut seen = std::collections::HashSet::new();
    dfs(arr, msg, specs, 0, None, &mut seen)
}

/// Classify the support of `routing` on `arr` for message class `msg`.
pub fn classify(
    family: NetworkFamily,
    routing: RoutingMode,
    arr: &Arrangement,
    msg: MessageClass,
) -> Support {
    let worst: &[LinkClass] = match family.generic_diameter() {
        Some(d) => routing.generic_reference(d),
        None => routing.dragonfly_reference(),
    };
    if arr.embeds(worst, None, arr.safe_region(msg)) {
        return Support::Safe;
    }
    let specs = match routing {
        RoutingMode::Min => return Support::Unsupported,
        RoutingMode::Valiant | RoutingMode::Piggyback | RoutingMode::UgalL | RoutingMode::UgalG => {
            valiant_specs(family)
        }
        RoutingMode::Dal => dal_specs(family),
        RoutingMode::Par => par_specs(family),
    };
    if traverse(arr, msg, &specs) {
        Support::Opportunistic
    } else {
        Support::Unsupported
    }
}

/// Classify requests and replies of a split arrangement; for single-class
/// arrangements both components are the request classification.
pub fn classify_both(
    family: NetworkFamily,
    routing: RoutingMode,
    arr: &Arrangement,
) -> (Support, Support) {
    let req = classify(family, routing, arr, MessageClass::Request);
    if arr.has_reply_part() {
        (req, classify(family, routing, arr, MessageClass::Reply))
    } else {
        (req, req)
    }
}

/// Combined support of a split arrangement (the paper's single-cell entries):
/// the weaker of the request and reply classifications.
pub fn classify_combined(
    family: NetworkFamily,
    routing: RoutingMode,
    arr: &Arrangement,
) -> Support {
    let (req, rep) = classify_both(family, routing, arr);
    req.min(rep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use NetworkFamily::*;
    use RoutingMode::*;
    use Support::*;

    fn d2(n: usize) -> Arrangement {
        Arrangement::generic(n)
    }

    /// Table I: allowed paths using FlexVC in a generic diameter-2 network.
    #[test]
    fn table_i() {
        let expected: [(usize, [Support; 3]); 4] = [
            (2, [Safe, Unsupported, Unsupported]),
            (3, [Safe, Opportunistic, Opportunistic]),
            (4, [Safe, Safe, Opportunistic]),
            (5, [Safe, Safe, Safe]),
        ];
        for (vcs, row) in expected {
            let arr = d2(vcs);
            for (mode, want) in [Min, Valiant, Par].into_iter().zip(row) {
                assert_eq!(
                    classify(Diameter2, mode, &arr, MessageClass::Request),
                    want,
                    "{mode} with {vcs} VCs"
                );
            }
        }
    }

    /// Table II: FlexVC with protocol deadlock in a diameter-2 network
    /// (combined request+reply support).
    #[test]
    fn table_ii() {
        let expected: [((usize, usize), [Support; 3]); 5] = [
            ((2, 2), [Safe, Unsupported, Unsupported]),
            ((3, 2), [Safe, Opportunistic, Opportunistic]),
            ((3, 3), [Safe, Opportunistic, Opportunistic]),
            ((4, 4), [Safe, Safe, Opportunistic]),
            ((5, 5), [Safe, Safe, Safe]),
        ];
        for ((req, rep), row) in expected {
            let arr = Arrangement::generic_rr(req, rep);
            for (mode, want) in [Min, Valiant, Par].into_iter().zip(row) {
                assert_eq!(
                    classify_combined(Diameter2, mode, &arr),
                    want,
                    "{mode} with {req}+{rep} VCs"
                );
            }
        }
    }

    /// Table III: FlexVC in a Dragonfly following local/global order.
    #[test]
    fn table_iii() {
        let expected: [((usize, usize), [Support; 3]); 6] = [
            ((2, 1), [Safe, Unsupported, Unsupported]),
            ((3, 1), [Safe, Unsupported, Unsupported]),
            ((2, 2), [Safe, Unsupported, Unsupported]),
            ((3, 2), [Safe, Opportunistic, Opportunistic]),
            ((4, 2), [Safe, Safe, Opportunistic]),
            ((5, 2), [Safe, Safe, Safe]),
        ];
        for ((l, g), row) in expected {
            let arr = Arrangement::dragonfly(l, g);
            for (mode, want) in [Min, Valiant, Par].into_iter().zip(row) {
                assert_eq!(
                    classify(Dragonfly, mode, &arr, MessageClass::Request),
                    want,
                    "{mode} with {l}/{g} VCs ({})",
                    arr.notation()
                );
            }
        }
    }

    /// Table IV: FlexVC with protocol deadlock in a Dragonfly. The 4/2 cell
    /// is the paper's "X / opport." (requests unsupported, replies
    /// opportunistic).
    #[test]
    fn table_iv() {
        type Cfg = ((usize, usize), (usize, usize));
        let configs: [(Cfg, [(Support, Support); 3]); 4] = [
            (
                ((2, 1), (2, 1)), // 4/2
                [
                    (Safe, Safe),
                    (Unsupported, Opportunistic),
                    (Unsupported, Opportunistic),
                ],
            ),
            (
                ((3, 2), (2, 1)), // 5/3
                [
                    (Safe, Safe),
                    (Opportunistic, Opportunistic),
                    (Opportunistic, Opportunistic),
                ],
            ),
            (
                ((4, 2), (4, 2)), // 8/4
                [(Safe, Safe), (Safe, Safe), (Opportunistic, Opportunistic)],
            ),
            (
                ((5, 2), (5, 2)), // 10/4
                [(Safe, Safe), (Safe, Safe), (Safe, Safe)],
            ),
        ];
        for ((req, rep), row) in configs {
            let arr = Arrangement::dragonfly_rr(req, rep);
            for (mode, want) in [Min, Valiant, Par].into_iter().zip(row) {
                assert_eq!(
                    classify_both(Dragonfly, mode, &arr),
                    want,
                    "{mode} with {} ({})",
                    arr.count_label(),
                    arr.notation()
                );
            }
        }
    }

    /// Generic diameter-3 networks (3-D HyperX): the Table-I pattern shifts
    /// with the diameter — MIN safe at `d` VCs, VAL opportunistic from
    /// `d + 1` and safe at `2d`, PAR safe at `2d + 1`.
    #[test]
    fn generic_diameter3_follows_table_i_pattern() {
        let fam = NetworkFamily::generic(3);
        assert_eq!(fam, NetworkFamily::Generic { diameter: 3 });
        let expected: [(usize, [Support; 3]); 5] = [
            (3, [Safe, Unsupported, Unsupported]),
            (4, [Safe, Opportunistic, Opportunistic]),
            (5, [Safe, Opportunistic, Opportunistic]),
            (6, [Safe, Safe, Opportunistic]),
            (7, [Safe, Safe, Safe]),
        ];
        for (vcs, row) in expected {
            let arr = d2(vcs);
            for (mode, want) in [Min, Valiant, Par].into_iter().zip(row) {
                assert_eq!(
                    classify(fam, mode, &arr, MessageClass::Request),
                    want,
                    "{mode} with {vcs} VCs at diameter 3"
                );
            }
        }
    }

    /// `generic(2)` canonicalizes to `Diameter2`, so both spellings classify
    /// identically by construction.
    #[test]
    fn generic_two_is_diameter2() {
        assert_eq!(NetworkFamily::generic(2), Diameter2);
        assert_eq!(NetworkFamily::Diameter2.generic_diameter(), Some(2));
        assert_eq!(NetworkFamily::generic(3).generic_diameter(), Some(3));
        assert_eq!(NetworkFamily::Dragonfly.generic_diameter(), None);
    }

    /// Table-V analogue rows for the new adaptive modes: UGAL-L/G classify
    /// exactly like Valiant (their non-minimal paths *are* Valiant paths),
    /// on both Dragonfly and generic families.
    #[test]
    fn ugal_matches_valiant_everywhere() {
        for (l, g) in [(2, 1), (3, 2), (4, 2), (5, 2)] {
            let arr = Arrangement::dragonfly(l, g);
            for ugal in [UgalL, UgalG] {
                assert_eq!(
                    classify(Dragonfly, ugal, &arr, MessageClass::Request),
                    classify(Dragonfly, Valiant, &arr, MessageClass::Request),
                    "{ugal} {l}/{g}"
                );
            }
        }
        for fam in [Diameter2, NetworkFamily::generic(3)] {
            for vcs in 2..=7 {
                let arr = d2(vcs);
                for ugal in [UgalL, UgalG] {
                    assert_eq!(
                        classify(fam, ugal, &arr, MessageClass::Request),
                        classify(fam, Valiant, &arr, MessageClass::Request),
                        "{ugal} {vcs} VCs on {fam:?}"
                    );
                }
            }
        }
    }

    /// Table-I/V analogue for DAL on generic diameter-`d` networks: safe at
    /// `2d` VCs (every dimension misrouted once), opportunistic from
    /// `d + 1` (the per-dimension realization traverses with minimal
    /// escapes), unsupported at `d` (no room for any misroute).
    #[test]
    fn dal_table_analogue() {
        for d in 2..=3 {
            let fam = NetworkFamily::generic(d);
            assert_eq!(
                classify(fam, Dal, &d2(d), MessageClass::Request),
                Unsupported,
                "DAL with {d} VCs at diameter {d}"
            );
            for vcs in (d + 1)..(2 * d) {
                assert_eq!(
                    classify(fam, Dal, &d2(vcs), MessageClass::Request),
                    Opportunistic,
                    "DAL with {vcs} VCs at diameter {d}"
                );
            }
            assert_eq!(
                classify(fam, Dal, &d2(2 * d), MessageClass::Request),
                Safe,
                "DAL with {} VCs at diameter {d}",
                2 * d
            );
        }
        // Split request/reply arrangements classify through the same specs.
        let arr = Arrangement::generic_rr(3, 2);
        assert!(classify_combined(Diameter2, Dal, &arr) >= Opportunistic);
    }

    /// Dragonfly+ classifier rows. MIN classifies like the Dragonfly
    /// (leaf-origin minimal paths are `L G L`, and MIN never detours), so
    /// FlexVC MIN works from 2/1. Non-minimal modes are *stricter* than on
    /// the Dragonfly: their realizations park packets on spines whose
    /// worst minimal escape is `L L G L`, which eats the opportunistic
    /// slack — 3/2 (opportunistic VAL on a Dragonfly) is unsupported, and
    /// support starts only at the safe 4/2.
    #[test]
    fn dragonfly_plus_rows() {
        use NetworkFamily::DragonflyPlus as Dfp;
        let expected: [((usize, usize), [Support; 2]); 5] = [
            ((2, 1), [Safe, Unsupported]),
            ((3, 1), [Safe, Unsupported]),
            ((3, 2), [Safe, Unsupported]), // opport. on Dragonfly, X here
            ((4, 2), [Safe, Safe]),
            ((8, 4), [Safe, Safe]),
        ];
        for ((l, g), row) in expected {
            let arr = Arrangement::dragonfly(l, g);
            for (mode, want) in [Min, Valiant].into_iter().zip(row) {
                assert_eq!(
                    classify(Dfp, mode, &arr, MessageClass::Request),
                    want,
                    "{mode} with {l}/{g} VCs on Dragonfly+ ({})",
                    arr.notation()
                );
            }
        }
        // The same 3/2 arrangement IS opportunistic on a plain Dragonfly —
        // the spine escape is what kills it on Dragonfly+.
        assert_eq!(
            classify(
                Dragonfly,
                Valiant,
                &Arrangement::dragonfly(3, 2),
                MessageClass::Request
            ),
            Opportunistic
        );
        // PB and UGAL share VAL's realization on Dragonfly+ too.
        for (l, g) in [(2, 1), (3, 2), (4, 2), (5, 2)] {
            let arr = Arrangement::dragonfly(l, g);
            for mode in [Piggyback, UgalL, UgalG] {
                assert_eq!(
                    classify(Dfp, mode, &arr, MessageClass::Request),
                    classify(Dfp, Valiant, &arr, MessageClass::Request),
                    "{mode} {l}/{g}"
                );
            }
        }
        // Request+reply splits classify through the same machinery.
        let rr = Arrangement::dragonfly_rr((4, 2), (4, 2));
        assert_eq!(classify_combined(Dfp, Valiant, &rr), Safe);
        assert_eq!(Dfp.generic_diameter(), None);
    }

    /// Piggyback classifies exactly like Valiant (same VC requirements).
    #[test]
    fn piggyback_matches_valiant() {
        for (l, g) in [(2, 1), (3, 2), (4, 2), (5, 2)] {
            let arr = Arrangement::dragonfly(l, g);
            assert_eq!(
                classify(Dragonfly, Piggyback, &arr, MessageClass::Request),
                classify(Dragonfly, Valiant, &arr, MessageClass::Request),
                "{l}/{g}"
            );
        }
    }

    /// The paper's §III-B headline: FlexVC supports MIN-safe plus
    /// opportunistic VAL/PAR with 3+2=5 VCs where the baseline needs
    /// 5+5=10 — a 50% reduction.
    #[test]
    fn fifty_percent_reduction_headline() {
        let flexvc = Arrangement::generic_rr(3, 2);
        assert_eq!(flexvc.total_vcs(), 5);
        assert!(classify_combined(Diameter2, Valiant, &flexvc) >= Opportunistic);
        assert!(classify_combined(Diameter2, Par, &flexvc) >= Opportunistic);
        let baseline_needs = Arrangement::generic_rr(5, 5);
        assert_eq!(baseline_needs.total_vcs(), 10);
        assert_eq!(classify_combined(Diameter2, Par, &baseline_needs), Safe);
    }

    /// Dragonfly §III-C headline: 5/3 supports opportunistic VAL and PAR in
    /// both subpaths versus the baseline's 10/4.
    #[test]
    fn dragonfly_5_3_headline() {
        let arr = Arrangement::dragonfly_rr((3, 2), (2, 1));
        assert_eq!(arr.total_vcs(), 8); // 5 local + 3 global
        assert_eq!(
            classify_both(Dragonfly, Valiant, &arr),
            (Opportunistic, Opportunistic)
        );
    }

    /// MIN must always be safe on every arrangement the simulator accepts;
    /// classify returns Unsupported for MIN only on degenerate arrangements.
    #[test]
    fn min_unsupported_on_degenerate() {
        let arr = Arrangement::new(vec![LinkClass::Local]); // no global VC
        assert_eq!(
            classify(Dragonfly, Min, &arr, MessageClass::Request),
            Unsupported
        );
    }

    #[test]
    fn support_ordering() {
        assert!(Unsupported < Opportunistic);
        assert!(Opportunistic < Safe);
        assert_eq!(Safe.min(Opportunistic), Opportunistic);
        assert_eq!(Unsupported.label(), "X");
        assert_eq!(Opportunistic.to_string(), "opport.");
    }

    use crate::link::LinkClass;
}
