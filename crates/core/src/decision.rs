//! Per-hop routing-decision rules: the pure half of the `RoutePolicy`
//! pipeline.
//!
//! Every adaptive mechanism in the repo — PB's injection choice, PAR's
//! in-transit divert, UGAL-L/G's weighted comparison and DAL's
//! per-dimension misroute — reduces to the same shape: *compare the sensed
//! cost of staying minimal against the sensed cost of the best non-minimal
//! candidate, with an optional remote-saturation veto*. This module holds
//! those comparisons as pure functions over sensed quantities, so they are
//! unit-testable without a network and shared verbatim between the
//! simulator's planning pipeline (`flexvc-sim::plan::RoutePolicy`) and any
//! analytic tooling.
//!
//! The simulator-side pipeline gathers the quantities through the
//! [`SensedState`] view (local credit occupancies, piggyback boards,
//! per-copy occupancies) and feeds them here; the functions never see
//! ports, topologies or RNGs, which is what keeps the existing MIN / VAL /
//! PAR / PB paths bit-identical under the refactor: same numbers in, same
//! decisions out.
//!
//! ## The `SensedState` contract
//!
//! An implementation promises exactly two things, both *read-only* and
//! *router-local in cost*:
//!
//! * [`SensedState::port_occupancy`] returns the deciding router's own
//!   view of an output port's downstream occupancy in phits, **after**
//!   the configured credit metric — under FlexVC-minCred that is the
//!   minimally-routed share only, otherwise the raw total. It reflects
//!   credits already accounted at the router this cycle; it never blocks
//!   and never mutates.
//! * [`SensedState::remote_saturated`] returns the *delayed* piggybacked
//!   saturation flag of a sensed channel (between 0 and 2 board-swap
//!   periods stale), and `false` whenever the routing mode publishes no
//!   boards — so board-free modes (MIN, VAL, PAR, UGAL-L) can share code
//!   paths with board-fed ones (PB, UGAL-G) without special cases.
//!
//! Decision functions may call either any number of times within one
//! decision; implementations must be stable within a decision point
//! (same arguments, same answer) so a decision is a pure function of the
//! sensed snapshot.

use crate::link::MessageClass;

/// Read-only congestion view at a decision point. Implemented by the
/// simulator over its credit mirrors and per-group boards; the decision
/// layer (and any future analytic model) consumes congestion exclusively
/// through this interface.
pub trait SensedState {
    /// Sensed occupancy (phits, after the configured credit metric) of the
    /// deciding router's output `port`.
    fn port_occupancy(&self, port: u16) -> u32;

    /// Delayed remote saturation flag of a sensed channel: `channel` of
    /// router `router_local` within `group`, for message class `class`.
    /// `false` when the mode publishes no boards.
    fn remote_saturated(
        &self,
        group: usize,
        router_local: usize,
        channel: usize,
        class: MessageClass,
    ) -> bool;
}

/// Outcome of an injection-time path selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathChoice {
    /// Follow the minimal path.
    Minimal,
    /// Take the non-minimal (Valiant / misroute) candidate.
    NonMinimal,
}

/// PB/PAR-style injection decision (paper §II): take the non-minimal path
/// when the minimal channel is remotely saturated or the local credit
/// comparison `q_min > 2·q_alt + T` prefers the alternative. This is the
/// exact rule the pre-refactor engine used; PAR calls it with
/// `min_sat = false`.
pub fn choose_nonminimal(min_sat: bool, q_min: u32, q_alt: u32, threshold_phits: u32) -> bool {
    min_sat || q_min > 2 * q_alt + threshold_phits
}

/// Classic UGAL comparison with hop-count weighting: prefer the
/// non-minimal candidate when the *latency estimate* of the minimal path
/// (`q_min · h_min`) exceeds the candidate's (`q_alt · h_alt`) by more
/// than the threshold. `min_sat` is UGAL-G's piggybacked veto (always
/// `false` for UGAL-L).
pub fn ugal_choice(
    min_sat: bool,
    q_min: u32,
    h_min: usize,
    q_alt: u32,
    h_alt: usize,
    threshold_phits: u32,
) -> PathChoice {
    let est_min = q_min as u64 * h_min as u64;
    let est_alt = q_alt as u64 * h_alt as u64;
    if min_sat || est_min > est_alt + threshold_phits as u64 {
        PathChoice::NonMinimal
    } else {
        PathChoice::Minimal
    }
}

/// DAL's per-dimension divert decision: misroute through an intermediate
/// coordinate when the direct hop's occupancy exceeds twice the best
/// divert candidate's plus the threshold — the same local comparison shape
/// as PAR's divert, applied one dimension at a time. The misroute costs an
/// extra hop, which the `2·q_div` weighting already penalizes.
pub fn dal_divert_choice(q_min: u32, q_divert: u32, threshold_phits: u32) -> bool {
    choose_nonminimal(false, q_min, q_divert, threshold_phits)
}

/// Best (lowest-occupancy) candidate among sensed ports, ties broken by
/// first appearance — the deterministic JSQ used for DAL divert candidates
/// and adaptive parallel-copy (`k > 1`) selection.
pub fn least_occupied<S: SensedState + ?Sized>(sensed: &S, ports: &[u16]) -> Option<(u16, u32)> {
    let mut best: Option<(u16, u32)> = None;
    for &p in ports {
        let occ = sensed.port_occupancy(p);
        let better = match best {
            None => true,
            Some((_, b)) => occ < b,
        };
        if better {
            if occ == 0 {
                // An idle port can't be beaten: any later zero loses the
                // first-appearance tie-break, so skip the remaining sensed
                // reads (minCred occupancy sums split counters per read).
                return Some((p, 0));
            }
            best = Some((p, occ));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Flat(&'static [u32]);
    impl SensedState for Flat {
        fn port_occupancy(&self, port: u16) -> u32 {
            self.0[port as usize]
        }
        fn remote_saturated(&self, _: usize, _: usize, _: usize, _: MessageClass) -> bool {
            false
        }
    }

    #[test]
    fn pb_rule_matches_pre_refactor_engine() {
        assert!(choose_nonminimal(true, 0, 100, 24));
        assert!(!choose_nonminimal(false, 10, 0, 24));
        assert!(choose_nonminimal(false, 25, 0, 24));
        assert!(!choose_nonminimal(false, 48, 12, 24)); // 48 <= 24+24
        assert!(choose_nonminimal(false, 49, 12, 24));
    }

    #[test]
    fn ugal_weighs_hop_counts() {
        // Equal occupancy: the minimal path's shorter hop count wins.
        assert_eq!(ugal_choice(false, 10, 3, 10, 6, 0), PathChoice::Minimal);
        // Minimal congested enough that 3 hops cost more than 6: divert.
        assert_eq!(ugal_choice(false, 30, 3, 10, 6, 0), PathChoice::NonMinimal);
        // Threshold biases toward minimal (hysteresis at idle).
        assert_eq!(ugal_choice(false, 30, 3, 10, 6, 64), PathChoice::Minimal);
        // The UGAL-G saturation veto overrides the comparison.
        assert_eq!(ugal_choice(true, 0, 3, 100, 6, 64), PathChoice::NonMinimal);
    }

    #[test]
    fn dal_divert_is_parlike() {
        assert!(!dal_divert_choice(10, 10, 24));
        assert!(dal_divert_choice(100, 10, 24));
        assert!(dal_divert_choice(49, 12, 24));
        assert!(!dal_divert_choice(48, 12, 24));
    }

    #[test]
    fn least_occupied_is_deterministic_jsq() {
        let s = Flat(&[5, 3, 3, 9]);
        assert_eq!(least_occupied(&s, &[0, 1, 2, 3]), Some((1, 3)));
        // Ties break by first appearance, so a reordered candidate list
        // changes the winner deterministically.
        assert_eq!(least_occupied(&s, &[2, 1]), Some((2, 3)));
        assert_eq!(least_occupied(&s, &[]), None);
    }
}
