//! Routing modes and their reference sequences.
//!
//! The paper evaluates four routing mechanisms (§II, §IV-A):
//!
//! * **MIN** — minimal routing, optimal for uniform traffic.
//! * **VAL** — Valiant routing to a random intermediate router
//!   ("Valiant-node" / "Valiant Any"), the oblivious defence against
//!   adversarial patterns; doubles the worst-case path length.
//! * **PAR** — Progressive Adaptive Routing: starts minimal, may divert to a
//!   Valiant path after a minimal local hop (in-transit adaptivity).
//! * **PB** — Piggyback source-adaptive routing: chooses MIN or VAL at
//!   injection from piggybacked remote-congestion state plus a local credit
//!   comparison. Its VC requirement equals VAL's.
//!
//! Each mode has a *reference sequence*: the class sequence of its longest
//! allowed path, which determines the minimum VC arrangement for the
//! baseline policy.

use crate::link::LinkClass;

/// Routing mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutingMode {
    /// Minimal routing.
    Min,
    /// Valiant-node oblivious misrouting.
    Valiant,
    /// Progressive Adaptive Routing (in-transit MIN→VAL switch).
    Par,
    /// Piggyback source-adaptive routing (MIN or VAL chosen at injection).
    Piggyback,
}

impl RoutingMode {
    /// Reference sequence in a Dragonfly (paper §II):
    /// MIN `l0 g1 l2`, VAL `l0 g1 l2 l3 g4 l5`, PAR `l0 l1 g2 l3 l4 g5 l6`.
    /// PB needs the same resources as VAL.
    pub fn dragonfly_reference(self) -> &'static [LinkClass] {
        use LinkClass::*;
        match self {
            RoutingMode::Min => &[Local, Global, Local],
            RoutingMode::Valiant | RoutingMode::Piggyback => {
                &[Local, Global, Local, Local, Global, Local]
            }
            RoutingMode::Par => &[Local, Local, Global, Local, Local, Global, Local],
        }
    }

    /// Reference sequence in a generic diameter-`d` network: MIN has `d`
    /// hops, VAL `2d`, PAR `2d + 1`.
    pub fn generic_reference(self, diameter: usize) -> Vec<LinkClass> {
        let hops = match self {
            RoutingMode::Min => diameter,
            RoutingMode::Valiant | RoutingMode::Piggyback => 2 * diameter,
            RoutingMode::Par => 2 * diameter + 1,
        };
        vec![LinkClass::Local; hops]
    }

    /// Minimum safe Dragonfly `(local, global)` VC counts for the baseline
    /// policy (Table V uses 2/1 for MIN and 4/2 for VAL and PB).
    pub fn min_dragonfly_vcs(self) -> (usize, usize) {
        match self {
            RoutingMode::Min => (2, 1),
            RoutingMode::Valiant | RoutingMode::Piggyback => (4, 2),
            RoutingMode::Par => (5, 2),
        }
    }

    /// Minimum safe VC count for the baseline policy in a generic
    /// single-class diameter-`dims` network — the HyperX analogue of
    /// Table V, where an `n`-dimensional HyperX has diameter `n`: MIN
    /// needs `n` VCs, VAL/PB `2n`, PAR `2n + 1`.
    pub fn min_hyperx_vcs(self, dims: usize) -> usize {
        self.generic_reference(dims).len()
    }

    /// Whether the mode may send packets over non-minimal paths.
    pub fn is_nonminimal(self) -> bool {
        !matches!(self, RoutingMode::Min)
    }

    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            RoutingMode::Min => "MIN",
            RoutingMode::Valiant => "VAL",
            RoutingMode::Par => "PAR",
            RoutingMode::Piggyback => "PB",
        }
    }
}

impl std::fmt::Display for RoutingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;

    #[test]
    fn dragonfly_references_match_paper() {
        assert_eq!(RoutingMode::Min.dragonfly_reference(), seq!(L G L));
        assert_eq!(
            RoutingMode::Valiant.dragonfly_reference(),
            seq!(L G L L G L)
        );
        assert_eq!(RoutingMode::Par.dragonfly_reference(), seq!(L L G L L G L));
        assert_eq!(
            RoutingMode::Piggyback.dragonfly_reference(),
            RoutingMode::Valiant.dragonfly_reference()
        );
    }

    #[test]
    fn generic_reference_lengths() {
        assert_eq!(RoutingMode::Min.generic_reference(2).len(), 2);
        assert_eq!(RoutingMode::Valiant.generic_reference(2).len(), 4);
        assert_eq!(RoutingMode::Par.generic_reference(2).len(), 5);
        assert_eq!(RoutingMode::Valiant.generic_reference(3).len(), 6);
    }

    #[test]
    fn min_vcs_match_table_v() {
        assert_eq!(RoutingMode::Min.min_dragonfly_vcs(), (2, 1));
        assert_eq!(RoutingMode::Valiant.min_dragonfly_vcs(), (4, 2));
        assert_eq!(RoutingMode::Piggyback.min_dragonfly_vcs(), (4, 2));
        assert_eq!(RoutingMode::Par.min_dragonfly_vcs(), (5, 2));
    }

    #[test]
    fn min_hyperx_vcs_follow_generic_references() {
        // The HyperX analogue of Table V: diameter n needs n / 2n / 2n+1.
        for dims in 1..=3 {
            assert_eq!(RoutingMode::Min.min_hyperx_vcs(dims), dims);
            assert_eq!(RoutingMode::Valiant.min_hyperx_vcs(dims), 2 * dims);
            assert_eq!(RoutingMode::Piggyback.min_hyperx_vcs(dims), 2 * dims);
            assert_eq!(RoutingMode::Par.min_hyperx_vcs(dims), 2 * dims + 1);
        }
    }

    #[test]
    fn labels() {
        assert_eq!(RoutingMode::Min.to_string(), "MIN");
        assert_eq!(RoutingMode::Piggyback.to_string(), "PB");
        assert!(RoutingMode::Valiant.is_nonminimal());
        assert!(!RoutingMode::Min.is_nonminimal());
    }
}
