//! Routing modes and their reference sequences.
//!
//! The paper evaluates four routing mechanisms (§II, §IV-A):
//!
//! * **MIN** — minimal routing, optimal for uniform traffic.
//! * **VAL** — Valiant routing to a random intermediate router
//!   ("Valiant-node" / "Valiant Any"), the oblivious defence against
//!   adversarial patterns; doubles the worst-case path length.
//! * **PAR** — Progressive Adaptive Routing: starts minimal, may divert to a
//!   Valiant path after a minimal local hop (in-transit adaptivity).
//! * **PB** — Piggyback source-adaptive routing: chooses MIN or VAL at
//!   injection from piggybacked remote-congestion state plus a local credit
//!   comparison. Its VC requirement equals VAL's.
//!
//! On top of the paper's four, the repo models three adaptive mechanisms
//! from the surrounding literature (cf. the VC-management analysis of
//! arXiv:2306.13042 and the HyperX paper's native scheme):
//!
//! * **UGAL-L** — Universal Globally-Adaptive Load-balanced routing with
//!   *local* information only: at injection, compare the hop-weighted
//!   credit occupancy of the minimal path against a candidate Valiant path
//!   (`q_min·H_min > q_val·H_val + T` takes the detour). No sensing boards.
//! * **UGAL-G** — UGAL fed by *global* (piggybacked) state: the local
//!   comparison of UGAL-L plus the remote saturation veto of PB. Shares
//!   PB's board machinery and VC requirement.
//! * **DAL** — Dimensionally-Adaptive, Load-balanced routing (the HyperX
//!   paper's adaptive scheme): per-dimension, in-transit misrouting — at
//!   each router the packet may detour through one intermediate coordinate
//!   of the *current* DOR dimension before correcting it, at most one
//!   misroute per dimension. Worst-case path length `2d`, same as VAL.
//!   Only meaningful on per-dimension topologies (HyperX).
//!
//! Each mode has a *reference sequence*: the class sequence of its longest
//! allowed path, which determines the minimum VC arrangement for the
//! baseline policy.

use crate::link::LinkClass;

/// Maximum generic-network diameter the plan/reference machinery supports
/// (an `n`-dimensional HyperX has diameter `n`).
pub const MAX_GENERIC_DIAMETER: usize = 3;

/// Longest generic reference sequence: PAR's `T^(2d+1)` at the diameter
/// ceiling. This is the single source of truth for the widened all-Local
/// reference shared by the planner and the engine (formerly duplicated).
pub const MAX_GENERIC_REF: usize = 2 * MAX_GENERIC_DIAMETER + 1;

/// All-Local reference backing store for generic (single-class) networks;
/// mode references are prefixes of it (see
/// [`RoutingMode::generic_reference`]).
pub static REF_GENERIC: [LinkClass; MAX_GENERIC_REF] = [LinkClass::Local; MAX_GENERIC_REF];

/// Routing mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RoutingMode {
    /// Minimal routing.
    Min,
    /// Valiant-node oblivious misrouting.
    Valiant,
    /// Progressive Adaptive Routing (in-transit MIN→VAL switch).
    Par,
    /// Piggyback source-adaptive routing (MIN or VAL chosen at injection).
    Piggyback,
    /// UGAL with local information: hop-weighted credit comparison at
    /// injection, no sensing boards.
    UgalL,
    /// UGAL with global information: the UGAL-L comparison plus the
    /// piggybacked remote-saturation veto.
    UgalG,
    /// Dimensionally-Adaptive, Load-balanced routing: per-dimension
    /// in-transit misrouting on HyperX-style topologies.
    Dal,
}

impl RoutingMode {
    /// Reference sequence in a Dragonfly (paper §II):
    /// MIN `l0 g1 l2`, VAL `l0 g1 l2 l3 g4 l5`, PAR `l0 l1 g2 l3 l4 g5 l6`.
    /// PB and both UGAL variants need the same resources as VAL. DAL is
    /// HyperX-only; its entry (VAL's sequence, the same worst-case length)
    /// exists so the function stays total, but `SimConfig::validate`
    /// rejects DAL on Dragonfly topologies.
    pub fn dragonfly_reference(self) -> &'static [LinkClass] {
        use LinkClass::*;
        match self {
            RoutingMode::Min => &[Local, Global, Local],
            RoutingMode::Valiant
            | RoutingMode::Piggyback
            | RoutingMode::UgalL
            | RoutingMode::UgalG
            | RoutingMode::Dal => &[Local, Global, Local, Local, Global, Local],
            RoutingMode::Par => &[Local, Local, Global, Local, Local, Global, Local],
        }
    }

    /// Reference sequence in a generic diameter-`d` network: MIN has `d`
    /// hops, VAL/PB/UGAL `2d`, DAL `2d` (every dimension misrouted once),
    /// PAR `2d + 1`. Returned as a borrowed prefix of [`REF_GENERIC`], the
    /// shared all-Local backing store.
    pub fn generic_reference(self, diameter: usize) -> &'static [LinkClass] {
        let hops = match self {
            RoutingMode::Min => diameter,
            RoutingMode::Valiant
            | RoutingMode::Piggyback
            | RoutingMode::UgalL
            | RoutingMode::UgalG
            | RoutingMode::Dal => 2 * diameter,
            RoutingMode::Par => 2 * diameter + 1,
        };
        assert!(
            hops <= MAX_GENERIC_REF,
            "diameter {diameter} exceeds the supported generic reference"
        );
        &REF_GENERIC[..hops]
    }

    /// Minimum safe Dragonfly `(local, global)` VC counts for the baseline
    /// policy (Table V uses 2/1 for MIN and 4/2 for VAL and PB).
    pub fn min_dragonfly_vcs(self) -> (usize, usize) {
        match self {
            RoutingMode::Min => (2, 1),
            RoutingMode::Valiant
            | RoutingMode::Piggyback
            | RoutingMode::UgalL
            | RoutingMode::UgalG
            | RoutingMode::Dal => (4, 2),
            RoutingMode::Par => (5, 2),
        }
    }

    /// Minimum safe Dragonfly+ `(local, global)` VC counts for the
    /// *baseline* policy. Dragonfly+ (Megafly) minimal paths follow
    /// `local-up — global — local-down`, the same `L G L` class texture as
    /// the Dragonfly, and the baseline never leaves its planned slots — so
    /// the baseline minima coincide with
    /// [`RoutingMode::min_dragonfly_vcs`]: 2/1 for MIN, 4/2 for
    /// VAL/PB/UGAL, 5/2 for PAR. The *classifier* boundaries differ
    /// (FlexVC detours can strand packets on spines whose minimal escape
    /// is `L L G L` — see `classify::NetworkFamily::DragonflyPlus`), which
    /// is why Dragonfly+ has no opportunistic-below-minimum VAL
    /// configuration the way the Dragonfly does.
    pub fn min_dfplus_vcs(self) -> (usize, usize) {
        self.min_dragonfly_vcs()
    }

    /// Minimum safe VC count for the baseline policy in a generic
    /// single-class diameter-`dims` network — the HyperX analogue of
    /// Table V, where an `n`-dimensional HyperX has diameter `n`: MIN
    /// needs `n` VCs, VAL/PB/UGAL/DAL `2n`, PAR `2n + 1`.
    pub fn min_hyperx_vcs(self, dims: usize) -> usize {
        self.generic_reference(dims).len()
    }

    /// Whether the mode may send packets over non-minimal paths.
    pub fn is_nonminimal(self) -> bool {
        !matches!(self, RoutingMode::Min)
    }

    /// Whether the mode reads the piggybacked per-group saturation boards
    /// (and therefore needs the sensing phase to publish them).
    pub fn uses_boards(self) -> bool {
        matches!(self, RoutingMode::Piggyback | RoutingMode::UgalG)
    }

    /// Whether the mode makes routing decisions *in transit* (after
    /// injection): PAR's one-shot divert and DAL's per-dimension misroutes.
    pub fn decides_in_transit(self) -> bool {
        matches!(self, RoutingMode::Par | RoutingMode::Dal)
    }

    /// Whether the mode requires per-dimension topology structure
    /// (HyperX-style divert candidates).
    pub fn needs_dimensions(self) -> bool {
        matches!(self, RoutingMode::Dal)
    }

    /// Short label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            RoutingMode::Min => "MIN",
            RoutingMode::Valiant => "VAL",
            RoutingMode::Par => "PAR",
            RoutingMode::Piggyback => "PB",
            RoutingMode::UgalL => "UGAL-L",
            RoutingMode::UgalG => "UGAL-G",
            RoutingMode::Dal => "DAL",
        }
    }
}

impl std::fmt::Display for RoutingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;

    #[test]
    fn dragonfly_references_match_paper() {
        assert_eq!(RoutingMode::Min.dragonfly_reference(), seq!(L G L));
        assert_eq!(
            RoutingMode::Valiant.dragonfly_reference(),
            seq!(L G L L G L)
        );
        assert_eq!(RoutingMode::Par.dragonfly_reference(), seq!(L L G L L G L));
        assert_eq!(
            RoutingMode::Piggyback.dragonfly_reference(),
            RoutingMode::Valiant.dragonfly_reference()
        );
        // UGAL shares VAL's resource requirement (source-adaptive MIN/VAL).
        for ugal in [RoutingMode::UgalL, RoutingMode::UgalG] {
            assert_eq!(
                ugal.dragonfly_reference(),
                RoutingMode::Valiant.dragonfly_reference()
            );
        }
    }

    #[test]
    fn generic_reference_lengths() {
        assert_eq!(RoutingMode::Min.generic_reference(2).len(), 2);
        assert_eq!(RoutingMode::Valiant.generic_reference(2).len(), 4);
        assert_eq!(RoutingMode::Par.generic_reference(2).len(), 5);
        assert_eq!(RoutingMode::Valiant.generic_reference(3).len(), 6);
        // DAL's worst case misroutes every dimension once: 2 hops per
        // dimension, the same length as whole-path Valiant.
        assert_eq!(RoutingMode::Dal.generic_reference(3).len(), 6);
        assert_eq!(RoutingMode::UgalL.generic_reference(3).len(), 6);
        assert_eq!(RoutingMode::UgalG.generic_reference(2).len(), 4);
    }

    #[test]
    fn generic_references_are_prefixes_of_the_shared_store() {
        // The dedupe invariant: every generic reference borrows from
        // REF_GENERIC, so the planner and engine can never drift apart.
        for mode in [
            RoutingMode::Min,
            RoutingMode::Valiant,
            RoutingMode::Par,
            RoutingMode::Piggyback,
            RoutingMode::UgalL,
            RoutingMode::UgalG,
            RoutingMode::Dal,
        ] {
            for d in 1..=MAX_GENERIC_DIAMETER {
                let r = mode.generic_reference(d);
                assert!(std::ptr::eq(r.as_ptr(), REF_GENERIC.as_ptr()));
                assert!(r.iter().all(|&c| c == LinkClass::Local));
            }
        }
        assert_eq!(MAX_GENERIC_REF, 7);
    }

    #[test]
    fn min_vcs_match_table_v() {
        assert_eq!(RoutingMode::Min.min_dragonfly_vcs(), (2, 1));
        assert_eq!(RoutingMode::Valiant.min_dragonfly_vcs(), (4, 2));
        assert_eq!(RoutingMode::Piggyback.min_dragonfly_vcs(), (4, 2));
        assert_eq!(RoutingMode::Par.min_dragonfly_vcs(), (5, 2));
        assert_eq!(RoutingMode::UgalL.min_dragonfly_vcs(), (4, 2));
        assert_eq!(RoutingMode::UgalG.min_dragonfly_vcs(), (4, 2));
    }

    #[test]
    fn min_dfplus_vcs_match_the_dragonfly_baseline_minima() {
        // The baseline never leaves its planned slots, so the Dragonfly+
        // minima equal the Dragonfly's (the classifier boundaries differ —
        // see classify::tests::dragonfly_plus_rows).
        for mode in [
            RoutingMode::Min,
            RoutingMode::Valiant,
            RoutingMode::Par,
            RoutingMode::Piggyback,
            RoutingMode::UgalL,
            RoutingMode::UgalG,
        ] {
            assert_eq!(mode.min_dfplus_vcs(), mode.min_dragonfly_vcs());
        }
        assert_eq!(RoutingMode::Min.min_dfplus_vcs(), (2, 1));
        assert_eq!(RoutingMode::Valiant.min_dfplus_vcs(), (4, 2));
    }

    #[test]
    fn min_hyperx_vcs_follow_generic_references() {
        // The HyperX analogue of Table V: diameter n needs n / 2n / 2n+1.
        for dims in 1..=3 {
            assert_eq!(RoutingMode::Min.min_hyperx_vcs(dims), dims);
            assert_eq!(RoutingMode::Valiant.min_hyperx_vcs(dims), 2 * dims);
            assert_eq!(RoutingMode::Piggyback.min_hyperx_vcs(dims), 2 * dims);
            assert_eq!(RoutingMode::Par.min_hyperx_vcs(dims), 2 * dims + 1);
            assert_eq!(RoutingMode::UgalL.min_hyperx_vcs(dims), 2 * dims);
            assert_eq!(RoutingMode::UgalG.min_hyperx_vcs(dims), 2 * dims);
            assert_eq!(RoutingMode::Dal.min_hyperx_vcs(dims), 2 * dims);
        }
    }

    #[test]
    fn mode_capabilities() {
        assert!(RoutingMode::Piggyback.uses_boards());
        assert!(RoutingMode::UgalG.uses_boards());
        assert!(!RoutingMode::UgalL.uses_boards());
        assert!(!RoutingMode::Valiant.uses_boards());
        assert!(RoutingMode::Par.decides_in_transit());
        assert!(RoutingMode::Dal.decides_in_transit());
        assert!(!RoutingMode::Piggyback.decides_in_transit());
        assert!(RoutingMode::Dal.needs_dimensions());
        assert!(!RoutingMode::Par.needs_dimensions());
    }

    #[test]
    fn labels() {
        assert_eq!(RoutingMode::Min.to_string(), "MIN");
        assert_eq!(RoutingMode::Piggyback.to_string(), "PB");
        assert_eq!(RoutingMode::UgalL.to_string(), "UGAL-L");
        assert_eq!(RoutingMode::UgalG.to_string(), "UGAL-G");
        assert_eq!(RoutingMode::Dal.to_string(), "DAL");
        assert!(RoutingMode::Valiant.is_nonminimal());
        assert!(RoutingMode::Dal.is_nonminimal());
        assert!(!RoutingMode::Min.is_nonminimal());
    }
}
