//! Split min/non-min occupancy accounting for FlexVC-minCred (paper §III-D).
//!
//! With the baseline fixed-VC policy, the first global VC of a port carries
//! only minimally-routed packets, so per-VC occupancy implicitly identifies
//! the traffic pattern: under adversarial traffic the minimal global links
//! show high VC0 occupancy even when total link load is balanced. FlexVC
//! merges minimal and non-minimal flows in the same buffers and destroys
//! this signal. FlexVC-minCred restores it by accounting occupancy
//! separately per routing type: packet headers already carry the routing
//! type, so the only additional cost is one flag per credit message and one
//! extra counter per output port.

/// Whether a packet is currently routed minimally or non-minimally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CreditClass {
    /// Packet follows a minimal path to its destination.
    MinRouted,
    /// Packet follows a Valiant/derouted path.
    NonMinRouted,
}

/// Phit occupancy split by routing type.
///
/// One `SplitOccupancy` mirrors the downstream buffer state of one VC (or
/// one port, when aggregated) at the upstream credit counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SplitOccupancy {
    min_phits: u32,
    nonmin_phits: u32,
}

impl SplitOccupancy {
    /// Empty occupancy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `phits` entering the downstream buffer.
    pub fn add(&mut self, class: CreditClass, phits: u32) {
        match class {
            CreditClass::MinRouted => self.min_phits += phits,
            CreditClass::NonMinRouted => self.nonmin_phits += phits,
        }
    }

    /// Record `phits` leaving the downstream buffer (credit return).
    pub fn remove(&mut self, class: CreditClass, phits: u32) {
        let slot = match class {
            CreditClass::MinRouted => &mut self.min_phits,
            CreditClass::NonMinRouted => &mut self.nonmin_phits,
        };
        debug_assert!(*slot >= phits, "credit underflow: {slot} < {phits}");
        *slot = slot.saturating_sub(phits);
    }

    /// Occupancy attributed to minimally-routed packets (the minCred signal).
    #[inline]
    pub fn min_occupancy(&self) -> u32 {
        self.min_phits
    }

    /// Occupancy attributed to non-minimally-routed packets.
    #[inline]
    pub fn nonmin_occupancy(&self) -> u32 {
        self.nonmin_phits
    }

    /// Total occupancy regardless of routing type (classic credit counter).
    #[inline]
    pub fn total(&self) -> u32 {
        self.min_phits + self.nonmin_phits
    }

    /// Merge another counter into this one (per-port aggregation of per-VC
    /// counters).
    pub fn merge(&mut self, other: &SplitOccupancy) {
        self.min_phits += other.min_phits;
        self.nonmin_phits += other.nonmin_phits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_roundtrip() {
        let mut o = SplitOccupancy::new();
        o.add(CreditClass::MinRouted, 8);
        o.add(CreditClass::NonMinRouted, 16);
        assert_eq!(o.min_occupancy(), 8);
        assert_eq!(o.nonmin_occupancy(), 16);
        assert_eq!(o.total(), 24);
        o.remove(CreditClass::MinRouted, 8);
        o.remove(CreditClass::NonMinRouted, 8);
        assert_eq!(o.min_occupancy(), 0);
        assert_eq!(o.nonmin_occupancy(), 8);
        assert_eq!(o.total(), 8);
    }

    #[test]
    fn merge_aggregates_per_port() {
        let mut a = SplitOccupancy::new();
        a.add(CreditClass::MinRouted, 4);
        let mut b = SplitOccupancy::new();
        b.add(CreditClass::NonMinRouted, 6);
        b.add(CreditClass::MinRouted, 2);
        a.merge(&b);
        assert_eq!(a.min_occupancy(), 6);
        assert_eq!(a.nonmin_occupancy(), 6);
        assert_eq!(a.total(), 12);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "credit underflow")]
    fn underflow_is_caught_in_debug() {
        let mut o = SplitOccupancy::new();
        o.remove(CreditClass::MinRouted, 1);
    }
}
