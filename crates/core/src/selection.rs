//! VC selection functions (paper §VI-A).
//!
//! When FlexVC offers several eligible VCs for a hop, a *selection function*
//! picks one. The paper evaluates four policies (Fig. 9): JSQ (join the
//! shortest queue — the default throughout the evaluation), highest-index,
//! lowest-index and random. JSQ and highest-VC perform best; lowest-VC
//! saturates the low VCs used by the first hops of requests and consistently
//! loses; the overall spread is below ~3.4%.

use rand::Rng;

/// Strategy for choosing among eligible VCs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VcSelection {
    /// Join the shortest queue: pick the eligible VC with the most free
    /// credits downstream (ties broken toward the highest index).
    #[default]
    Jsq,
    /// Highest eligible index.
    HighestVc,
    /// Lowest eligible index.
    LowestVc,
    /// Uniformly random among eligible VCs.
    Random,
}

impl VcSelection {
    /// Pick one VC among `candidates`, where each candidate is a
    /// `(vc_index, free_credits)` pair (already filtered for eligibility and
    /// sufficient space). Returns the chosen `vc_index`, or `None` if the
    /// slice is empty.
    pub fn pick<R: Rng + ?Sized>(
        self,
        candidates: &[(usize, usize)],
        rng: &mut R,
    ) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        let chosen = match self {
            VcSelection::Jsq => {
                candidates
                    .iter()
                    .max_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)))
                    .expect("non-empty")
                    .0
            }
            VcSelection::HighestVc => candidates.iter().map(|c| c.0).max().expect("non-empty"),
            VcSelection::LowestVc => candidates.iter().map(|c| c.0).min().expect("non-empty"),
            VcSelection::Random => candidates[rng.gen_range(0..candidates.len())].0,
        };
        Some(chosen)
    }

    /// All selection functions, in the order of Fig. 9.
    pub fn all() -> [VcSelection; 4] {
        [
            VcSelection::Jsq,
            VcSelection::HighestVc,
            VcSelection::LowestVc,
            VcSelection::Random,
        ]
    }

    /// Label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            VcSelection::Jsq => "JSQ",
            VcSelection::HighestVc => "Highest-VC",
            VcSelection::LowestVc => "Lowest-VC",
            VcSelection::Random => "Random",
        }
    }
}

impl std::fmt::Display for VcSelection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    #[test]
    fn empty_candidates_yield_none() {
        for s in VcSelection::all() {
            assert_eq!(s.pick(&[], &mut rng()), None);
        }
    }

    #[test]
    fn jsq_prefers_most_credits() {
        let c = [(0, 5), (1, 9), (2, 3)];
        assert_eq!(VcSelection::Jsq.pick(&c, &mut rng()), Some(1));
    }

    #[test]
    fn jsq_breaks_ties_toward_highest_index() {
        let c = [(0, 9), (1, 9), (2, 3)];
        assert_eq!(VcSelection::Jsq.pick(&c, &mut rng()), Some(1));
    }

    #[test]
    fn highest_and_lowest() {
        let c = [(1, 5), (3, 1), (2, 7)];
        assert_eq!(VcSelection::HighestVc.pick(&c, &mut rng()), Some(3));
        assert_eq!(VcSelection::LowestVc.pick(&c, &mut rng()), Some(1));
    }

    #[test]
    fn random_always_picks_a_candidate() {
        let c = [(4, 1), (7, 2)];
        let mut r = rng();
        for _ in 0..100 {
            let got = VcSelection::Random.pick(&c, &mut r).unwrap();
            assert!(got == 4 || got == 7);
        }
    }

    #[test]
    fn random_covers_all_candidates() {
        let c = [(0, 1), (1, 1), (2, 1)];
        let mut r = rng();
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[VcSelection::Random.pick(&c, &mut r).unwrap()] = true;
        }
        assert!(seen.iter().all(|&s| s), "all VCs should be selectable");
    }

    #[test]
    fn single_candidate_always_chosen() {
        let c = [(5, 0)];
        for s in VcSelection::all() {
            assert_eq!(s.pick(&c, &mut rng()), Some(5));
        }
    }
}
