//! VC arrangements: master reference sequences and the position algebra.
//!
//! An [`Arrangement`] is an ordered sequence of [`LinkClass`]es — the *master
//! reference sequence* `M` of a VC configuration. Every virtual channel of
//! the network corresponds to one element of `M`: the VC with per-class index
//! `i` of class `c` is the `i`-th occurrence of `c` in `M`, and its *position*
//! is the index of that occurrence within `M`.
//!
//! Examples from the paper (Dragonfly, `local/global` counts):
//!
//! * `2/1` (MIN-safe)        → `L G L`
//! * `3/2` (opportunistic)   → `L G L G L`
//! * `4/2` (VAL-safe)        → `L G L L G L`
//! * `5/2` (PAR-safe)        → `L L G L L G L`
//! * `4/3` (deep zig-zag)    → `L G L G L G L`
//!
//! With request–reply traffic the arrangement is the concatenation
//! `M = M_req ++ M_rep` and [`Arrangement::request_len`] marks the boundary
//! (paper §III-B). A generic single-class diameter-2 network with `n` VCs is
//! simply `L^n`.

use crate::link::{LinkClass, MessageClass};

/// A position inside the master sequence: `None` denotes "not yet in the
/// network" (the packet still sits in an injection queue, which is outside
/// the deadlock-avoidance resource ordering).
pub type Pos = Option<usize>;

/// A VC arrangement (master reference sequence, optionally split into
/// request and reply parts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrangement {
    seq: Vec<LinkClass>,
    /// Length of the request prefix. Equals `seq.len()` for single-class
    /// traffic (no protocol-deadlock split).
    req_len: usize,
    /// Positions of each class, ascending (cache).
    class_positions: [Vec<usize>; LinkClass::COUNT],
}

impl Arrangement {
    /// Build an arrangement from an explicit sequence without a reply part.
    pub fn new(seq: impl Into<Vec<LinkClass>>) -> Self {
        let seq = seq.into();
        let req_len = seq.len();
        Self::with_request_len(seq, req_len)
    }

    /// Build an arrangement whose first `req_len` entries form the request
    /// sub-sequence and the remainder the reply sub-sequence.
    pub fn with_request_len(seq: impl Into<Vec<LinkClass>>, req_len: usize) -> Self {
        let seq = seq.into();
        assert!(req_len <= seq.len(), "request prefix exceeds sequence");
        assert!(req_len > 0, "request prefix must be non-empty");
        let mut class_positions: [Vec<usize>; LinkClass::COUNT] = Default::default();
        for (pos, &c) in seq.iter().enumerate() {
            class_positions[c.index()].push(pos);
        }
        Arrangement {
            seq,
            req_len,
            class_positions,
        }
    }

    /// Concatenate a request and a reply arrangement (paper §III-B):
    /// `M = M_req ++ M_rep`.
    pub fn concat(request: &Arrangement, reply: &Arrangement) -> Self {
        let mut seq = request.seq.clone();
        seq.extend_from_slice(&reply.seq);
        Self::with_request_len(seq, request.seq.len())
    }

    // ---------------------------------------------------------------------
    // Canonical constructors
    // ---------------------------------------------------------------------

    /// Generic single-class arrangement with `n` VCs (diameter-2 networks,
    /// Tables I and II).
    pub fn generic(n: usize) -> Self {
        assert!(n > 0);
        Self::new(vec![LinkClass::Local; n])
    }

    /// Dragonfly MIN-safe `2/1` arrangement: `L G L`.
    pub fn dragonfly_min() -> Self {
        Self::new(vec![LinkClass::Local, LinkClass::Global, LinkClass::Local])
    }

    /// Dragonfly VAL-safe `4/2` arrangement: `L G L L G L`.
    pub fn dragonfly_val() -> Self {
        use LinkClass::*;
        Self::new(vec![Local, Global, Local, Local, Global, Local])
    }

    /// Dragonfly PAR-safe `5/2` arrangement: `L L G L L G L`.
    pub fn dragonfly_par() -> Self {
        use LinkClass::*;
        Self::new(vec![Local, Local, Global, Local, Local, Global, Local])
    }

    /// "Zig-zag" arrangement `Z(k) = (L G)^k L` with `k+1` local and `k`
    /// global VCs: chained minimal escapes. `Z(1) = 2/1`, `Z(2) = 3/2`
    /// (the paper's `l0 − g1 − l2 − g3 − l4`), `Z(3) = 4/3`.
    pub fn zigzag(k: usize) -> Self {
        let mut seq = Vec::with_capacity(2 * k + 1);
        for _ in 0..k {
            seq.push(LinkClass::Local);
            seq.push(LinkClass::Global);
        }
        seq.push(LinkClass::Local);
        Self::new(seq)
    }

    /// Canonical Dragonfly arrangement for the `(local, global)` VC counts
    /// used in the paper, with extra VCs (beyond the nearest canonical base)
    /// prepended to the front of the sequence ("additional VCs … are
    /// inserted at the start of the reference path", §III-C).
    ///
    /// Recognized bases: `2/1` (MIN), `3/2` and `4/3` (zig-zag), `4/2` (VAL),
    /// `5/2` (PAR). Anything larger falls back to the largest base that fits
    /// plus prepended extras, e.g. `8/4 = (extras L G L G L L) ++ (4/2)`.
    pub fn dragonfly(local: usize, global: usize) -> Self {
        assert!(local >= 2 && global >= 1, "need at least 2/1 VCs");
        use LinkClass::*;
        // Exact canonical bases.
        match (local, global) {
            (2, 1) => return Self::dragonfly_min(),
            (3, 2) => return Self::zigzag(2),
            (4, 3) => return Self::zigzag(3),
            (4, 2) => return Self::dragonfly_val(),
            (5, 2) => return Self::dragonfly_par(),
            (5, 4) => return Self::zigzag(4),
            _ => {}
        }
        // Largest base fitting within (local, global), preferring the one
        // that leaves the fewest extras.
        type Base = (usize, usize, fn() -> Arrangement);
        let bases: [Base; 5] = [
            (5, 2, Self::dragonfly_par as fn() -> Arrangement),
            (4, 3, || Self::zigzag(3)),
            (4, 2, Self::dragonfly_val),
            (3, 2, || Self::zigzag(2)),
            (2, 1, Self::dragonfly_min),
        ];
        let (bl, bg, make) = bases
            .iter()
            .filter(|(bl, bg, _)| *bl <= local && *bg <= global)
            .min_by_key(|(bl, bg, _)| (local - bl) + (global - bg))
            .expect("2/1 always fits");
        let base = make();
        let mut extras = Vec::new();
        let (mut el, mut eg) = (local - bl, global - bg);
        // Round-robin starting with Local so the prefix mirrors the L-G-L…
        // texture of the reference path.
        while el > 0 || eg > 0 {
            if el > 0 {
                extras.push(Local);
                el -= 1;
            }
            if eg > 0 {
                extras.push(Global);
                eg -= 1;
            }
        }
        extras.extend_from_slice(&base.seq);
        Self::new(extras)
    }

    /// Request+reply Dragonfly arrangement from per-subpath counts, e.g.
    /// `dragonfly_rr((4, 2), (2, 1))` is the paper's `6/3 = 4/2 + 2/1`.
    pub fn dragonfly_rr(req: (usize, usize), rep: (usize, usize)) -> Self {
        Self::concat(
            &Self::dragonfly(req.0, req.1),
            &Self::dragonfly(rep.0, rep.1),
        )
    }

    /// Request+reply generic arrangement, e.g. `generic_rr(3, 2)` is the
    /// paper's `3+2=5` configuration of Table II.
    pub fn generic_rr(req: usize, rep: usize) -> Self {
        Self::concat(&Self::generic(req), &Self::generic(rep))
    }

    // ---------------------------------------------------------------------
    // Accessors
    // ---------------------------------------------------------------------

    /// Total number of positions (VCs) in the master sequence.
    #[inline]
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    /// `true` if the sequence is empty (never for validly constructed values).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }

    /// Length of the request prefix.
    #[inline]
    pub fn request_len(&self) -> usize {
        self.req_len
    }

    /// Whether this arrangement has a dedicated reply sub-sequence.
    #[inline]
    pub fn has_reply_part(&self) -> bool {
        self.req_len < self.seq.len()
    }

    /// The raw master sequence.
    #[inline]
    pub fn sequence(&self) -> &[LinkClass] {
        &self.seq
    }

    /// Class of the buffer at `pos`.
    #[inline]
    pub fn class_at(&self, pos: usize) -> LinkClass {
        self.seq[pos]
    }

    /// Per-class VC index (occurrence number of its class) of the buffer at
    /// `pos`. This is the index used to address physical buffers in a port.
    pub fn vc_index_at(&self, pos: usize) -> usize {
        let c = self.seq[pos];
        self.class_positions[c.index()]
            .iter()
            .position(|&p| p == pos)
            .expect("position belongs to its class list")
    }

    /// Position of the `vc`-th VC of class `c`, if it exists.
    #[inline]
    pub fn position(&self, c: LinkClass, vc: usize) -> Option<usize> {
        self.class_positions[c.index()].get(vc).copied()
    }

    /// Number of VCs of class `c` over the whole sequence (physical buffer
    /// count per port of that class).
    #[inline]
    pub fn vc_count(&self, c: LinkClass) -> usize {
        self.class_positions[c.index()].len()
    }

    /// Number of VCs of class `c` within the request prefix.
    pub fn vc_count_request(&self, c: LinkClass) -> usize {
        self.class_positions[c.index()]
            .iter()
            .take_while(|&&p| p < self.req_len)
            .count()
    }

    /// Total number of VCs across all classes (`len()` alias for clarity).
    #[inline]
    pub fn total_vcs(&self) -> usize {
        self.len()
    }

    /// The half-open position region `[lo, hi)` in which *safe escape paths*
    /// of a message class must embed: requests use the request prefix,
    /// replies use the reply part only (paper §III-B: reply VCs are
    /// dimensioned for safe minimal reply paths; borrowed request VCs are
    /// opportunistic).
    #[inline]
    pub fn safe_region(&self, msg: MessageClass) -> (usize, usize) {
        match msg {
            MessageClass::Request => (0, self.req_len),
            MessageClass::Reply => (self.req_len, self.seq.len()),
        }
    }

    /// The half-open position region in which a packet of class `msg` may
    /// *land* (occupy buffers): requests are confined to the request prefix,
    /// replies may use any VC.
    #[inline]
    pub fn landing_region(&self, msg: MessageClass) -> (usize, usize) {
        match msg {
            MessageClass::Request => (0, self.req_len),
            MessageClass::Reply => (0, self.seq.len()),
        }
    }

    // ---------------------------------------------------------------------
    // Embedding (subsequence) queries
    // ---------------------------------------------------------------------

    /// Greedy check: can `hops` be realized as strictly-increasing positions,
    /// all `> after` (pass `None` for "from the start") and inside the
    /// half-open region `[region.0, region.1)`?
    pub fn embeds(&self, hops: &[LinkClass], after: Pos, region: (usize, usize)) -> bool {
        let mut cursor: isize = match after {
            Some(p) => p as isize,
            None => -1,
        };
        let floor = region.0 as isize;
        if cursor < floor - 1 {
            cursor = floor - 1;
        }
        for &h in hops {
            match self.next_position(h, cursor, region.1) {
                Some(p) => cursor = p as isize,
                None => return false,
            }
        }
        true
    }

    /// Smallest position of class `c` strictly greater than `after` and less
    /// than `limit`.
    fn next_position(&self, c: LinkClass, after: isize, limit: usize) -> Option<usize> {
        let list = &self.class_positions[c.index()];
        // Lists are tiny (≤ ~12); linear scan beats binary search overhead.
        list.iter()
            .copied()
            .find(|&p| (p as isize) > after && p < limit)
    }

    /// Largest landing position `q` of class `hop` within `[floor_pos, limit)`
    /// such that `rest` embeds after `q` inside `safe_region`. Returns `None`
    /// if no such landing exists.
    ///
    /// `floor_pos = None` means unconstrained from below. `limit` bounds the
    /// landing itself (requests may not land in reply VCs).
    pub fn max_landing(
        &self,
        hop: LinkClass,
        rest: &[LinkClass],
        floor_pos: Pos,
        landing_limit: usize,
        safe_region: (usize, usize),
    ) -> Option<usize> {
        let floor: isize = match floor_pos {
            Some(p) => p as isize,
            None => -1,
        };
        let list = &self.class_positions[hop.index()];
        // Embedding after q is monotone: easier for smaller q. Scan from the
        // top; the first success is the maximum.
        list.iter()
            .rev()
            .copied()
            .filter(|&q| (q as isize) >= floor && q < landing_limit)
            .find(|&q| self.embeds(rest, Some(q), safe_region))
    }

    /// Compact `L G L…` rendering, with a `|` at the request/reply boundary.
    pub fn notation(&self) -> String {
        let mut s = String::with_capacity(self.seq.len() * 2 + 2);
        for (i, c) in self.seq.iter().enumerate() {
            if i == self.req_len && self.has_reply_part() {
                s.push('|');
                s.push(' ');
            }
            s.push(c.letter());
            if i + 1 < self.seq.len() {
                s.push(' ');
            }
        }
        s
    }

    /// `local/global` VC-count label as used in the paper (e.g. `4/2` or
    /// `6/4(4/3+2/1)` for split arrangements).
    pub fn count_label(&self) -> String {
        use LinkClass::*;
        let l = self.vc_count(Local);
        let g = self.vc_count(Global);
        if g == 0 {
            // Single-class network.
            if self.has_reply_part() {
                let lr = self.vc_count_request(Local);
                return format!("{}+{}={}", lr, l - lr, l);
            }
            return format!("{l}");
        }
        if self.has_reply_part() {
            let lr = self.vc_count_request(Local);
            let gr = self.vc_count_request(Global);
            format!("{l}/{g}({lr}/{gr}+{}/{})", l - lr, g - gr)
        } else {
            format!("{l}/{g}")
        }
    }
}

impl std::fmt::Display for Arrangement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}]", self.count_label(), self.notation())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use LinkClass::*;

    #[test]
    fn canonical_sequences_match_paper() {
        assert_eq!(Arrangement::dragonfly_min().sequence(), seq!(L G L));
        assert_eq!(Arrangement::dragonfly_val().sequence(), seq!(L G L L G L));
        assert_eq!(Arrangement::dragonfly_par().sequence(), seq!(L L G L L G L));
        assert_eq!(Arrangement::zigzag(2).sequence(), seq!(L G L G L));
        assert_eq!(Arrangement::zigzag(3).sequence(), seq!(L G L G L G L));
    }

    #[test]
    fn dragonfly_constructor_counts() {
        for (l, g) in [(2, 1), (3, 2), (4, 2), (4, 3), (5, 2), (8, 4), (6, 3)] {
            let a = Arrangement::dragonfly(l, g);
            assert_eq!(a.vc_count(Local), l, "local count for {l}/{g}");
            assert_eq!(a.vc_count(Global), g, "global count for {l}/{g}");
        }
    }

    #[test]
    fn vc_index_and_position_roundtrip() {
        let a = Arrangement::dragonfly_val(); // L G L L G L
        for pos in 0..a.len() {
            let c = a.class_at(pos);
            let idx = a.vc_index_at(pos);
            assert_eq!(a.position(c, idx), Some(pos));
        }
        assert_eq!(a.vc_index_at(0), 0); // l0
        assert_eq!(a.vc_index_at(2), 1); // l1
        assert_eq!(a.vc_index_at(3), 2); // l2
        assert_eq!(a.vc_index_at(5), 3); // l3
        assert_eq!(a.vc_index_at(1), 0); // g0
        assert_eq!(a.vc_index_at(4), 1); // g1
    }

    #[test]
    fn request_reply_concat() {
        let a = Arrangement::dragonfly_rr((4, 2), (2, 1)); // 6/3
        assert_eq!(a.request_len(), 6);
        assert_eq!(a.len(), 9);
        assert_eq!(a.vc_count(Local), 6);
        assert_eq!(a.vc_count(Global), 3);
        assert_eq!(a.vc_count_request(Local), 4);
        assert_eq!(a.vc_count_request(Global), 2);
        assert!(a.has_reply_part());
        assert_eq!(a.count_label(), "6/3(4/2+2/1)");
    }

    #[test]
    fn embeds_basic() {
        let a = Arrangement::dragonfly_val(); // L G L L G L
        let whole = (0, a.len());
        assert!(a.embeds(&seq!(L G L L G L), None, whole));
        assert!(a.embeds(&seq!(L G L), None, whole));
        assert!(a.embeds(&seq!(G L), None, whole));
        assert!(!a.embeds(&seq!(L L G L L G L), None, whole)); // PAR needs 5/2
        assert!(!a.embeds(&seq!(G G G), None, whole));
        // After a position.
        assert!(a.embeds(&seq!(L G L), Some(0), whole));
        assert!(a.embeds(&seq!(G L), Some(3), whole));
        assert!(!a.embeds(&seq!(L G L), Some(3), whole));
    }

    #[test]
    fn embeds_respects_region() {
        let a = Arrangement::generic_rr(3, 2); // T T T | T T
        let rep = a.safe_region(MessageClass::Reply);
        assert_eq!(rep, (3, 5));
        assert!(a.embeds(&seq!(L L), None, rep));
        assert!(!a.embeds(&seq!(L L L), None, rep));
        // "after" below the region floor is clamped to the floor.
        assert!(a.embeds(&seq!(L L), Some(1), rep));
        assert!(!a.embeds(&seq!(L L), Some(3), rep));
    }

    #[test]
    fn max_landing_min_first_hop() {
        // Fig. 3a: 4 VCs in a diameter-2 network, MIN (2 hops). First hop may
        // land in VCs 0..=2, second in 0..=3.
        let a = Arrangement::generic(4);
        let whole = (0, 4);
        let q = a.max_landing(Local, &seq!(L), None, 4, whole).unwrap();
        assert_eq!(q, 2);
        let q = a.max_landing(Local, &[], None, 4, whole).unwrap();
        assert_eq!(q, 3);
    }

    #[test]
    fn max_landing_with_floor() {
        let a = Arrangement::zigzag(2); // L G L G L
        let whole = (0, 5);
        // Escape [L G L] must fit after the landing; landing must be >= 2.
        let q = a.max_landing(Local, &seq!(L G L), Some(2), 5, whole);
        assert_eq!(q, None); // from position >= 2 there is no L,G,L above 2... except q=2? rest after 2: L@4 only
        let q = a.max_landing(Local, &seq!(G L), Some(2), 5, whole);
        assert_eq!(q, Some(2));
    }

    #[test]
    fn notation_rendering() {
        let a = Arrangement::dragonfly_rr((2, 1), (2, 1));
        assert_eq!(a.notation(), "L G L | L G L");
        assert_eq!(a.count_label(), "4/2(2/1+2/1)");
        assert_eq!(Arrangement::generic(4).count_label(), "4");
        assert_eq!(Arrangement::generic_rr(3, 2).count_label(), "3+2=5");
    }

    #[test]
    #[should_panic(expected = "request prefix")]
    fn zero_request_prefix_rejected() {
        let _ = Arrangement::with_request_len(vec![Local], 0);
    }
}
