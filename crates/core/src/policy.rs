//! Per-hop allowed-VC rules: baseline distance-based and FlexVC.
//!
//! ## Baseline (distance-based deadlock avoidance, paper §II)
//!
//! Every hop of a *reference path* is assigned one fixed VC; the VC order is
//! strictly increasing along the path, so the last VC never blocks and no
//! cyclic dependency can form. [`baseline_vc`] maps a reference-path slot to
//! its fixed `(class, vc)` pair.
//!
//! ## FlexVC (paper §III)
//!
//! FlexVC relaxes the assignment to a *range* of VCs per hop:
//!
//! * **Safe hop** (Definition 1): from the packet's current buffer there
//!   exists a strictly-increasing realization of its whole remaining path
//!   inside the message class's safe region. The packet may then land in
//!   *any* VC `0 ..= k`, where `k` is the highest landing that keeps the
//!   rest of the path realizable ("the maximum amount of VCs minus the
//!   remaining hops", §III-A). Landing below the current VC is allowed —
//!   this is what merges flows and mitigates HoLB — because safety is
//!   re-established from the landing buffer.
//! * **Opportunistic hop** (Definition 2): the planned remainder does not
//!   embed, but a *safe escape path* (the minimal continuation from the
//!   next router) embeds above the landing, and the landing is not below
//!   the current position (`c_j1 ≥ c_j0`). Opportunistic hops are
//!   non-blocking: the simulator only issues them when the downstream VC
//!   can hold the whole packet right now, and otherwise *reverts* the
//!   packet to its escape path.
//!
//! The functions here are pure; `flexvc-sim` calls them for every forwarding
//! decision and the classifier in [`mod@crate::classify`] uses them to reproduce
//! Tables I–IV.

use crate::arrangement::{Arrangement, Pos};
use crate::link::{LinkClass, MessageClass};

/// Which buffer-management policy governs VC choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VcPolicy {
    /// One fixed VC per reference-path hop (Günther-style distance order).
    Baseline,
    /// FlexVC relaxed ranges with safe and opportunistic hops.
    FlexVc,
}

/// Kind of hop granted by the FlexVC rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HopKind {
    /// The planned remainder embeds from the current buffer; the request may
    /// block (wait for credits) like any ordinary hop.
    Safe,
    /// Only an escape embeds; the request must be satisfiable immediately
    /// (whole-packet credit) or the packet reverts to its escape path.
    Opportunistic,
}

/// The set of VCs a packet may use for its next hop: per-class indices
/// `lo ..= hi` of the output port's class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopVcs {
    /// Safe or opportunistic.
    pub kind: HopKind,
    /// Lowest allowed per-class VC index (inclusive).
    pub lo: usize,
    /// Highest allowed per-class VC index (inclusive).
    pub hi: usize,
}

impl HopVcs {
    /// Iterator over the allowed per-class VC indices.
    pub fn iter(&self) -> impl Iterator<Item = usize> {
        self.lo..=self.hi
    }

    /// Number of allowed VCs.
    pub fn count(&self) -> usize {
        self.hi - self.lo + 1
    }
}

/// Compute the FlexVC options for the next hop of a packet.
///
/// * `current` — position of the buffer the packet occupies (`None` while in
///   an injection queue).
/// * `planned` — the remaining planned hops *including* the hop being
///   requested (`planned[0]`).
/// * `escape_next` — link classes of the minimal path from the *next* router
///   (after taking `planned[0]`) to the packet's final destination. For
///   packets already following a minimal plan this equals `planned[1..]`.
///
/// Returns `None` when the hop is infeasible from the current buffer (the
/// packet must revert to the minimal path from its *current* router, which
/// the entry invariant guarantees to be feasible).
pub fn flexvc_options(
    arr: &Arrangement,
    msg: MessageClass,
    current: Pos,
    planned: &[LinkClass],
    escape_next: &[LinkClass],
) -> Option<HopVcs> {
    assert!(!planned.is_empty(), "no hop to evaluate");
    let hop = planned[0];
    let rest = &planned[1..];
    let safe_region = arr.safe_region(msg);
    let (_, land_hi) = arr.landing_region(msg);

    // Definition 1: safe hop — the whole remainder embeds strictly above the
    // current position within the safe region.
    if arr.embeds(planned, current, safe_region) {
        let hi_pos = arr
            .max_landing(hop, rest, None, land_hi, safe_region)
            .expect("planned embeds, so a landing must exist");
        return Some(HopVcs {
            kind: HopKind::Safe,
            lo: 0,
            hi: arr.vc_index_at(hi_pos),
        });
    }

    // Definition 2: opportunistic hop — land at q >= current such that the
    // escape path embeds above q.
    let hi_pos = arr.max_landing(hop, escape_next, current, land_hi, safe_region)?;
    let lo = match current {
        None => 0,
        Some(p) => (0..arr.vc_count(hop))
            .find(|&i| arr.position(hop, i).expect("index in range") >= p)
            .expect("hi_pos >= p exists, so a lowest landing exists"),
    };
    Some(HopVcs {
        kind: HopKind::Opportunistic,
        lo,
        hi: arr.vc_index_at(hi_pos),
    })
}

/// Like [`flexvc_options`], but for opportunistic hops the landing range is
/// additionally constrained so that the *remaining planned path* stays
/// traversable: Definition 2 requires every opportunistic hop of a path to
/// keep its escape, so a landing that would strand the next hop (no landing
/// `q' ≥ q` with a viable escape) is not offered. `escapes[i]` is the
/// minimal continuation from the router reached after `planned[i]`.
///
/// Safe hops never dead-end (any landing keeps the remainder embeddable),
/// so the lookahead only runs on opportunistic hops.
pub fn flexvc_options_lookahead(
    arr: &Arrangement,
    msg: MessageClass,
    current: Pos,
    planned: &[LinkClass],
    escapes: &[&[LinkClass]],
) -> Option<HopVcs> {
    debug_assert_eq!(planned.len(), escapes.len());
    let base = flexvc_options(arr, msg, current, planned, escapes[0])?;
    if base.kind == HopKind::Safe {
        return Some(base);
    }
    let hop = planned[0];
    // Landings are monotone: if the remainder traverses from q, it also
    // traverses from any lower landing (weaker floors, easier embeddings).
    // Scan from the top for the highest viable landing.
    for idx in (base.lo..=base.hi).rev() {
        let q = arr.position(hop, idx).expect("index in range");
        if traversable(arr, msg, Some(q), &planned[1..], &escapes[1..]) {
            return Some(HopVcs {
                kind: HopKind::Opportunistic,
                lo: base.lo,
                hi: idx,
            });
        }
    }
    None
}

/// Can the planned path be fully traversed from `current` under the per-hop
/// rules, assuming favourable credits? Used by the landing lookahead.
fn traversable(
    arr: &Arrangement,
    msg: MessageClass,
    current: Pos,
    planned: &[LinkClass],
    escapes: &[&[LinkClass]],
) -> bool {
    if planned.is_empty() {
        return true;
    }
    let Some(opts) = flexvc_options(arr, msg, current, planned, escapes[0]) else {
        return false;
    };
    // Monotonicity: a lower landing weakens every later constraint (floors
    // and embeddings), so the path traverses from some landing iff it
    // traverses from the lowest one. This makes the check linear.
    let q = arr
        .position(planned[0], opts.lo)
        .expect("lo index in range");
    traversable(arr, msg, Some(q), &planned[1..], &escapes[1..])
}

/// Fixed VC of the baseline distance-based policy for reference-path slot
/// `slot` of `reference` (the routing mode's full reference sequence).
///
/// Replies are offset into the reply sub-sequence when the arrangement has
/// one (separate virtual networks, as in Cray Cascade).
pub fn baseline_vc(
    arr: &Arrangement,
    msg: MessageClass,
    reference: &[LinkClass],
    slot: usize,
) -> (LinkClass, usize) {
    let offset = match msg {
        MessageClass::Request => 0,
        MessageClass::Reply => {
            if arr.has_reply_part() {
                arr.request_len()
            } else {
                0
            }
        }
    };
    let pos = offset + slot;
    let class = arr.class_at(pos);
    debug_assert_eq!(
        class, reference[slot],
        "arrangement does not follow the reference sequence at slot {slot}"
    );
    (class, arr.vc_index_at(pos))
}

/// Whether the arrangement can host the baseline policy for a routing mode's
/// reference sequence: the relevant sub-sequence must *equal* the reference
/// (the baseline cannot exploit extra VCs, paper §V-A).
pub fn supports_baseline(arr: &Arrangement, msg: MessageClass, reference: &[LinkClass]) -> bool {
    let part: &[LinkClass] = match msg {
        MessageClass::Request => &arr.sequence()[..arr.request_len()],
        MessageClass::Reply => {
            if arr.has_reply_part() {
                &arr.sequence()[arr.request_len()..]
            } else {
                arr.sequence()
            }
        }
    };
    part == reference
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq;
    use LinkClass::*;
    use MessageClass::*;

    /// Fig. 3a: diameter-2, 4 VCs, MIN path (2 hops). First hop allows VCs
    /// 0..=2, second hop 0..=3, both safe.
    #[test]
    fn fig3a_min_with_four_vcs() {
        let a = Arrangement::generic(4);
        let h1 = flexvc_options(&a, Request, None, &seq!(L L), &seq!(L)).unwrap();
        assert_eq!(h1.kind, HopKind::Safe);
        assert_eq!((h1.lo, h1.hi), (0, 2));
        // After landing in VC 2, the final hop allows 0..=3 (descent allowed).
        let h2 = flexvc_options(&a, Request, Some(2), &seq!(L), &[]).unwrap();
        assert_eq!(h2.kind, HopKind::Safe);
        assert_eq!((h2.lo, h2.hi), (0, 3));
    }

    /// Fig. 3a: Valiant (4 hops) with 4 VCs is safe; hop i allows 0..=i.
    #[test]
    fn fig3a_valiant_safe_with_four_vcs() {
        let a = Arrangement::generic(4);
        let mut cur: Pos = None;
        let path = seq!(L L L L);
        for i in 0..4 {
            let h = flexvc_options(&a, Request, cur, &path[i..], &seq!(L L)).unwrap();
            assert_eq!(h.kind, HopKind::Safe, "hop {i}");
            assert_eq!((h.lo, h.hi), (0, i), "hop {i}");
            cur = Some(h.hi); // take the highest
        }
    }

    /// Fig. 3b: Valiant with only 3 VCs: the first two hops are
    /// opportunistic (escape = 2-hop minimal continuation), the rest safe.
    #[test]
    fn fig3b_valiant_opportunistic_with_three_vcs() {
        let a = Arrangement::generic(3);
        let val = seq!(L L L L);
        let esc = seq!(L L);
        let h1 = flexvc_options(&a, Request, None, &val, &esc).unwrap();
        assert_eq!(h1.kind, HopKind::Opportunistic);
        assert_eq!((h1.lo, h1.hi), (0, 0));
        let h2 = flexvc_options(&a, Request, Some(0), &val[1..], &esc).unwrap();
        assert_eq!(h2.kind, HopKind::Opportunistic);
        assert_eq!((h2.lo, h2.hi), (0, 0));
        // At the Valiant router the remaining 2-hop path is safe.
        let h3 = flexvc_options(&a, Request, Some(0), &val[2..], &seq!(L)).unwrap();
        assert_eq!(h3.kind, HopKind::Safe);
        assert_eq!((h3.lo, h3.hi), (0, 1));
        let h4 = flexvc_options(&a, Request, Some(1), &val[3..], &[]).unwrap();
        assert_eq!(h4.kind, HopKind::Safe);
        assert_eq!((h4.lo, h4.hi), (0, 2));
    }

    /// Valiant with 2 VCs must be rejected outright (Table I).
    #[test]
    fn valiant_infeasible_with_two_vcs() {
        let a = Arrangement::generic(2);
        assert_eq!(
            flexvc_options(&a, Request, None, &seq!(L L L L), &seq!(L L)),
            None
        );
    }

    /// Dragonfly MIN on 2/1: hop maxima follow the reference path exactly.
    #[test]
    fn dragonfly_min_on_2_1() {
        let a = Arrangement::dragonfly_min();
        let min = seq!(L G L);
        let h1 = flexvc_options(&a, Request, None, &min, &seq!(G L)).unwrap();
        assert_eq!((h1.kind, h1.lo, h1.hi), (HopKind::Safe, 0, 0));
        let h2 = flexvc_options(&a, Request, Some(0), &min[1..], &seq!(L)).unwrap();
        assert_eq!((h2.kind, h2.lo, h2.hi), (HopKind::Safe, 0, 0));
        let h3 = flexvc_options(&a, Request, Some(1), &min[2..], &[]).unwrap();
        assert_eq!((h3.kind, h3.lo, h3.hi), (HopKind::Safe, 0, 1));
    }

    /// Dragonfly MIN on 4/2 (VAL-provisioned): MIN exploits the extra VCs —
    /// the core HoLB benefit of Fig. 5.
    #[test]
    fn dragonfly_min_exploits_val_vcs() {
        let a = Arrangement::dragonfly_val(); // L G L L G L
        let min = seq!(L G L);
        let h1 = flexvc_options(&a, Request, None, &min, &seq!(G L)).unwrap();
        assert_eq!((h1.lo, h1.hi), (0, 2)); // l0, l1, l2 of 4 locals
        let h2 = flexvc_options(&a, Request, Some(3), &min[1..], &seq!(L)).unwrap();
        assert_eq!((h2.lo, h2.hi), (0, 1)); // both globals
        let h3 = flexvc_options(&a, Request, Some(4), &min[2..], &[]).unwrap();
        assert_eq!((h3.lo, h3.hi), (0, 3)); // all four locals
    }

    /// A reply on a unified 3+2 arrangement may dip into request VCs while
    /// its safe escape lives in the reply part (paper §III-B).
    #[test]
    fn reply_borrows_request_vcs() {
        let a = Arrangement::generic_rr(3, 2);
        // Reply MIN (2 hops): first hop may land anywhere up to position 3
        // (VC index 3) since the rest embeds in the reply part.
        let h1 = flexvc_options(&a, Reply, None, &seq!(L L), &seq!(L)).unwrap();
        assert_eq!(h1.kind, HopKind::Safe);
        assert_eq!((h1.lo, h1.hi), (0, 3));
        // Reply VAL (4 hops) does not fit the reply part: opportunistic.
        let h = flexvc_options(&a, Reply, None, &seq!(L L L L), &seq!(L L)).unwrap();
        assert_eq!(h.kind, HopKind::Opportunistic);
        assert_eq!((h.lo, h.hi), (0, 2));
    }

    /// Requests never use reply VCs.
    #[test]
    fn request_confined_to_prefix() {
        let a = Arrangement::generic_rr(2, 2);
        let h2 = flexvc_options(&a, Request, Some(0), &seq!(L), &[]).unwrap();
        assert_eq!((h2.lo, h2.hi), (0, 1)); // only the two request VCs
    }

    /// Opportunistic landings respect the floor `c_j1 >= c_j0`.
    #[test]
    fn opportunistic_floor() {
        let a = Arrangement::zigzag(2); // L G L G L
                                        // A packet in local VC1 (position 2) pursuing a non-fitting plan with
                                        // escape [G,L] may only land at local index >= 1.
        let h = flexvc_options(
            &a,
            Request,
            Some(2),
            &seq!(L L G L), // does not embed after position 2
            &seq!(G L),
        )
        .unwrap();
        assert_eq!(h.kind, HopKind::Opportunistic);
        assert_eq!((h.lo, h.hi), (1, 1));
    }

    #[test]
    fn baseline_fixed_assignments() {
        let a = Arrangement::dragonfly_val();
        let r = seq!(L G L L G L);
        assert!(supports_baseline(&a, Request, &r));
        assert_eq!(baseline_vc(&a, Request, &r, 0), (Local, 0));
        assert_eq!(baseline_vc(&a, Request, &r, 1), (Global, 0));
        assert_eq!(baseline_vc(&a, Request, &r, 2), (Local, 1));
        assert_eq!(baseline_vc(&a, Request, &r, 3), (Local, 2));
        assert_eq!(baseline_vc(&a, Request, &r, 4), (Global, 1));
        assert_eq!(baseline_vc(&a, Request, &r, 5), (Local, 3));
    }

    #[test]
    fn baseline_reply_offsets() {
        let a = Arrangement::dragonfly_rr((2, 1), (2, 1));
        let min = seq!(L G L);
        assert!(supports_baseline(&a, Request, &min));
        assert!(supports_baseline(&a, Reply, &min));
        assert_eq!(baseline_vc(&a, Reply, &min, 0), (Local, 2));
        assert_eq!(baseline_vc(&a, Reply, &min, 1), (Global, 1));
        assert_eq!(baseline_vc(&a, Reply, &min, 2), (Local, 3));
    }

    #[test]
    fn baseline_rejects_mismatched_arrangement() {
        let a = Arrangement::dragonfly_val();
        assert!(!supports_baseline(&a, Request, &seq!(L G L)));
        assert!(!supports_baseline(&a, Request, &seq!(L L G L L G L)));
    }

    /// The lookahead must trim landings that would strand the next
    /// opportunistic hop: a reply Valiant path on 4/2+2/1 may not land in
    /// the highest request local VC (l3), because no global landing above it
    /// keeps a reply-region escape.
    #[test]
    fn lookahead_trims_stranding_landings() {
        let a = Arrangement::dragonfly_rr((4, 2), (2, 1));
        let planned = seq!(L G L L G L); // worst-case reply Valiant path
        let worst_min = seq!(L G L);
        let escapes: [&[LinkClass]; 6] = [
            &worst_min,
            &worst_min,
            &worst_min,
            &worst_min,
            &seq!(G L),
            &seq!(L),
        ];
        let unchecked = flexvc_options(&a, Reply, None, &planned, &worst_min).unwrap();
        assert_eq!(unchecked.kind, HopKind::Opportunistic);
        assert_eq!(unchecked.hi, 3, "per-hop rule alone allows l3");
        let checked = flexvc_options_lookahead(&a, Reply, None, &planned, &escapes).unwrap();
        assert_eq!(checked.kind, HopKind::Opportunistic);
        assert!(
            checked.hi < unchecked.hi,
            "lookahead must trim the stranding landing (hi = {})",
            checked.hi
        );
        // From the trimmed landing the whole detour remains traversable.
        assert_eq!((checked.lo, checked.hi), (0, 2));
    }

    /// Safe hops are returned unchanged by the lookahead.
    #[test]
    fn lookahead_passes_safe_hops_through() {
        let a = Arrangement::dragonfly_val();
        let planned = seq!(L G L);
        let escapes: [&[LinkClass]; 3] = [&seq!(G L), &seq!(L), &[]];
        let plain = flexvc_options(&a, Request, None, &planned, &seq!(G L)).unwrap();
        let checked = flexvc_options_lookahead(&a, Request, None, &planned, &escapes).unwrap();
        assert_eq!(plain, checked);
        assert_eq!(checked.kind, HopKind::Safe);
    }

    /// When no landing keeps the rest traversable the hop is rejected and
    /// the caller reverts.
    #[test]
    fn lookahead_rejects_untraversable() {
        let a = Arrangement::dragonfly(3, 2); // L G L G L
                                              // A packet already deep in the sequence cannot start a full Valiant
                                              // detour any more.
        let planned = seq!(L G L L G L);
        let worst_min = seq!(L G L);
        let escapes: [&[LinkClass]; 6] = [
            &worst_min,
            &worst_min,
            &worst_min,
            &worst_min,
            &seq!(G L),
            &seq!(L),
        ];
        assert_eq!(
            flexvc_options_lookahead(&a, Request, Some(3), &planned, &escapes),
            None
        );
    }

    #[test]
    fn hopvcs_iteration() {
        let h = HopVcs {
            kind: HopKind::Safe,
            lo: 1,
            hi: 3,
        };
        assert_eq!(h.count(), 3);
        assert_eq!(h.iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }
}
