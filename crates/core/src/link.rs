//! Link and buffer classes, message classes.
//!
//! Low-diameter topologies restrict the order in which link *classes* are
//! traversed (paper §II, "Routing or link-type restrictions"): Dragonfly
//! minimal paths follow `local – global – local`, flattened butterflies
//! traverse dimensions in DOR order, orthogonal fat trees go up then down.
//! Deadlock-avoidance resources (VCs) are therefore dimensioned *per class*.
//!
//! Networks without such restrictions (the paper's "generic diameter-2"
//! network, e.g. a Slim Fly) use the single class [`LinkClass::Local`].

/// The class of a link or of an input-buffer bank.
///
/// `flexvc-core` is topology-agnostic; only the *sequence* of classes along a
/// path matters. Two classes cover every topology discussed in the paper:
/// Dragonfly local/global links, flattened-butterfly X/Y dimensions
/// (mapped to `Local`/`Global`), and single-class diameter-2 networks
/// (everything `Local`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LinkClass {
    /// Intra-group (Dragonfly) links, first dimension (FB), or the single
    /// class of a generic network.
    Local,
    /// Inter-group (Dragonfly) links or second dimension (FB).
    Global,
}

impl LinkClass {
    /// Number of distinct classes handled by the model.
    pub const COUNT: usize = 2;

    /// Dense index for per-class tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            LinkClass::Local => 0,
            LinkClass::Global => 1,
        }
    }

    /// Inverse of [`LinkClass::index`].
    #[inline]
    pub fn from_index(i: usize) -> LinkClass {
        match i {
            0 => LinkClass::Local,
            1 => LinkClass::Global,
            _ => panic!("invalid LinkClass index {i}"),
        }
    }

    /// One-letter label used in arrangement notation (`L G L L G L`).
    #[inline]
    pub fn letter(self) -> char {
        match self {
            LinkClass::Local => 'L',
            LinkClass::Global => 'G',
        }
    }
}

impl std::fmt::Display for LinkClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// Message class for protocol-deadlock avoidance (paper §II, §III-B).
///
/// Destination nodes consume requests and produce replies; replies must never
/// be blocked (transitively) behind requests or the request/reply dependency
/// becomes circular. The classic solution doubles the VC set into two virtual
/// networks. FlexVC instead concatenates the request and reply reference
/// sequences into one unified sequence: requests are confined to the request
/// prefix, while replies may *safely* use reply VCs and *opportunistically*
/// borrow request VCs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MessageClass {
    /// A request, or any packet of single-class (non-reactive) traffic.
    #[default]
    Request,
    /// A reply generated in response to a consumed request.
    Reply,
}

impl MessageClass {
    /// Dense index (request = 0, reply = 1) for per-class counters.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            MessageClass::Request => 0,
            MessageClass::Reply => 1,
        }
    }
}

/// Quality-of-service traffic class of a packet (orthogonal to
/// [`MessageClass`], which exists for protocol-deadlock avoidance).
///
/// "Millions of users" traffic is not one class: latency-critical control
/// RPCs share the fabric with throughput-bound bulk transfers. The class is
/// assigned at the workload layer (mice flows / a configured fraction of a
/// synthetic stream are control) and threaded through arbitration — strict
/// priority with a bounded bypass — and per-class metrics. The two-variant
/// enum is dimensioned by [`TrafficClass::COUNT`] so per-class tables extend
/// to N classes without structural change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TrafficClass {
    /// Latency-critical control traffic (prioritized).
    Control,
    /// Throughput-bound bulk traffic (the default for unclassified
    /// single-class workloads).
    #[default]
    Bulk,
}

impl TrafficClass {
    /// Number of traffic classes handled by the model.
    pub const COUNT: usize = 2;

    /// Dense index (control = 0, bulk = 1) for per-class tables.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            TrafficClass::Control => 0,
            TrafficClass::Bulk => 1,
        }
    }

    /// Inverse of [`TrafficClass::index`].
    #[inline]
    pub fn from_index(i: usize) -> TrafficClass {
        match i {
            0 => TrafficClass::Control,
            1 => TrafficClass::Bulk,
            _ => panic!("invalid TrafficClass index {i}"),
        }
    }

    /// Short label used in per-class reporting columns.
    #[inline]
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::Control => "control",
            TrafficClass::Bulk => "bulk",
        }
    }
}

impl std::fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

/// Shorthand constructors for class sequences used throughout tests and the
/// classifier: `seq!(L G L)`.
#[macro_export]
macro_rules! seq {
    ($($c:ident)*) => {
        [$($crate::seq!(@one $c)),*]
    };
    (@one L) => { $crate::link::LinkClass::Local };
    (@one G) => { $crate::link::LinkClass::Global };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_index_roundtrip() {
        for i in 0..LinkClass::COUNT {
            assert_eq!(LinkClass::from_index(i).index(), i);
        }
    }

    #[test]
    fn letters() {
        assert_eq!(LinkClass::Local.letter(), 'L');
        assert_eq!(LinkClass::Global.letter(), 'G');
        assert_eq!(format!("{}", LinkClass::Global), "G");
    }

    #[test]
    fn seq_macro_builds_sequences() {
        let s = seq!(L G L);
        assert_eq!(s, [LinkClass::Local, LinkClass::Global, LinkClass::Local]);
    }

    #[test]
    fn traffic_class_index_roundtrip() {
        for i in 0..TrafficClass::COUNT {
            assert_eq!(TrafficClass::from_index(i).index(), i);
        }
        assert_eq!(TrafficClass::default(), TrafficClass::Bulk);
        assert_eq!(TrafficClass::Control.label(), "control");
        assert_eq!(format!("{}", TrafficClass::Bulk), "bulk");
    }

    #[test]
    fn message_class_default_is_request() {
        assert_eq!(MessageClass::default(), MessageClass::Request);
        assert_eq!(MessageClass::Request.index(), 0);
        assert_eq!(MessageClass::Reply.index(), 1);
    }
}
