//! `flexvc_serde` conversions for the core model types.
//!
//! Conventions used across the workspace's serialized documents:
//!
//! * Unit enum variants are lowercase snake_case strings (`"min"`,
//!   `"per_port"`, `"flexvc"`); parsing is case-insensitive.
//! * [`Arrangement`]s serialize as their paper notation string, e.g.
//!   `"L G L | L G L"`, with the `|` marking the request/reply boundary.

use crate::classify::{NetworkFamily, Support};
use crate::{Arrangement, LinkClass, RoutingMode, VcPolicy, VcSelection};
use flexvc_serde::{Deserialize, Error, Serialize, Value};

/// Shared helper: parse a lowercase keyword enum.
fn keyword<T: Copy>(v: &Value, what: &str, table: &[(&str, T)]) -> Result<T, Error> {
    let s = v.as_str()?.to_ascii_lowercase();
    table
        .iter()
        .find(|(k, _)| *k == s)
        .map(|(_, t)| *t)
        .ok_or_else(|| {
            let options: Vec<&str> = table.iter().map(|(k, _)| *k).collect();
            Error::new(format!(
                "unknown {what} `{s}` (expected one of {})",
                options.join(", ")
            ))
        })
}

impl Serialize for RoutingMode {
    fn to_value(&self) -> Value {
        Value::Str(
            match self {
                RoutingMode::Min => "min",
                RoutingMode::Valiant => "valiant",
                RoutingMode::Par => "par",
                RoutingMode::Piggyback => "piggyback",
                RoutingMode::UgalL => "ugal_l",
                RoutingMode::UgalG => "ugal_g",
                RoutingMode::Dal => "dal",
            }
            .to_string(),
        )
    }
}

impl Deserialize for RoutingMode {
    fn from_value(v: &Value) -> Result<Self, Error> {
        keyword(
            v,
            "routing mode",
            &[
                ("min", RoutingMode::Min),
                ("valiant", RoutingMode::Valiant),
                ("val", RoutingMode::Valiant),
                ("par", RoutingMode::Par),
                ("piggyback", RoutingMode::Piggyback),
                ("pb", RoutingMode::Piggyback),
                ("ugal_l", RoutingMode::UgalL),
                ("ugal-l", RoutingMode::UgalL),
                ("ugal", RoutingMode::UgalL),
                ("ugal_g", RoutingMode::UgalG),
                ("ugal-g", RoutingMode::UgalG),
                ("dal", RoutingMode::Dal),
            ],
        )
    }
}

impl Serialize for VcPolicy {
    fn to_value(&self) -> Value {
        Value::Str(
            match self {
                VcPolicy::Baseline => "baseline",
                VcPolicy::FlexVc => "flexvc",
            }
            .to_string(),
        )
    }
}

impl Deserialize for VcPolicy {
    fn from_value(v: &Value) -> Result<Self, Error> {
        keyword(
            v,
            "VC policy",
            &[
                ("baseline", VcPolicy::Baseline),
                ("flexvc", VcPolicy::FlexVc),
            ],
        )
    }
}

impl Serialize for VcSelection {
    fn to_value(&self) -> Value {
        Value::Str(
            match self {
                VcSelection::Jsq => "jsq",
                VcSelection::HighestVc => "highest_vc",
                VcSelection::LowestVc => "lowest_vc",
                VcSelection::Random => "random",
            }
            .to_string(),
        )
    }
}

impl Deserialize for VcSelection {
    fn from_value(v: &Value) -> Result<Self, Error> {
        keyword(
            v,
            "VC selection",
            &[
                ("jsq", VcSelection::Jsq),
                ("highest_vc", VcSelection::HighestVc),
                ("lowest_vc", VcSelection::LowestVc),
                ("random", VcSelection::Random),
            ],
        )
    }
}

impl Serialize for NetworkFamily {
    fn to_value(&self) -> Value {
        Value::Str(match self {
            NetworkFamily::Diameter2 => "diameter2".to_string(),
            NetworkFamily::Dragonfly => "dragonfly".to_string(),
            NetworkFamily::DragonflyPlus => "dragonfly_plus".to_string(),
            NetworkFamily::Generic { diameter } => format!("diameter{diameter}"),
        })
    }
}

impl Deserialize for NetworkFamily {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str()?.to_ascii_lowercase();
        if s == "dragonfly" {
            return Ok(NetworkFamily::Dragonfly);
        }
        if s == "dragonfly_plus" || s == "dragonflyplus" || s == "megafly" {
            return Ok(NetworkFamily::DragonflyPlus);
        }
        if let Some(d) = s.strip_prefix("diameter").and_then(|d| d.parse().ok()) {
            if d >= 1 {
                return Ok(NetworkFamily::generic(d));
            }
        }
        Err(Error::new(format!(
            "unknown network family `{s}` (expected dragonfly, dragonfly_plus or diameter<N>)"
        )))
    }
}

impl Serialize for Support {
    fn to_value(&self) -> Value {
        // The classification glyphs of the paper's tables: S / O / X.
        Value::Str(self.to_string())
    }
}

impl Serialize for Arrangement {
    fn to_value(&self) -> Value {
        Value::Str(self.notation())
    }
}

impl Deserialize for Arrangement {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let text = v.as_str()?;
        let mut seq = Vec::new();
        let mut req_len: Option<usize> = None;
        for c in text.chars() {
            match c {
                'L' | 'l' => seq.push(LinkClass::Local),
                'G' | 'g' => seq.push(LinkClass::Global),
                '|' => {
                    if req_len.replace(seq.len()).is_some() {
                        return Err(Error::new(format!(
                            "arrangement `{text}` has more than one `|` boundary"
                        )));
                    }
                }
                ' ' | '\t' => {}
                other => {
                    return Err(Error::new(format!(
                        "invalid character `{other}` in arrangement `{text}` \
                         (expected L, G, `|` and spaces)"
                    )))
                }
            }
        }
        if seq.is_empty() {
            return Err(Error::new("arrangement must contain at least one VC"));
        }
        let req_len = req_len.unwrap_or(seq.len());
        if req_len == 0 {
            return Err(Error::new(format!(
                "arrangement `{text}` has an empty request prefix"
            )));
        }
        Ok(Arrangement::with_request_len(seq, req_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexvc_serde::{from_json, to_json};

    #[test]
    fn keyword_enums_round_trip() {
        for mode in [
            RoutingMode::Min,
            RoutingMode::Valiant,
            RoutingMode::Par,
            RoutingMode::Piggyback,
            RoutingMode::UgalL,
            RoutingMode::UgalG,
            RoutingMode::Dal,
        ] {
            assert_eq!(from_json::<RoutingMode>(&to_json(&mode)).unwrap(), mode);
        }
        assert_eq!(
            from_json::<RoutingMode>("\"UGAL-G\"").unwrap(),
            RoutingMode::UgalG
        );
        assert_eq!(
            from_json::<RoutingMode>("\"ugal\"").unwrap(),
            RoutingMode::UgalL
        );
        for sel in VcSelection::all() {
            assert_eq!(from_json::<VcSelection>(&to_json(&sel)).unwrap(), sel);
        }
        assert_eq!(
            from_json::<RoutingMode>("\"VAL\"").unwrap(),
            RoutingMode::Valiant
        );
        assert!(from_json::<RoutingMode>("\"warp\"").is_err());
    }

    #[test]
    fn network_family_round_trips() {
        use crate::classify::NetworkFamily;
        for fam in [
            NetworkFamily::Dragonfly,
            NetworkFamily::DragonflyPlus,
            NetworkFamily::Diameter2,
            NetworkFamily::generic(3),
        ] {
            assert_eq!(from_json::<NetworkFamily>(&to_json(&fam)).unwrap(), fam);
        }
        // The Megafly alias parses to the same family.
        assert_eq!(
            from_json::<NetworkFamily>("\"megafly\"").unwrap(),
            NetworkFamily::DragonflyPlus
        );
        // `diameter2` canonicalizes to the dedicated variant.
        assert_eq!(
            from_json::<NetworkFamily>("\"diameter2\"").unwrap(),
            NetworkFamily::Diameter2
        );
        assert_eq!(
            from_json::<NetworkFamily>("\"diameter3\"").unwrap(),
            NetworkFamily::Generic { diameter: 3 }
        );
        assert!(from_json::<NetworkFamily>("\"diameter0\"").is_err());
        assert!(from_json::<NetworkFamily>("\"torus\"").is_err());
    }

    #[test]
    fn arrangement_notation_round_trips() {
        for arr in [
            Arrangement::dragonfly_min(),
            Arrangement::dragonfly_par(),
            Arrangement::dragonfly(8, 4),
            Arrangement::dragonfly_rr((4, 2), (2, 1)),
            Arrangement::generic(4),
            Arrangement::generic_rr(3, 2),
        ] {
            let back = from_json::<Arrangement>(&to_json(&arr)).unwrap();
            assert_eq!(back, arr, "notation {}", arr.notation());
        }
    }

    #[test]
    fn arrangement_parse_accepts_compact_forms() {
        let a = from_json::<Arrangement>("\"lgl|lgl\"").unwrap();
        assert_eq!(a, Arrangement::dragonfly_rr((2, 1), (2, 1)));
        assert!(from_json::<Arrangement>("\"LQL\"").is_err());
        assert!(from_json::<Arrangement>("\"\"").is_err());
        assert!(from_json::<Arrangement>("\"|LGL\"").is_err());
        assert!(from_json::<Arrangement>("\"L|G|L\"").is_err());
    }
}
