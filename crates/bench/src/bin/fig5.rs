//! Figure 5: latency and throughput vs offered load under oblivious
//! routing — UN and BURSTY-UN with MIN, ADV with VAL — for Baseline,
//! DAMQ 75%, and FlexVC with 2/1, 4/2 and 8/4 VCs.
//!
//! Usage: `cargo run --release -p flexvc-bench --bin fig5`

use flexvc_bench::{default_loads, oblivious_series, print_sweep, Scale};
use flexvc_traffic::Pattern;

fn main() {
    let scale = Scale::from_env();
    println!("# Figure 5: oblivious routing (h = {})", scale.h);
    let loads = default_loads();
    for pattern in [Pattern::Uniform, Pattern::bursty(), Pattern::adv1()] {
        let series = oblivious_series(&scale, pattern);
        let routing = if pattern == Pattern::adv1() { "VAL" } else { "MIN" };
        print_sweep(
            &format!("Fig. 5 — {} with {} routing", pattern.label(), routing),
            &series,
            &loads,
            &scale.seeds,
        );
    }
}
