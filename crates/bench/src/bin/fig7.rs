//! Figure 7: latency and throughput under request–reply traffic with
//! oblivious routing; FlexVC request/reply VC splits (4/2, 5/3, 6/4 for
//! UN/BURSTY-UN; 8/4 and 10/6 for ADV).
//!
//! Usage: `cargo run --release -p flexvc-bench --bin fig7`

use flexvc_bench::{default_loads, print_sweep, reactive_series, Scale};
use flexvc_traffic::Pattern;

fn main() {
    let scale = Scale::from_env();
    println!("# Figure 7: request-reply traffic (h = {})", scale.h);
    let loads = default_loads();
    for pattern in [Pattern::Uniform, Pattern::bursty(), Pattern::adv1()] {
        let series = reactive_series(&scale, pattern);
        let routing = if pattern == Pattern::adv1() { "VAL" } else { "MIN" };
        print_sweep(
            &format!("Fig. 7 — {}-RR with {} routing", pattern.label(), routing),
            &series,
            &loads,
            &scale.seeds,
        );
    }
}
