//! Figure 9: throughput at 100% offered load under UN request–reply
//! traffic, for each VC selection function × request/reply VC split.
//!
//! Usage: `cargo run --release -p flexvc-bench --bin fig9`

use flexvc_bench::Scale;
use flexvc_core::{Arrangement, RoutingMode, VcSelection};
use flexvc_sim::run_averaged;
use flexvc_traffic::{Pattern, Workload};

fn main() {
    let scale = Scale::from_env();
    println!("# Figure 9: VC selection functions at 100% load, UN-RR, MIN (h = {})\n", scale.h);
    let wl = Workload::reactive(Pattern::Uniform);
    let base = scale.config(RoutingMode::Min, wl);

    let splits: [((usize, usize), (usize, usize)); 6] = [
        ((2, 1), (2, 1)),
        ((2, 1), (3, 2)),
        ((3, 2), (2, 1)),
        ((2, 1), (4, 3)),
        ((3, 2), (3, 2)),
        ((4, 3), (2, 1)),
    ];
    print!("| series |");
    for (req, rep) in splits {
        print!(
            " {}/{}({}/{}+{}/{}) |",
            req.0 + rep.0,
            req.1 + rep.1,
            req.0,
            req.1,
            rep.0,
            rep.1
        );
    }
    println!();
    print!("|---|");
    for _ in splits {
        print!("---|");
    }
    println!();

    // Reference rows: baseline and DAMQ (VC split fixed at 2/1+2/1).
    for (label, cfg) in [
        ("Baseline", base.clone()),
        ("DAMQ 75%", base.clone().with_damq75()),
    ] {
        let r = run_averaged(&cfg, 1.0, &scale.seeds);
        print!("| {label} |");
        for _ in splits {
            print!(" {:.3} |", r.accepted);
        }
        println!();
    }
    // FlexVC rows per selection function.
    for sel in VcSelection::all() {
        print!("| FlexVC {sel} |");
        for (req, rep) in splits {
            let mut cfg = base
                .clone()
                .with_flexvc(Arrangement::dragonfly_rr(req, rep));
            cfg.selection = sel;
            let r = run_averaged(&cfg, 1.0, &scale.seeds);
            print!(" {:.3} |", r.accepted);
        }
        println!();
    }
}
