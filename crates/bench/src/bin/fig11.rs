//! Figure 11: the Figure 6 buffer-capacity study repeated without router
//! speedup (crossbar at link frequency), where HoLB is strongest and FlexVC
//! gains the most (up to +37.8% in the paper).
//!
//! Usage: `cargo run --release -p flexvc-bench --bin fig11`

use flexvc_bench::{oblivious_series, print_max_throughput, Scale};
use flexvc_sim::{saturation_throughput, BufferSizing};
use flexvc_traffic::Pattern;

fn main() {
    let scale = Scale::from_env();
    let caps: [(u32, u32); 4] = [(64, 256), (128, 512), (192, 768), (256, 1024)];
    println!(
        "# Figure 11: max throughput without router speedup (h = {})",
        scale.h
    );
    for pattern in [Pattern::Uniform, Pattern::bursty(), Pattern::adv1()] {
        let caps: Vec<(u32, u32)> = if pattern == Pattern::adv1() {
            caps[1..].to_vec()
        } else {
            caps.to_vec()
        };
        let series = oblivious_series(&scale, pattern);
        let labels: Vec<String> = series.iter().map(|s| s.label.clone()).collect();
        let columns: Vec<String> = caps.iter().map(|(l, g)| format!("{l}/{g}")).collect();
        let mut data = Vec::new();
        for s in &series {
            let mut row = Vec::new();
            for &(local, global) in &caps {
                let mut cfg = s.cfg.clone();
                cfg.buffers.sizing = BufferSizing::PerPort { local, global };
                cfg.speedup = 1;
                row.push(saturation_throughput(&cfg, &scale.seeds));
            }
            data.push(row);
        }
        print_max_throughput(
            &format!("{} — no speedup", pattern.label()),
            &labels,
            &columns,
            &data,
        );
    }
}
