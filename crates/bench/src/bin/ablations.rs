//! Ablation studies for the design choices called out in DESIGN.md:
//!
//! 1. **Per-VC occupancy fingerprints** (§III-D): why per-VC sensing
//!    identifies adversarial traffic under the baseline policy, why FlexVC
//!    destroys the signal, and what minCred sees instead.
//! 2. **Reversion patience**: throughput vs how long an opportunistic hop
//!    may wait before falling back to its escape path.
//! 3. **PB threshold `T`**: sensitivity of the saturation floor.
//! 4. **Reply-queue depth**: the protocol-coupling knob behind the
//!    request–reply congestion of Fig. 7.
//!
//! Usage: `cargo run --release -p flexvc-bench --bin ablations`

use flexvc_bench::Scale;
use flexvc_core::{Arrangement, RoutingMode, VcPolicy};
use flexvc_sim::prelude::*;
use flexvc_traffic::{Pattern, Workload};

fn main() {
    let scale = Scale::from_env();
    occupancy_fingerprints(&scale);
    patience_sweep(&scale);
    threshold_sweep(&scale);
    reply_queue_sweep(&scale);
}

/// Global-port per-VC occupancy under ADV: the baseline concentrates
/// minimal traffic in VC0 (a clean pattern signature); FlexVC flattens it.
fn occupancy_fingerprints(scale: &Scale) {
    println!("\n## Ablation 1: per-VC global occupancy under ADV (load 0.45, VAL)\n");
    let base = scale.config(
        RoutingMode::Valiant,
        Workload::oblivious(Pattern::adv1()),
    );
    let flex = base.clone().with_flexvc(Arrangement::dragonfly(4, 2));
    println!("| policy | global VC occupancies (phits) | local VC occupancies |");
    println!("|---|---|---|");
    for (name, cfg) in [("Baseline 4/2", &base), ("FlexVC 4/2", &flex)] {
        let r = run_averaged(cfg, 0.45, &scale.seeds);
        let fmt = |v: &Vec<f64>| {
            v.iter()
                .map(|o| format!("{o:.1}"))
                .collect::<Vec<_>>()
                .join(" / ")
        };
        println!(
            "| {name} | {} | {} |",
            fmt(&r.global_vc_occupancy),
            fmt(&r.local_vc_occupancy)
        );
    }
    println!();
    println!("Baseline VAL splits its two global hops over g0/g1 in a fixed way;");
    println!("FlexVC spreads flows across both (JSQ), erasing the per-VC signature");
    println!("that plain PB per-VC sensing relies on (motivates minCred, §III-D).");
}

/// Reversion patience: 0 = the paper's strictest reading (revert on first
/// missing credit); large values approach pure waiting.
fn patience_sweep(scale: &Scale) {
    println!("\n## Ablation 2: opportunistic reversion patience (ADV-RR, VAL 6/3, load 0.5)\n");
    println!("| patience (evals) | accepted | latency | reverts/pkt |");
    println!("|---|---|---|---|");
    for patience in [0u32, 4, 16, 64, 256] {
        let mut cfg = scale
            .config(RoutingMode::Valiant, Workload::reactive(Pattern::adv1()))
            .with_flexvc(Arrangement::dragonfly_rr((4, 2), (2, 1)));
        cfg.revert_patience = patience;
        let r = run_averaged(&cfg, 0.5, &scale.seeds);
        println!(
            "| {patience} | {:.3} | {:.0} | {:.3} |",
            r.accepted, r.latency, r.reverts_per_packet
        );
    }
}

/// PB saturation-floor threshold `T` (Table V uses 3 packets).
fn threshold_sweep(scale: &Scale) {
    println!("\n## Ablation 3: PB threshold T (ADV-RR, PB minCred per-port, load 0.5)\n");
    println!("| T (packets) | accepted | latency | misroute |");
    println!("|---|---|---|---|");
    for t in [1u32, 2, 3, 6, 12] {
        let mut cfg = scale
            .config(RoutingMode::Piggyback, Workload::reactive(Pattern::adv1()))
            .with_flexvc(Arrangement::dragonfly_rr((4, 2), (2, 1)));
        cfg.sensing = SensingConfig {
            mode: SensingMode::PerPort,
            min_cred: true,
            threshold: t,
        };
        let r = run_averaged(&cfg, 0.5, &scale.seeds);
        println!(
            "| {t} | {:.3} | {:.0} | {:.2} |",
            r.accepted, r.latency, r.misroute_fraction
        );
    }
}

/// Reply-queue depth: deeper queues decouple request consumption from reply
/// injection and wash out the request-reply congestion.
fn reply_queue_sweep(scale: &Scale) {
    println!("\n## Ablation 4: reply-queue depth (UN-RR, MIN, load 1.0)\n");
    println!("| depth (packets) | baseline accepted | FlexVC 4/2+2/1 accepted |");
    println!("|---|---|---|");
    for depth in [1usize, 2, 4, 16, 1024] {
        let mut base = scale.config(RoutingMode::Min, Workload::reactive(Pattern::Uniform));
        base.reply_queue_packets = depth;
        let mut flex = base
            .clone()
            .with_flexvc(Arrangement::dragonfly_rr((4, 2), (2, 1)));
        flex.reply_queue_packets = depth;
        let rb = run_averaged(&base, 1.0, &scale.seeds);
        let rf = run_averaged(&flex, 1.0, &scale.seeds);
        println!("| {depth} | {:.3} | {:.3} |", rb.accepted, rf.accepted);
    }
    let _ = VcPolicy::Baseline; // silence unused-import lint paths
}
