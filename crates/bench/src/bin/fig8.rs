//! Figure 8: Piggyback source-adaptive routing with request–reply traffic:
//! per-port vs per-VC sensing, baseline (4/2+4/2 VCs) vs FlexVC (4/2+2/1)
//! vs FlexVC-minCred.
//!
//! Usage: `cargo run --release -p flexvc-bench --bin fig8`

use flexvc_bench::{adaptive_series, default_loads, print_sweep, Scale};
use flexvc_traffic::Pattern;

fn main() {
    let scale = Scale::from_env();
    println!("# Figure 8: adaptive routing (PB) with request-reply traffic (h = {})", scale.h);
    let loads = default_loads();
    for pattern in [Pattern::Uniform, Pattern::bursty(), Pattern::adv1()] {
        let series = adaptive_series(&scale, pattern);
        print_sweep(
            &format!("Fig. 8 — {} (reactive)", pattern.label()),
            &series,
            &loads,
            &scale.seeds,
        );
    }
}
