//! Figure 6: maximum throughput for constant buffer capacity per port
//! (64/256, 128/512, 192/768, 256/1024 phits local/global), oblivious
//! routing. FlexVC splits the same memory over more VCs; all series use
//! identical per-port storage.
//!
//! Usage: `cargo run --release -p flexvc-bench --bin fig6`

use flexvc_bench::{oblivious_series, print_max_throughput, Scale};
use flexvc_sim::{saturation_throughput, BufferSizing};
use flexvc_traffic::Pattern;

fn main() {
    run(Scale::from_env(), 2);
}

/// Shared with fig11 (speedup 1).
pub fn run(scale: Scale, speedup: u32) {
    let caps: [(u32, u32); 4] = [(64, 256), (128, 512), (192, 768), (256, 1024)];
    println!(
        "# Figure {}: max throughput vs per-port buffer capacity (h = {}, speedup {})",
        if speedup == 2 { 6 } else { 11 },
        scale.h,
        speedup
    );
    for pattern in [Pattern::Uniform, Pattern::bursty(), Pattern::adv1()] {
        // The paper omits the smallest capacity for ADV (256-phit global VCs
        // cannot fit in 256/VAL's two VCs at 64/256 per port).
        let caps: Vec<(u32, u32)> = if pattern == Pattern::adv1() {
            caps[1..].to_vec()
        } else {
            caps.to_vec()
        };
        let series = oblivious_series(&scale, pattern);
        let labels: Vec<String> = series.iter().map(|s| s.label.clone()).collect();
        let columns: Vec<String> = caps.iter().map(|(l, g)| format!("{l}/{g}")).collect();
        let mut data = Vec::new();
        for s in &series {
            let mut row = Vec::new();
            for &(local, global) in &caps {
                let mut cfg = s.cfg.clone();
                cfg.sizing_per_port(local, global);
                cfg.speedup = speedup;
                row.push(saturation_throughput(&cfg, &scale.seeds));
            }
            data.push(row);
        }
        print_max_throughput(
            &format!("{} — absolute and relative max throughput", pattern.label()),
            &labels,
            &columns,
            &data,
        );
    }
}

/// Helper trait to set per-port sizing tersely.
trait SizingExt {
    fn sizing_per_port(&mut self, local: u32, global: u32);
}

impl SizingExt for flexvc_sim::SimConfig {
    fn sizing_per_port(&mut self, local: u32, global: u32) {
        self.buffers.sizing = BufferSizing::PerPort { local, global };
    }
}
