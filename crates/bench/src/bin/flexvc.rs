//! `flexvc` — the unified experiment CLI.
//!
//! Replaces the nine per-figure binaries with one scenario-driven front
//! end (see `flexvc help` or the crate docs of `flexvc-bench`):
//!
//! ```text
//! flexvc list
//! flexvc show fig9 > fig9.toml
//! flexvc run fig9 --threads 8 --out results.json
//! flexvc run --file custom.toml --format csv --out results.csv
//! ```

use flexvc_bench::scenario::{
    render_csv, render_markdown, run_scenario, Scenario, ScenarioRegistry, ScenarioReport,
};
use flexvc_bench::Scale;
use flexvc_serde::{from_json, from_toml, to_json_pretty, to_toml};
use flexvc_sim::runner::default_threads;
use std::io::Write as _;
use std::process::ExitCode;

const USAGE: &str = "\
flexvc — scenario-first experiment runner for the FlexVC reproduction

USAGE:
    flexvc list                       list built-in scenarios
    flexvc show <scenario> [options]  print a scenario as editable data
    flexvc run <scenario> [options]   run a built-in scenario
    flexvc run --file <path> [opts]   run a scenario from a TOML/JSON file
    flexvc bench [--quick] [--out p]  run the engine-performance kernel
                                      suite and write a report
    flexvc help                       this text

BENCH OPTIONS:
    --quick                shorter windows (the CI profile)
    --group <name>         run a single kernel group (e.g. fig5_h2); see
                           the group list in the crate docs
    --shards <n>           engine shards per kernel (0 = auto-detect from
                           the host's cores; default: each kernel's own
                           setting — results are shard-count-invariant)
    --out <path>           report path (default: BENCH_current.json; pass
                           an explicit path when recording a new baseline)
    --baseline <path>      compare against a recorded report: fail (exit 1)
                           when any kernel group present in both reports
                           regresses its geomean cycles/sec by >15%
                           (>10% on the ratcheted fig5_h2/smoke_h8
                           groups); cycles/sec are machine-dependent, so
                           compare on like hardware
    --quiet                suppress per-kernel progress on stderr

SHOW OPTIONS:
    --format toml|json     output format (default: toml)

RUN OPTIONS:
    --file <path>          load the scenario from a file instead of the registry
    --threads <n>          worker threads, one simulation each (default: all cores)
    --shards <n>           engine shards per simulation (0 = auto-detect;
                           default: the scenario's `shards` field, usually 1).
                           Results are bit-identical for every shard count;
                           prefer --threads for sweeps with many points and
                           --shards for a few huge-topology points
    --out <path>           write structured results to a file
    --format json|csv      format for --out (default: by extension, else json)
    --quiet                suppress per-point progress on stderr

SCALE OPTIONS (run/show; defaults may also come from FLEXVC_* env vars):
    --paper                full Table V scale (h = 8, 5 seeds, 60k cycles)
    --h <n>                Dragonfly size parameter h
    --seeds <n>            repetitions per point (seeds 1..=n)
    --warmup <cycles>      warm-up window
    --measure <cycles>     measurement window
";

struct Options {
    names: Vec<String>,
    file: Option<String>,
    threads: usize,
    shards: Option<usize>,
    out: Option<String>,
    format: Option<String>,
    baseline: Option<String>,
    group: Option<String>,
    quiet: bool,
    quick: bool,
    scale: Scale,
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("run `flexvc help` for usage");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (command, rest) = match args.split_first() {
        Some((c, rest)) => (c.as_str(), rest),
        None => return fail("missing command"),
    };
    match command {
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        "list" => list(),
        "show" => match parse_options(rest) {
            Ok(opts) => show(opts),
            Err(msg) => fail(&msg),
        },
        "run" => match parse_options(rest) {
            Ok(opts) => run(opts),
            Err(msg) => fail(&msg),
        },
        "bench" => match parse_options(rest) {
            Ok(opts) => bench(opts),
            Err(msg) => fail(&msg),
        },
        other => fail(&format!("unknown command `{other}`")),
    }
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        names: Vec::new(),
        file: None,
        threads: default_threads(),
        shards: None,
        out: None,
        format: None,
        baseline: None,
        group: None,
        quiet: false,
        quick: false,
        scale: Scale::from_env(),
    };
    let mut it = args.iter();
    let value = |flag: &str, it: &mut std::slice::Iter<String>| -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--file" => opts.file = Some(value("--file", &mut it)?),
            "--threads" => {
                opts.threads = value("--threads", &mut it)?
                    .parse::<usize>()
                    .map_err(|_| "--threads needs an integer".to_string())?
                    .max(1)
            }
            "--shards" => {
                opts.shards = Some(
                    value("--shards", &mut it)?
                        .parse::<usize>()
                        .map_err(|_| "--shards needs an integer (0 = auto)".to_string())?,
                )
            }
            "--out" => opts.out = Some(value("--out", &mut it)?),
            "--format" => opts.format = Some(value("--format", &mut it)?),
            "--baseline" => opts.baseline = Some(value("--baseline", &mut it)?),
            "--group" => opts.group = Some(value("--group", &mut it)?),
            "--quiet" => opts.quiet = true,
            "--quick" => opts.quick = true,
            "--paper" => opts.scale = Scale::paper(),
            "--h" => {
                opts.scale.h = value("--h", &mut it)?
                    .parse()
                    .map_err(|_| "--h needs an integer".to_string())?
            }
            "--seeds" => {
                let n: u64 = value("--seeds", &mut it)?
                    .parse()
                    .map_err(|_| "--seeds needs an integer".to_string())?;
                opts.scale.seeds = (1..=n.max(1)).collect();
            }
            "--warmup" => {
                opts.scale.warmup = value("--warmup", &mut it)?
                    .parse()
                    .map_err(|_| "--warmup needs an integer".to_string())?
            }
            "--measure" => {
                opts.scale.measure = value("--measure", &mut it)?
                    .parse()
                    .map_err(|_| "--measure needs an integer".to_string())?
            }
            flag if flag.starts_with("--") => return Err(format!("unknown option `{flag}`")),
            name => opts.names.push(name.to_string()),
        }
    }
    Ok(opts)
}

fn list() -> ExitCode {
    let registry = ScenarioRegistry::builtin();
    println!("built-in scenarios:");
    for entry in registry.entries() {
        println!("  {:<16} {}", entry.name, entry.summary);
    }
    println!("\nrun one with `flexvc run <name>`; export with `flexvc show <name>`.");
    ExitCode::SUCCESS
}

/// Resolve the scenarios selected by names and/or `--file`.
fn resolve(opts: &Options) -> Result<Vec<Scenario>, String> {
    let registry = ScenarioRegistry::builtin();
    let mut scenarios = Vec::new();
    if let Some(path) = &opts.file {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let parsed: Result<Scenario, _> = if text.trim_start().starts_with('{') {
            from_json(&text)
        } else {
            from_toml(&text)
        };
        scenarios.push(parsed.map_err(|e| format!("cannot parse {path}: {e}"))?);
    }
    for name in &opts.names {
        match registry.build(name, &opts.scale) {
            Some(sc) => scenarios.push(sc),
            None => {
                return Err(format!(
                    "unknown scenario `{name}` (available: {})",
                    registry.names().join(", ")
                ))
            }
        }
    }
    if scenarios.is_empty() {
        return Err("nothing to do: name a scenario or pass --file".to_string());
    }
    Ok(scenarios)
}

fn show(opts: Options) -> ExitCode {
    let scenarios = match resolve(&opts) {
        Ok(s) => s,
        Err(msg) => return fail(&msg),
    };
    let format = opts.format.as_deref().unwrap_or("toml");
    for sc in &scenarios {
        let rendered = match format {
            "toml" => match to_toml(sc) {
                Ok(t) => t,
                Err(e) => return fail(&format!("cannot serialize `{}`: {e}", sc.name)),
            },
            "json" => to_json_pretty(sc),
            other => return fail(&format!("unknown show format `{other}` (toml or json)")),
        };
        print!("{rendered}");
    }
    ExitCode::SUCCESS
}

/// Resolve the output format for `--out` (flag wins, then extension).
/// Validated *before* any simulation runs so a typo cannot discard a
/// long run's results.
fn output_format(path: &str, format: Option<&str>) -> Result<&'static str, String> {
    match format {
        Some("json") => Ok("json"),
        Some("csv") => Ok("csv"),
        Some(other) => Err(format!("unknown output format `{other}` (json or csv)")),
        None if path.ends_with(".csv") => Ok("csv"),
        None => Ok("json"),
    }
}

fn write_output(report: &ScenarioReport, path: &str, format: &str) -> Result<(), String> {
    let rendered = match format {
        "csv" => render_csv(report),
        _ => to_json_pretty(report),
    };
    std::fs::write(path, rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
    Ok(())
}

fn bench(opts: Options) -> ExitCode {
    // Never default onto the recorded gate baseline (BENCH_pr6.json): a
    // single local run is ±20% noisy and must not silently replace the
    // best-of-three recording the CI gate compares against.
    let out_path = opts.out.as_deref().unwrap_or("BENCH_current.json");
    // Read (and validate) the baseline before the suite runs, so a typo'd
    // path cannot waste the run.
    let baseline = match &opts.baseline {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("error: cannot read baseline {path}: {e}");
                    return ExitCode::from(2);
                }
            };
            match from_json::<flexvc_bench::perf::BenchReport>(&text) {
                Ok(b) => Some((path.clone(), b)),
                Err(e) => {
                    eprintln!("error: cannot parse baseline {path}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        None => None,
    };
    if let Some(g) = &opts.group {
        if !flexvc_bench::perf::group_names().contains(&g.as_str()) {
            eprintln!(
                "error: unknown kernel group `{g}` (available: {})",
                flexvc_bench::perf::group_names().join(", ")
            );
            return ExitCode::from(2);
        }
    }
    if !opts.quiet {
        eprintln!(
            "[bench] running the {} kernel suite ({} profile)…",
            opts.group.as_deref().unwrap_or("fixed"),
            if opts.quick { "quick" } else { "full" }
        );
    }
    let report =
        match flexvc_bench::perf::run_bench(opts.quick, opts.shards, opts.group.as_deref(), |k| {
            if !opts.quiet {
                let shard_note = if k.shards > 1 {
                    format!(", {} shards imb {:.2}", k.shards, k.shard_imbalance)
                } else {
                    String::new()
                };
                eprintln!(
                    "[bench] {:<28} {:>10.0} cycles/sec (x{}, accepted {:.3}{}{})",
                    k.name,
                    k.cycles_per_sec,
                    k.repeats,
                    k.accepted,
                    shard_note,
                    if k.deadlocked { ", DEADLOCK" } else { "" }
                );
            }
        }) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: bench: {e}");
                return ExitCode::FAILURE;
            }
        };
    println!("| group | kernels | cycles/sec | geomean | pre-refactor | speedup |");
    println!("|---|---|---|---|---|---|");
    for g in &report.groups {
        println!(
            "| {} | {} | {:.0} | {:.0} | {:.0} | {:.2}x |",
            g.group,
            g.kernels,
            g.cycles_per_sec,
            g.geomean_cycles_per_sec,
            g.baseline_cycles_per_sec,
            g.speedup_vs_baseline
        );
    }
    // The partition and per-shard work-time stats behind every sharded
    // kernel (last timed repeat): where the router ranges landed, how the
    // port+terminal weight split, and how uneven the actual work was.
    let sharded: Vec<_> = report
        .kernels
        .iter()
        .filter(|k| !k.shard_stats.is_empty())
        .collect();
    if !sharded.is_empty() {
        println!("\n| sharded kernel | shards | partition routers@weight | work s | imbalance |");
        println!("|---|---|---|---|---|");
        for k in sharded {
            let parts: Vec<String> = k
                .shard_stats
                .iter()
                .map(|s| format!("{}@{}", s.routers, s.weight))
                .collect();
            let work: Vec<String> = k
                .shard_stats
                .iter()
                .map(|s| format!("{:.2}", s.work_seconds))
                .collect();
            println!(
                "| {} | {} | {} | {} | {:.2} |",
                k.name,
                k.shards,
                parts.join(" "),
                work.join(" "),
                k.shard_imbalance
            );
        }
    }
    if let Some(k) = report.kernels.iter().find(|k| k.deadlocked) {
        eprintln!(
            "error: kernel {} deadlocked — the suite must simulate cleanly",
            k.name
        );
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(out_path, to_json_pretty(&report)) {
        eprintln!("error: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    if !opts.quiet {
        eprintln!("[bench] report written to {out_path}");
    }
    if let Some((path, mut baseline)) = baseline {
        // Under `--group` only the selected group ran; gating the
        // baseline's other groups would fail them all as missing.
        if let Some(g) = &opts.group {
            baseline.groups.retain(|b| b.group == *g);
        }
        let (rows, pass) = flexvc_bench::perf::compare_reports_with(
            &report,
            &baseline,
            0.15,
            &[("fig5_h2", 0.10), ("smoke_h8", 0.10)],
        );
        println!("\nbaseline compare vs {path} (geomean gate per recorded group):");
        println!("| group | geomean c/s | recorded | ratio | gate |");
        println!("|---|---|---|---|---|");
        for r in &rows {
            println!(
                "| {} | {:.0} | {:.0} | {:.2}x | {} |",
                r.group,
                r.current,
                r.baseline,
                r.ratio,
                if r.pass { "ok" } else { "FAIL" }
            );
        }
        if !pass {
            eprintln!("error: geomean cycles/sec regression beyond tolerance vs {path}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

fn run(opts: Options) -> ExitCode {
    let mut scenarios = match resolve(&opts) {
        Ok(s) => s,
        Err(msg) => return fail(&msg),
    };
    // `--shards` overrides every point's engine shard count; results are
    // bit-identical for any value, so this is purely a speed knob.
    if let Some(n) = opts.shards {
        for sc in &mut scenarios {
            for p in &mut sc.points {
                p.cfg.shards = n;
            }
        }
    }
    if opts.out.is_some() && scenarios.len() > 1 {
        return fail("--out supports a single scenario per invocation");
    }
    let out_format = match &opts.out {
        Some(path) => match output_format(path, opts.format.as_deref()) {
            Ok(f) => Some(f),
            Err(msg) => return fail(&msg),
        },
        None => None,
    };
    for sc in &scenarios {
        let sims = sc.simulation_count();
        if !opts.quiet {
            eprintln!(
                "[{}] {} point(s) × {} seed(s) = {} simulation(s) on {} thread(s)",
                sc.name,
                sc.points.len(),
                sc.seeds.len(),
                sims,
                opts.threads
            );
        }
        let progress = |p: flexvc_bench::scenario::ScenarioProgress<'_>| {
            if opts.quiet {
                return;
            }
            let mut err = std::io::stderr().lock();
            let _ = writeln!(
                err,
                "[{} {}/{}] {} @ {} load {:.2} -> accepted {:.3}, latency {:.0}{}",
                sc.name,
                p.completed,
                p.total,
                p.series,
                p.x,
                p.load,
                p.result.accepted,
                p.result.latency,
                if p.result.deadlocked {
                    " [DEADLOCK]"
                } else {
                    ""
                }
            );
        };
        let report = match run_scenario(sc, opts.threads, progress) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: scenario `{}`: {e}", sc.name);
                return ExitCode::FAILURE;
            }
        };
        print!("{}", render_markdown(&report));
        if let Some(path) = &opts.out {
            let format = out_format.expect("validated with opts.out");
            if let Err(msg) = write_output(&report, path, format) {
                eprintln!("error: {msg}");
                return ExitCode::FAILURE;
            }
            if !opts.quiet {
                eprintln!("[{}] results written to {path}", sc.name);
            }
        }
    }
    ExitCode::SUCCESS
}
