//! Figure 10: DAMQ private-reservation sweep under UN traffic with MIN
//! routing (2/1 VCs, 128/512 phits per port): 0% private deadlocks, 75% is
//! optimal, 100% equals statically partitioned buffers.
//!
//! Usage: `cargo run --release -p flexvc-bench --bin fig10`

use flexvc_bench::Scale;
use flexvc_core::RoutingMode;
use flexvc_sim::{load_sweep, BufferOrg, BufferSizing};
use flexvc_traffic::{Pattern, Workload};

fn main() {
    let scale = Scale::from_env();
    println!("# Figure 10: DAMQ private reservation sweep (h = {})\n", scale.h);
    let loads: Vec<f64> = (1..=10).map(|i| i as f64 / 10.0).collect();
    // Local ports: 128 phits over 2 VCs => private per VC in phits for
    // 0/25/50/75/100% of the per-VC share (64 phits).
    let fractions = [0.0, 0.25, 0.5, 0.75, 1.0];

    print!("| reserved per local VC |");
    for l in &loads {
        print!(" {l:.1} |");
    }
    println!();
    print!("|---|");
    for _ in &loads {
        print!("---|");
    }
    println!();

    for frac in fractions {
        let mut cfg = scale.config(
            RoutingMode::Min,
            Workload::oblivious(Pattern::Uniform),
        );
        cfg.buffers.sizing = BufferSizing::PerPort {
            local: 128,
            global: 512,
        };
        cfg.buffers.organization = BufferOrg::Damq {
            private_fraction: frac,
        };
        // Deadlocked points should be detected quickly.
        cfg.watchdog = 6_000;
        let sweep = load_sweep(&cfg, &loads, &scale.seeds);
        print!("| {} ({:.0}%) |", (64.0 * frac) as u32, frac * 100.0);
        for (_, r) in sweep {
            if r.deadlocked {
                print!(" DEADLOCK |");
            } else {
                print!(" {:.3} |", r.accepted);
            }
        }
        println!();
    }
    println!("\n(100% private is equivalent to statically partitioned buffers.)");
}
