//! Reproduce Tables I–IV (path classification) and print the Table V
//! simulation parameters in effect.
//!
//! Usage: `cargo run --release -p flexvc-bench --bin tables`

use flexvc_bench::Scale;
use flexvc_core::classify::{classify_both, classify_combined, NetworkFamily};
use flexvc_core::{Arrangement, MessageClass, RoutingMode};
use flexvc_sim::paper_routing_for;
use flexvc_traffic::{Pattern, Workload};

const MODES: [RoutingMode; 3] = [RoutingMode::Min, RoutingMode::Valiant, RoutingMode::Par];

fn main() {
    println!("# FlexVC path classification tables (paper Tables I–IV)\n");

    println!("## Table I: generic diameter-2 network\n");
    println!("| Routing | 2 | 3 | 4 | 5 |");
    println!("|---|---|---|---|---|");
    for mode in MODES {
        print!("| {mode} |");
        for vcs in 2..=5 {
            let arr = Arrangement::generic(vcs);
            print!(
                " {} |",
                flexvc_core::classify(NetworkFamily::Diameter2, mode, &arr, MessageClass::Request)
            );
        }
        println!();
    }

    println!("\n## Table II: diameter-2 with protocol deadlock (request+reply)\n");
    let cols = [(2, 2), (3, 2), (3, 3), (4, 4), (5, 5)];
    print!("| Routing |");
    for (q, p) in cols {
        print!(" {q}+{p}={} |", q + p);
    }
    println!();
    print!("|---|");
    for _ in cols {
        print!("---|");
    }
    println!();
    for mode in MODES {
        print!("| {mode} |");
        for (q, p) in cols {
            let arr = Arrangement::generic_rr(q, p);
            print!(" {} |", classify_combined(NetworkFamily::Diameter2, mode, &arr));
        }
        println!();
    }

    println!("\n## Table III: Dragonfly (local/global order)\n");
    let cols = [(2, 1), (3, 1), (2, 2), (3, 2), (4, 2), (5, 2)];
    print!("| Routing |");
    for (l, g) in cols {
        print!(" {l}/{g} |");
    }
    println!();
    print!("|---|");
    for _ in cols {
        print!("---|");
    }
    println!();
    for mode in MODES {
        print!("| {mode} |");
        for (l, g) in cols {
            let arr = Arrangement::dragonfly(l, g);
            print!(
                " {} |",
                flexvc_core::classify(NetworkFamily::Dragonfly, mode, &arr, MessageClass::Request)
            );
        }
        println!();
    }

    println!("\n## Table IV: Dragonfly with protocol deadlock (request / reply)\n");
    type RrCol = ((usize, usize), (usize, usize), &'static str);
    let cols: [RrCol; 4] = [
        ((2, 1), (2, 1), "4/2"),
        ((3, 2), (2, 1), "5/3"),
        ((4, 2), (4, 2), "8/4"),
        ((5, 2), (5, 2), "10/4"),
    ];
    print!("| Routing |");
    for (_, _, name) in cols {
        print!(" {name} |");
    }
    println!();
    print!("|---|");
    for _ in cols {
        print!("---|");
    }
    println!();
    for mode in MODES {
        print!("| {mode} |");
        for (req, rep, _) in cols {
            let arr = Arrangement::dragonfly_rr(req, rep);
            let (q, p) = classify_both(NetworkFamily::Dragonfly, mode, &arr);
            if q == p {
                print!(" {q} |");
            } else {
                print!(" {q} / {p} |");
            }
        }
        println!();
    }

    println!("\n## Table V: simulation parameters in effect\n");
    let scale = Scale::from_env();
    let cfg = scale.config(
        paper_routing_for(Pattern::Uniform),
        Workload::oblivious(Pattern::Uniform),
    );
    let topo = cfg.topology.build();
    println!("| Parameter | Value |");
    println!("|---|---|");
    println!(
        "| Router size | {} ports ({} global, {} injection, {} local) |",
        topo.num_ports() + topo.nodes_per_router(),
        scale.h,
        topo.nodes_per_router(),
        topo.num_ports() - scale.h
    );
    println!(
        "| Group size | {} routers, {} computing nodes |",
        topo.routers_per_group(),
        topo.routers_per_group() * topo.nodes_per_router()
    );
    println!(
        "| System size | {} groups, {} routers, {} computing nodes |",
        topo.num_groups(),
        topo.num_routers(),
        topo.num_nodes()
    );
    println!(
        "| Latency | {}/{} cycles (local/global links), {} cycles (router pipeline) |",
        cfg.local_latency, cfg.global_latency, cfg.pipeline_latency
    );
    println!(
        "| Buffer size (phits) | {} local input per VC / output, {} injection & global input per VC |",
        cfg.vc_capacity(flexvc_core::LinkClass::Local),
        cfg.vc_capacity(flexvc_core::LinkClass::Global)
    );
    println!("| Packet size | {} phits |", cfg.packet_size);
    println!("| Router speedup | {}x |", cfg.speedup);
    println!("| VC selection policy | {} (in FlexVC) |", cfg.selection);
    println!("| PB threshold | T = {} |", cfg.sensing.threshold);
    println!(
        "| Windows | warmup {} / measure {} cycles, seeds {:?} |",
        scale.warmup, scale.measure, scale.seeds
    );
}
