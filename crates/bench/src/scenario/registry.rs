//! The catalogue of built-in scenarios.

use super::{defs, Scenario};
use crate::Scale;

/// A registered scenario: name, one-line summary, and the builder that
/// expands it into data at a given [`Scale`].
#[derive(Clone, Copy)]
pub struct ScenarioEntry {
    /// Registry name (`flexvc run <name>`).
    pub name: &'static str,
    /// One-line summary for `flexvc list`.
    pub summary: &'static str,
    build: fn(&Scale) -> Scenario,
}

impl ScenarioEntry {
    /// Expand the scenario at the given scale.
    pub fn build(&self, scale: &Scale) -> Scenario {
        (self.build)(scale)
    }
}

impl std::fmt::Debug for ScenarioEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScenarioEntry")
            .field("name", &self.name)
            .field("summary", &self.summary)
            .finish()
    }
}

/// The scenario catalogue; [`ScenarioRegistry::builtin`] holds the nine
/// paper reproductions, the `hyperx-*` and `dfplus-*` families, the
/// paper-scale `*-paper` trio (sized for `--shards`), the `flows-*`
/// flow-workload trio (FCT/slowdown reporting), the `qos-*` multi-class
/// pair (per-class reporting), and `smoke`.
#[derive(Debug, Clone, Default)]
pub struct ScenarioRegistry {
    entries: Vec<ScenarioEntry>,
}

impl ScenarioRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        ScenarioRegistry::default()
    }

    /// The built-in catalogue, in paper order.
    pub fn builtin() -> Self {
        let mut reg = ScenarioRegistry::new();
        reg.register(ScenarioEntry {
            name: "tables",
            summary: "Tables I-IV: analytic path classification (no simulation)",
            build: defs::tables,
        });
        reg.register(ScenarioEntry {
            name: "fig5",
            summary: "Oblivious routing: latency/throughput vs load (UN, BURSTY, ADV)",
            build: defs::fig5,
        });
        reg.register(ScenarioEntry {
            name: "fig6",
            summary: "Max throughput vs per-port buffer capacity (speedup 2)",
            build: defs::fig6,
        });
        reg.register(ScenarioEntry {
            name: "fig7",
            summary: "Request-reply traffic: FlexVC request/reply VC splits",
            build: defs::fig7,
        });
        reg.register(ScenarioEntry {
            name: "fig8",
            summary: "Piggyback adaptive routing: sensing granularity and minCred",
            build: defs::fig8,
        });
        reg.register(ScenarioEntry {
            name: "fig9",
            summary: "VC selection functions at 100% load (UN-RR)",
            build: defs::fig9,
        });
        reg.register(ScenarioEntry {
            name: "fig10",
            summary: "DAMQ private-reservation sweep (deadlock at 0% private)",
            build: defs::fig10,
        });
        reg.register(ScenarioEntry {
            name: "fig11",
            summary: "Buffer-capacity study without router speedup",
            build: defs::fig11,
        });
        reg.register(ScenarioEntry {
            name: "ablations",
            summary: "Occupancy fingerprints, patience, PB threshold, reply queue",
            build: defs::ablations,
        });
        reg.register(ScenarioEntry {
            name: "hyperx-un-2d",
            summary: "HyperX 2-D: UN load sweep, baseline vs FlexVC (MIN)",
            build: defs::hyperx_un_2d,
        });
        reg.register(ScenarioEntry {
            name: "hyperx-un-3d",
            summary: "HyperX 3-D: UN load sweep, baseline vs FlexVC (MIN)",
            build: defs::hyperx_un_3d,
        });
        reg.register(ScenarioEntry {
            name: "hyperx-adv-2d",
            summary: "HyperX 2-D: ADV+1 load sweep, baseline vs FlexVC (VAL)",
            build: defs::hyperx_adv_2d,
        });
        reg.register(ScenarioEntry {
            name: "hyperx-adv-3d",
            summary: "HyperX 3-D: ADV+1 load sweep, baseline vs FlexVC (VAL)",
            build: defs::hyperx_adv_3d,
        });
        reg.register(ScenarioEntry {
            name: "hyperx-k2",
            summary: "HyperX 2-D k=2: adaptive vs hash parallel-copy selection (MIN)",
            build: defs::hyperx_k2,
        });
        reg.register(ScenarioEntry {
            name: "dfplus-un",
            summary: "Dragonfly+: UN load sweep, baseline vs FlexVC (MIN)",
            build: defs::dfplus_un,
        });
        reg.register(ScenarioEntry {
            name: "dfplus-adv",
            summary: "Dragonfly+: ADV+1 load sweep, VAL + UGAL/PB cross-section",
            build: defs::dfplus_adv,
        });
        reg.register(ScenarioEntry {
            name: "dragonfly-paper",
            summary: "Table V scale: h=8 Dragonfly (2,064 routers), UN, MIN — use --shards",
            build: defs::dragonfly_paper,
        });
        reg.register(ScenarioEntry {
            name: "hyperx-paper",
            summary: "Paper scale: 16^3 HyperX (4,096 routers), UN, MIN — use --shards",
            build: defs::hyperx_paper,
        });
        reg.register(ScenarioEntry {
            name: "dfplus-paper",
            summary: "Megafly scale: 33x(16+16) Dragonfly+ (1,056 routers), UN, MIN — use --shards",
            build: defs::dfplus_paper,
        });
        reg.register(ScenarioEntry {
            name: "flows-un",
            summary: "Flow workloads: uniform mice/elephants, FCT + slowdown (MIN)",
            build: defs::flows_un,
        });
        reg.register(ScenarioEntry {
            name: "flows-permutation",
            summary: "Flow workloads: random permutation, heavy-tail sizes, FCT (MIN)",
            build: defs::flows_permutation,
        });
        reg.register(ScenarioEntry {
            name: "flows-incast",
            summary: "Flow workloads: rotating 4-to-1 incast phases, FCT (MIN)",
            build: defs::flows_incast,
        });
        reg.register(ScenarioEntry {
            name: "qos-dragonfly",
            summary: "QoS classes: control trickle vs single-class at equal 4/2 budget (MIN)",
            build: defs::qos_dragonfly,
        });
        reg.register(ScenarioEntry {
            name: "qos-hyperx",
            summary: "QoS on HyperX 2-D: partitioned vs dynamic per-class allocation (MIN)",
            build: defs::qos_hyperx,
        });
        reg.register(ScenarioEntry {
            name: "smoke",
            summary: "30-second sanity run (tiny windows, ignores scale)",
            build: defs::smoke,
        });
        reg
    }

    /// Add an entry (replacing any previous entry of the same name).
    pub fn register(&mut self, entry: ScenarioEntry) {
        self.entries.retain(|e| e.name != entry.name);
        self.entries.push(entry);
    }

    /// All entries in registration order.
    pub fn entries(&self) -> &[ScenarioEntry] {
        &self.entries
    }

    /// Look up by name.
    pub fn get(&self, name: &str) -> Option<&ScenarioEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Build the named scenario at the given scale.
    pub fn build(&self, name: &str, scale: &Scale) -> Option<Scenario> {
        self.get(name).map(|e| e.build(scale))
    }

    /// Registered names, in registration order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|e| e.name).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_covers_all_nine_paper_entry_points() {
        let reg = ScenarioRegistry::builtin();
        for name in [
            "tables",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "ablations",
            "hyperx-un-2d",
            "hyperx-un-3d",
            "hyperx-adv-2d",
            "hyperx-adv-3d",
            "hyperx-k2",
            "dfplus-un",
            "dfplus-adv",
            "dragonfly-paper",
            "hyperx-paper",
            "dfplus-paper",
            "flows-un",
            "flows-permutation",
            "flows-incast",
            "qos-dragonfly",
            "qos-hyperx",
            "smoke",
        ] {
            assert!(reg.get(name).is_some(), "missing scenario {name}");
        }
        assert_eq!(reg.entries().len(), 25);
    }

    #[test]
    fn register_replaces_by_name() {
        let mut reg = ScenarioRegistry::builtin();
        let n = reg.entries().len();
        reg.register(ScenarioEntry {
            name: "smoke",
            summary: "replacement",
            build: super::defs::smoke,
        });
        assert_eq!(reg.entries().len(), n);
        assert_eq!(reg.get("smoke").unwrap().summary, "replacement");
    }
}
