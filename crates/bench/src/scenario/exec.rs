//! Scenario execution and report rendering.
//!
//! [`run_scenario`] expands a [`Scenario`] into `points × seeds`
//! independent simulations, fans them out over the `flexvc-sim` thread
//! runner with a streaming progress callback, averages the seed
//! repetitions per point, and computes the analytic classification
//! tables. The resulting [`ScenarioReport`] serializes to JSON (via
//! `flexvc_serde`) and renders to markdown ([`render_markdown`]) or CSV
//! ([`render_csv`]).

use super::{ClassifyKind, Scenario, ScenarioError};
use flexvc_core::classify::{classify, classify_both, classify_combined};
use flexvc_core::MessageClass;
use flexvc_serde::{Deserialize, Error as DeError, Map, Serialize, Value};
use flexvc_sim::runner::{run_points_with_progress, Point};
use flexvc_sim::{RunError, SimResult};
use std::fmt;

/// One completed simulation, reported through the progress callback.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioProgress<'a> {
    /// Simulations completed so far (including this one).
    pub completed: usize,
    /// Total simulations (`points × seeds`).
    pub total: usize,
    /// Series label of the finished point.
    pub series: &'a str,
    /// Column label of the finished point.
    pub x: &'a str,
    /// Offered load of the finished point.
    pub load: f64,
    /// The (single-seed) result.
    pub result: &'a SimResult,
}

/// A point's seed-averaged outcome.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Series label.
    pub series: String,
    /// Column label.
    pub x: String,
    /// Offered load.
    pub load: f64,
    /// Seed-averaged result.
    pub result: SimResult,
}

/// A computed classification table.
#[derive(Debug, Clone)]
pub struct ClassificationResult {
    /// Table heading.
    pub title: String,
    /// Column labels.
    pub columns: Vec<String>,
    /// `(mode label, cells)` rows; cells use the paper's S/opport./X glyphs.
    pub rows: Vec<(String, Vec<String>)>,
}

/// Everything a scenario run produced.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: String,
    /// Scenario title.
    pub title: String,
    /// Scenario description.
    pub description: String,
    /// Seeds each point was averaged over.
    pub seeds: Vec<u64>,
    /// Seed-averaged point results, in scenario order.
    pub points: Vec<PointResult>,
    /// Computed classification tables.
    pub tables: Vec<ClassificationResult>,
}

/// Errors from [`run_scenario`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioRunError {
    /// The scenario failed validation before any simulation started.
    Invalid(ScenarioError),
    /// The underlying batch runner failed.
    Run(RunError),
}

impl fmt::Display for ScenarioRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioRunError::Invalid(e) => write!(f, "invalid scenario: {e}"),
            ScenarioRunError::Run(e) => write!(f, "scenario run failed: {e}"),
        }
    }
}

impl std::error::Error for ScenarioRunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioRunError::Invalid(e) => Some(e),
            ScenarioRunError::Run(e) => Some(e),
        }
    }
}

impl From<ScenarioError> for ScenarioRunError {
    fn from(e: ScenarioError) -> Self {
        ScenarioRunError::Invalid(e)
    }
}

impl From<RunError> for ScenarioRunError {
    fn from(e: RunError) -> Self {
        ScenarioRunError::Run(e)
    }
}

/// Run a scenario: validate, simulate all `points × seeds` on `threads`
/// workers (streaming completions to `progress`), average seeds, and
/// compute classification tables.
pub fn run_scenario<F>(
    scenario: &Scenario,
    threads: usize,
    progress: F,
) -> Result<ScenarioReport, ScenarioRunError>
where
    F: Fn(ScenarioProgress<'_>) + Sync,
{
    scenario.validate()?;
    let seeds = &scenario.seeds;
    let sims: Vec<Point> = scenario
        .points
        .iter()
        .flat_map(|p| {
            seeds.iter().map(move |&seed| Point {
                cfg: p.cfg.clone(),
                load: p.load,
                seed,
            })
        })
        .collect();
    let per_point = seeds.len().max(1);
    let results = run_points_with_progress(&sims, threads, |pp| {
        let spec = &scenario.points[pp.index / per_point];
        progress(ScenarioProgress {
            completed: pp.completed,
            total: pp.total,
            series: &spec.series,
            x: &spec.x,
            load: spec.load,
            result: pp.result,
        });
    })?;
    let points = scenario
        .points
        .iter()
        .enumerate()
        .map(|(i, spec)| PointResult {
            series: spec.series.clone(),
            x: spec.x.clone(),
            load: spec.load,
            result: SimResult::average(&results[i * per_point..(i + 1) * per_point]),
        })
        .collect();
    let tables = scenario
        .classifications
        .iter()
        .map(classification)
        .collect();
    Ok(ScenarioReport {
        name: scenario.name.clone(),
        title: scenario.title.clone(),
        description: scenario.description.clone(),
        seeds: scenario.seeds.clone(),
        points,
        tables,
    })
}

fn classification(spec: &super::ClassificationSpec) -> ClassificationResult {
    let rows = spec
        .modes
        .iter()
        .map(|&mode| {
            let cells = spec
                .columns
                .iter()
                .map(|(_, arr)| match spec.kind {
                    ClassifyKind::Request => {
                        classify(spec.family, mode, arr, MessageClass::Request).to_string()
                    }
                    ClassifyKind::Combined => classify_combined(spec.family, mode, arr).to_string(),
                    ClassifyKind::Both => {
                        let (req, rep) = classify_both(spec.family, mode, arr);
                        if req == rep {
                            req.to_string()
                        } else {
                            format!("{req} / {rep}")
                        }
                    }
                })
                .collect();
            (mode.to_string(), cells)
        })
        .collect();
    ClassificationResult {
        title: spec.title.clone(),
        columns: spec
            .columns
            .iter()
            .map(|(label, _)| label.clone())
            .collect(),
        rows,
    }
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

/// Labels in first-appearance order.
fn ordered<'a>(items: impl Iterator<Item = &'a str>) -> Vec<&'a str> {
    let mut out: Vec<&str> = Vec::new();
    for item in items {
        if !out.contains(&item) {
            out.push(item);
        }
    }
    out
}

fn markdown_grid(out: &mut String, title: &str, columns: &[&str], rows: &[(String, Vec<String>)]) {
    out.push_str(&format!("### {title}\n\n| series |"));
    for c in columns {
        out.push_str(&format!(" {c} |"));
    }
    out.push_str("\n|---|");
    for _ in columns {
        out.push_str("---|");
    }
    out.push('\n');
    for (label, cells) in rows {
        out.push_str(&format!("| {label} |"));
        for cell in cells {
            out.push_str(&format!(" {cell} |"));
        }
        out.push('\n');
    }
    out.push('\n');
}

/// Render the report as the markdown tables the old per-figure binaries
/// printed: classification tables first, then an accepted-load grid and a
/// latency grid over `series × x`.
pub fn render_markdown(report: &ScenarioReport) -> String {
    let mut out = String::new();
    out.push_str(&format!("# {}\n\n", report.title));
    if !report.description.is_empty() {
        out.push_str(&format!("{}\n\n", report.description.trim()));
    }
    for table in &report.tables {
        let columns: Vec<&str> = table.columns.iter().map(String::as_str).collect();
        markdown_grid(&mut out, &table.title, &columns, &table.rows);
    }
    if report.points.is_empty() {
        return out;
    }
    let series = ordered(report.points.iter().map(|p| p.series.as_str()));
    let xs = ordered(report.points.iter().map(|p| p.x.as_str()));
    let cell = |s: &str, x: &str, f: &dyn Fn(&SimResult) -> String| -> String {
        report
            .points
            .iter()
            .find(|p| p.series == s && p.x == x)
            .map(|p| {
                if p.result.deadlocked {
                    "DL".to_string()
                } else {
                    f(&p.result)
                }
            })
            .unwrap_or_else(|| "—".to_string())
    };
    let grid = |f: &dyn Fn(&SimResult) -> String| -> Vec<(String, Vec<String>)> {
        series
            .iter()
            .map(|s| {
                (
                    s.to_string(),
                    xs.iter().map(|x| cell(s, x, f)).collect::<Vec<_>>(),
                )
            })
            .collect()
    };
    markdown_grid(
        &mut out,
        "Accepted load (phits/node/cycle)",
        &xs,
        &grid(&|r| format!("{:.3}", r.accepted)),
    );
    markdown_grid(
        &mut out,
        "Average packet latency (cycles)",
        &xs,
        &grid(&|r| format!("{:.0}", r.latency)),
    );
    // Flow workloads additionally report flow-completion-time percentiles
    // and mean slowdown (FCT ÷ ideal serialization time).
    if report.points.iter().any(|p| p.result.flows_completed > 0.0) {
        markdown_grid(
            &mut out,
            "Flow completion time p50 (cycles)",
            &xs,
            &grid(&|r| format!("{:.0}", r.fct_p50)),
        );
        markdown_grid(
            &mut out,
            "Flow completion time p99 (cycles)",
            &xs,
            &grid(&|r| format!("{:.0}", r.fct_p99)),
        );
        markdown_grid(
            &mut out,
            "Mean flow slowdown (FCT / ideal)",
            &xs,
            &grid(&|r| format!("{:.2}", r.slowdown_mean)),
        );
    }
    // Multi-class QoS workloads additionally report per-class accepted
    // load and tail latency, interpolated from the class histograms so
    // sub-bucket differences resolve.
    if report
        .points
        .iter()
        .any(|p| p.result.classes[0].accepted > 0.0)
    {
        markdown_grid(
            &mut out,
            "Control accepted load (phits/node/cycle)",
            &xs,
            &grid(&|r| format!("{:.3}", r.classes[0].accepted)),
        );
        markdown_grid(
            &mut out,
            "Control latency p99 (cycles)",
            &xs,
            &grid(&|r| format!("{:.0}", r.classes[0].latency_hist.quantile_interp(0.99))),
        );
        markdown_grid(
            &mut out,
            "Bulk latency p99 (cycles)",
            &xs,
            &grid(&|r| format!("{:.0}", r.classes[1].latency_hist.quantile_interp(0.99))),
        );
    }
    // Saturation studies (every point at 100% offered load, as in Figs.
    // 6/9/11) additionally get the paper's headline derived metric:
    // throughput relative to each group's first (baseline) series. Series
    // named `<pattern>/<label>` (Figs. 6/11) are grouped by the pattern
    // prefix so ADV curves are never divided by the UN baseline.
    let saturation_study = report.points.iter().all(|p| (p.load - 1.0).abs() < 1e-9);
    if saturation_study && series.len() > 1 {
        fn group_of(s: &str) -> &str {
            s.split_once('/').map(|(g, _)| g).unwrap_or("")
        }
        let reference_of = |s: &str| -> &str {
            series
                .iter()
                .find(|r| group_of(r) == group_of(s))
                .expect("series belongs to its own group")
        };
        let accepted_at = |s: &str, x: &str| -> Option<f64> {
            report
                .points
                .iter()
                .find(|p| p.series == s && p.x == x && !p.result.deadlocked)
                .map(|p| p.result.accepted)
        };
        // A reference measured at a single column (e.g. fig9's baseline,
        // whose VC split does not vary with the column) anchors every
        // column's ratio.
        let reference_at = |s: &str, x: &str| -> Option<f64> {
            accepted_at(s, x).or_else(|| {
                let measured: Vec<&PointResult> =
                    report.points.iter().filter(|p| p.series == s).collect();
                match measured.as_slice() {
                    [only] if !only.result.deadlocked => Some(only.result.accepted),
                    _ => None,
                }
            })
        };
        let rows: Vec<(String, Vec<String>)> = series
            .iter()
            .filter(|s| reference_of(s) != **s)
            .map(|s| {
                let reference = reference_of(s);
                let cells = xs
                    .iter()
                    .map(|x| match (accepted_at(s, x), reference_at(reference, x)) {
                        (Some(a), Some(b)) if b > 1e-9 => format!("{:.3}", a / b),
                        _ => "—".to_string(),
                    })
                    .collect();
                (s.to_string(), cells)
            })
            .collect();
        if !rows.is_empty() {
            markdown_grid(
                &mut out,
                "Throughput relative to each group's first series",
                &xs,
                &rows,
            );
        }
    }
    out
}

fn csv_quote(s: &str) -> String {
    if s.contains(['"', ',', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Render the point results as CSV (one row per point; classification
/// tables are not included — use JSON for those).
pub fn render_csv(report: &ScenarioReport) -> String {
    let mut out = String::from(
        "scenario,series,x,load,offered,accepted,latency,latency_req,latency_rep,\
         latency_p99,misroute_fraction,avg_hops,reverts_per_packet,drop_fraction,deadlocked,\
         flows_completed,fct_mean,fct_p50,fct_p99,slowdown_mean,\
         control_accepted,control_latency,control_p99,bulk_accepted,bulk_latency,bulk_p99\n",
    );
    for p in &report.points {
        let r = &p.result;
        // Per-class tails are interpolated from the class histograms so
        // sub-bucket differences resolve (the coarse `latency_p99` fields
        // quantize to power-of-two buckets). Single-class runs tag every
        // packet Bulk, so their control columns read zero.
        let (ctrl, bulk) = (&r.classes[0], &r.classes[1]);
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}\n",
            csv_quote(&report.name),
            csv_quote(&p.series),
            csv_quote(&p.x),
            p.load,
            r.offered,
            r.accepted,
            r.latency,
            r.latency_req,
            r.latency_rep,
            r.latency_p99,
            r.misroute_fraction,
            r.avg_hops,
            r.reverts_per_packet,
            r.drop_fraction,
            r.deadlocked,
            r.flows_completed,
            r.fct_mean,
            r.fct_p50,
            r.fct_p99,
            r.slowdown_mean,
            ctrl.accepted,
            ctrl.latency,
            ctrl.latency_hist.quantile_interp(0.99),
            bulk.accepted,
            bulk.latency,
            bulk.latency_hist.quantile_interp(0.99)
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Report serialization (JSON output files)
// ---------------------------------------------------------------------------

impl Serialize for PointResult {
    fn to_value(&self) -> Value {
        Value::Map(
            Map::new()
                .with("series", Value::from(self.series.as_str()))
                .with("x", Value::from(self.x.as_str()))
                .with("load", self.load.to_value())
                .with("result", self.result.to_value()),
        )
    }
}

impl Deserialize for PointResult {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map()?;
        Ok(PointResult {
            series: m.field("series")?,
            x: m.field("x")?,
            load: m.field("load")?,
            result: m.field("result")?,
        })
    }
}

impl Serialize for ClassificationResult {
    fn to_value(&self) -> Value {
        let rows: Vec<Value> = self
            .rows
            .iter()
            .map(|(mode, cells)| {
                Value::Map(
                    Map::new()
                        .with("mode", Value::from(mode.as_str()))
                        .with("cells", cells.to_value()),
                )
            })
            .collect();
        Value::Map(
            Map::new()
                .with("title", Value::from(self.title.as_str()))
                .with("columns", self.columns.to_value())
                .with("rows", Value::Seq(rows)),
        )
    }
}

impl Deserialize for ClassificationResult {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map()?;
        let rows = m
            .req("rows")?
            .as_seq()
            .map_err(|e| e.context("rows"))?
            .iter()
            .map(|row| -> Result<(String, Vec<String>), DeError> {
                let rm = row.as_map().map_err(|e| e.context("rows"))?;
                Ok((rm.field("mode")?, rm.field("cells")?))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ClassificationResult {
            title: m.field_or("title", String::new())?,
            columns: m.field("columns")?,
            rows,
        })
    }
}

impl Serialize for ScenarioReport {
    fn to_value(&self) -> Value {
        Value::Map(
            Map::new()
                .with("name", Value::from(self.name.as_str()))
                .with("title", Value::from(self.title.as_str()))
                .with("description", Value::from(self.description.as_str()))
                .with("seeds", self.seeds.to_value())
                .with("points", self.points.to_value())
                .with("tables", self.tables.to_value()),
        )
    }
}

impl Deserialize for ScenarioReport {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map()?;
        Ok(ScenarioReport {
            name: m.field("name")?,
            title: m.field_or("title", String::new())?,
            description: m.field_or("description", String::new())?,
            seeds: m.field_or("seeds", Vec::new())?,
            points: m.field_or("points", Vec::new())?,
            tables: m.field_or("tables", Vec::new())?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::PointSpec;
    use flexvc_core::RoutingMode;
    use flexvc_serde::{from_json, to_json_pretty};
    use flexvc_sim::SimConfig;
    use flexvc_traffic::{Pattern, Workload};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tiny_cfg() -> SimConfig {
        let mut cfg = SimConfig::dragonfly_baseline(
            2,
            RoutingMode::Min,
            Workload::oblivious(Pattern::Uniform),
        )
        .test_scale();
        cfg.warmup = 300;
        cfg.measure = 600;
        cfg
    }

    fn tiny_scenario() -> Scenario {
        Scenario {
            name: "tiny".into(),
            title: "Tiny scenario".into(),
            description: "executor test".into(),
            seeds: vec![1, 2],
            points: vec![
                PointSpec {
                    series: "Baseline".into(),
                    x: "0.20".into(),
                    load: 0.2,
                    cfg: tiny_cfg(),
                },
                PointSpec {
                    series: "Baseline".into(),
                    x: "0.40".into(),
                    load: 0.4,
                    cfg: tiny_cfg(),
                },
            ],
            classifications: Vec::new(),
        }
    }

    #[test]
    fn runs_and_averages_with_progress() {
        let sc = tiny_scenario();
        let calls = AtomicUsize::new(0);
        let report = run_scenario(&sc, 2, |p| {
            calls.fetch_add(1, Ordering::Relaxed);
            assert_eq!(p.total, 4);
            assert!(!p.series.is_empty());
        })
        .unwrap();
        assert_eq!(calls.load(Ordering::Relaxed), 4);
        assert_eq!(report.points.len(), 2);
        assert!(report.points[1].result.accepted > report.points[0].result.accepted);

        // Markdown has both grids; CSV has one row per point.
        let md = render_markdown(&report);
        assert!(md.contains("Accepted load"), "{md}");
        assert!(md.contains("| Baseline |"), "{md}");
        let csv = render_csv(&report);
        assert_eq!(csv.lines().count(), 3, "{csv}");

        // The report round-trips through JSON.
        let json = to_json_pretty(&report);
        let back: ScenarioReport = from_json(&json).unwrap();
        assert_eq!(back.points.len(), 2);
        assert_eq!(back.points[0].series, "Baseline");
    }

    #[test]
    fn invalid_scenarios_do_not_run() {
        let mut sc = tiny_scenario();
        sc.points[0].cfg.packet_size = 0;
        let err = run_scenario(&sc, 1, |_| {}).unwrap_err();
        assert!(matches!(err, ScenarioRunError::Invalid(_)), "{err}");
    }

    #[test]
    fn csv_quoting() {
        assert_eq!(csv_quote("plain"), "plain");
        assert_eq!(csv_quote("a,b"), "\"a,b\"");
        assert_eq!(csv_quote("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
