//! Scenarios: paper figures/tables (and user experiments) as data.
//!
//! A [`Scenario`] is a named, serializable bundle of simulation points —
//! each a `(series, x, load, SimConfig)` tuple averaged over the
//! scenario's seeds — plus optional analytic classification tables (the
//! paper's Tables I–IV). Because the whole thing round-trips through
//! TOML/JSON (`flexvc_serde`), a new experiment is a data file, not a new
//! binary:
//!
//! ```text
//! flexvc show fig9 > mine.toml   # start from a built-in scenario
//! $EDITOR mine.toml              # tweak configs / loads / seeds
//! flexvc run --file mine.toml --out results.json
//! ```
//!
//! Sub-modules: [`registry`] (the built-in scenario catalogue), `defs`
//! (builders for the nine paper reproductions), [`exec`] (the parallel
//! executor and report rendering).

mod defs;
pub mod exec;
pub mod registry;

pub use exec::{
    render_csv, render_markdown, run_scenario, ClassificationResult, PointResult, ScenarioProgress,
    ScenarioReport, ScenarioRunError,
};
pub use registry::{ScenarioEntry, ScenarioRegistry};

use flexvc_core::classify::NetworkFamily;
use flexvc_core::{Arrangement, RoutingMode};
use flexvc_serde::{Deserialize, Error as DeError, Map, Serialize, Value};
use flexvc_sim::{ConfigError, SimConfig};
use std::fmt;

/// One simulation point of a scenario: a full configuration pinned to a
/// series (row/legend label) and an x position (column label), run at
/// `load` for every scenario seed and averaged.
#[derive(Debug, Clone)]
pub struct PointSpec {
    /// Series (legend) label, e.g. `"UN/FlexVC 4/2VCs"`.
    pub series: String,
    /// Column label, e.g. a load (`"0.40"`), a capacity (`"128/512"`) or a
    /// VC split (`"5/3(3/2+2/1)"`).
    pub x: String,
    /// Offered load in phits/node/cycle.
    pub load: f64,
    /// Full simulation configuration.
    pub cfg: SimConfig,
}

/// How a classification table derives each cell from an arrangement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassifyKind {
    /// `classify` of the request class (Tables I and III).
    Request,
    /// `classify_combined`: min of request and reply support (Table II).
    Combined,
    /// `classify_both`, rendered `req / rep` when they differ (Table IV).
    Both,
}

/// An analytic classification table (no simulation): routing modes ×
/// arrangements, reproducing the paper's Tables I–IV.
#[derive(Debug, Clone)]
pub struct ClassificationSpec {
    /// Table heading.
    pub title: String,
    /// Network family the classification runs in.
    pub family: NetworkFamily,
    /// Cell derivation.
    pub kind: ClassifyKind,
    /// Routing modes (table rows).
    pub modes: Vec<RoutingMode>,
    /// `(column label, arrangement)` pairs (table columns).
    pub columns: Vec<(String, Arrangement)>,
}

/// A named, serializable experiment: simulation points and/or analytic
/// classification tables, plus the seeds to average simulation over.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Registry name / file identity, e.g. `"fig9"`.
    pub name: String,
    /// Human title, e.g. `"Figure 9: VC selection functions"`.
    pub title: String,
    /// What the scenario reproduces and how to read the output.
    pub description: String,
    /// Seeds each point is averaged over.
    pub seeds: Vec<u64>,
    /// Simulation points.
    pub points: Vec<PointSpec>,
    /// Analytic classification tables.
    pub classifications: Vec<ClassificationSpec>,
}

/// Why a scenario cannot run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// The scenario name is empty.
    UnnamedScenario,
    /// Neither points nor classifications: nothing to do.
    NoWork,
    /// There are simulation points but no seeds to run them with.
    NoSeeds,
    /// A point's configuration failed validation.
    InvalidPoint {
        /// Series label of the failing point.
        series: String,
        /// Column label of the failing point.
        x: String,
        /// The underlying configuration error.
        source: ConfigError,
    },
    /// A classification table has no rows or no columns.
    EmptyClassification {
        /// Title of the degenerate table.
        title: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::UnnamedScenario => write!(f, "scenario has no name"),
            ScenarioError::NoWork => {
                write!(f, "scenario has neither points nor classification tables")
            }
            ScenarioError::NoSeeds => write!(f, "scenario has simulation points but no seeds"),
            ScenarioError::InvalidPoint { series, x, source } => {
                write!(f, "point `{series}` @ `{x}` is invalid: {source}")
            }
            ScenarioError::EmptyClassification { title } => {
                write!(f, "classification table `{title}` has no rows or columns")
            }
        }
    }
}

impl std::error::Error for ScenarioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScenarioError::InvalidPoint { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl Scenario {
    /// Validate the scenario: shape sanity plus `SimConfig::validate` on
    /// every point.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.name.trim().is_empty() {
            return Err(ScenarioError::UnnamedScenario);
        }
        if self.points.is_empty() && self.classifications.is_empty() {
            return Err(ScenarioError::NoWork);
        }
        if !self.points.is_empty() && self.seeds.is_empty() {
            return Err(ScenarioError::NoSeeds);
        }
        for p in &self.points {
            p.cfg
                .validate()
                .map_err(|source| ScenarioError::InvalidPoint {
                    series: p.series.clone(),
                    x: p.x.clone(),
                    source,
                })?;
        }
        for c in &self.classifications {
            if c.modes.is_empty() || c.columns.is_empty() {
                return Err(ScenarioError::EmptyClassification {
                    title: c.title.clone(),
                });
            }
        }
        Ok(())
    }

    /// Total simulations the scenario will run (`points × seeds`).
    pub fn simulation_count(&self) -> usize {
        self.points.len() * self.seeds.len()
    }
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

impl Serialize for PointSpec {
    fn to_value(&self) -> Value {
        Value::Map(
            Map::new()
                .with("series", Value::from(self.series.as_str()))
                .with("x", Value::from(self.x.as_str()))
                .with("load", self.load.to_value())
                .with("cfg", self.cfg.to_value()),
        )
    }
}

impl Deserialize for PointSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map()?;
        let load = m.field("load")?;
        Ok(PointSpec {
            series: m.field_or("series", String::new())?,
            x: m.field_or("x", format!("{load:.2}"))?,
            load,
            cfg: m.field("cfg")?,
        })
    }
}

impl Serialize for ClassifyKind {
    fn to_value(&self) -> Value {
        Value::Str(
            match self {
                ClassifyKind::Request => "request",
                ClassifyKind::Combined => "combined",
                ClassifyKind::Both => "both",
            }
            .to_string(),
        )
    }
}

impl Deserialize for ClassifyKind {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v.as_str()?.to_ascii_lowercase().as_str() {
            "request" => Ok(ClassifyKind::Request),
            "combined" => Ok(ClassifyKind::Combined),
            "both" => Ok(ClassifyKind::Both),
            other => Err(DeError::new(format!(
                "unknown classification kind `{other}` (expected request, combined or both)"
            ))),
        }
    }
}

impl Serialize for ClassificationSpec {
    fn to_value(&self) -> Value {
        let columns: Vec<Value> = self
            .columns
            .iter()
            .map(|(label, arr)| {
                Value::Map(
                    Map::new()
                        .with("label", Value::from(label.as_str()))
                        .with("arrangement", arr.to_value()),
                )
            })
            .collect();
        Value::Map(
            Map::new()
                .with("title", Value::from(self.title.as_str()))
                .with("family", self.family.to_value())
                .with("kind", self.kind.to_value())
                .with("modes", self.modes.to_value())
                .with("columns", Value::Seq(columns)),
        )
    }
}

impl Deserialize for ClassificationSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map()?;
        let columns = m
            .req("columns")?
            .as_seq()
            .map_err(|e| e.context("columns"))?
            .iter()
            .enumerate()
            .map(|(i, c)| -> Result<(String, Arrangement), DeError> {
                let cm = c
                    .as_map()
                    .map_err(|e| e.context(&format!("columns[{i}]")))?;
                let arrangement: Arrangement = cm.field("arrangement")?;
                let label = cm.field_or("label", arrangement.count_label())?;
                Ok((label, arrangement))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ClassificationSpec {
            title: m.field_or("title", String::new())?,
            family: m.field("family")?,
            kind: m.field_or("kind", ClassifyKind::Request)?,
            modes: m.field("modes")?,
            columns,
        })
    }
}

impl Serialize for Scenario {
    fn to_value(&self) -> Value {
        let mut root = Map::new()
            .with("name", Value::from(self.name.as_str()))
            .with("title", Value::from(self.title.as_str()))
            .with("description", Value::from(self.description.as_str()))
            .with("seeds", self.seeds.to_value());
        if !self.classifications.is_empty() {
            root.insert("classifications", self.classifications.to_value());
        }
        if !self.points.is_empty() {
            root.insert("points", self.points.to_value());
        }
        Value::Map(root)
    }
}

impl Deserialize for Scenario {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map()?;
        Ok(Scenario {
            name: m.field("name")?,
            title: m.field_or("title", String::new())?,
            description: m.field_or("description", String::new())?,
            seeds: m.field_or("seeds", vec![1])?,
            points: m.field_or("points", Vec::new())?,
            classifications: m.field_or("classifications", Vec::new())?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexvc_core::RoutingMode;
    use flexvc_serde::{from_toml, to_json, to_toml};
    use flexvc_traffic::{Pattern, Workload};

    fn tiny_scenario() -> Scenario {
        let cfg = SimConfig::dragonfly_baseline(
            2,
            RoutingMode::Min,
            Workload::oblivious(Pattern::Uniform),
        )
        .test_scale();
        Scenario {
            name: "tiny".into(),
            title: "Tiny".into(),
            description: "two points".into(),
            seeds: vec![1, 2],
            points: vec![
                PointSpec {
                    series: "Baseline".into(),
                    x: "0.20".into(),
                    load: 0.2,
                    cfg: cfg.clone(),
                },
                PointSpec {
                    series: "Baseline".into(),
                    x: "0.40".into(),
                    load: 0.4,
                    cfg,
                },
            ],
            classifications: vec![ClassificationSpec {
                title: "Table III excerpt".into(),
                family: NetworkFamily::Dragonfly,
                kind: ClassifyKind::Request,
                modes: vec![RoutingMode::Min, RoutingMode::Valiant],
                columns: vec![
                    ("2/1".into(), Arrangement::dragonfly_min()),
                    ("4/2".into(), Arrangement::dragonfly_val()),
                ],
            }],
        }
    }

    #[test]
    fn scenario_round_trips_toml() {
        let sc = tiny_scenario();
        let text = to_toml(&sc).unwrap();
        let back: Scenario = from_toml(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(to_json(&back), to_json(&sc), "TOML:\n{text}");
        back.validate().unwrap();
    }

    #[test]
    fn validation_catches_degenerate_scenarios() {
        let mut sc = tiny_scenario();
        sc.name = " ".into();
        assert_eq!(sc.validate().unwrap_err(), ScenarioError::UnnamedScenario);

        let mut sc = tiny_scenario();
        sc.points.clear();
        sc.classifications.clear();
        assert_eq!(sc.validate().unwrap_err(), ScenarioError::NoWork);

        let mut sc = tiny_scenario();
        sc.seeds.clear();
        assert_eq!(sc.validate().unwrap_err(), ScenarioError::NoSeeds);

        let mut sc = tiny_scenario();
        sc.points[1].cfg.packet_size = 0;
        assert!(matches!(
            sc.validate().unwrap_err(),
            ScenarioError::InvalidPoint { .. }
        ));

        let mut sc = tiny_scenario();
        sc.classifications[0].columns.clear();
        assert!(matches!(
            sc.validate().unwrap_err(),
            ScenarioError::EmptyClassification { .. }
        ));
    }

    #[test]
    fn sparse_scenario_file_parses() {
        // The minimal hand-written scenario: defaults everywhere.
        let sc: Scenario = from_toml(
            r#"
name = "hello"

[[points]]
load = 0.3

[points.cfg]
routing = "min"
warmup = 200
measure = 400
"#,
        )
        .unwrap();
        assert_eq!(sc.name, "hello");
        assert_eq!(sc.seeds, vec![1]);
        assert_eq!(sc.points.len(), 1);
        assert_eq!(sc.points[0].x, "0.30");
        sc.validate().unwrap();
    }

    #[test]
    fn simulation_count() {
        assert_eq!(tiny_scenario().simulation_count(), 4);
    }
}
