//! Built-in scenario definitions: the nine paper reproductions that used
//! to be one binary each (`fig5` … `fig11`, `tables`, `ablations`), the
//! `hyperx-{un,adv}-{2d,3d}` HyperX family, and a tiny `smoke` scenario
//! for CI and quick installs.
//!
//! Each builder expands a [`Scale`] into pure data — every knob the old
//! `main` hard-coded is now a field on a [`PointSpec`], so `flexvc show
//! <name>` serializes the exact experiment and a user can edit and re-run
//! it without touching Rust.

use super::{ClassificationSpec, ClassifyKind, PointSpec, Scenario};
use crate::{
    adaptive_series, default_loads, dfplus_series, flow_series, hyperx_k2_series, hyperx_series,
    oblivious_series, reactive_series, Scale, Series,
};
use flexvc_core::classify::NetworkFamily;
use flexvc_core::{Arrangement, RoutingMode, VcSelection};
use flexvc_sim::{BufferOrg, BufferSizing, QosConfig, SensingConfig, SensingMode, SimConfig};
use flexvc_traffic::{FlowSpec, Pattern, SizeDist, Workload};

const PATTERNS: [Pattern; 3] = [
    Pattern::Uniform,
    Pattern::BurstyUniform { mean_burst: 5.0 },
    Pattern::Adversarial { offset: 1 },
];

/// Sweep every series over the default loads, prefixing series labels with
/// the pattern.
fn sweep_points(pattern: Pattern, series: &[Series], loads: &[f64]) -> Vec<PointSpec> {
    series
        .iter()
        .flat_map(|s| {
            loads.iter().map(move |&load| PointSpec {
                series: format!("{}/{}", pattern.label(), s.label),
                x: format!("{load:.2}"),
                load,
                cfg: s.cfg.clone(),
            })
        })
        .collect()
}

/// Saturation throughput across per-port buffer capacities (Figs. 6/11).
fn capacity_points(scale: &Scale, speedup: u32) -> Vec<PointSpec> {
    let caps: [(u32, u32); 4] = [(64, 256), (128, 512), (192, 768), (256, 1024)];
    let mut points = Vec::new();
    for pattern in PATTERNS {
        // The paper omits the smallest capacity for ADV (256-phit packets
        // cannot fit VAL's two global VCs at 64/256 per port).
        let caps: &[(u32, u32)] = if matches!(pattern, Pattern::Adversarial { .. }) {
            &caps[1..]
        } else {
            &caps
        };
        for s in oblivious_series(scale, pattern) {
            for &(local, global) in caps {
                let mut cfg = s.cfg.clone();
                cfg.buffers.sizing = BufferSizing::PerPort { local, global };
                cfg.speedup = speedup;
                points.push(PointSpec {
                    series: format!("{}/{}", pattern.label(), s.label),
                    x: format!("{local}/{global}"),
                    load: 1.0,
                    cfg,
                });
            }
        }
    }
    points
}

pub(super) fn fig5(scale: &Scale) -> Scenario {
    let loads = default_loads();
    let points = PATTERNS
        .iter()
        .flat_map(|&p| sweep_points(p, &oblivious_series(scale, p), &loads))
        .collect();
    Scenario {
        name: "fig5".into(),
        title: format!("Figure 5: oblivious routing (h = {})", scale.h),
        description: "Latency and throughput vs offered load under oblivious routing — \
                      UN and BURSTY-UN with MIN, ADV with VAL — for Baseline, DAMQ 75%, \
                      and FlexVC with 2/1, 4/2 and 8/4 VCs."
            .into(),
        seeds: scale.seeds.clone(),
        points,
        classifications: Vec::new(),
    }
}

pub(super) fn fig6(scale: &Scale) -> Scenario {
    Scenario {
        name: "fig6".into(),
        title: format!(
            "Figure 6: max throughput vs per-port buffer capacity (h = {}, speedup 2)",
            scale.h
        ),
        description: "Maximum throughput for constant buffer capacity per port (64/256 … \
                      256/1024 phits local/global), oblivious routing. FlexVC splits the \
                      same memory over more VCs; all series use identical per-port storage."
            .into(),
        seeds: scale.seeds.clone(),
        points: capacity_points(scale, 2),
        classifications: Vec::new(),
    }
}

pub(super) fn fig7(scale: &Scale) -> Scenario {
    let loads = default_loads();
    let points = PATTERNS
        .iter()
        .flat_map(|&p| sweep_points(p, &reactive_series(scale, p), &loads))
        .collect();
    Scenario {
        name: "fig7".into(),
        title: format!("Figure 7: request-reply traffic (h = {})", scale.h),
        description: "Latency and throughput under request–reply traffic with oblivious \
                      routing; FlexVC request/reply VC splits (4/2, 5/3, 6/4 for \
                      UN/BURSTY-UN; 8/4 and 10/6 for ADV)."
            .into(),
        seeds: scale.seeds.clone(),
        points,
        classifications: Vec::new(),
    }
}

pub(super) fn fig8(scale: &Scale) -> Scenario {
    let loads = default_loads();
    let points = PATTERNS
        .iter()
        .flat_map(|&p| sweep_points(p, &adaptive_series(scale, p), &loads))
        .collect();
    Scenario {
        name: "fig8".into(),
        title: format!(
            "Figure 8: adaptive routing (PB) with request-reply traffic (h = {})",
            scale.h
        ),
        description: "Piggyback source-adaptive routing with request–reply traffic: \
                      per-port vs per-VC sensing, baseline (4/2+4/2 VCs) vs FlexVC \
                      (4/2+2/1) vs FlexVC-minCred."
            .into(),
        seeds: scale.seeds.clone(),
        points,
        classifications: Vec::new(),
    }
}

pub(super) fn fig9(scale: &Scale) -> Scenario {
    let wl = Workload::reactive(Pattern::Uniform);
    let base = scale.config(RoutingMode::Min, wl);
    let splits: [((usize, usize), (usize, usize)); 6] = [
        ((2, 1), (2, 1)),
        ((2, 1), (3, 2)),
        ((3, 2), (2, 1)),
        ((2, 1), (4, 3)),
        ((3, 2), (3, 2)),
        ((4, 3), (2, 1)),
    ];
    let split_label = |req: (usize, usize), rep: (usize, usize)| {
        format!(
            "{}/{}({}/{}+{}/{})",
            req.0 + rep.0,
            req.1 + rep.1,
            req.0,
            req.1,
            rep.0,
            rep.1
        )
    };
    let mut points = Vec::new();
    // Reference rows: baseline and DAMQ use the fixed 2/1+2/1 split —
    // exactly the first column — so each is one simulation, not one per
    // column (the other columns render as `—`).
    for (label, cfg) in [
        ("Baseline", base.clone()),
        ("DAMQ 75%", base.clone().with_damq75()),
    ] {
        points.push(PointSpec {
            series: label.to_string(),
            x: split_label(splits[0].0, splits[0].1),
            load: 1.0,
            cfg,
        });
    }
    for sel in VcSelection::all() {
        for (req, rep) in splits {
            let mut cfg = base
                .clone()
                .with_flexvc(Arrangement::dragonfly_rr(req, rep));
            cfg.selection = sel;
            points.push(PointSpec {
                series: format!("FlexVC {sel}"),
                x: split_label(req, rep),
                load: 1.0,
                cfg,
            });
        }
    }
    Scenario {
        name: "fig9".into(),
        title: format!(
            "Figure 9: VC selection functions at 100% load, UN-RR, MIN (h = {})",
            scale.h
        ),
        description: "Throughput at 100% offered load under UN request–reply traffic, \
                      for each VC selection function × request/reply VC split."
            .into(),
        seeds: scale.seeds.clone(),
        points,
        classifications: Vec::new(),
    }
}

pub(super) fn fig10(scale: &Scale) -> Scenario {
    let loads = default_loads();
    let mut points = Vec::new();
    for frac in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let mut cfg = scale.config(RoutingMode::Min, Workload::oblivious(Pattern::Uniform));
        cfg.buffers.sizing = BufferSizing::PerPort {
            local: 128,
            global: 512,
        };
        cfg.buffers.organization = BufferOrg::Damq {
            private_fraction: frac,
        };
        // Deadlocked points should be detected quickly.
        cfg.watchdog = 6_000;
        for &load in &loads {
            points.push(PointSpec {
                series: format!(
                    "{} phits private ({:.0}%)",
                    (64.0 * frac) as u32,
                    frac * 100.0
                ),
                x: format!("{load:.2}"),
                load,
                cfg: cfg.clone(),
            });
        }
    }
    Scenario {
        name: "fig10".into(),
        title: format!(
            "Figure 10: DAMQ private reservation sweep (h = {})",
            scale.h
        ),
        description: "DAMQ private-reservation sweep under UN traffic with MIN routing \
                      (2/1 VCs, 128/512 phits per port): 0% private deadlocks (DL cells), \
                      75% is optimal, 100% equals statically partitioned buffers."
            .into(),
        seeds: scale.seeds.clone(),
        points,
        classifications: Vec::new(),
    }
}

pub(super) fn fig11(scale: &Scale) -> Scenario {
    Scenario {
        name: "fig11".into(),
        title: format!(
            "Figure 11: max throughput without router speedup (h = {})",
            scale.h
        ),
        description: "The Figure 6 buffer-capacity study repeated without router speedup \
                      (crossbar at link frequency), where HoLB is strongest and FlexVC \
                      gains the most (up to +37.8% in the paper)."
            .into(),
        seeds: scale.seeds.clone(),
        points: capacity_points(scale, 1),
        classifications: Vec::new(),
    }
}

pub(super) fn tables(scale: &Scale) -> Scenario {
    const MODES: [RoutingMode; 3] = [RoutingMode::Min, RoutingMode::Valiant, RoutingMode::Par];
    let generic_cols = |ns: &[usize]| -> Vec<(String, Arrangement)> {
        ns.iter()
            .map(|&n| (n.to_string(), Arrangement::generic(n)))
            .collect()
    };
    let classifications = vec![
        ClassificationSpec {
            title: "Table I: generic diameter-2 network".into(),
            family: NetworkFamily::Diameter2,
            kind: ClassifyKind::Request,
            modes: MODES.to_vec(),
            columns: generic_cols(&[2, 3, 4, 5]),
        },
        ClassificationSpec {
            title: "Table II: diameter-2 with protocol deadlock (request+reply)".into(),
            family: NetworkFamily::Diameter2,
            kind: ClassifyKind::Combined,
            modes: MODES.to_vec(),
            columns: [(2, 2), (3, 2), (3, 3), (4, 4), (5, 5)]
                .iter()
                .map(|&(q, p)| (format!("{q}+{p}={}", q + p), Arrangement::generic_rr(q, p)))
                .collect(),
        },
        ClassificationSpec {
            title: "Table III: Dragonfly (local/global order)".into(),
            family: NetworkFamily::Dragonfly,
            kind: ClassifyKind::Request,
            modes: MODES.to_vec(),
            columns: [(2, 1), (3, 1), (2, 2), (3, 2), (4, 2), (5, 2)]
                .iter()
                .map(|&(l, g)| (format!("{l}/{g}"), Arrangement::dragonfly(l, g)))
                .collect(),
        },
        ClassificationSpec {
            title: "Table IV: Dragonfly with protocol deadlock (request / reply)".into(),
            family: NetworkFamily::Dragonfly,
            kind: ClassifyKind::Both,
            modes: MODES.to_vec(),
            columns: [
                ((2, 1), (2, 1), "4/2"),
                ((3, 2), (2, 1), "5/3"),
                ((4, 2), (4, 2), "8/4"),
                ((5, 2), (5, 2), "10/4"),
            ]
            .iter()
            .map(|&(req, rep, name)| (name.to_string(), Arrangement::dragonfly_rr(req, rep)))
            .collect(),
        },
    ];
    Scenario {
        name: "tables".into(),
        title: "Tables I-IV: path classification (Safe / opport. / X)".into(),
        description: format!(
            "Analytic reproduction of the paper's classification tables; no simulation. \
             Current scale for the simulation scenarios: h = {}, seeds {:?}, warmup {}, \
             measure {} cycles.",
            scale.h, scale.seeds, scale.warmup, scale.measure
        ),
        seeds: scale.seeds.clone(),
        points: Vec::new(),
        classifications,
    }
}

pub(super) fn ablations(scale: &Scale) -> Scenario {
    let mut points = Vec::new();

    // 1. Per-VC occupancy fingerprints (§III-D): the baseline concentrates
    //    ADV minimal traffic in VC0; FlexVC flattens the signature (read the
    //    occupancy vectors from the JSON/CSV output).
    let adv = scale.config(RoutingMode::Valiant, Workload::oblivious(Pattern::adv1()));
    for (label, cfg) in [
        ("occupancy/Baseline 4/2", adv.clone()),
        (
            "occupancy/FlexVC 4/2",
            adv.clone().with_flexvc(Arrangement::dragonfly(4, 2)),
        ),
    ] {
        points.push(PointSpec {
            series: label.into(),
            x: "0.45".into(),
            load: 0.45,
            cfg,
        });
    }

    // 2. Reversion patience: 0 = the paper's strictest reading (revert on
    //    first missing credit); large values approach pure waiting.
    for patience in [0u32, 4, 16, 64, 256] {
        let mut cfg = scale
            .config(RoutingMode::Valiant, Workload::reactive(Pattern::adv1()))
            .with_flexvc(Arrangement::dragonfly_rr((4, 2), (2, 1)));
        cfg.revert_patience = patience;
        points.push(PointSpec {
            series: "patience (ADV-RR, VAL 6/3, load 0.5)".into(),
            x: patience.to_string(),
            load: 0.5,
            cfg,
        });
    }

    // 3. PB saturation-floor threshold T (Table V uses 3 packets).
    for t in [1u32, 2, 3, 6, 12] {
        let mut cfg = scale
            .config(RoutingMode::Piggyback, Workload::reactive(Pattern::adv1()))
            .with_flexvc(Arrangement::dragonfly_rr((4, 2), (2, 1)));
        cfg.sensing = SensingConfig {
            mode: SensingMode::PerPort,
            min_cred: true,
            threshold: t,
        };
        points.push(PointSpec {
            series: "PB threshold T (ADV-RR, minCred per-port, load 0.5)".into(),
            x: t.to_string(),
            load: 0.5,
            cfg,
        });
    }

    // 4. Reply-queue depth: deeper queues decouple request consumption from
    //    reply injection and wash out the request-reply congestion.
    for depth in [1usize, 2, 4, 16, 1024] {
        let mut base = scale.config(RoutingMode::Min, Workload::reactive(Pattern::Uniform));
        base.reply_queue_packets = depth;
        let flex = {
            let mut f = base
                .clone()
                .with_flexvc(Arrangement::dragonfly_rr((4, 2), (2, 1)));
            f.reply_queue_packets = depth;
            f
        };
        for (label, cfg) in [
            ("reply-queue/Baseline (UN-RR)", base),
            ("reply-queue/FlexVC 4/2+2/1 (UN-RR)", flex),
        ] {
            points.push(PointSpec {
                series: label.into(),
                x: depth.to_string(),
                load: 1.0,
                cfg,
            });
        }
    }

    Scenario {
        name: "ablations".into(),
        title: "Ablations: occupancy fingerprints, patience, PB threshold, reply queue".into(),
        description: "Ablation studies for the design choices called out in DESIGN.md: \
                      (1) per-VC occupancy fingerprints under ADV (occupancy vectors in \
                      the JSON/CSV output), (2) opportunistic reversion patience, \
                      (3) PB threshold T sensitivity, (4) reply-queue depth."
            .into(),
        seeds: scale.seeds.clone(),
        points,
        classifications: Vec::new(),
    }
}

/// The `hyperx` scenario family: UN and ADV load sweeps on 2-D and 3-D
/// HyperX networks, baseline policy vs FlexVC at equal and enlarged VC
/// budgets — the paper's framework on a topology the seed never modeled
/// (cf. "Analysing Mechanisms for Virtual Channel Management in
/// Low-Diameter networks", arXiv 2306.13042).
fn hyperx(scale: &Scale, n_dims: usize, pattern: Pattern) -> Scenario {
    let loads = default_loads();
    let series = hyperx_series(scale, n_dims, pattern);
    let points = sweep_points(pattern, &series, &loads);
    let (s, p) = crate::hyperx_shape(n_dims);
    let name = format!("hyperx-{}-{n_dims}d", pattern.label().to_ascii_lowercase());
    let routing = flexvc_sim::paper_routing_for(pattern);
    Scenario {
        name: name.clone(),
        title: format!(
            "HyperX {n_dims}-D ({s}^{n_dims} routers x {p} terminals): {} under {routing}",
            pattern.label()
        ),
        description: format!(
            "Latency and throughput vs offered load on a {n_dims}-dimensional HyperX \
             (diameter {n_dims}, single link class, dimension-ordered minimal routes) \
             under {} traffic with {routing} routing: baseline distance-based policy \
             vs FlexVC at the same and at enlarged VC budgets (references T^{n_dims} \
             for MIN, T^{} for VAL).",
            pattern.label(),
            2 * n_dims,
        ),
        seeds: scale.seeds.clone(),
        points,
        classifications: Vec::new(),
    }
}

pub(super) fn hyperx_un_2d(scale: &Scale) -> Scenario {
    hyperx(scale, 2, Pattern::Uniform)
}

pub(super) fn hyperx_un_3d(scale: &Scale) -> Scenario {
    hyperx(scale, 3, Pattern::Uniform)
}

pub(super) fn hyperx_adv_2d(scale: &Scale) -> Scenario {
    hyperx(scale, 2, Pattern::adv1())
}

pub(super) fn hyperx_adv_3d(scale: &Scale) -> Scenario {
    hyperx(scale, 3, Pattern::adv1())
}

/// `hyperx-k2`: the `k > 1` link-multiplicity regression — hash-spread vs
/// adaptive (sensed per-copy occupancy) parallel-copy selection on a 2-D
/// HyperX with doubled links, under UN and ADV+1. The acceptance shape:
/// adaptive is no worse than hash under UN and strictly better under ADV
/// (the endpoint hash pins each router pair to one copy, so the
/// adversarial funnel wastes half the doubled bisection).
pub(super) fn hyperx_k2(scale: &Scale) -> Scenario {
    let loads = default_loads();
    let points = [Pattern::Uniform, Pattern::adv1()]
        .iter()
        .flat_map(|&p| sweep_points(p, &hyperx_k2_series(scale, p), &loads))
        .collect();
    let (s, _) = crate::hyperx_shape(2);
    Scenario {
        name: "hyperx-k2".into(),
        title: format!("HyperX 2-D k=2 ({s}x{s} routers, doubled links): copy selection"),
        description: "Adaptive parallel-copy selection vs the static endpoint hash on a \
                      2-D HyperX with k = 2 link multiplicity, MIN routing, UN and ADV+1 \
                      traffic. The hash routes every (src router, dst router) pair over \
                      one fixed copy; the adaptive policy picks the least-occupied copy \
                      per hop from local credit state."
            .into(),
        seeds: scale.seeds.clone(),
        points,
        classifications: Vec::new(),
    }
}

/// The `dfplus` scenario family: UN and ADV load sweeps on a Dragonfly+
/// (Megafly) network — the third low-diameter family of the evaluation
/// line (cf. arXiv 2306.13042, which evaluates Dragonfly+ alongside
/// HyperX and Dragonfly). Groups are two-level fat trees; ADV+1 funnels
/// each group's minimal traffic onto a single inter-group link, which the
/// adaptive cross-section (UGAL-L/G, PB) spreads.
fn dfplus(scale: &Scale, pattern: Pattern) -> Scenario {
    let loads = default_loads();
    let series = dfplus_series(scale, pattern);
    let points = sweep_points(pattern, &series, &loads);
    let (leaves, spines, hosts, groups) = crate::dfplus_shape();
    let name = format!("dfplus-{}", pattern.label().to_ascii_lowercase());
    let routing = flexvc_sim::paper_routing_for(pattern);
    Scenario {
        name: name.clone(),
        title: format!(
            "Dragonfly+ ({groups} groups x {leaves}+{spines} routers, {hosts} hosts/leaf): \
             {} under {routing}",
            pattern.label()
        ),
        description: format!(
            "Latency and throughput vs offered load on a Dragonfly+ / Megafly network \
             (two-level fat-tree groups: leaf routers hold the hosts, spine routers the \
             global links; minimal routes are leaf-spine-global-spine-leaf) under {} \
             traffic with {routing} routing: baseline distance-based policy vs FlexVC \
             at the same and at enlarged VC budgets{}. References follow the Dragonfly \
             L G L texture; the classifier charges detours the spine escape L L G L, \
             so 4/2 is both the safe and the support minimum for VAL.",
            pattern.label(),
            if routing.is_nonminimal() {
                ", plus the adaptive cross-section (MIN, UGAL-L, UGAL-G, PB) at the \
                 safe 4/2 budget"
            } else {
                ""
            },
        ),
        seeds: scale.seeds.clone(),
        points,
        classifications: Vec::new(),
    }
}

pub(super) fn dfplus_un(scale: &Scale) -> Scenario {
    dfplus(scale, Pattern::Uniform)
}

pub(super) fn dfplus_adv(scale: &Scale) -> Scenario {
    dfplus(scale, Pattern::adv1())
}

/// Shared shape of the `*-paper` scenarios: a reduced load set (ramp to
/// saturation in four steps) over Baseline vs FlexVC series — the point of
/// these scenarios is the *network size*, not legend coverage.
const PAPER_LOADS: [f64; 4] = [0.25, 0.5, 0.75, 1.0];

fn paper_points(pattern: Pattern, series: &[Series]) -> Vec<PointSpec> {
    sweep_points(pattern, series, &PAPER_LOADS)
}

/// `dragonfly-paper`: the full Table V `h = 8` balanced Dragonfly (2,064
/// routers, 16,512 nodes) — the scale the paper actually simulates, parked
/// on the roadmap until the sharded engine landed. Windows and seeds follow
/// the ambient [`Scale`] (use `FLEXVC_PAPER=1` for the 5×60k-cycle paper
/// methodology); run with `--shards 0` to spread each point's event loop
/// over the host's cores.
pub(super) fn dragonfly_paper(scale: &Scale) -> Scenario {
    let wl = Workload::oblivious(Pattern::Uniform);
    let mut base = SimConfig::dragonfly_baseline(8, RoutingMode::Min, wl);
    base.warmup = scale.warmup;
    base.measure = scale.measure;
    base.watchdog = (scale.warmup + scale.measure) / 2;
    let series = [
        Series::new("Baseline", base.clone()),
        Series::new(
            "FlexVC 4/2VCs",
            base.with_flexvc(Arrangement::dragonfly(4, 2)),
        ),
    ];
    Scenario {
        name: "dragonfly-paper".into(),
        title: "Dragonfly h=8 (2,064 routers, Table V scale): UN under MIN".into(),
        description: "The paper's full-size balanced Dragonfly (p=8, a=16, g=129): UN \
                      load ramp, baseline policy vs FlexVC 4/2. Sized for the sharded \
                      engine — pass --shards 0 (auto) or --shards N to parallelize each \
                      point; results are bit-identical for every shard count."
            .into(),
        seeds: scale.seeds.clone(),
        points: paper_points(Pattern::Uniform, &series),
        classifications: Vec::new(),
    }
}

/// `hyperx-paper`: a 16³ HyperX (4,096 routers, diameter 3) — the largest
/// topology of the follow-up VC-management analysis (arXiv 2306.13042),
/// far beyond the single-core sweep budget.
pub(super) fn hyperx_paper(scale: &Scale) -> Scenario {
    let mut base = SimConfig::hyperx_baseline(
        3,
        16,
        4,
        RoutingMode::Min,
        Workload::oblivious(Pattern::Uniform),
    );
    base.warmup = scale.warmup;
    base.measure = scale.measure;
    base.watchdog = (scale.warmup + scale.measure) / 2;
    let series = [
        Series::new("Baseline", base.clone()),
        Series::new("FlexVC 5VCs", base.with_flexvc(Arrangement::generic(5))),
    ];
    Scenario {
        name: "hyperx-paper".into(),
        title: "HyperX 16^3 (4,096 routers x 4 terminals): UN under MIN".into(),
        description: "Paper-scale 3-D HyperX (16 routers per dimension, diameter 3, \
                      single link class): UN load ramp, baseline policy vs FlexVC at \
                      an enlarged budget. Sized for the sharded engine — pass \
                      --shards 0/N to parallelize each point."
            .into(),
        seeds: scale.seeds.clone(),
        points: paper_points(Pattern::Uniform, &series),
        classifications: Vec::new(),
    }
}

/// `dfplus-paper`: a megafly-sized Dragonfly+ — 33 groups of 16+16
/// routers (1,056 routers, 4,224 nodes), every spine holding two global
/// links, matching the megafly configurations of the Dragonfly+ litera-
/// ture rather than the registry's laptop-sized 9-group instance.
pub(super) fn dfplus_paper(scale: &Scale) -> Scenario {
    let mut base = SimConfig::dfplus_baseline(
        16,
        16,
        8,
        33,
        RoutingMode::Min,
        Workload::oblivious(Pattern::Uniform),
    );
    base.warmup = scale.warmup;
    base.measure = scale.measure;
    base.watchdog = (scale.warmup + scale.measure) / 2;
    let series = [
        Series::new("Baseline", base.clone()),
        Series::new(
            "FlexVC 4/2VCs",
            base.with_flexvc(Arrangement::dragonfly(4, 2)),
        ),
    ];
    Scenario {
        name: "dfplus-paper".into(),
        title: "Dragonfly+ megafly (33 groups x 16+16 routers, 4,224 nodes): UN under MIN".into(),
        description: "Megafly-sized Dragonfly+ (two-level fat-tree groups, 16 leaves + \
                      16 spines each, 8 hosts per leaf, 33 groups): UN load ramp, \
                      baseline policy vs FlexVC 4/2. Sized for the sharded engine — \
                      pass --shards 0/N to parallelize each point."
            .into(),
        seeds: scale.seeds.clone(),
        points: paper_points(Pattern::Uniform, &series),
        classifications: Vec::new(),
    }
}

/// Shared shape of the `flows-*` scenarios: a flow workload swept over the
/// default loads on Dragonfly + 2-D HyperX, FlexVC vs baseline at the
/// equal (reference-minimum) VC budget. Series labels are prefixed with
/// the workload label (`FLOWS-UN/DF Baseline`, `PERM/BIMODAL/HX FlexVC
/// 2VCs`, …) so FCT curves group by pattern exactly like the packet-level
/// sweeps group by [`Pattern`].
fn flows(scale: &Scale, spec: FlowSpec, name: &str, headline: &str, detail: &str) -> Scenario {
    let loads = default_loads();
    let label = Workload::flows(spec).label();
    let points = flow_series(scale, spec)
        .iter()
        .flat_map(|s| {
            let series = format!("{label}/{}", s.label);
            loads.iter().map(move |&load| PointSpec {
                series: series.clone(),
                x: format!("{load:.2}"),
                load,
                cfg: s.cfg.clone(),
            })
        })
        .collect();
    Scenario {
        name: name.into(),
        title: format!("Flows: {headline} (h = {}, HyperX 4x4)", scale.h),
        description: format!(
            "{detail} Open-loop flow arrivals emit per-flow packet trains at line \
             rate; reports add flow completion time (p50/p99) and slowdown \
             (FCT / ideal serialization time) per point. FlexVC vs baseline at \
             the equal reference-minimum VC budget under MIN, on the Dragonfly \
             and a 2-D HyperX."
        ),
        seeds: scale.seeds.clone(),
        points,
        classifications: Vec::new(),
    }
}

pub(super) fn flows_un(scale: &Scale) -> Scenario {
    flows(
        scale,
        FlowSpec::uniform(SizeDist::mice_elephants()),
        "flows-un",
        "uniform mice/elephants",
        "Uniform destinations with the bimodal mice/elephants size mix \
         (90% 1-packet mice, 10% 16-packet elephants).",
    )
}

pub(super) fn flows_permutation(scale: &Scale) -> Scenario {
    flows(
        scale,
        FlowSpec::permutation(SizeDist::heavy_tail()),
        "flows-permutation",
        "random permutation, heavy-tail sizes",
        "A seed-fixed random permutation (each node sends every flow to one \
         partner) with bounded-Pareto flow sizes (1..=64 packets, alpha 1.5).",
    )
}

pub(super) fn flows_incast(scale: &Scale) -> Scenario {
    flows(
        scale,
        FlowSpec::incast(4, SizeDist::Fixed { packets: 4 }),
        "flows-incast",
        "4-to-1 incast phases",
        "Rotating collective phases: blocks of 5 nodes, 4 senders target the \
         block's receiver for 2,000 cycles before the role rotates; 4-packet \
         fixed-size flows.",
    )
}

/// Control fraction of the `qos-*` mixed-class workloads: a trickle on
/// top of the bulk plane, as in the starvation stress pass.
const QOS_CONTROL_FRACTION: f64 = 0.05;

/// `qos-dragonfly`: multi-class QoS on the Dragonfly. A single-class
/// FlexVC 4/2 reference is compared against the *same total VC budget*
/// carrying a 5% control trickle, first FIFO (no QoS — control queues
/// behind bulk wherever the flood sits) and then under strict-priority
/// arbitration over class-partitioned 2/1+2/1 budgets. The acceptance
/// shape, asserted in `cli_smoke`: at saturation the QoS control-plane
/// p99 latency stays under half the single-class p99.
pub(super) fn qos_dragonfly(scale: &Scale) -> Scenario {
    let single = scale
        .config(RoutingMode::Min, Workload::oblivious(Pattern::Uniform))
        .with_flexvc(Arrangement::dragonfly(4, 2));
    let mixed = scale
        .config(
            RoutingMode::Min,
            Workload::oblivious(Pattern::Uniform).with_mix(QOS_CONTROL_FRACTION),
        )
        .with_flexvc(Arrangement::dragonfly(4, 2));
    let series = [
        Series::new("Single 4/2VCs", single),
        Series::new("FIFO mix 4/2VCs", mixed.clone()),
        Series::new(
            "QoS 2/1+2/1VCs",
            mixed.with_qos(QosConfig::partitioned(2, 1)),
        ),
    ];
    Scenario {
        name: "qos-dragonfly".into(),
        title: format!(
            "QoS Dragonfly: control/bulk classes at an equal 4/2 budget (h = {})",
            scale.h
        ),
        description: "Multi-class traffic on the Dragonfly under MIN: a single-class \
                      FlexVC 4/2 reference vs the same total VC budget carrying a 5% \
                      control trickle, FIFO (no QoS) and strict-priority over \
                      class-partitioned 2/1+2/1 budgets. Per-class accepted load and \
                      tail latency land in the control_*/bulk_* CSV columns and the \
                      per-class markdown grids; the single-class series tags every \
                      packet Bulk."
            .into(),
        seeds: scale.seeds.clone(),
        points: sweep_points(Pattern::Uniform, &series, &PAPER_LOADS),
        classifications: Vec::new(),
    }
}

/// `qos-hyperx`: the dynamic-allocation variant on the 2-D HyperX —
/// class-partitioned budgets (2+2 of 4 VCs, all local on this family)
/// against shared budgets with the occupancy-driven buffer repartitioner,
/// both over the same single-class reference.
pub(super) fn qos_hyperx(scale: &Scale) -> Scenario {
    let (s, p) = crate::hyperx_shape(2);
    let mk = |mix: bool| -> SimConfig {
        let wl = Workload::oblivious(Pattern::Uniform);
        let wl = if mix {
            wl.with_mix(QOS_CONTROL_FRACTION)
        } else {
            wl
        };
        let mut cfg = SimConfig::hyperx_baseline(2, s, p, RoutingMode::Min, wl);
        cfg.warmup = scale.warmup;
        cfg.measure = scale.measure;
        cfg.watchdog = (scale.warmup + scale.measure) / 2;
        cfg.with_flexvc(Arrangement::generic(4))
    };
    let series = [
        Series::new("Single 4VCs", mk(false)),
        Series::new(
            "QoS 2+2VCs",
            mk(true).with_qos(QosConfig::partitioned(2, 0)),
        ),
        Series::new(
            "QoS dyn 4VCs",
            mk(true).with_qos(QosConfig::shared().with_repartition()),
        ),
    ];
    Scenario {
        name: "qos-hyperx".into(),
        title: format!("QoS HyperX 2-D ({s}x{s} routers): static vs dynamic VC allocation"),
        description: "Multi-class traffic on the 2-D HyperX under MIN at a 4-VC budget: \
                      a single-class FlexVC reference vs a 5% control trickle under \
                      strict priority with hard-partitioned 2+2 budgets and with shared \
                      budgets plus the dynamic per-class buffer repartitioner (bulk \
                      occupancy pressure reclaims idle control credit, floored at one \
                      packet per class)."
            .into(),
        seeds: scale.seeds.clone(),
        points: sweep_points(Pattern::Uniform, &series, &PAPER_LOADS),
        classifications: Vec::new(),
    }
}

pub(super) fn smoke(_scale: &Scale) -> Scenario {
    // Deliberately ignores the ambient scale: always tiny, for CI and a
    // first `flexvc run smoke` after checkout.
    let mut base =
        SimConfig::dragonfly_baseline(2, RoutingMode::Min, Workload::oblivious(Pattern::Uniform));
    base.warmup = 300;
    base.measure = 600;
    base.watchdog = 3_000;
    let flex = base.clone().with_flexvc(Arrangement::dragonfly(4, 2));
    let points = [("Baseline", base), ("FlexVC 4/2", flex)]
        .into_iter()
        .flat_map(|(label, cfg)| {
            [0.3, 0.9].into_iter().map(move |load| PointSpec {
                series: label.to_string(),
                x: format!("{load:.2}"),
                load,
                cfg: cfg.clone(),
            })
        })
        .collect();
    Scenario {
        name: "smoke".into(),
        title: "Smoke: 30-second sanity run (h = 2, tiny windows)".into(),
        description: "Four tiny points (Baseline vs FlexVC 4/2 at loads 0.3/0.9) to check \
                      the toolchain end-to-end; ignores FLEXVC_* scale overrides."
            .into(),
        seeds: vec![1],
        points,
        classifications: Vec::new(),
    }
}
