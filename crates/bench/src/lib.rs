//! # flexvc-bench — scenario-first experiment harness
//!
//! Every figure and table of the paper is expressed as *data*: a
//! [`scenario::Scenario`] bundles named `(SimConfig, load, seed)` points
//! plus analytic classification tables, serializes to TOML/JSON through
//! `flexvc_serde`, and runs on the parallel scenario executor with
//! streaming progress. The [`scenario::ScenarioRegistry`] holds the nine
//! paper reproductions (`fig5` … `fig11`, `tables`, `ablations`), the
//! `hyperx-{un,adv}-{2d,3d}` + `hyperx-k2` HyperX family, the
//! `dfplus-{un,adv}` Dragonfly+ family, and a tiny `smoke` scenario;
//! the single `flexvc` CLI binary fronts them:
//!
//! ```text
//! flexvc list                         # what can run
//! flexvc show fig9 > fig9.toml        # scenario as editable data
//! flexvc run fig9 --out results.json  # run + structured results
//! flexvc run --file custom.toml       # no Rust needed for new scenarios
//! ```
//!
//! This crate also keeps the series builders shared by the scenario
//! definitions ([`oblivious_series`], [`reactive_series`],
//! [`adaptive_series`]) and the environment-driven [`Scale`] control.
//!
//! ## Scale control
//!
//! The paper simulates an `h = 8` Dragonfly (2,064 routers) for 5×60k
//! cycles per point — far beyond a laptop budget. The harness defaults to
//! a scaled `h = 2` network with shorter windows that preserves every
//! mechanism and the comparative shape of all results (see `DESIGN.md` §6).
//! Environment variables (overridable by `flexvc` CLI flags) set the
//! defaults:
//!
//! | Variable         | Meaning                            | Default |
//! |------------------|------------------------------------|---------|
//! | `FLEXVC_H`       | Dragonfly size parameter `h`       | 2       |
//! | `FLEXVC_SEEDS`   | Repetitions per point              | 2       |
//! | `FLEXVC_WARMUP`  | Warm-up cycles                     | 8,000   |
//! | `FLEXVC_MEASURE` | Measurement window                 | 15,000  |
//! | `FLEXVC_PAPER`   | `1` = full Table-V scale (h=8, 5 seeds, 60k cycles) | off |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perf;
pub mod scenario;

use flexvc_core::{Arrangement, RoutingMode};
use flexvc_sim::prelude::*;
use flexvc_traffic::{Pattern, Workload};

/// Experiment scale resolved from the environment.
#[derive(Debug, Clone)]
pub struct Scale {
    /// Dragonfly `h` (balanced: `p = h`, `a = 2h`, `g = 2h² + 1`).
    pub h: usize,
    /// Seeds to average over.
    pub seeds: Vec<u64>,
    /// Warm-up cycles.
    pub warmup: u64,
    /// Measurement window.
    pub measure: u64,
}

impl Scale {
    /// Read the scale from the environment (see crate docs).
    pub fn from_env() -> Self {
        let env_u = |k: &str, d: u64| -> u64 {
            std::env::var(k)
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(d)
        };
        if std::env::var("FLEXVC_PAPER")
            .map(|v| v == "1")
            .unwrap_or(false)
        {
            return Scale::paper();
        }
        let h = env_u("FLEXVC_H", 2) as usize;
        let n_seeds = env_u("FLEXVC_SEEDS", 2).max(1);
        Scale {
            h,
            seeds: (1..=n_seeds).collect(),
            warmup: env_u("FLEXVC_WARMUP", 8_000),
            measure: env_u("FLEXVC_MEASURE", 15_000),
        }
    }

    /// The paper's full Table V scale (h = 8, 5 seeds, 60k-cycle windows).
    pub fn paper() -> Self {
        Scale {
            h: 8,
            seeds: (1..=5).collect(),
            warmup: 20_000,
            measure: 60_000,
        }
    }

    /// Baseline config for a routing mode/workload at this scale.
    pub fn config(&self, routing: RoutingMode, workload: Workload) -> SimConfig {
        let mut cfg = SimConfig::dragonfly_baseline(self.h, routing, workload);
        cfg.warmup = self.warmup;
        cfg.measure = self.measure;
        cfg.watchdog = (self.warmup + self.measure) / 2;
        cfg
    }
}

/// A named experiment series (one curve of a figure).
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label (as in the paper).
    pub label: String,
    /// Configuration.
    pub cfg: SimConfig,
}

impl Series {
    /// Build a series.
    pub fn new(label: impl Into<String>, cfg: SimConfig) -> Self {
        Series {
            label: label.into(),
            cfg,
        }
    }
}

/// The oblivious-routing series of Figs. 5/6/11 for one traffic pattern:
/// Baseline, DAMQ 75%, FlexVC at the minimum VC set, FlexVC 4/2 and 8/4.
/// ADV uses VAL (2/1 cannot host it), UN/BURSTY use MIN.
pub fn oblivious_series(scale: &Scale, pattern: Pattern) -> Vec<Series> {
    let routing = paper_routing_for(pattern);
    let wl = Workload::oblivious(pattern);
    let base = scale.config(routing, wl);
    let mut out = vec![
        Series::new("Baseline", base.clone()),
        Series::new("DAMQ 75%", base.clone().with_damq75()),
    ];
    if routing == RoutingMode::Min {
        out.push(Series::new(
            "FlexVC 2/1VCs",
            base.clone().with_flexvc(Arrangement::dragonfly_min()),
        ));
    }
    out.push(Series::new(
        "FlexVC 4/2VCs",
        base.clone().with_flexvc(Arrangement::dragonfly(4, 2)),
    ));
    out.push(Series::new(
        "FlexVC 8/4VCs",
        base.with_flexvc(Arrangement::dragonfly(8, 4)),
    ));
    out
}

/// Request–reply series of Fig. 7 for one traffic pattern.
pub fn reactive_series(scale: &Scale, pattern: Pattern) -> Vec<Series> {
    let routing = paper_routing_for(pattern);
    let wl = Workload::reactive(pattern);
    let base = scale.config(routing, wl);
    let flex = |req: (usize, usize), rep: (usize, usize)| -> SimConfig {
        base.clone()
            .with_flexvc(Arrangement::dragonfly_rr(req, rep))
    };
    if routing == RoutingMode::Min {
        vec![
            Series::new("Baseline", base.clone()),
            Series::new("DAMQ", base.clone().with_damq75()),
            Series::new("FlexVC 4/2VCs(2/1+2/1)", flex((2, 1), (2, 1))),
            Series::new("FlexVC 5/3VCs(2/1+3/2)", flex((2, 1), (3, 2))),
            Series::new("FlexVC 5/3VCs(3/2+2/1)", flex((3, 2), (2, 1))),
            Series::new("FlexVC 6/4VCs(2/1+4/3)", flex((2, 1), (4, 3))),
            Series::new("FlexVC 6/4VCs(3/2+3/2)", flex((3, 2), (3, 2))),
            Series::new("FlexVC 6/4VCs(4/3+2/1)", flex((4, 3), (2, 1))),
        ]
    } else {
        vec![
            Series::new("Baseline", base.clone()),
            Series::new("DAMQ", base.clone().with_damq75()),
            Series::new("FlexVC 8/4VCs(4/2+4/2)", flex((4, 2), (4, 2))),
            Series::new("FlexVC 10/6VCs(5/3+5/3)", flex((5, 3), (5, 3))),
            Series::new("FlexVC 10/6VCs(6/4+4/2)", flex((6, 4), (4, 2))),
        ]
    }
}

/// Shape of the registry's HyperX scenarios for a dimension count:
/// `(s, p)` — routers per dimension and terminals per router. Chosen so
/// both networks stay laptop-quick (2-D: 16 routers / 32 nodes,
/// 3-D: 27 routers / 54 nodes) while exercising genuinely different
/// diameters and reference sequences.
pub fn hyperx_shape(n_dims: usize) -> (usize, usize) {
    match n_dims {
        2 => (4, 2),
        _ => (3, 2),
    }
}

/// HyperX series for one `(dimension count, pattern)` cell: baseline
/// distance-based policy, FlexVC at the *same* VC budget (pure policy
/// benefit), FlexVC with two extra VCs, and — for non-minimal routings —
/// the cheap opportunistic configuration (`d + 1` VCs, below the safe
/// minimum of `2d`) plus the adaptive cross-section at the safe budget:
/// MIN (the misroute-free floor), UGAL-L/G (source-adaptive MIN-vs-VAL)
/// and DAL (per-dimension in-transit misrouting), all under FlexVC so the
/// routing mechanism is the only variable.
pub fn hyperx_series(scale: &Scale, n_dims: usize, pattern: Pattern) -> Vec<Series> {
    let routing = paper_routing_for(pattern);
    let (s, p) = hyperx_shape(n_dims);
    let mut base = SimConfig::hyperx_baseline(n_dims, s, p, routing, Workload::oblivious(pattern));
    base.warmup = scale.warmup;
    base.measure = scale.measure;
    base.watchdog = (scale.warmup + scale.measure) / 2;
    let min_vcs = routing.min_hyperx_vcs(n_dims);
    let flex = |vcs: usize| base.clone().with_flexvc(Arrangement::generic(vcs));
    let mut out = vec![Series::new("Baseline", base.clone())];
    if routing.is_nonminimal() {
        out.push(Series::new(
            format!("FlexVC {}VCs (opport.)", n_dims + 1),
            flex(n_dims + 1),
        ));
    }
    out.push(Series::new(format!("FlexVC {min_vcs}VCs"), flex(min_vcs)));
    out.push(Series::new(
        format!("FlexVC {}VCs", min_vcs + 2),
        flex(min_vcs + 2),
    ));
    if routing.is_nonminimal() {
        // The adaptive cross-section at the safe VC budget: every series
        // shares the arrangement, only the routing mechanism differs.
        let with_routing = |mode: RoutingMode| {
            let mut cfg = flex(min_vcs);
            cfg.routing = mode;
            cfg
        };
        out.push(Series::new(
            format!("MIN {min_vcs}VCs"),
            with_routing(RoutingMode::Min),
        ));
        out.push(Series::new(
            format!("UGAL-L {min_vcs}VCs"),
            with_routing(RoutingMode::UgalL),
        ));
        out.push(Series::new(
            format!("UGAL-G {min_vcs}VCs"),
            with_routing(RoutingMode::UgalG),
        ));
        out.push(Series::new(
            format!("DAL {min_vcs}VCs"),
            with_routing(RoutingMode::Dal),
        ));
    }
    out
}

/// Shape of the registry's Dragonfly+ scenarios:
/// `(leaves, spines, hosts_per_leaf, groups)` — 9 groups of 4+4 routers
/// with 2 hosts per leaf (72 routers, 72 nodes, 2 global ports per spine),
/// the same node count as the default `h = 2` Dragonfly so the two
/// families' curves are directly comparable.
pub fn dfplus_shape() -> (usize, usize, usize, usize) {
    (4, 4, 2, 9)
}

/// Dragonfly+ series for one traffic pattern: baseline distance-based
/// policy, FlexVC at the *same* VC budget (pure policy benefit — the MIN
/// minimum 2/1 also hosts FlexVC MIN on this family), FlexVC at enlarged
/// budgets, and — for non-minimal routing — the adaptive cross-section at
/// the safe 4/2 budget: MIN (misroute-free floor), UGAL-L/G
/// (source-adaptive MIN-vs-VAL) and PB (board-vetoed credit choice over
/// the spines' global ports), all under FlexVC so the routing mechanism is
/// the only variable. Note there is no opportunistic-below-minimum VAL
/// series: on Dragonfly+ the spine escape `L L G L` makes 4/2 both the
/// safe *and* the support minimum (see the classifier rows).
pub fn dfplus_series(scale: &Scale, pattern: Pattern) -> Vec<Series> {
    let routing = paper_routing_for(pattern);
    let (leaves, spines, hosts, groups) = dfplus_shape();
    let mut base = SimConfig::dfplus_baseline(
        leaves,
        spines,
        hosts,
        groups,
        routing,
        Workload::oblivious(pattern),
    );
    base.warmup = scale.warmup;
    base.measure = scale.measure;
    base.watchdog = (scale.warmup + scale.measure) / 2;
    let flex = |l: usize, g: usize| base.clone().with_flexvc(Arrangement::dragonfly(l, g));
    let (ml, mg) = routing.min_dfplus_vcs();
    let mut out = vec![
        Series::new("Baseline", base.clone()),
        Series::new(format!("FlexVC {ml}/{mg}VCs"), flex(ml, mg)),
    ];
    if routing == RoutingMode::Min {
        out.push(Series::new("FlexVC 4/2VCs", flex(4, 2)));
    }
    out.push(Series::new("FlexVC 8/4VCs", flex(8, 4)));
    if routing.is_nonminimal() {
        // The adaptive cross-section at the safe VC budget: every series
        // shares the 4/2 arrangement, only the routing mechanism differs.
        let with_routing = |mode: RoutingMode| {
            let mut cfg = flex(4, 2);
            cfg.routing = mode;
            cfg
        };
        out.push(Series::new("MIN 4/2VCs", with_routing(RoutingMode::Min)));
        out.push(Series::new(
            "UGAL-L 4/2VCs",
            with_routing(RoutingMode::UgalL),
        ));
        out.push(Series::new(
            "UGAL-G 4/2VCs",
            with_routing(RoutingMode::UgalG),
        ));
        out.push(Series::new(
            "PB 4/2VCs",
            with_routing(RoutingMode::Piggyback),
        ));
    }
    out
}

/// Flow-workload series: FlexVC vs the baseline distance-based policy at
/// the *equal* (reference-minimum) VC budget under MIN routing, on both
/// the ambient-scale Dragonfly and the registry's 2-D HyperX — so any FCT
/// difference is pure VC-management benefit, not extra buffering. Series
/// labels carry the topology prefix (`DF`/`HX`).
pub fn flow_series(scale: &Scale, spec: flexvc_traffic::FlowSpec) -> Vec<Series> {
    let wl = Workload::flows(spec);
    let df_base = scale.config(RoutingMode::Min, wl);
    let (s, p) = hyperx_shape(2);
    let mut hx_base = SimConfig::hyperx_baseline(2, s, p, RoutingMode::Min, wl);
    hx_base.warmup = scale.warmup;
    hx_base.measure = scale.measure;
    hx_base.watchdog = (scale.warmup + scale.measure) / 2;
    let hx_vcs = RoutingMode::Min.min_hyperx_vcs(2);
    vec![
        Series::new("DF Baseline", df_base.clone()),
        Series::new(
            "DF FlexVC 2/1VCs",
            df_base.with_flexvc(Arrangement::dragonfly_min()),
        ),
        Series::new("HX Baseline", hx_base.clone()),
        Series::new(
            format!("HX FlexVC {hx_vcs}VCs"),
            hx_base.with_flexvc(Arrangement::generic(hx_vcs)),
        ),
    ]
}

/// The `hyperx-k2` series: a 2-D HyperX with `k = 2` parallel links per
/// peer pair under MIN routing, hash-spread copies vs adaptive (sensed)
/// copy selection. The endpoint hash pins every router pair's traffic to
/// one fixed copy, so adversarial traffic wastes half the bisection; the
/// adaptive JSQ uses both copies.
pub fn hyperx_k2_series(scale: &Scale, pattern: Pattern) -> Vec<Series> {
    let (s, p) = hyperx_shape(2);
    let mut base =
        SimConfig::hyperx_baseline(2, s, p, RoutingMode::Min, Workload::oblivious(pattern));
    base.topology = flexvc_sim::TopologySpec::HyperX {
        dims: vec![(s, 2); 2],
        p,
    };
    base.warmup = scale.warmup;
    base.measure = scale.measure;
    base.watchdog = (scale.warmup + scale.measure) / 2;
    let mut adaptive = base.clone();
    adaptive.adaptive_copies = true;
    vec![
        Series::new("hash copies", base),
        Series::new("adaptive copies", adaptive),
    ]
}

/// Piggyback adaptive series of Fig. 8: reference MIN/VAL, PB per-VC and
/// per-port on the baseline policy (4/2+4/2), and the four FlexVC variants
/// on 6/3 VCs (4/2+2/1): plain per-VC/per-port and minCred per-VC/per-port.
pub fn adaptive_series(scale: &Scale, pattern: Pattern) -> Vec<Series> {
    let wl = Workload::reactive(pattern);
    let reference = paper_routing_for(pattern);
    let mut out = vec![Series::new(
        if reference == RoutingMode::Min {
            "MIN"
        } else {
            "VAL"
        },
        scale.config(reference, wl),
    )];
    let pb = scale.config(RoutingMode::Piggyback, wl);
    let with = |mode: SensingMode, min_cred: bool, flex: bool| -> SimConfig {
        let mut cfg = if flex {
            pb.clone()
                .with_flexvc(Arrangement::dragonfly_rr((4, 2), (2, 1)))
        } else {
            pb.clone()
        };
        cfg.sensing = SensingConfig {
            mode,
            min_cred,
            threshold: cfg.sensing.threshold,
        };
        cfg
    };
    out.push(Series::new(
        "PB - per VC",
        with(SensingMode::PerVc, false, false),
    ));
    out.push(Series::new(
        "PB - per port",
        with(SensingMode::PerPort, false, false),
    ));
    out.push(Series::new(
        "PB FlexVC - per VC",
        with(SensingMode::PerVc, false, true),
    ));
    out.push(Series::new(
        "PB FlexVC - per port",
        with(SensingMode::PerPort, false, true),
    ));
    out.push(Series::new(
        "PB FlexVC - per VC min",
        with(SensingMode::PerVc, true, true),
    ));
    out.push(Series::new(
        "PB FlexVC - per port min",
        with(SensingMode::PerPort, true, true),
    ));
    out
}

/// Default offered-load sweep for latency/throughput figures.
pub fn default_loads() -> Vec<f64> {
    (1..=10).map(|i| i as f64 / 10.0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn test_scale() -> Scale {
        Scale {
            h: 2,
            seeds: vec![1],
            warmup: 100,
            measure: 200,
        }
    }

    #[test]
    fn scale_default() {
        // Don't rely on ambient env in tests; just exercise config building.
        let scale = test_scale();
        let cfg = scale.config(RoutingMode::Min, Workload::oblivious(Pattern::Uniform));
        assert_eq!(cfg.warmup, 100);
        cfg.validate().unwrap();
    }

    #[test]
    fn all_series_validate() {
        let scale = test_scale();
        for pattern in [Pattern::Uniform, Pattern::bursty(), Pattern::adv1()] {
            for s in oblivious_series(&scale, pattern) {
                s.cfg
                    .validate()
                    .unwrap_or_else(|e| panic!("{}: {e}", s.label));
            }
            for s in reactive_series(&scale, pattern) {
                s.cfg
                    .validate()
                    .unwrap_or_else(|e| panic!("{}: {e}", s.label));
            }
            for s in adaptive_series(&scale, pattern) {
                s.cfg
                    .validate()
                    .unwrap_or_else(|e| panic!("{}: {e}", s.label));
            }
        }
    }

    #[test]
    fn series_counts_match_paper_legends() {
        let scale = test_scale();
        assert_eq!(oblivious_series(&scale, Pattern::Uniform).len(), 5);
        assert_eq!(oblivious_series(&scale, Pattern::adv1()).len(), 4);
        assert_eq!(reactive_series(&scale, Pattern::Uniform).len(), 8);
        assert_eq!(reactive_series(&scale, Pattern::adv1()).len(), 5);
        assert_eq!(adaptive_series(&scale, Pattern::Uniform).len(), 7);
    }

    /// The Dragonfly+ ADV cell carries the adaptive cross-section
    /// (MIN / UGAL-L / UGAL-G / PB at the safe 4/2 budget) alongside
    /// Baseline and FlexVC VAL; the UN cell is minimal-only with an
    /// equal-budget FlexVC series. Every config validates.
    #[test]
    fn dfplus_series_cover_the_adaptive_cross_section() {
        let scale = test_scale();
        let adv = dfplus_series(&scale, Pattern::adv1());
        for needle in ["Baseline", "FlexVC 4/2", "MIN", "UGAL-L", "UGAL-G", "PB"] {
            assert!(
                adv.iter().any(|s| s.label.contains(needle)),
                "missing {needle} in Dragonfly+ ADV series"
            );
        }
        for s in &adv {
            s.cfg
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", s.label));
        }
        let un = dfplus_series(&scale, Pattern::Uniform);
        assert!(un.iter().any(|s| s.label.contains("FlexVC 2/1")));
        assert!(un.iter().all(|s| !s.label.contains("UGAL")));
        for s in &un {
            s.cfg
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", s.label));
        }
    }

    /// The ADV HyperX cells carry the adaptive cross-section at the safe
    /// VC budget (MIN / UGAL-L / UGAL-G / DAL alongside Baseline and
    /// FlexVC VAL); the UN cells stay minimal-only. Every config validates.
    #[test]
    fn hyperx_series_cover_the_adaptive_cross_section() {
        let scale = test_scale();
        for n_dims in [2, 3] {
            let adv = hyperx_series(&scale, n_dims, Pattern::adv1());
            for needle in ["Baseline", "MIN", "UGAL-L", "UGAL-G", "DAL"] {
                assert!(
                    adv.iter().any(|s| s.label.contains(needle)),
                    "missing {needle} in {n_dims}-D ADV series"
                );
            }
            for s in &adv {
                s.cfg
                    .validate()
                    .unwrap_or_else(|e| panic!("{}: {e}", s.label));
            }
            let un = hyperx_series(&scale, n_dims, Pattern::Uniform);
            assert!(un.iter().all(|s| !s.label.contains("UGAL")));
        }
        for pattern in [Pattern::Uniform, Pattern::adv1()] {
            for s in hyperx_k2_series(&scale, pattern) {
                s.cfg
                    .validate()
                    .unwrap_or_else(|e| panic!("{}: {e}", s.label));
            }
        }
    }

    #[test]
    fn paper_scale_matches_table_v() {
        let paper = Scale::paper();
        assert_eq!(paper.h, 8);
        assert_eq!(paper.seeds.len(), 5);
        assert_eq!(paper.measure, 60_000);
    }
}
