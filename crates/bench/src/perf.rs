//! `flexvc bench` — the fixed engine-performance kernel suite.
//!
//! Runs a deterministic set of simulation kernels and emits a
//! machine-readable report (`BENCH_pr10.json`), establishing the repo's
//! performance trajectory. Each kernel gets untimed warmup iterations and
//! then repeats its timed run until a measured-cycles floor, so short
//! kernels don't turn timer jitter into phantom regressions; the gate
//! compares per-group *geomeans*, weighing every kernel equally. Nine
//! kernel groups:
//!
//! * **fig5_h2** — the Fig. 5 oblivious-routing suite at h = 2 (baseline,
//!   DAMQ 75%, FlexVC 2/1, 4/2 and 8/4 under MIN/UN) over the
//!   pre-saturation load sweep. This is the reference kernel for the
//!   engine-speedup criterion.
//! * **sweep_h4** — baseline + FlexVC 4/2 at h = 4 (264 routers), the
//!   intermediate scale.
//! * **hyperx** — the generic-diameter engine path on 2-D/3-D HyperX
//!   networks (DOR plans, per-dimension escapes, opportunistic VAL).
//! * **adaptive** — the RoutePolicy decision layer under adversarial
//!   load: UGAL-L/G source adaptivity, DAL per-dimension misrouting and
//!   adaptive `k = 2` copy selection.
//! * **dfplus** — the Dragonfly+ fat-tree engine path (two-level groups,
//!   spine global links with boards, leaf-restricted Valiant) under UN
//!   and adversarial load.
//! * **flows** — the flow/message workload layer (open-loop flow
//!   arrivals, per-flow packet trains, FCT accounting): uniform
//!   mice/elephants on the h = 2 Dragonfly (baseline and FlexVC 2/1),
//!   heavy-tail permutation flows on a 2-D HyperX, and a 4-to-1 incast.
//!   Exercises the per-node flow state and the FCT histogram path on
//!   top of the usual stepping cost.
//! * **qos** — the multi-class QoS engine path: strict-priority
//!   arbitration with the bounded bypass, class-partitioned VC masks,
//!   shared budgets under priority, and the dynamic per-class buffer
//!   repartitioner, with a control trickle mixed onto the bulk plane on
//!   the Dragonfly (MIN and VAL/ADV) and the 2-D HyperX. Exercises the
//!   class tagging, per-class metrics and the priority grant loop on top
//!   of the usual stepping cost.
//! * **smoke_h8** — a short measurement window at the paper's full h = 8
//!   scale (2,064 routers, 16,512 nodes), proving paper-scale runs are
//!   tractable on one core.
//! * **paper** — the paper-scale topologies of the `*-paper` scenarios
//!   (h = 8 Dragonfly, 16³ HyperX, megafly Dragonfly+) run through the
//!   sharded engine, pairing a `shards = 1` kernel with a `shards = 2`
//!   twin on the same configuration so the report records the multi-shard
//!   speedup directly (`_s1` vs `_s2` kernel names). The ratio only
//!   reads above 1 on multi-core hosts; on a single core it reads the
//!   residual exchange overhead (≤ 1 by construction), amortized across
//!   λ-cycle epochs by the batched boundary exchange, with per-shard
//!   partition/imbalance stats recorded alongside.
//!
//! Speedups are computed against cycles/sec recorded from the
//! pre-refactor (full-sweep) engine on the *same kernels and hardware*
//! immediately before the active-set rewrite landed; on different
//! hardware the absolute numbers shift but the ratio stays indicative
//! because both engines are memory-bound on the same structures.

use flexvc_core::{Arrangement, RoutingMode};
use flexvc_serde::{Deserialize, Error as DeError, Map, Serialize, Value};
use flexvc_sim::prelude::*;
use flexvc_sim::Network;
use flexvc_traffic::{FlowSpec, Pattern, SizeDist, Workload};
use std::time::Instant;

/// Cycles/sec of the pre-refactor engine on this suite (recorded on the
/// development machine, single-core, best of three runs, at the commit
/// immediately preceding the active-set rewrite). See the module docs for
/// how to interpret these on other hardware.
pub mod recorded_baseline {
    /// Aggregate cycles/sec over the `fig5_h2` kernel group.
    pub const FIG5_H2: f64 = 39_043.0;
    /// Aggregate cycles/sec over the `sweep_h4` kernel group.
    pub const SWEEP_H4: f64 = 1_387.0;
    /// Aggregate cycles/sec over the `smoke_h8` kernel group.
    pub const SMOKE_H8: f64 = 63.0;
    /// Aggregate cycles/sec over the `hyperx` kernel group, recorded at
    /// the commit that *introduced* the HyperX topology (same machine and
    /// methodology as the other groups, full profile, best of three). A
    /// ~1.0x speedup is the expected reading until a later optimization
    /// moves it; the entry anchors the trajectory for the generic-diameter
    /// engine path.
    pub const HYPERX: f64 = 150_485.0;
    /// Aggregate cycles/sec over the `adaptive` kernel group (UGAL-L/G,
    /// DAL and adaptive `k = 2` copy selection), recorded at the commit
    /// that introduced the RoutePolicy decision layer — the anchor for the
    /// adaptive-routing engine path, expected to read ~1.0x until a later
    /// optimization moves it.
    pub const ADAPTIVE: f64 = 68_879.0;
    /// Aggregate cycles/sec over the `dfplus` kernel group (Dragonfly+
    /// fat-tree groups: MIN/UN, FlexVC, VAL and UGAL-G under ADV),
    /// recorded at the commit that introduced the Dragonfly+ topology —
    /// the anchor for the fat-tree engine path, expected to read ~1.0x
    /// until a later optimization moves it.
    pub const DFPLUS: f64 = 58_996.0;
    /// Aggregate cycles/sec over the `flows` kernel group (flow-workload
    /// generation + FCT accounting on h = 2 Dragonfly and 2-D HyperX),
    /// recorded at the commit that introduced the flow layer — the anchor
    /// for the flow-workload engine path, expected to read ~1.0x until a
    /// later optimization moves it.
    pub const FLOWS: f64 = 162_842.0;
    /// Aggregate cycles/sec over the `qos` kernel group (strict-priority
    /// arbitration, class masks and the buffer repartitioner under a
    /// mixed-class workload), recorded at the commit that introduced
    /// multi-class QoS — the anchor for the priority engine path,
    /// expected to read ~1.0x until a later optimization moves it.
    pub const QOS: f64 = 53_739.0;
    /// Aggregate cycles/sec over the `paper` kernel group (paper-scale
    /// topologies through the sharded engine, `shards = 1` and
    /// `shards = 2` twins), recorded at the commit that introduced engine
    /// sharding — on the single-core recording machine the two twins run
    /// at essentially the same rate, so this anchors the *overhead* of the
    /// boundary exchange, not a parallel speedup.
    pub const PAPER: f64 = 153.0;
}

/// One kernel: a named `(config, load, seed)` point with fixed windows.
pub struct Kernel {
    /// Kernel name (`group/series@load`).
    pub name: String,
    /// Group the kernel aggregates into.
    pub group: &'static str,
    /// Full configuration (windows already set).
    pub cfg: SimConfig,
    /// Offered load.
    pub load: f64,
    /// Seed.
    pub seed: u64,
}

/// Result of one kernel run.
#[derive(Debug, Clone)]
pub struct KernelResult {
    /// Kernel name.
    pub name: String,
    /// Group name.
    pub group: String,
    /// Cycles stepped (warmup + measure), summed over the timed repeats.
    pub cycles: u64,
    /// Wall-clock seconds, summed over the timed repeats.
    pub wall_seconds: f64,
    /// Cycles per second.
    pub cycles_per_sec: f64,
    /// Timed repeats that contributed to `cycles`/`wall_seconds`.
    pub repeats: usize,
    /// Accepted load (sanity signal that the kernel simulated traffic).
    pub accepted: f64,
    /// Whether the run deadlocked (must be false for every kernel).
    pub deadlocked: bool,
    /// Engine shards the kernel ran with (1 = plain single engine).
    pub shards: usize,
    /// Per-shard partition and work-time stats from the last timed repeat
    /// (empty for single-engine kernels).
    pub shard_stats: Vec<KernelShardStat>,
    /// Shard load imbalance: max over mean of the per-shard work seconds
    /// (1.0 = perfectly balanced; 0.0 when not sharded).
    pub shard_imbalance: f64,
}

/// One shard's partition slice and measured work time within a kernel.
#[derive(Debug, Clone)]
pub struct KernelShardStat {
    /// Routers owned by the shard.
    pub routers: u64,
    /// Partition weight of the shard's range (ports + terminals).
    pub weight: u64,
    /// Wall-clock seconds the shard's worker spent stepping/exchanging
    /// (barrier waits excluded) in the last timed repeat.
    pub work_seconds: f64,
}

/// Aggregate over one kernel group.
#[derive(Debug, Clone)]
pub struct GroupSummary {
    /// Group name.
    pub group: String,
    /// Kernels in the group.
    pub kernels: usize,
    /// Total cycles stepped.
    pub cycles: u64,
    /// Total wall-clock seconds.
    pub wall_seconds: f64,
    /// Aggregate cycles/sec (total cycles / total wall).
    pub cycles_per_sec: f64,
    /// Geometric mean of the member kernels' cycles/sec. Unlike the
    /// aggregate, every kernel weighs equally regardless of how many
    /// cycles it stepped, so one long kernel can't mask a regression in
    /// a short one — the regression gate compares this.
    pub geomean_cycles_per_sec: f64,
    /// Recorded pre-refactor cycles/sec for the same group.
    pub baseline_cycles_per_sec: f64,
    /// `cycles_per_sec / baseline_cycles_per_sec`.
    pub speedup_vs_baseline: f64,
}

/// The full bench report (serialized to `BENCH_pr9.json`; older
/// recordings such as `BENCH_pr2.json`/`BENCH_pr8.json` deserialize
/// through the same schema for `--baseline` comparisons — fields added
/// since, like the per-group geomean and the per-shard stats, degrade
/// gracefully).
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Report schema tag.
    pub schema: String,
    /// Engine identifier.
    pub engine: String,
    /// Whether the quick (CI) windows were used.
    pub quick: bool,
    /// Per-kernel results.
    pub kernels: Vec<KernelResult>,
    /// Per-group aggregates.
    pub groups: Vec<GroupSummary>,
}

/// The fixed kernel-group names, in suite order (`flexvc bench --group`
/// accepts exactly these).
pub fn group_names() -> &'static [&'static str] {
    &[
        "fig5_h2", "sweep_h4", "hyperx", "adaptive", "dfplus", "flows", "qos", "smoke_h8", "paper",
    ]
}

/// Build the fixed kernel suite. `quick` shrinks windows for CI.
pub fn kernel_suite(quick: bool) -> Vec<Kernel> {
    let mut kernels = Vec::new();
    let windows = |cfg: &mut SimConfig, warmup: u64, measure: u64| {
        cfg.warmup = warmup;
        cfg.measure = measure;
        cfg.watchdog = warmup + measure;
    };

    // fig5_h2: the Fig. 5 series under MIN/UN over the pre-saturation
    // sweep (h = 2 saturates UN around ~0.65 accepted; beyond that the
    // latency curves the figure reports are undefined anyway).
    let (warm2, meas2) = if quick {
        (1_000, 2_000)
    } else {
        (2_000, 6_000)
    };
    let base2 = || {
        SimConfig::dragonfly_baseline(2, RoutingMode::Min, Workload::oblivious(Pattern::Uniform))
    };
    let series2: Vec<(&str, SimConfig)> = vec![
        ("baseline", base2()),
        ("damq75", base2().with_damq75()),
        (
            "flexvc21",
            base2().with_flexvc(Arrangement::dragonfly_min()),
        ),
        (
            "flexvc42",
            base2().with_flexvc(Arrangement::dragonfly(4, 2)),
        ),
        (
            "flexvc84",
            base2().with_flexvc(Arrangement::dragonfly(8, 4)),
        ),
    ];
    for (label, cfg) in series2 {
        for &load in &[0.15, 0.3, 0.45, 0.6] {
            let mut cfg = cfg.clone();
            windows(&mut cfg, warm2, meas2);
            kernels.push(Kernel {
                name: format!("fig5_h2/{label}@{load}"),
                group: "fig5_h2",
                cfg,
                load,
                seed: 1,
            });
        }
    }

    // sweep_h4: intermediate scale. One load point per series — the 0.3
    // points measured the same stepping machinery at lower occupancy and
    // doubled the group's wall-clock (h = 4 steps at ~2k cycles/sec, so
    // every kernel rides the wall floor) without adding regression
    // coverage the 0.6 points don't have.
    let (warm4, meas4) = if quick { (500, 1_000) } else { (1_000, 2_500) };
    let base4 = || {
        SimConfig::dragonfly_baseline(4, RoutingMode::Min, Workload::oblivious(Pattern::Uniform))
    };
    let series4: Vec<(&str, SimConfig)> = vec![
        ("baseline", base4()),
        (
            "flexvc42",
            base4().with_flexvc(Arrangement::dragonfly(4, 2)),
        ),
    ];
    for (label, mut cfg) in series4 {
        let load = 0.6;
        windows(&mut cfg, warm4, meas4);
        kernels.push(Kernel {
            name: format!("sweep_h4/{label}@{load}"),
            group: "sweep_h4",
            cfg,
            load,
            seed: 1,
        });
    }

    // hyperx: the generic-diameter engine path (DOR plans, per-dimension
    // escapes, all-port sensing) on the registry's 2-D/3-D shapes.
    let (warm_hx, meas_hx) = if quick { (800, 1_600) } else { (1_500, 4_000) };
    let hx3 = || {
        SimConfig::hyperx_baseline(
            3,
            3,
            2,
            RoutingMode::Min,
            Workload::oblivious(Pattern::Uniform),
        )
    };
    let series_hx: Vec<(&str, SimConfig, f64)> = vec![
        ("un3d_baseline", hx3(), 0.3),
        ("un3d_baseline", hx3(), 0.6),
        (
            "un3d_flexvc5",
            hx3().with_flexvc(Arrangement::generic(5)),
            0.6,
        ),
        (
            "adv2d_val_flexvc3",
            SimConfig::hyperx_baseline(
                2,
                4,
                2,
                RoutingMode::Valiant,
                Workload::oblivious(Pattern::adv1()),
            )
            .with_flexvc(Arrangement::generic(3)),
            0.5,
        ),
    ];
    for (label, cfg, load) in series_hx {
        let mut cfg = cfg;
        windows(&mut cfg, warm_hx, meas_hx);
        kernels.push(Kernel {
            name: format!("hyperx/{label}@{load}"),
            group: "hyperx",
            cfg,
            load,
            seed: 1,
        });
    }

    // adaptive: the RoutePolicy decision layer — UGAL-L/G source
    // adaptivity, DAL per-dimension misrouting, and adaptive k = 2 copy
    // selection — under adversarial load, where the decisions actually
    // fire.
    let (warm_ad, meas_ad) = if quick { (800, 1_600) } else { (1_500, 4_000) };
    let series_ad: Vec<(&str, SimConfig, f64)> = vec![
        (
            "ugal_l_adv3d",
            SimConfig::hyperx_baseline(
                3,
                3,
                2,
                RoutingMode::UgalL,
                Workload::oblivious(Pattern::adv1()),
            )
            .with_flexvc(Arrangement::generic(6)),
            0.6,
        ),
        (
            "ugal_g_adv3d",
            SimConfig::hyperx_baseline(
                3,
                3,
                2,
                RoutingMode::UgalG,
                Workload::oblivious(Pattern::adv1()),
            )
            .with_flexvc(Arrangement::generic(6)),
            0.6,
        ),
        (
            "dal_adv2d",
            SimConfig::hyperx_baseline(
                2,
                4,
                2,
                RoutingMode::Dal,
                Workload::oblivious(Pattern::adv1()),
            )
            .with_flexvc(Arrangement::generic(4)),
            0.7,
        ),
        (
            "k2_adaptive_adv",
            {
                let mut cfg = SimConfig::hyperx_baseline(
                    2,
                    4,
                    2,
                    RoutingMode::Min,
                    Workload::oblivious(Pattern::adv1()),
                );
                cfg.topology = flexvc_sim::TopologySpec::HyperX {
                    dims: vec![(4, 2); 2],
                    p: 2,
                };
                cfg.adaptive_copies = true;
                cfg
            },
            0.8,
        ),
    ];
    for (label, cfg, load) in series_ad {
        let mut cfg = cfg;
        windows(&mut cfg, warm_ad, meas_ad);
        kernels.push(Kernel {
            name: format!("adaptive/{label}@{load}"),
            group: "adaptive",
            cfg,
            load,
            seed: 1,
        });
    }

    // dfplus: the Dragonfly+ fat-tree engine path — hierarchical two-hop
    // intra-group routes, spine-owned global links with boards, and the
    // leaf-restricted Valiant draw — under UN and adversarial load.
    let (warm_dp, meas_dp) = if quick { (800, 1_600) } else { (1_500, 4_000) };
    let dp = |routing: RoutingMode, pattern: Pattern| {
        SimConfig::dfplus_baseline(4, 4, 2, 9, routing, Workload::oblivious(pattern))
    };
    let series_dp: Vec<(&str, SimConfig, f64)> = vec![
        ("un_baseline", dp(RoutingMode::Min, Pattern::Uniform), 0.5),
        (
            "un_flexvc21",
            dp(RoutingMode::Min, Pattern::Uniform).with_flexvc(Arrangement::dragonfly_min()),
            0.5,
        ),
        (
            "adv_val_flexvc42",
            dp(RoutingMode::Valiant, Pattern::adv1()).with_flexvc(Arrangement::dragonfly(4, 2)),
            0.5,
        ),
        (
            "adv_ugal_g_flexvc42",
            dp(RoutingMode::UgalG, Pattern::adv1()).with_flexvc(Arrangement::dragonfly(4, 2)),
            0.5,
        ),
    ];
    for (label, cfg, load) in series_dp {
        let mut cfg = cfg;
        windows(&mut cfg, warm_dp, meas_dp);
        kernels.push(Kernel {
            name: format!("dfplus/{label}@{load}"),
            group: "dfplus",
            cfg,
            load,
            seed: 1,
        });
    }

    // flows: the flow-workload layer — open-loop flow arrivals, per-flow
    // packet trains and FCT accounting — on small shapes where the flow
    // bookkeeping is a visible fraction of the stepping cost.
    let (warm_fl, meas_fl) = if quick { (800, 1_600) } else { (1_500, 4_000) };
    let df_flows =
        |spec: FlowSpec| SimConfig::dragonfly_baseline(2, RoutingMode::Min, Workload::flows(spec));
    let series_fl: Vec<(&str, SimConfig, f64)> = vec![
        (
            "un_bimodal_baseline",
            df_flows(FlowSpec::uniform(SizeDist::mice_elephants())),
            0.4,
        ),
        (
            "un_bimodal_flexvc21",
            df_flows(FlowSpec::uniform(SizeDist::mice_elephants()))
                .with_flexvc(Arrangement::dragonfly_min()),
            0.4,
        ),
        (
            "perm_pareto_hyperx2d",
            SimConfig::hyperx_baseline(
                2,
                4,
                2,
                RoutingMode::Min,
                Workload::flows(FlowSpec::permutation(SizeDist::heavy_tail())),
            ),
            0.4,
        ),
        (
            "incast4_baseline",
            df_flows(FlowSpec::incast(4, SizeDist::Fixed { packets: 4 })),
            0.3,
        ),
    ];
    for (label, cfg, load) in series_fl {
        let mut cfg = cfg;
        windows(&mut cfg, warm_fl, meas_fl);
        kernels.push(Kernel {
            name: format!("flows/{label}@{load}"),
            group: "flows",
            cfg,
            load,
            seed: 1,
        });
    }

    // qos: the multi-class QoS engine path — class tagging, strict
    // priority with the bounded bypass, partitioned VC masks, shared
    // budgets under priority and the dynamic buffer repartitioner — with
    // a 5% control trickle mixed onto the bulk plane, at loads where the
    // priority grant loop actually arbitrates between the classes.
    let (warm_q, meas_q) = if quick { (800, 1_600) } else { (1_500, 4_000) };
    let df_qos = |routing: RoutingMode, pattern: Pattern| {
        SimConfig::dragonfly_baseline(2, routing, Workload::oblivious(pattern).with_mix(0.05))
            .with_flexvc(Arrangement::dragonfly(4, 2))
    };
    let series_q: Vec<(&str, SimConfig, f64)> = vec![
        (
            "min_part21_df42",
            df_qos(RoutingMode::Min, Pattern::Uniform).with_qos(QosConfig::partitioned(2, 1)),
            0.6,
        ),
        (
            "min_shared_prio_df42",
            df_qos(RoutingMode::Min, Pattern::Uniform).with_qos(QosConfig::shared()),
            0.6,
        ),
        (
            "val_adv_shared_df42",
            df_qos(RoutingMode::Valiant, Pattern::adv1()).with_qos(QosConfig::shared()),
            0.5,
        ),
        (
            "min_repart_hyperx2d",
            SimConfig::hyperx_baseline(
                2,
                4,
                2,
                RoutingMode::Min,
                Workload::oblivious(Pattern::Uniform).with_mix(0.05),
            )
            .with_flexvc(Arrangement::generic(4))
            .with_qos(QosConfig::shared().with_repartition()),
            0.6,
        ),
    ];
    for (label, cfg, load) in series_q {
        let mut cfg = cfg;
        windows(&mut cfg, warm_q, meas_q);
        kernels.push(Kernel {
            name: format!("qos/{label}@{load}"),
            group: "qos",
            cfg,
            load,
            seed: 1,
        });
    }

    // smoke_h8: paper scale, short window.
    let (warm8, meas8) = if quick { (200, 500) } else { (300, 1_200) };
    let mut cfg8 =
        SimConfig::dragonfly_baseline(8, RoutingMode::Min, Workload::oblivious(Pattern::Uniform));
    windows(&mut cfg8, warm8, meas8);
    kernels.push(Kernel {
        name: "smoke_h8/baseline@0.25".to_string(),
        group: "smoke_h8",
        cfg: cfg8,
        load: 0.25,
        seed: 1,
    });

    // paper: the `*-paper` scenario topologies through the sharded engine.
    // Each shape is pinned to an explicit shard count so the recorded
    // report carries the `shards = 1` vs `shards = 2` ratio for the same
    // configuration (the dragonfly twins); results are bit-identical
    // across the twins, only wall-clock differs.
    let (warm_p, meas_p) = if quick { (100, 250) } else { (200, 600) };
    let paper_shapes: Vec<(&str, SimConfig, usize)> = vec![
        (
            "dragonfly_h8_s1",
            SimConfig::dragonfly_baseline(
                8,
                RoutingMode::Min,
                Workload::oblivious(Pattern::Uniform),
            ),
            1,
        ),
        (
            "dragonfly_h8_s2",
            SimConfig::dragonfly_baseline(
                8,
                RoutingMode::Min,
                Workload::oblivious(Pattern::Uniform),
            ),
            2,
        ),
        (
            "hyperx16_s2",
            SimConfig::hyperx_baseline(
                3,
                16,
                4,
                RoutingMode::Min,
                Workload::oblivious(Pattern::Uniform),
            ),
            2,
        ),
        (
            "dfplus_megafly_s2",
            SimConfig::dfplus_baseline(
                16,
                16,
                8,
                33,
                RoutingMode::Min,
                Workload::oblivious(Pattern::Uniform),
            ),
            2,
        ),
    ];
    for (label, cfg, shards) in paper_shapes {
        let mut cfg = cfg;
        cfg.shards = shards;
        windows(&mut cfg, warm_p, meas_p);
        kernels.push(Kernel {
            name: format!("paper/{label}@0.25"),
            group: "paper",
            cfg,
            load: 0.25,
            seed: 1,
        });
    }

    kernels
}

/// Per-kernel warmup iterations: untimed runs (shrunk windows) that fault
/// in the allocator arenas, page the simulation structures and train the
/// branch predictors before the timed repeats. One iteration suffices —
/// the dominant first-run effect is cold memory, not icache.
pub const WARMUP_ITERS: usize = 1;
/// Minimum cycles a kernel's *timed* region must accumulate: short
/// kernels repeat (fresh engine, same seed — bit-identical work) until
/// they cross this floor, so a sub-100 ms wall time never turns timer
/// jitter into a phantom regression.
pub const MIN_MEASURED_CYCLES: u64 = 20_000;
/// Early-out for the repeat loop: a kernel whose timed region already
/// spans this much wall-clock is variance-free regardless of its cycle
/// count (the paper-scale kernels step slowly but run for seconds).
pub const MIN_MEASURED_WALL: f64 = 1.0;
/// The wall-clock early-out under `--quick`: CI gates at a loose 15%/10%
/// tolerance, where half a second of timed region is already well clear
/// of timer jitter — the slow kernels (sweep_h4, paper twins) would
/// otherwise spend most of a quick run padding out the full floor.
pub const MIN_MEASURED_WALL_QUICK: f64 = 0.5;
/// Hard cap on timed repeats per kernel.
pub const MAX_REPEATS: usize = 8;

/// Geometric mean of the member kernels' cycles/sec (`None` when empty).
fn geomean(members: &[&KernelResult]) -> Option<f64> {
    if members.is_empty() {
        return None;
    }
    let log_sum: f64 = members
        .iter()
        .map(|k| k.cycles_per_sec.max(1e-9).ln())
        .sum();
    Some((log_sum / members.len() as f64).exp())
}

/// Run the suite sequentially (one timing thread) and aggregate.
///
/// `shards` overrides every kernel's engine shard count when `Some`
/// (`flexvc bench --shards N`; `0` = auto-detect). Kernel *results* are
/// shard-count-invariant, so the override only moves wall-clock numbers —
/// CI uses `--shards 2` to keep the sharded engine's exchange path on the
/// bench gate.
///
/// `group` restricts the run to one kernel group (`flexvc bench --group
/// fig5_h2`); unknown names fail before anything runs.
///
/// Each kernel gets [`WARMUP_ITERS`] untimed warmup iterations, then
/// repeats its timed run until [`MIN_MEASURED_CYCLES`] accumulate (or
/// [`MIN_MEASURED_WALL`]/[`MAX_REPEATS`] hit first); the reported
/// cycles/sec is total cycles over total wall across the repeats.
pub fn run_bench<F>(
    quick: bool,
    shards: Option<usize>,
    group: Option<&str>,
    mut progress: F,
) -> Result<BenchReport, RunError>
where
    F: FnMut(&KernelResult),
{
    let mut suite = kernel_suite(quick);
    if let Some(g) = group {
        suite.retain(|k| k.group == g);
        if suite.is_empty() {
            // The CLI validates against `group_names()` first; this is
            // the defensive path for library callers.
            return Err(RunError::EmptyBatch);
        }
    }
    let mut kernels: Vec<KernelResult> = Vec::with_capacity(suite.len());
    for k in &suite {
        let mut cfg = k.cfg.clone();
        if let Some(n) = shards {
            cfg.shards = n;
        }
        let invalid = |source| RunError::InvalidPoint {
            index: kernels.len(),
            source,
        };
        // One run of `cfg`, constructed outside the timed region:
        // cycles/sec measures the *stepping* rate, and construction cost
        // (seconds at the paper scales, noisy) would otherwise drown the
        // short windows. Cycles are those *actually stepped* (a
        // deadlocked run stops early; its truncated cycle count must not
        // inflate cycles/sec). Sharded runs also return the partition and
        // per-shard work-time stats for the report.
        type Once = (u64, f64, SimResult, usize, Vec<KernelShardStat>);
        let run_once = |cfg: SimConfig, timed: bool| -> Result<Once, RunError> {
            if flexvc_sim::shard::resolve_shards(cfg.shards, cfg.topology.num_routers()) > 1 {
                let mut net = ShardedNetwork::new(cfg, k.load, k.seed).map_err(invalid)?;
                let t0 = timed.then(Instant::now);
                let result = net.run();
                let wall = t0.map_or(0.0, |t| t.elapsed().as_secs_f64().max(1e-9));
                let stats = net
                    .shard_stats()
                    .iter()
                    .map(|s| KernelShardStat {
                        routers: s.routers.len() as u64,
                        weight: s.weight,
                        work_seconds: s.work_seconds,
                    })
                    .collect();
                Ok((net.cycle(), wall, result, net.num_shards(), stats))
            } else {
                let mut net = Network::new(cfg, k.load, k.seed).map_err(invalid)?;
                let t0 = timed.then(Instant::now);
                let result = net.run();
                let wall = t0.map_or(0.0, |t| t.elapsed().as_secs_f64().max(1e-9));
                Ok((net.cycle(), wall, result, 1, Vec::new()))
            }
        };
        // Warmup iterations: quarter windows reach the same steady-state
        // structures (buffers, wheels, boards) at a fraction of the cost.
        for _ in 0..WARMUP_ITERS {
            let mut wcfg = cfg.clone();
            wcfg.warmup = (wcfg.warmup / 4).max(50);
            wcfg.measure = (wcfg.measure / 4).max(100);
            wcfg.watchdog = wcfg.warmup + wcfg.measure;
            let _ = run_once(wcfg, false)?;
        }
        // Timed repeats up to the measured-cycles floor. Each repeat is a
        // fresh engine on the same (config, load, seed), so the work is
        // bit-identical and the accumulated rate stays meaningful.
        let min_wall = if quick {
            MIN_MEASURED_WALL_QUICK
        } else {
            MIN_MEASURED_WALL
        };
        let (mut cycles, mut wall) = (0u64, 0.0f64);
        let mut repeats = 0;
        let mut result;
        let (mut shard_count, mut shard_stats);
        loop {
            let (c, w, r, n, stats) = run_once(cfg.clone(), true)?;
            cycles += c;
            wall += w;
            repeats += 1;
            result = r;
            shard_count = n;
            shard_stats = stats;
            if cycles >= MIN_MEASURED_CYCLES
                || wall >= min_wall
                || repeats >= MAX_REPEATS
                || result.deadlocked
            {
                break;
            }
        }
        let shard_imbalance = if shard_stats.len() > 1 {
            let mean =
                shard_stats.iter().map(|s| s.work_seconds).sum::<f64>() / shard_stats.len() as f64;
            let max = shard_stats
                .iter()
                .map(|s| s.work_seconds)
                .fold(0.0f64, f64::max);
            if mean > 0.0 {
                max / mean
            } else {
                0.0
            }
        } else {
            0.0
        };
        let kr = KernelResult {
            name: k.name.clone(),
            group: k.group.to_string(),
            cycles,
            wall_seconds: wall,
            cycles_per_sec: cycles as f64 / wall.max(1e-9),
            repeats,
            accepted: result.accepted,
            deadlocked: result.deadlocked,
            shards: shard_count,
            shard_stats,
            shard_imbalance,
        };
        progress(&kr);
        kernels.push(kr);
    }

    let mut groups = Vec::new();
    for (group_name, baseline) in [
        ("fig5_h2", recorded_baseline::FIG5_H2),
        ("sweep_h4", recorded_baseline::SWEEP_H4),
        ("hyperx", recorded_baseline::HYPERX),
        ("adaptive", recorded_baseline::ADAPTIVE),
        ("dfplus", recorded_baseline::DFPLUS),
        ("flows", recorded_baseline::FLOWS),
        ("qos", recorded_baseline::QOS),
        ("smoke_h8", recorded_baseline::SMOKE_H8),
        ("paper", recorded_baseline::PAPER),
    ] {
        let members: Vec<&KernelResult> =
            kernels.iter().filter(|k| k.group == group_name).collect();
        let Some(gm) = geomean(&members) else {
            continue; // group filtered out by `--group`
        };
        let cycles: u64 = members.iter().map(|k| k.cycles).sum();
        let wall: f64 = members.iter().map(|k| k.wall_seconds).sum();
        let cps = cycles as f64 / wall.max(1e-9);
        groups.push(GroupSummary {
            group: group_name.to_string(),
            kernels: members.len(),
            cycles,
            wall_seconds: wall,
            cycles_per_sec: cps,
            geomean_cycles_per_sec: gm,
            baseline_cycles_per_sec: baseline,
            speedup_vs_baseline: cps / baseline,
        });
    }

    Ok(BenchReport {
        schema: "flexvc-bench-v1".to_string(),
        engine: "active-set".to_string(),
        quick,
        kernels,
        groups,
    })
}

/// One group's comparison against a recorded baseline report.
#[derive(Debug, Clone)]
pub struct GroupComparison {
    /// Group name.
    pub group: String,
    /// Gated cycles/sec of the current run (geomean when both reports
    /// carry per-kernel results, aggregate otherwise).
    pub current: f64,
    /// Gated cycles/sec recorded in the baseline report.
    pub baseline: f64,
    /// `current / baseline`.
    pub ratio: f64,
    /// The tolerance this group was gated at.
    pub tolerance: f64,
    /// Whether this group passes the regression gate.
    pub pass: bool,
}

/// The gated per-group rate: the stored geomean when present, recomputed
/// from the per-kernel results for reports recorded before the field
/// existed, and the aggregate cycles/sec as the last resort (a baseline
/// file stripped to group summaries).
fn gated_rate(report: &BenchReport, group: &str) -> Option<f64> {
    let g = report.groups.iter().find(|g| g.group == group)?;
    if g.geomean_cycles_per_sec > 0.0 {
        return Some(g.geomean_cycles_per_sec);
    }
    let members: Vec<&KernelResult> = report
        .kernels
        .iter()
        .filter(|k| k.group == group && k.cycles_per_sec > 0.0)
        .collect();
    geomean(&members).or(Some(g.cycles_per_sec))
}

/// Compare a fresh report against a recorded baseline file: every kernel
/// group present in *both* reports is gated on its **geomean** cycles/sec
/// — equal weight per kernel, so a long kernel can't mask a short one's
/// regression — failing when it drops below `1 - tolerance` of the
/// recorded value. `overrides` tightens (or loosens) individual groups:
/// the CI gate uses a default of 0.15 with 0.10 on the recovered
/// `fig5_h2`/`smoke_h8` groups. Groups new since the recording are
/// reported but not gated. Returns the per-group comparisons and the
/// overall verdict.
///
/// Cycles/sec are machine-dependent: a recorded baseline is only
/// meaningful on hardware comparable to where it was recorded (the repo's
/// `BENCH_*.json` files and CI runners; see `DESIGN.md`).
pub fn compare_reports_with(
    current: &BenchReport,
    baseline: &BenchReport,
    tolerance: f64,
    overrides: &[(&str, f64)],
) -> (Vec<GroupComparison>, bool) {
    let mut rows = Vec::new();
    let mut pass = true;
    // Iterate the *baseline* groups so a recorded group that disappears
    // from the suite (renamed, deleted) fails loudly instead of silently
    // dropping its gate coverage.
    for b in &baseline.groups {
        let Some(base_rate) = gated_rate(baseline, &b.group).filter(|r| *r > 0.0) else {
            continue;
        };
        let tol = overrides
            .iter()
            .find(|(g, _)| *g == b.group)
            .map_or(tolerance, |(_, t)| *t);
        let (current_rate, ratio, ok) = match gated_rate(current, &b.group) {
            Some(rate) => {
                let ratio = rate / base_rate;
                (rate, ratio, ratio >= 1.0 - tol)
            }
            None => (0.0, 0.0, false),
        };
        pass &= ok;
        rows.push(GroupComparison {
            group: b.group.clone(),
            current: current_rate,
            baseline: base_rate,
            ratio,
            tolerance: tol,
            pass: ok,
        });
    }
    (rows, pass)
}

/// [`compare_reports_with`] at a single uniform tolerance.
pub fn compare_reports(
    current: &BenchReport,
    baseline: &BenchReport,
    tolerance: f64,
) -> (Vec<GroupComparison>, bool) {
    compare_reports_with(current, baseline, tolerance, &[])
}

impl Serialize for KernelResult {
    fn to_value(&self) -> Value {
        let mut m = Map::new()
            .with("name", self.name.to_value())
            .with("group", self.group.to_value())
            .with("cycles", self.cycles.to_value())
            .with("wall_seconds", self.wall_seconds.to_value())
            .with("cycles_per_sec", self.cycles_per_sec.to_value())
            .with("repeats", (self.repeats as u64).to_value())
            .with("accepted", self.accepted.to_value())
            .with("deadlocked", self.deadlocked.to_value())
            .with("shards", (self.shards as u64).to_value());
        if !self.shard_stats.is_empty() {
            m = m
                .with("shard_stats", self.shard_stats.to_value())
                .with("shard_imbalance", self.shard_imbalance.to_value());
        }
        Value::Map(m)
    }
}

impl Serialize for KernelShardStat {
    fn to_value(&self) -> Value {
        Value::Map(
            Map::new()
                .with("routers", self.routers.to_value())
                .with("weight", self.weight.to_value())
                .with("work_seconds", self.work_seconds.to_value()),
        )
    }
}

impl Deserialize for KernelShardStat {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map()?;
        Ok(KernelShardStat {
            routers: m.field_or("routers", 0u64)?,
            weight: m.field_or("weight", 0u64)?,
            work_seconds: m.field_or("work_seconds", 0.0)?,
        })
    }
}

impl Serialize for GroupSummary {
    fn to_value(&self) -> Value {
        Value::Map(
            Map::new()
                .with("group", self.group.to_value())
                .with("kernels", (self.kernels as u64).to_value())
                .with("cycles", self.cycles.to_value())
                .with("wall_seconds", self.wall_seconds.to_value())
                .with("cycles_per_sec", self.cycles_per_sec.to_value())
                .with(
                    "geomean_cycles_per_sec",
                    self.geomean_cycles_per_sec.to_value(),
                )
                .with(
                    "baseline_cycles_per_sec",
                    self.baseline_cycles_per_sec.to_value(),
                )
                .with("speedup_vs_baseline", self.speedup_vs_baseline.to_value()),
        )
    }
}

impl Serialize for BenchReport {
    fn to_value(&self) -> Value {
        Value::Map(
            Map::new()
                .with("schema", self.schema.to_value())
                .with("engine", self.engine.to_value())
                .with("quick", self.quick.to_value())
                .with("groups", self.groups.to_value())
                .with("kernels", self.kernels.to_value()),
        )
    }
}

impl Deserialize for KernelResult {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map()?;
        Ok(KernelResult {
            name: m.field("name")?,
            group: m.field_or("group", String::new())?,
            cycles: m.field_or("cycles", 0u64)?,
            wall_seconds: m.field_or("wall_seconds", 0.0)?,
            cycles_per_sec: m.field_or("cycles_per_sec", 0.0)?,
            repeats: m.field_or::<u64>("repeats", 1)? as usize,
            accepted: m.field_or("accepted", 0.0)?,
            deadlocked: m.field_or("deadlocked", false)?,
            shards: m.field_or::<u64>("shards", 1)? as usize,
            shard_stats: m.field_or("shard_stats", Vec::new())?,
            shard_imbalance: m.field_or("shard_imbalance", 0.0)?,
        })
    }
}

impl Deserialize for GroupSummary {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map()?;
        Ok(GroupSummary {
            group: m.field("group")?,
            kernels: m.field_or::<u64>("kernels", 0)? as usize,
            cycles: m.field_or("cycles", 0u64)?,
            wall_seconds: m.field_or("wall_seconds", 0.0)?,
            cycles_per_sec: m.field("cycles_per_sec")?,
            geomean_cycles_per_sec: m.field_or("geomean_cycles_per_sec", 0.0)?,
            baseline_cycles_per_sec: m.field_or("baseline_cycles_per_sec", 0.0)?,
            speedup_vs_baseline: m.field_or("speedup_vs_baseline", 0.0)?,
        })
    }
}

impl Deserialize for BenchReport {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let m = v.as_map()?;
        Ok(BenchReport {
            schema: m.field_or("schema", "flexvc-bench-v1".to_string())?,
            engine: m.field_or("engine", String::new())?,
            quick: m.field_or("quick", false)?,
            kernels: m.field_or("kernels", Vec::new())?,
            groups: m.field_or("groups", Vec::new())?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_fixed_and_valid() {
        for quick in [false, true] {
            let suite = kernel_suite(quick);
            assert_eq!(suite.len(), 5 * 4 + 2 + 4 + 4 + 4 + 4 + 4 + 1 + 4);
            for k in &suite {
                k.cfg
                    .validate()
                    .unwrap_or_else(|e| panic!("{}: {e}", k.name));
            }
        }
        // Quick windows are strictly shorter.
        let full = kernel_suite(false);
        let quick = kernel_suite(true);
        for (f, q) in full.iter().zip(&quick) {
            assert_eq!(f.name, q.name);
            assert!(q.cfg.measure < f.cfg.measure, "{}", f.name);
        }
    }

    #[test]
    fn tiny_bench_runs_and_serializes() {
        // Shrink to a trivial subset by running quick kernels at h=2 only:
        // run the real API but through a stub suite would complicate the
        // interface, so just run the smallest kernel directly.
        let suite = kernel_suite(true);
        let k = &suite[0];
        let mut cfg = k.cfg.clone();
        cfg.warmup = 100;
        cfg.measure = 200;
        let r = run_one(&cfg, k.load, k.seed).unwrap();
        assert!(!r.deadlocked);
        // Serialization shape of a report built by hand.
        let report = BenchReport {
            schema: "flexvc-bench-v1".into(),
            engine: "active-set".into(),
            quick: true,
            kernels: vec![KernelResult {
                name: "fig5_h2/test".into(),
                group: "fig5_h2".into(),
                cycles: 300,
                wall_seconds: 0.1,
                cycles_per_sec: 3000.0,
                repeats: 1,
                accepted: r.accepted,
                deadlocked: false,
                shards: 2,
                shard_stats: vec![
                    KernelShardStat {
                        routers: 36,
                        weight: 500,
                        work_seconds: 0.04,
                    },
                    KernelShardStat {
                        routers: 36,
                        weight: 480,
                        work_seconds: 0.05,
                    },
                ],
                shard_imbalance: 0.05 / 0.045,
            }],
            groups: vec![],
        };
        let json = flexvc_serde::to_json_pretty(&report);
        assert!(json.contains("\"schema\": \"flexvc-bench-v1\""));
        assert!(json.contains("cycles_per_sec"));
        assert!(json.contains("shard_imbalance"));
        // Reports round-trip, so `--baseline` can read recorded files.
        let back: BenchReport = flexvc_serde::from_json(&json).unwrap();
        assert_eq!(back.kernels.len(), 1);
        assert_eq!(back.kernels[0].cycles, 300);
        assert_eq!(back.kernels[0].shards, 2);
        assert_eq!(back.kernels[0].shard_stats.len(), 2);
        assert_eq!(back.kernels[0].shard_stats[1].weight, 480);
        // Pre-PR9 reports (no shard fields) still deserialize.
        let old: BenchReport = flexvc_serde::from_json(
            r#"{"schema":"flexvc-bench-v1","kernels":[{"name":"a","cycles_per_sec":1.0}],"groups":[]}"#,
        )
        .unwrap();
        assert_eq!(old.kernels[0].shards, 1);
        assert!(old.kernels[0].shard_stats.is_empty());
    }

    fn group(name: &str, cps: f64) -> GroupSummary {
        GroupSummary {
            group: name.to_string(),
            kernels: 1,
            cycles: 1000,
            wall_seconds: 1.0,
            cycles_per_sec: cps,
            geomean_cycles_per_sec: cps,
            baseline_cycles_per_sec: 0.0,
            speedup_vs_baseline: 0.0,
        }
    }

    fn report(groups: Vec<GroupSummary>) -> BenchReport {
        BenchReport {
            schema: "flexvc-bench-v1".into(),
            engine: "active-set".into(),
            quick: true,
            kernels: Vec::new(),
            groups,
        }
    }

    #[test]
    fn baseline_compare_gates_recorded_groups_only() {
        let baseline = report(vec![group("fig5_h2", 100_000.0), group("hyperx", 50_000.0)]);
        // Within tolerance: 15% down on one group passes at exactly 0.85.
        let current = report(vec![
            group("fig5_h2", 85_000.0),
            group("hyperx", 60_000.0),
            group("adaptive", 1.0), // not in the baseline: reported, ungated
        ]);
        let (rows, pass) = compare_reports(&current, &baseline, 0.15);
        assert!(pass, "{rows:?}");
        assert_eq!(rows.len(), 2, "new groups are not gated");
        // A >15% regression fails the gate.
        let bad = report(vec![group("fig5_h2", 80_000.0), group("hyperx", 60_000.0)]);
        let (rows, pass) = compare_reports(&bad, &baseline, 0.15);
        assert!(!pass);
        let fig5 = rows.iter().find(|r| r.group == "fig5_h2").unwrap();
        assert!(!fig5.pass);
        assert!(rows.iter().find(|r| r.group == "hyperx").unwrap().pass);
    }

    /// A recorded group that disappears from the suite (renamed or
    /// deleted) must fail the gate loudly, not silently lose coverage.
    #[test]
    fn baseline_compare_fails_on_missing_recorded_group() {
        let baseline = report(vec![group("fig5_h2", 100_000.0), group("hyperx", 50_000.0)]);
        let renamed = report(vec![group("fig5", 200_000.0), group("hyperx", 60_000.0)]);
        let (rows, pass) = compare_reports(&renamed, &baseline, 0.15);
        assert!(!pass);
        let missing = rows.iter().find(|r| r.group == "fig5_h2").unwrap();
        assert!(!missing.pass);
        assert_eq!(missing.current, 0.0);
        assert!(rows.iter().find(|r| r.group == "hyperx").unwrap().pass);
    }

    /// Per-group tolerance overrides: the ratcheted groups gate tighter
    /// than the default without moving everyone else.
    #[test]
    fn baseline_compare_applies_per_group_tolerance() {
        let baseline = report(vec![
            group("fig5_h2", 100_000.0),
            group("hyperx", 100_000.0),
        ]);
        // 12% down on both: passes the 15% default, fails a 10% ratchet.
        let current = report(vec![group("fig5_h2", 88_000.0), group("hyperx", 88_000.0)]);
        let (rows, pass) = compare_reports_with(&current, &baseline, 0.15, &[("fig5_h2", 0.10)]);
        assert!(!pass);
        let fig5 = rows.iter().find(|r| r.group == "fig5_h2").unwrap();
        assert!(!fig5.pass);
        assert_eq!(fig5.tolerance, 0.10);
        let hx = rows.iter().find(|r| r.group == "hyperx").unwrap();
        assert!(hx.pass);
        assert_eq!(hx.tolerance, 0.15);
    }

    fn kernel(group: &str, name: &str, cps: f64) -> KernelResult {
        KernelResult {
            name: name.to_string(),
            group: group.to_string(),
            cycles: 1000,
            wall_seconds: 1.0,
            cycles_per_sec: cps,
            repeats: 1,
            accepted: 0.5,
            deadlocked: false,
            shards: 1,
            shard_stats: Vec::new(),
            shard_imbalance: 0.0,
        }
    }

    /// The gate compares geomeans: a long kernel's aggregate cannot mask
    /// a short kernel's collapse. Baselines recorded before the geomean
    /// field existed fall back to recomputing it from their per-kernel
    /// results.
    #[test]
    fn baseline_compare_gates_on_geomean_not_aggregate() {
        // Pre-geomean baseline: field absent (0.0), kernels present.
        let mut baseline = report(vec![GroupSummary {
            geomean_cycles_per_sec: 0.0,
            ..group("fig5_h2", 100_000.0)
        }]);
        baseline.kernels = vec![
            kernel("fig5_h2", "fig5_h2/a", 100_000.0),
            kernel("fig5_h2", "fig5_h2/b", 100_000.0),
        ];
        // Current run: kernel `a` collapsed 4x, kernel `b` doubled. The
        // cycles-over-wall aggregate stays ~flat (masking), but the
        // geomean drops to sqrt(0.25 * 2) ≈ 0.707 — a gated regression.
        let mut current = report(vec![GroupSummary {
            geomean_cycles_per_sec: 0.0,
            ..group("fig5_h2", 100_000.0)
        }]);
        current.kernels = vec![
            kernel("fig5_h2", "fig5_h2/a", 25_000.0),
            kernel("fig5_h2", "fig5_h2/b", 200_000.0),
        ];
        let (rows, pass) = compare_reports(&current, &baseline, 0.15);
        assert!(!pass, "{rows:?}");
        let fig5 = &rows[0];
        assert!((fig5.baseline - 100_000.0).abs() < 1.0);
        assert!((fig5.ratio - 0.5f64.sqrt()).abs() < 1e-9);
    }

    /// `--group` filtering: only the selected group's kernels run, the
    /// report carries just that group, and unknown names fail up front.
    #[test]
    fn run_bench_group_filter() {
        assert!(group_names().contains(&"smoke_h8"));
        let mut seen = Vec::new();
        let report = run_bench(true, Some(1), Some("smoke_h8"), |k| {
            seen.push(k.name.clone());
        })
        .unwrap();
        assert_eq!(report.groups.len(), 1);
        assert_eq!(report.groups[0].group, "smoke_h8");
        assert!(report.groups[0].geomean_cycles_per_sec > 0.0);
        assert!(seen.iter().all(|n| n.starts_with("smoke_h8/")));
        assert!(matches!(
            run_bench(true, Some(1), Some("nope"), |_| {}),
            Err(RunError::EmptyBatch)
        ));
    }
}
