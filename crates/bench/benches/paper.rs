//! One criterion bench per table and figure of the paper.
//!
//! Each figure bench runs a micro-scale slice of that figure's central
//! workload (h = 2 Dragonfly, short window) so `cargo bench` exercises the
//! exact code paths of every experiment in seconds; the full curves are
//! produced by the `fig5`…`fig11` binaries. Table benches measure the
//! analytic classifier that regenerates Tables I–IV.

use criterion::{criterion_group, criterion_main, Criterion};
use flexvc_core::classify::{classify_both, classify_combined, NetworkFamily};
use flexvc_core::{Arrangement, MessageClass, RoutingMode, VcSelection};
use flexvc_sim::prelude::*;
use flexvc_traffic::{Pattern, Workload};
use std::hint::black_box;

const MODES: [RoutingMode; 3] = [RoutingMode::Min, RoutingMode::Valiant, RoutingMode::Par];

fn micro(cfg: &SimConfig, load: f64) -> SimResult {
    let mut cfg = cfg.clone();
    cfg.warmup = 200;
    cfg.measure = 400;
    cfg.watchdog = 5_000;
    run_one(&cfg, load, 7).expect("valid config")
}

fn base(routing: RoutingMode, workload: Workload) -> SimConfig {
    SimConfig::dragonfly_baseline(2, routing, workload)
}

fn bench_tables(c: &mut Criterion) {
    c.bench_function("table_i_diameter2_classification", |b| {
        b.iter(|| {
            for vcs in 2..=5 {
                let arr = Arrangement::generic(vcs);
                for mode in MODES {
                    black_box(flexvc_core::classify(
                        NetworkFamily::Diameter2,
                        mode,
                        &arr,
                        MessageClass::Request,
                    ));
                }
            }
        })
    });
    c.bench_function("table_ii_protocol_deadlock_classification", |b| {
        b.iter(|| {
            for (q, p) in [(2, 2), (3, 2), (3, 3), (4, 4), (5, 5)] {
                let arr = Arrangement::generic_rr(q, p);
                for mode in MODES {
                    black_box(classify_combined(NetworkFamily::Diameter2, mode, &arr));
                }
            }
        })
    });
    c.bench_function("table_iii_dragonfly_classification", |b| {
        b.iter(|| {
            for (l, g) in [(2, 1), (3, 1), (2, 2), (3, 2), (4, 2), (5, 2)] {
                let arr = Arrangement::dragonfly(l, g);
                for mode in MODES {
                    black_box(flexvc_core::classify(
                        NetworkFamily::Dragonfly,
                        mode,
                        &arr,
                        MessageClass::Request,
                    ));
                }
            }
        })
    });
    c.bench_function("table_iv_dragonfly_rr_classification", |b| {
        b.iter(|| {
            for (req, rep) in [
                ((2, 1), (2, 1)),
                ((3, 2), (2, 1)),
                ((4, 2), (4, 2)),
                ((5, 2), (5, 2)),
            ] {
                let arr = Arrangement::dragonfly_rr(req, rep);
                for mode in MODES {
                    black_box(classify_both(NetworkFamily::Dragonfly, mode, &arr));
                }
            }
        })
    });
}

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_oblivious");
    g.sample_size(10);
    let un = base(RoutingMode::Min, Workload::oblivious(Pattern::Uniform));
    g.bench_function("baseline_un", |b| b.iter(|| black_box(micro(&un, 0.6))));
    let flex = un.clone().with_flexvc(Arrangement::dragonfly(4, 2));
    g.bench_function("flexvc_4_2_un", |b| b.iter(|| black_box(micro(&flex, 0.6))));
    let adv = base(RoutingMode::Valiant, Workload::oblivious(Pattern::adv1()));
    g.bench_function("valiant_adv", |b| b.iter(|| black_box(micro(&adv, 0.4))));
    g.finish();
}

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_buffer_capacity");
    g.sample_size(10);
    let mut cfg = base(RoutingMode::Min, Workload::oblivious(Pattern::Uniform))
        .with_flexvc(Arrangement::dragonfly(4, 2));
    cfg.buffers.sizing = BufferSizing::PerPort {
        local: 128,
        global: 512,
    };
    g.bench_function("flexvc_4_2_128_512_saturated", |b| {
        b.iter(|| black_box(micro(&cfg, 1.0)))
    });
    g.finish();
}

fn bench_fig7(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_request_reply");
    g.sample_size(10);
    let baseline = base(RoutingMode::Min, Workload::reactive(Pattern::Uniform));
    g.bench_function("baseline_rr_un", |b| {
        b.iter(|| black_box(micro(&baseline, 0.6)))
    });
    let flex = baseline
        .clone()
        .with_flexvc(Arrangement::dragonfly_rr((4, 3), (2, 1)));
    g.bench_function("flexvc_6_4_rr_un", |b| {
        b.iter(|| black_box(micro(&flex, 0.6)))
    });
    g.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_adaptive");
    g.sample_size(10);
    let mut pb = base(RoutingMode::Piggyback, Workload::reactive(Pattern::adv1()))
        .with_flexvc(Arrangement::dragonfly_rr((4, 2), (2, 1)));
    pb.sensing = SensingConfig {
        mode: SensingMode::PerPort,
        min_cred: true,
        threshold: 3,
    };
    g.bench_function("pb_flexvc_mincred_adv", |b| {
        b.iter(|| black_box(micro(&pb, 0.4)))
    });
    g.finish();
}

fn bench_fig9(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_vc_selection");
    g.sample_size(10);
    for sel in VcSelection::all() {
        let mut cfg = base(RoutingMode::Min, Workload::reactive(Pattern::Uniform))
            .with_flexvc(Arrangement::dragonfly_rr((3, 2), (2, 1)));
        cfg.selection = sel;
        g.bench_function(sel.label(), move |b| b.iter(|| black_box(micro(&cfg, 1.0))));
    }
    g.finish();
}

fn bench_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10_damq_reservation");
    g.sample_size(10);
    for (label, frac) in [("damq_75pct", 0.75), ("damq_25pct", 0.25)] {
        let mut cfg = base(RoutingMode::Min, Workload::oblivious(Pattern::Uniform));
        cfg.buffers.sizing = BufferSizing::PerPort {
            local: 128,
            global: 512,
        };
        cfg.buffers.organization = BufferOrg::Damq {
            private_fraction: frac,
        };
        g.bench_function(label, move |b| b.iter(|| black_box(micro(&cfg, 0.6))));
    }
    g.finish();
}

fn bench_fig11(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11_no_speedup");
    g.sample_size(10);
    for (label, flex) in [("baseline", false), ("flexvc_8_4", true)] {
        let mut cfg = base(RoutingMode::Min, Workload::oblivious(Pattern::Uniform));
        cfg.speedup = 1;
        if flex {
            cfg = cfg.with_flexvc(Arrangement::dragonfly(8, 4));
        }
        g.bench_function(label, move |b| b.iter(|| black_box(micro(&cfg, 1.0))));
    }
    g.finish();
}

criterion_group!(
    paper,
    bench_tables,
    bench_fig5,
    bench_fig6,
    bench_fig7,
    bench_fig8,
    bench_fig9,
    bench_fig10,
    bench_fig11
);
criterion_main!(paper);
