//! Micro-benchmarks of the simulator's hot kernels: the per-hop policy
//! evaluation, arrangement embeddings, occupancy accounting and a full
//! network cycle. These are the knobs that determine how large a network
//! the simulator can sustain.

use criterion::{criterion_group, criterion_main, Criterion};
use flexvc_core::policy::{flexvc_options, flexvc_options_lookahead};
use flexvc_core::{Arrangement, CreditClass, LinkClass, MessageClass, RoutingMode};
use flexvc_sim::bank::Occupancy;
use flexvc_sim::prelude::*;
use flexvc_traffic::{Pattern, Workload};
use std::hint::black_box;

fn bench_policy(c: &mut Criterion) {
    use LinkClass::*;
    let arr = Arrangement::dragonfly_rr((4, 2), (2, 1));
    let planned = [Local, Global, Local, Local, Global, Local];
    let min = [Local, Global, Local];
    c.bench_function("policy_flexvc_options_safe", |b| {
        b.iter(|| {
            black_box(flexvc_options(
                black_box(&arr),
                MessageClass::Request,
                None,
                &planned,
                &min,
            ))
        })
    });
    let escapes: [&[LinkClass]; 6] = [&min, &min, &min, &min, &min[1..], &min[2..]];
    c.bench_function("policy_flexvc_lookahead_opportunistic", |b| {
        b.iter(|| {
            black_box(flexvc_options_lookahead(
                black_box(&arr),
                MessageClass::Reply,
                None,
                &planned,
                &escapes,
            ))
        })
    });
}

fn bench_arrangement(c: &mut Criterion) {
    use LinkClass::*;
    let arr = Arrangement::dragonfly(8, 4);
    let hops = [Local, Global, Local, Local, Global, Local];
    c.bench_function("arrangement_embeds", |b| {
        b.iter(|| black_box(arr.embeds(black_box(&hops), Some(2), (0, arr.len()))))
    });
    c.bench_function("arrangement_max_landing", |b| {
        b.iter(|| {
            black_box(arr.max_landing(
                Local,
                black_box(&hops[1..]),
                None,
                arr.len(),
                (0, arr.len()),
            ))
        })
    });
}

fn bench_occupancy(c: &mut Criterion) {
    c.bench_function("occupancy_damq_accept_add_remove", |b| {
        let mut occ = Occupancy::new_damq(4, 256, 32);
        b.iter(|| {
            for vc in 0..4 {
                if occ.can_accept(vc, 8) {
                    occ.add(vc, 8, CreditClass::MinRouted);
                }
            }
            for vc in 0..4 {
                if occ.occupancy(vc) >= 8 {
                    occ.remove(vc, 8, CreditClass::MinRouted);
                }
            }
            black_box(occ.total())
        })
    });
}

fn bench_network_cycle(c: &mut Criterion) {
    let mut g = c.benchmark_group("network_step");
    for (label, h) in [("h2_36routers", 2usize), ("h3_114routers", 3)] {
        let mut cfg = SimConfig::dragonfly_baseline(
            h,
            RoutingMode::Min,
            Workload::oblivious(Pattern::Uniform),
        )
        .with_flexvc(Arrangement::dragonfly(4, 2));
        cfg.warmup = 0;
        cfg.measure = u64::MAX / 2;
        let mut net = Network::new(cfg, 0.6, 3).unwrap();
        // Warm the network into steady state once.
        for _ in 0..2_000 {
            net.step();
        }
        g.bench_function(label, |b| b.iter(|| net.step()));
    }
    g.finish();
}

criterion_group!(
    kernels,
    bench_policy,
    bench_arrangement,
    bench_occupancy,
    bench_network_cycle
);
criterion_main!(kernels);
