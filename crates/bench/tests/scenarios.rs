//! Registry-wide scenario guarantees: every built-in scenario expands to
//! valid data at multiple scales, round-trips through TOML/JSON, and
//! matches the legend/point structure of the paper figures it reproduces.

use flexvc_bench::scenario::{Scenario, ScenarioRegistry};
use flexvc_bench::Scale;
use flexvc_serde::{from_json, from_toml, to_json, to_json_pretty, to_toml};

fn test_scale() -> Scale {
    Scale {
        h: 2,
        seeds: vec![1, 2],
        warmup: 100,
        measure: 200,
    }
}

#[test]
fn every_registered_scenario_validates() {
    let registry = ScenarioRegistry::builtin();
    for scale in [test_scale(), Scale::paper()] {
        for entry in registry.entries() {
            let sc = entry.build(&scale);
            sc.validate()
                .unwrap_or_else(|e| panic!("scenario {} at h={}: {e}", entry.name, scale.h));
            assert_eq!(sc.name, entry.name, "scenario name matches registry key");
            assert!(!sc.title.is_empty(), "{}: title", entry.name);
            assert!(!sc.description.is_empty(), "{}: description", entry.name);
        }
    }
}

#[test]
fn every_registered_scenario_round_trips() {
    let registry = ScenarioRegistry::builtin();
    let scale = test_scale();
    for entry in registry.entries() {
        let sc = entry.build(&scale);
        let doc = to_json(&sc);

        let via_json: Scenario = from_json(&to_json_pretty(&sc))
            .unwrap_or_else(|e| panic!("{}: JSON parse: {e}", entry.name));
        assert_eq!(to_json(&via_json), doc, "{}: JSON round trip", entry.name);

        let toml = to_toml(&sc).unwrap_or_else(|e| panic!("{}: TOML emit: {e}", entry.name));
        let via_toml: Scenario =
            from_toml(&toml).unwrap_or_else(|e| panic!("{}: TOML parse: {e}", entry.name));
        assert_eq!(to_json(&via_toml), doc, "{}: TOML round trip", entry.name);

        via_toml
            .validate()
            .unwrap_or_else(|e| panic!("{}: reparsed scenario invalid: {e}", entry.name));
    }
}

#[test]
fn scenario_structures_match_paper_legends() {
    let registry = ScenarioRegistry::builtin();
    let scale = test_scale();
    let series_count = |sc: &Scenario| {
        let mut labels: Vec<&str> = Vec::new();
        for p in &sc.points {
            if !labels.contains(&p.series.as_str()) {
                labels.push(&p.series);
            }
        }
        labels.len()
    };

    // fig5: 5 series (UN/BURSTY) + 4 (ADV), 10 loads each.
    let fig5 = registry.build("fig5", &scale).unwrap();
    assert_eq!(series_count(&fig5), 5 + 5 + 4);
    assert_eq!(fig5.points.len(), (5 + 5 + 4) * 10);

    // fig9: 2 single-point reference rows (their split IS the first
    // column) + 4 selection functions over 6 splits.
    let fig9 = registry.build("fig9", &scale).unwrap();
    assert_eq!(series_count(&fig9), 6);
    assert_eq!(fig9.points.len(), 2 + 4 * 6);

    // fig10: 5 private-reservation fractions over 10 loads.
    let fig10 = registry.build("fig10", &scale).unwrap();
    assert_eq!(series_count(&fig10), 5);
    assert_eq!(fig10.points.len(), 50);

    // fig6/fig11: capacity columns, ADV drops the smallest.
    for name in ["fig6", "fig11"] {
        let sc = registry.build(name, &scale).unwrap();
        assert_eq!(sc.points.len(), 5 * 4 + 5 * 4 + 4 * 3, "{name}");
    }

    // tables: pure classification, all four tables, no simulation.
    let tables = registry.build("tables", &scale).unwrap();
    assert!(tables.points.is_empty());
    assert_eq!(tables.classifications.len(), 4);
    assert_eq!(tables.simulation_count(), 0);

    // The scale's seeds propagate into simulation scenarios.
    assert_eq!(fig5.seeds, scale.seeds);
}

/// The `*-paper` trio pins the paper-scale topology shapes regardless of
/// the ambient `Scale` (only windows/seeds follow it): Table V's h = 8
/// Dragonfly, the 16^3 HyperX and the megafly Dragonfly+.
#[test]
fn paper_scenarios_pin_paper_scale_topologies() {
    let registry = ScenarioRegistry::builtin();
    for (name, routers) in [
        ("dragonfly-paper", 2_064),
        ("hyperx-paper", 4_096),
        ("dfplus-paper", 1_056),
    ] {
        let sc = registry.build(name, &test_scale()).unwrap();
        assert_eq!(sc.points.len(), 2 * 4, "{name}: 2 series x 4 loads");
        for p in &sc.points {
            assert_eq!(p.cfg.topology.num_routers(), routers, "{name}/{}", p.series);
            // The windows do follow the scale, so a laptop run is bounded.
            assert_eq!(p.cfg.warmup, test_scale().warmup, "{name}");
        }
    }
}
