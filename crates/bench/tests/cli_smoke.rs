//! End-to-end smoke tests of the `flexvc` CLI binary: list, show, run (at
//! test scale), run from a TOML file, and structured JSON/CSV output.

use std::process::Command;

fn flexvc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_flexvc"))
}

fn run_ok(cmd: &mut Command) -> (String, String) {
    let out = cmd.output().expect("spawn flexvc");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        out.status.success(),
        "flexvc failed ({:?}):\nstdout:\n{stdout}\nstderr:\n{stderr}",
        out.status
    );
    (stdout, stderr)
}

#[test]
fn list_names_all_scenarios() {
    let (stdout, _) = run_ok(flexvc().arg("list"));
    for name in [
        "tables",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "ablations",
        "smoke",
    ] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

#[test]
fn run_smoke_reports_progress_and_results() {
    let tmp = std::env::temp_dir().join(format!("flexvc-smoke-{}.json", std::process::id()));
    let (stdout, stderr) = run_ok(
        flexvc()
            .args(["run", "smoke", "--threads", "2", "--out"])
            .arg(&tmp),
    );
    // Markdown summary on stdout.
    assert!(stdout.contains("Accepted load"), "{stdout}");
    assert!(stdout.contains("FlexVC 4/2"), "{stdout}");
    // Streaming per-point progress on stderr.
    assert!(stderr.contains("[smoke 4/4]"), "{stderr}");
    // Structured JSON results on disk.
    let json = std::fs::read_to_string(&tmp).expect("results file");
    std::fs::remove_file(&tmp).ok();
    assert!(json.contains("\"accepted\""), "{json}");
    assert!(json.contains("\"series\": \"Baseline\""), "{json}");
}

#[test]
fn run_from_toml_file_without_writing_rust() {
    // A scenario authored as pure data: two tiny points, sparse config
    // (defaults fill the rest).
    let scenario = r#"
name = "custom-cli-test"
title = "Custom scenario from TOML"
description = "CLI smoke test"
seeds = [7]

[[points]]
series = "MIN baseline"
x = "0.3"
load = 0.3

[points.cfg]
warmup = 200
measure = 400
watchdog = 2000

[[points]]
series = "FlexVC"
x = "0.3"
load = 0.3

[points.cfg]
policy = "flexvc"
arrangement = "L G L G L"
warmup = 200
measure = 400
watchdog = 2000
"#;
    let dir = std::env::temp_dir();
    let toml_path = dir.join(format!("flexvc-custom-{}.toml", std::process::id()));
    let csv_path = dir.join(format!("flexvc-custom-{}.csv", std::process::id()));
    std::fs::write(&toml_path, scenario).expect("write scenario");
    let (stdout, _) = run_ok(
        flexvc()
            .args(["run", "--quiet", "--file"])
            .arg(&toml_path)
            .arg("--out")
            .arg(&csv_path),
    );
    assert!(stdout.contains("Custom scenario from TOML"), "{stdout}");
    let csv = std::fs::read_to_string(&csv_path).expect("csv output");
    std::fs::remove_file(&toml_path).ok();
    std::fs::remove_file(&csv_path).ok();
    assert_eq!(csv.lines().count(), 3, "header + 2 points:\n{csv}");
    assert!(csv.starts_with("scenario,series,x,load,"), "{csv}");
    assert!(csv.contains("custom-cli-test,FlexVC"), "{csv}");
}

#[test]
fn show_round_trips_through_run() {
    // `show smoke` must emit TOML that `run --file` accepts verbatim.
    let (toml, _) = run_ok(flexvc().args(["show", "smoke"]));
    assert!(toml.contains("name = \"smoke\""), "{toml}");
    let path = std::env::temp_dir().join(format!("flexvc-show-{}.toml", std::process::id()));
    std::fs::write(&path, &toml).expect("write shown scenario");
    let (stdout, _) = run_ok(flexvc().args(["run", "--quiet", "--file"]).arg(&path));
    std::fs::remove_file(&path).ok();
    assert!(stdout.contains("Accepted load"), "{stdout}");
}

#[test]
fn bad_input_fails_with_usage_errors() {
    let out = flexvc().args(["run", "no-such-scenario"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown scenario"), "{stderr}");
    assert!(stderr.contains("fig5"), "lists available names: {stderr}");

    let out = flexvc().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());

    let out = flexvc().args(["run"]).output().unwrap();
    assert!(!out.status.success());
}
