//! End-to-end smoke tests of the `flexvc` CLI binary: list, show, run (at
//! test scale), run from a TOML file, and structured JSON/CSV output.

use std::process::Command;

fn flexvc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_flexvc"))
}

fn run_ok(cmd: &mut Command) -> (String, String) {
    let out = cmd.output().expect("spawn flexvc");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        out.status.success(),
        "flexvc failed ({:?}):\nstdout:\n{stdout}\nstderr:\n{stderr}",
        out.status
    );
    (stdout, stderr)
}

#[test]
fn list_names_all_scenarios() {
    let (stdout, _) = run_ok(flexvc().arg("list"));
    for name in [
        "tables",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "ablations",
        "hyperx-un-2d",
        "hyperx-un-3d",
        "hyperx-adv-2d",
        "hyperx-adv-3d",
        "smoke",
    ] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

/// The headline acceptance check for the HyperX family: `flexvc run
/// hyperx-un-3d` completes end-to-end, and at saturation (offered load
/// 1.00) every FlexVC series matches or beats the baseline policy's
/// accepted load — the paper's qualitative claim on a topology the seed
/// never modeled. Run at a reduced window via the scale flags; results are
/// deterministic for fixed seeds.
#[test]
fn run_hyperx_un_3d_flexvc_matches_or_beats_baseline() {
    let csv_path = std::env::temp_dir().join(format!("flexvc-hyperx-{}.csv", std::process::id()));
    let (stdout, _) = run_ok(
        flexvc()
            .args([
                "run",
                "hyperx-un-3d",
                "--quiet",
                "--seeds",
                "1",
                "--warmup",
                "2000",
                "--measure",
                "4000",
                "--format",
                "csv",
                "--out",
            ])
            .arg(&csv_path),
    );
    assert!(stdout.contains("Accepted load"), "{stdout}");
    let csv = std::fs::read_to_string(&csv_path).expect("csv output");
    std::fs::remove_file(&csv_path).ok();
    // Locate the columns from the header (not hard-coded indices) and
    // pick each series' accepted value at the saturation column
    // (load 1.00).
    let header = csv.lines().next().expect("csv header");
    let col = |name: &str| {
        header
            .split(',')
            .position(|c| c == name)
            .unwrap_or_else(|| panic!("no {name} column in header: {header}"))
    };
    let (series_col, x_col, accepted_col) = (col("series"), col("x"), col("accepted"));
    let mut baseline = None;
    let mut flexvc: Vec<(String, f64)> = Vec::new();
    for line in csv.lines().skip(1) {
        let cols: Vec<&str> = line.split(',').collect();
        let (series, x) = (
            cols[series_col].trim_matches('"'),
            cols[x_col].trim_matches('"'),
        );
        if x != "1.00" {
            continue;
        }
        let accepted: f64 = cols[accepted_col]
            .parse()
            .unwrap_or_else(|_| panic!("bad row: {line}"));
        // A saturated 54-node network cannot accept its full offered
        // load; a value at 1.0 would mean we read the wrong column.
        assert!(
            (0.05..0.999).contains(&accepted),
            "implausible accepted load {accepted} in: {line}"
        );
        if series.contains("Baseline") {
            baseline = Some(accepted);
        } else if series.contains("FlexVC") {
            flexvc.push((series.to_string(), accepted));
        }
    }
    let baseline = baseline.expect("baseline saturation point present");
    assert!(!flexvc.is_empty(), "no FlexVC series in:\n{csv}");
    for (series, accepted) in flexvc {
        assert!(
            accepted >= baseline * 0.98,
            "{series} accepted {accepted:.4} at saturation, below baseline {baseline:.4}"
        );
    }
}

#[test]
fn run_smoke_reports_progress_and_results() {
    let tmp = std::env::temp_dir().join(format!("flexvc-smoke-{}.json", std::process::id()));
    let (stdout, stderr) = run_ok(
        flexvc()
            .args(["run", "smoke", "--threads", "2", "--out"])
            .arg(&tmp),
    );
    // Markdown summary on stdout.
    assert!(stdout.contains("Accepted load"), "{stdout}");
    assert!(stdout.contains("FlexVC 4/2"), "{stdout}");
    // Streaming per-point progress on stderr.
    assert!(stderr.contains("[smoke 4/4]"), "{stderr}");
    // Structured JSON results on disk.
    let json = std::fs::read_to_string(&tmp).expect("results file");
    std::fs::remove_file(&tmp).ok();
    assert!(json.contains("\"accepted\""), "{json}");
    assert!(json.contains("\"series\": \"Baseline\""), "{json}");
}

#[test]
fn run_from_toml_file_without_writing_rust() {
    // A scenario authored as pure data: two tiny points, sparse config
    // (defaults fill the rest).
    let scenario = r#"
name = "custom-cli-test"
title = "Custom scenario from TOML"
description = "CLI smoke test"
seeds = [7]

[[points]]
series = "MIN baseline"
x = "0.3"
load = 0.3

[points.cfg]
warmup = 200
measure = 400
watchdog = 2000

[[points]]
series = "FlexVC"
x = "0.3"
load = 0.3

[points.cfg]
policy = "flexvc"
arrangement = "L G L G L"
warmup = 200
measure = 400
watchdog = 2000
"#;
    let dir = std::env::temp_dir();
    let toml_path = dir.join(format!("flexvc-custom-{}.toml", std::process::id()));
    let csv_path = dir.join(format!("flexvc-custom-{}.csv", std::process::id()));
    std::fs::write(&toml_path, scenario).expect("write scenario");
    let (stdout, _) = run_ok(
        flexvc()
            .args(["run", "--quiet", "--file"])
            .arg(&toml_path)
            .arg("--out")
            .arg(&csv_path),
    );
    assert!(stdout.contains("Custom scenario from TOML"), "{stdout}");
    let csv = std::fs::read_to_string(&csv_path).expect("csv output");
    std::fs::remove_file(&toml_path).ok();
    std::fs::remove_file(&csv_path).ok();
    assert_eq!(csv.lines().count(), 3, "header + 2 points:\n{csv}");
    assert!(csv.starts_with("scenario,series,x,load,"), "{csv}");
    assert!(csv.contains("custom-cli-test,FlexVC"), "{csv}");
}

#[test]
fn show_round_trips_through_run() {
    // `show smoke` must emit TOML that `run --file` accepts verbatim.
    let (toml, _) = run_ok(flexvc().args(["show", "smoke"]));
    assert!(toml.contains("name = \"smoke\""), "{toml}");
    let path = std::env::temp_dir().join(format!("flexvc-show-{}.toml", std::process::id()));
    std::fs::write(&path, &toml).expect("write shown scenario");
    let (stdout, _) = run_ok(flexvc().args(["run", "--quiet", "--file"]).arg(&path));
    std::fs::remove_file(&path).ok();
    assert!(stdout.contains("Accepted load"), "{stdout}");
}

#[test]
fn bad_input_fails_with_usage_errors() {
    let out = flexvc().args(["run", "no-such-scenario"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown scenario"), "{stderr}");
    assert!(stderr.contains("fig5"), "lists available names: {stderr}");

    let out = flexvc().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());

    let out = flexvc().args(["run"]).output().unwrap();
    assert!(!out.status.success());
}
