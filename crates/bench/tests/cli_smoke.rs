//! End-to-end smoke tests of the `flexvc` CLI binary: list, show, run (at
//! test scale), run from a TOML file, and structured JSON/CSV output.

use std::process::Command;

fn flexvc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_flexvc"))
}

fn run_ok(cmd: &mut Command) -> (String, String) {
    let out = cmd.output().expect("spawn flexvc");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        out.status.success(),
        "flexvc failed ({:?}):\nstdout:\n{stdout}\nstderr:\n{stderr}",
        out.status
    );
    (stdout, stderr)
}

#[test]
fn list_names_all_scenarios() {
    let (stdout, _) = run_ok(flexvc().arg("list"));
    for name in [
        "tables",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "ablations",
        "hyperx-un-2d",
        "hyperx-un-3d",
        "hyperx-adv-2d",
        "hyperx-adv-3d",
        "hyperx-k2",
        "dfplus-un",
        "dfplus-adv",
        "dragonfly-paper",
        "hyperx-paper",
        "dfplus-paper",
        "flows-un",
        "flows-permutation",
        "flows-incast",
        "qos-dragonfly",
        "qos-hyperx",
        "smoke",
    ] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

/// `--shards` is purely a speed knob: the structured results of a sharded
/// run are byte-identical to the single-engine run.
#[test]
fn run_with_shards_flag_is_bit_identical() {
    let dir = std::env::temp_dir();
    let mut outputs = Vec::new();
    for shards in ["1", "2"] {
        let path = dir.join(format!("flexvc-shards{shards}-{}.json", std::process::id()));
        run_ok(
            flexvc()
                .args(["run", "smoke", "--quiet", "--shards", shards, "--out"])
                .arg(&path),
        );
        let json = std::fs::read_to_string(&path).expect("results file");
        std::fs::remove_file(&path).ok();
        outputs.push(json);
    }
    assert_eq!(
        outputs[0], outputs[1],
        "sharded results must be bit-identical to the single engine"
    );
}

/// More shards than routers is a configuration error (every shard must own
/// at least one router) and must fail with the typed message, not panic.
#[test]
fn shards_exceeding_router_count_fail_loudly() {
    let out = flexvc()
        .args(["run", "smoke", "--quiet", "--shards", "999"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("exceed the topology's"),
        "expected the ShardsExceedRouters message, got:\n{stderr}"
    );
}

/// Run a scenario at reduced windows and return every series' values in
/// the named CSV columns at sweep column `x`, keyed by series label —
/// one CLI invocation regardless of how many columns are read.
fn columns_at(
    scenario: &str,
    x: &str,
    warmup: &str,
    measure: &str,
    columns: &[&str],
) -> Vec<(String, Vec<f64>)> {
    let csv_path = std::env::temp_dir().join(format!(
        "flexvc-{scenario}-{x}-{}-{}.csv",
        columns.join("-"),
        std::process::id()
    ));
    let (_, _) = run_ok(
        flexvc()
            .args([
                "run",
                scenario,
                "--quiet",
                "--seeds",
                "1",
                "--warmup",
                warmup,
                "--measure",
                measure,
                "--format",
                "csv",
                "--out",
            ])
            .arg(&csv_path),
    );
    let csv = std::fs::read_to_string(&csv_path).expect("csv output");
    std::fs::remove_file(&csv_path).ok();
    let header = csv.lines().next().expect("csv header");
    let col = |name: &str| {
        header
            .split(',')
            .position(|c| c == name)
            .unwrap_or_else(|| panic!("no {name} column in header: {header}"))
    };
    let (series_col, x_col) = (col("series"), col("x"));
    let value_cols: Vec<usize> = columns.iter().map(|c| col(c)).collect();
    let mut out = Vec::new();
    for line in csv.lines().skip(1) {
        let cols: Vec<&str> = line.split(',').collect();
        if cols[x_col].trim_matches('"') != x {
            continue;
        }
        let values: Vec<f64> = value_cols
            .iter()
            .map(|&i| {
                cols[i]
                    .parse()
                    .unwrap_or_else(|_| panic!("bad row: {line}"))
            })
            .collect();
        out.push((cols[series_col].trim_matches('"').to_string(), values));
    }
    assert!(!out.is_empty(), "no rows at x = {x} in:\n{csv}");
    out
}

/// Single-column form of [`columns_at`].
fn column_at(
    scenario: &str,
    x: &str,
    warmup: &str,
    measure: &str,
    column: &str,
) -> Vec<(String, f64)> {
    columns_at(scenario, x, warmup, measure, &[column])
        .into_iter()
        .map(|(s, v)| (s, v[0]))
        .collect()
}

/// Run a scenario at reduced windows and return every series' accepted
/// load at column `x` from the CSV output, keyed by series label.
fn accepted_at(scenario: &str, x: &str, warmup: &str, measure: &str) -> Vec<(String, f64)> {
    column_at(scenario, x, warmup, measure, "accepted")
}

fn series_accepted(rows: &[(String, f64)], needle: &str) -> f64 {
    rows.iter()
        .find(|(s, _)| s.contains(needle))
        .unwrap_or_else(|| panic!("no series containing `{needle}` in {rows:?}"))
        .1
}

/// Acceptance: UGAL beats MIN accepted load at saturation under ADV+1 on
/// the 3-D HyperX — the source-adaptive credit comparison must divert
/// enough traffic off the funneled last-dimension links to outperform pure
/// minimal routing, with the board-fed UGAL-G ahead of UGAL-L.
#[test]
fn run_hyperx_adv_3d_ugal_beats_min_at_saturation() {
    let rows = accepted_at("hyperx-adv-3d", "1.00", "2000", "4000");
    let min = series_accepted(&rows, "MIN 6VCs");
    let ugal_l = series_accepted(&rows, "UGAL-L 6VCs");
    let ugal_g = series_accepted(&rows, "UGAL-G 6VCs");
    assert!(
        ugal_l > min,
        "UGAL-L {ugal_l:.4} must beat MIN {min:.4} at ADV saturation"
    );
    assert!(
        ugal_g > min * 1.02,
        "UGAL-G {ugal_g:.4} must clearly beat MIN {min:.4} at ADV saturation"
    );
}

/// Acceptance: DAL matches or beats whole-path Valiant at saturation under
/// ADV+1 on the 2-D HyperX at the same VC budget — per-dimension misroutes
/// recover Valiant's load balancing with shorter average detours.
#[test]
fn run_hyperx_adv_2d_dal_matches_or_beats_valiant() {
    let rows = accepted_at("hyperx-adv-2d", "1.00", "2000", "4000");
    let val = series_accepted(&rows, "FlexVC 4VCs");
    let dal = series_accepted(&rows, "DAL 4VCs");
    assert!(
        dal >= val * 0.98,
        "DAL {dal:.4} must match or beat whole-path Valiant {val:.4} at ADV saturation"
    );
}

/// Satellite: adaptive `k = 2` copy selection is no worse than the
/// endpoint hash under UN and strictly better under ADV+1 (the hash pins
/// each router pair's traffic to one copy, wasting half the doubled
/// bisection exactly when it is needed).
#[test]
fn run_hyperx_k2_adaptive_copies_beat_hash_under_adv() {
    let rows = accepted_at("hyperx-k2", "1.00", "2000", "4000");
    let un_hash = series_accepted(&rows, "UN/hash copies");
    let un_adaptive = series_accepted(&rows, "UN/adaptive copies");
    let adv_hash = series_accepted(&rows, "ADV/hash copies");
    let adv_adaptive = series_accepted(&rows, "ADV/adaptive copies");
    assert!(
        un_adaptive >= un_hash * 0.98,
        "adaptive {un_adaptive:.4} must not lose to hash {un_hash:.4} under UN"
    );
    assert!(
        adv_adaptive > adv_hash * 1.02,
        "adaptive {adv_adaptive:.4} must clearly beat hash {adv_hash:.4} under ADV"
    );
}

/// Acceptance (Dragonfly+ tentpole): `flexvc run dfplus-un` completes
/// end-to-end and at saturation every FlexVC series matches or beats the
/// baseline policy's accepted load — including the equal-budget 2/1
/// series, the pure policy benefit on the new family.
#[test]
fn run_dfplus_un_flexvc_matches_or_beats_baseline() {
    let rows = accepted_at("dfplus-un", "1.00", "2000", "4000");
    let baseline = series_accepted(&rows, "Baseline");
    // A saturated network cannot accept its full offered load; a value at
    // 1.0 would mean we read the wrong column.
    assert!(
        (0.05..0.999).contains(&baseline),
        "implausible baseline accepted load {baseline}"
    );
    let flexvc: Vec<&(String, f64)> = rows.iter().filter(|(s, _)| s.contains("FlexVC")).collect();
    assert!(!flexvc.is_empty(), "no FlexVC series in {rows:?}");
    for (series, accepted) in flexvc {
        assert!(
            *accepted >= baseline * 0.98,
            "{series} accepted {accepted:.4} at saturation, below baseline {baseline:.4}"
        );
    }
}

/// Acceptance: UGAL beats MIN accepted load at saturation under ADV+1 on
/// the Dragonfly+ — the source-adaptive comparison must divert enough
/// traffic off the single funneled inter-group link, with the board-fed
/// UGAL-G clearly ahead of pure minimal routing.
#[test]
fn run_dfplus_adv_ugal_beats_min_at_saturation() {
    let rows = accepted_at("dfplus-adv", "1.00", "2000", "4000");
    let min = series_accepted(&rows, "MIN 4/2VCs");
    let ugal_l = series_accepted(&rows, "UGAL-L 4/2VCs");
    let ugal_g = series_accepted(&rows, "UGAL-G 4/2VCs");
    assert!(
        ugal_l > min,
        "UGAL-L {ugal_l:.4} must beat MIN {min:.4} at ADV saturation"
    );
    assert!(
        ugal_g > min * 1.02,
        "UGAL-G {ugal_g:.4} must clearly beat MIN {min:.4} at ADV saturation"
    );
}

/// Acceptance (flow-workload tentpole): `flexvc run flows-un` completes
/// end-to-end reporting per-flow completion times, and past the knee of
/// the latency curve (offered load 0.70) the equal-VC-budget FlexVC
/// series matches or beats the baseline policy's p99 FCT on both
/// families — strictly better on the HyperX, where the shared pool
/// relieves the head-of-line blocking that elephant trains create in a
/// fixed VC assignment. Deterministic at fixed seed and windows.
///
/// The quantiles are bucket-interpolated (PR 8), so the Dragonfly
/// comparison — where before both series quantized to the *same*
/// power-of-two bucket and the assertion compared 2048 against 2048 —
/// now resolves sub-bucket differences. "Matches" therefore carries a
/// small noise allowance; the HyperX claim stays strictly better.
#[test]
fn run_flows_un_flexvc_matches_or_beats_baseline_p99_fct() {
    let rows = column_at("flows-un", "0.70", "2000", "4000", "fct_p99");
    let df_base = series_accepted(&rows, "DF Baseline");
    let df_flex = series_accepted(&rows, "DF FlexVC 2/1VCs");
    let hx_base = series_accepted(&rows, "HX Baseline");
    let hx_flex = series_accepted(&rows, "HX FlexVC 2VCs");
    // A plausible p99 falls inside the recorded latency range, not at
    // zero (zero would mean no flows completed in the window — the wrong
    // column or a broken flow layer).
    for (label, v) in &rows {
        assert!(*v > 0.0, "{label}: implausible p99 FCT {v}");
    }
    assert!(
        df_flex <= df_base * 1.02,
        "DF FlexVC p99 FCT {df_flex} must match baseline {df_base} within noise at equal VC budget"
    );
    assert!(
        hx_flex < hx_base,
        "HX FlexVC p99 FCT {hx_flex} must beat baseline {hx_base} at equal VC budget"
    );
}

/// Acceptance: UGAL-G tracks Piggyback within noise on the Dragonfly
/// fig5 ADV point — both choose MIN-vs-VAL at injection from the same
/// boards and credits; the weighted comparison must not change the
/// outcome materially.
#[test]
fn ugal_g_tracks_piggyback_on_dragonfly_adv() {
    let scenario = r#"
name = "ugal-vs-pb"
title = "Dragonfly ADV: UGAL-G vs PB"
description = "acceptance"
seeds = [1]

[[points]]
series = "PB"
x = "0.5"
load = 0.5

[points.cfg]
routing = "piggyback"
warmup = 2000
measure = 4000
watchdog = 6000

[points.cfg.workload]
pattern = "adv+1"

[[points]]
series = "UGAL-G"
x = "0.5"
load = 0.5

[points.cfg]
routing = "ugal_g"
warmup = 2000
measure = 4000
watchdog = 6000

[points.cfg.workload]
pattern = "adv+1"
"#;
    let dir = std::env::temp_dir();
    let toml_path = dir.join(format!("flexvc-ugalpb-{}.toml", std::process::id()));
    let csv_path = dir.join(format!("flexvc-ugalpb-{}.csv", std::process::id()));
    std::fs::write(&toml_path, scenario).expect("write scenario");
    run_ok(
        flexvc()
            .args(["run", "--quiet", "--file"])
            .arg(&toml_path)
            .arg("--out")
            .arg(&csv_path),
    );
    let csv = std::fs::read_to_string(&csv_path).expect("csv output");
    std::fs::remove_file(&toml_path).ok();
    std::fs::remove_file(&csv_path).ok();
    let accepted = |needle: &str| -> f64 {
        csv.lines()
            .find(|l| l.contains(needle))
            .unwrap_or_else(|| panic!("no {needle} row in:\n{csv}"))
            .split(',')
            .nth(5)
            .expect("accepted column")
            .parse()
            .expect("accepted value")
    };
    let pb = accepted("PB");
    let ugal = accepted("UGAL-G");
    assert!(
        (0.9..=1.1).contains(&(ugal / pb)),
        "UGAL-G {ugal:.4} must be within 10% of PB {pb:.4} on the Dragonfly ADV point"
    );
}

/// The headline acceptance check for the HyperX family: `flexvc run
/// hyperx-un-3d` completes end-to-end, and at saturation (offered load
/// 1.00) every FlexVC series matches or beats the baseline policy's
/// accepted load — the paper's qualitative claim on a topology the seed
/// never modeled. Run at a reduced window via the scale flags; results are
/// deterministic for fixed seeds.
#[test]
fn run_hyperx_un_3d_flexvc_matches_or_beats_baseline() {
    let csv_path = std::env::temp_dir().join(format!("flexvc-hyperx-{}.csv", std::process::id()));
    let (stdout, _) = run_ok(
        flexvc()
            .args([
                "run",
                "hyperx-un-3d",
                "--quiet",
                "--seeds",
                "1",
                "--warmup",
                "2000",
                "--measure",
                "4000",
                "--format",
                "csv",
                "--out",
            ])
            .arg(&csv_path),
    );
    assert!(stdout.contains("Accepted load"), "{stdout}");
    let csv = std::fs::read_to_string(&csv_path).expect("csv output");
    std::fs::remove_file(&csv_path).ok();
    // Locate the columns from the header (not hard-coded indices) and
    // pick each series' accepted value at the saturation column
    // (load 1.00).
    let header = csv.lines().next().expect("csv header");
    let col = |name: &str| {
        header
            .split(',')
            .position(|c| c == name)
            .unwrap_or_else(|| panic!("no {name} column in header: {header}"))
    };
    let (series_col, x_col, accepted_col) = (col("series"), col("x"), col("accepted"));
    let mut baseline = None;
    let mut flexvc: Vec<(String, f64)> = Vec::new();
    for line in csv.lines().skip(1) {
        let cols: Vec<&str> = line.split(',').collect();
        let (series, x) = (
            cols[series_col].trim_matches('"'),
            cols[x_col].trim_matches('"'),
        );
        if x != "1.00" {
            continue;
        }
        let accepted: f64 = cols[accepted_col]
            .parse()
            .unwrap_or_else(|_| panic!("bad row: {line}"));
        // A saturated 54-node network cannot accept its full offered
        // load; a value at 1.0 would mean we read the wrong column.
        assert!(
            (0.05..0.999).contains(&accepted),
            "implausible accepted load {accepted} in: {line}"
        );
        if series.contains("Baseline") {
            baseline = Some(accepted);
        } else if series.contains("FlexVC") {
            flexvc.push((series.to_string(), accepted));
        }
    }
    let baseline = baseline.expect("baseline saturation point present");
    assert!(!flexvc.is_empty(), "no FlexVC series in:\n{csv}");
    for (series, accepted) in flexvc {
        assert!(
            accepted >= baseline * 0.98,
            "{series} accepted {accepted:.4} at saturation, below baseline {baseline:.4}"
        );
    }
}

/// Acceptance (QoS tentpole): `flexvc run qos-dragonfly` completes
/// end-to-end with per-class CSV columns, and at saturation the
/// strict-priority control plane's p99 latency stays under half the
/// single-class p99 at the *equal* total 4/2 VC budget. The single-class
/// series tags every packet Bulk, so its tail lives in `bulk_p99`; all
/// tails are interpolated from the class histograms, so the comparison
/// resolves below the power-of-two buckets.
#[test]
fn run_qos_dragonfly_control_tail_beats_single_class() {
    let rows = columns_at(
        "qos-dragonfly",
        "1.00",
        "2000",
        "4000",
        &["control_accepted", "control_p99", "bulk_p99"],
    );
    let series = |needle: &str| -> &Vec<f64> {
        &rows
            .iter()
            .find(|(s, _)| s.contains(needle))
            .unwrap_or_else(|| panic!("no series containing `{needle}` in {rows:?}"))
            .1
    };
    let single = series("Single");
    let fifo = series("FIFO");
    let qos = series("QoS");
    // The single-class reference has no control packets; its whole
    // distribution is the Bulk class.
    assert_eq!(single[0], 0.0, "single-class run delivered control traffic");
    let single_p99 = single[2];
    assert!(
        single_p99 > 100.0,
        "implausible single-class p99 {single_p99} at saturation"
    );
    // Both mixed runs deliver control traffic.
    for (label, row) in [("FIFO", fifo), ("QoS", qos)] {
        assert!(
            row[0] > 0.0,
            "{label}: no control traffic delivered at saturation"
        );
    }
    let (fifo_ctrl, qos_ctrl) = (fifo[1], qos[1]);
    assert!(
        qos_ctrl <= 0.5 * single_p99,
        "QoS control p99 {qos_ctrl:.0} not under half the single-class p99 {single_p99:.0} \
         at the equal total VC budget"
    );
    assert!(
        qos_ctrl < fifo_ctrl,
        "QoS control p99 {qos_ctrl:.0} not below the FIFO mixed control p99 {fifo_ctrl:.0}"
    );
}

/// Satellite: `flexvc run qos-hyperx` — the dynamic-allocation variant —
/// completes with both the hard-partitioned and repartitioned series
/// delivering traffic of both classes (no deadlock, no starvation) and
/// both control tails at or below their bulk tails at saturation.
#[test]
fn run_qos_hyperx_both_allocation_modes_stay_live() {
    let rows = columns_at(
        "qos-hyperx",
        "1.00",
        "1000",
        "2000",
        &[
            "control_accepted",
            "bulk_accepted",
            "control_p99",
            "bulk_p99",
        ],
    );
    for needle in ["QoS 2+2VCs", "QoS dyn"] {
        let row = &rows
            .iter()
            .find(|(s, _)| s.contains(needle))
            .unwrap_or_else(|| panic!("no series containing `{needle}` in {rows:?}"))
            .1;
        assert!(row[0] > 0.0, "{needle}: no control traffic delivered");
        assert!(row[1] > 0.0, "{needle}: bulk starved under priority");
        assert!(
            row[2] <= row[3],
            "{needle}: control p99 {:.0} above bulk p99 {:.0} under priority",
            row[2],
            row[3]
        );
    }
}

#[test]
fn run_smoke_reports_progress_and_results() {
    let tmp = std::env::temp_dir().join(format!("flexvc-smoke-{}.json", std::process::id()));
    let (stdout, stderr) = run_ok(
        flexvc()
            .args(["run", "smoke", "--threads", "2", "--out"])
            .arg(&tmp),
    );
    // Markdown summary on stdout.
    assert!(stdout.contains("Accepted load"), "{stdout}");
    assert!(stdout.contains("FlexVC 4/2"), "{stdout}");
    // Streaming per-point progress on stderr.
    assert!(stderr.contains("[smoke 4/4]"), "{stderr}");
    // Structured JSON results on disk.
    let json = std::fs::read_to_string(&tmp).expect("results file");
    std::fs::remove_file(&tmp).ok();
    assert!(json.contains("\"accepted\""), "{json}");
    assert!(json.contains("\"series\": \"Baseline\""), "{json}");
}

#[test]
fn run_from_toml_file_without_writing_rust() {
    // A scenario authored as pure data: two tiny points, sparse config
    // (defaults fill the rest).
    let scenario = r#"
name = "custom-cli-test"
title = "Custom scenario from TOML"
description = "CLI smoke test"
seeds = [7]

[[points]]
series = "MIN baseline"
x = "0.3"
load = 0.3

[points.cfg]
warmup = 200
measure = 400
watchdog = 2000

[[points]]
series = "FlexVC"
x = "0.3"
load = 0.3

[points.cfg]
policy = "flexvc"
arrangement = "L G L G L"
warmup = 200
measure = 400
watchdog = 2000
"#;
    let dir = std::env::temp_dir();
    let toml_path = dir.join(format!("flexvc-custom-{}.toml", std::process::id()));
    let csv_path = dir.join(format!("flexvc-custom-{}.csv", std::process::id()));
    std::fs::write(&toml_path, scenario).expect("write scenario");
    let (stdout, _) = run_ok(
        flexvc()
            .args(["run", "--quiet", "--file"])
            .arg(&toml_path)
            .arg("--out")
            .arg(&csv_path),
    );
    assert!(stdout.contains("Custom scenario from TOML"), "{stdout}");
    let csv = std::fs::read_to_string(&csv_path).expect("csv output");
    std::fs::remove_file(&toml_path).ok();
    std::fs::remove_file(&csv_path).ok();
    assert_eq!(csv.lines().count(), 3, "header + 2 points:\n{csv}");
    assert!(csv.starts_with("scenario,series,x,load,"), "{csv}");
    assert!(csv.contains("custom-cli-test,FlexVC"), "{csv}");
}

#[test]
fn show_round_trips_through_run() {
    // `show smoke` must emit TOML that `run --file` accepts verbatim.
    let (toml, _) = run_ok(flexvc().args(["show", "smoke"]));
    assert!(toml.contains("name = \"smoke\""), "{toml}");
    let path = std::env::temp_dir().join(format!("flexvc-show-{}.toml", std::process::id()));
    std::fs::write(&path, &toml).expect("write shown scenario");
    let (stdout, _) = run_ok(flexvc().args(["run", "--quiet", "--file"]).arg(&path));
    std::fs::remove_file(&path).ok();
    assert!(stdout.contains("Accepted load"), "{stdout}");
}

#[test]
fn bad_input_fails_with_usage_errors() {
    let out = flexvc().args(["run", "no-such-scenario"]).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown scenario"), "{stderr}");
    assert!(stderr.contains("fig5"), "lists available names: {stderr}");

    let out = flexvc().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());

    let out = flexvc().args(["run"]).output().unwrap();
    assert!(!out.status.success());
}
