//! JSON emitter and parser over the [`Value`] model.

use crate::{Error, Map, Value};

// ---------------------------------------------------------------------------
// Emit
// ---------------------------------------------------------------------------

/// Emit compact JSON.
pub fn emit(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

/// Emit indented JSON (two spaces).
pub fn emit_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out.push('\n');
    out
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(m) => {
            out.push('{');
            for (i, (k, item)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !m.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

/// JSON has no NaN/Infinity; non-finite floats degrade to `null`.
fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        out.push_str(&format!("{f:?}"));
    } else {
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parse
// ---------------------------------------------------------------------------

/// Parse JSON text into a [`Value`].
pub fn parse(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        let line = 1 + self.bytes[..self.pos.min(self.bytes.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count();
        Error::new(format!("JSON parse error at line {line}: {msg}"))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal (expected `{word}`)")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut m = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(m));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are rejected rather than joined;
                            // emitted documents never contain them.
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid unicode scalar"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err(&format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) {
        assert_eq!(&parse(&emit(v)).unwrap(), v, "compact");
        assert_eq!(&parse(&emit_pretty(v)).unwrap(), v, "pretty");
    }

    #[test]
    fn scalar_round_trips() {
        round_trip(&Value::Null);
        round_trip(&Value::Bool(true));
        round_trip(&Value::Int(-42));
        round_trip(&Value::Float(0.125));
        round_trip(&Value::Float(1.0));
        round_trip(&Value::Float(1e-9));
        round_trip(&Value::Str("hej \"du\" \\ \n\tend".into()));
    }

    #[test]
    fn container_round_trips() {
        let m = Map::new()
            .with("name", Value::Str("fig5".into()))
            .with(
                "loads",
                Value::Seq(vec![Value::Float(0.1), Value::Float(0.2)]),
            )
            .with(
                "nested",
                Value::Map(Map::new().with("deadlocked", Value::Bool(false))),
            )
            .with("empty_seq", Value::Seq(vec![]))
            .with("empty_map", Value::Map(Map::new()));
        round_trip(&Value::Map(m));
    }

    #[test]
    fn float_stays_float() {
        // 1.0 must re-parse as Float, not Int, for typed round trips.
        assert_eq!(parse("1.0").unwrap(), Value::Float(1.0));
        assert_eq!(parse("1").unwrap(), Value::Int(1));
        assert_eq!(parse("1e3").unwrap(), Value::Float(1000.0));
    }

    #[test]
    fn parse_errors_have_lines() {
        let err = parse("{\n\"a\": nope\n}").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        assert!(parse("[1, 2").is_err());
        assert!(parse("{}extra").is_err());
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(parse(r#""é\n""#).unwrap(), Value::Str("\u{e9}\n".into()));
    }

    #[test]
    fn nonfinite_floats_degrade_to_null() {
        assert_eq!(emit(&Value::Float(f64::NAN)), "null");
    }
}
